(** Plain-text table rendering for experiment reports. *)

type align = Left | Right

type t

val make :
  ?title:string -> columns:(string * align) list -> string list list -> t
(** [make ~columns rows] builds a table.  @raise Invalid_argument when a
    row's width differs from the header's or there are no columns. *)

val render : t -> string
(** Monospace rendering with a header rule, e.g.:
    {v
    Module   |    P^M |  Pbar^M
    ---------+--------+--------
    CLOCK    |  0.500 |   1.000
    v} *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val row_count : t -> int
val column_names : t -> string list

val fold_rows : ('a -> string list -> 'a) -> 'a -> t -> 'a
(** Folds over the data rows in order (header excluded). *)

val pp : Format.formatter -> t -> unit
