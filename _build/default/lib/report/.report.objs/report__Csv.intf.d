lib/report/csv.mli: Propane Table
