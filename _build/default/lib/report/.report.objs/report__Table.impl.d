lib/report/table.ml: Fmt List Printf String
