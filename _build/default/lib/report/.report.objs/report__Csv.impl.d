lib/report/csv.ml: Buffer Fun List Propane String Table
