lib/report/experiments.mli: Propagation Propane Table
