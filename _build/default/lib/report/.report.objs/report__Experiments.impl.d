lib/report/experiments.ml: Fmt Fun List Printf Propagation Propane String Table
