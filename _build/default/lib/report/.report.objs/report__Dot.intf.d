lib/report/dot.mli: Propagation
