lib/report/dot.ml: Buffer List Printf Propagation String
