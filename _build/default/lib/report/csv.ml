let escape field =
  let needs_quoting =
    String.exists
      (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r')
      field
  in
  if not needs_quoting then field
  else
    let b = Buffer.create (String.length field + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      field;
    Buffer.add_char b '"';
    Buffer.contents b

let row cells = String.concat "," (List.map escape cells)

let of_table table =
  let b = Buffer.create 1024 in
  Buffer.add_string b (row (Table.column_names table));
  Buffer.add_char b '\n';
  Table.fold_rows
    (fun () cells ->
      Buffer.add_string b (row cells);
      Buffer.add_char b '\n')
    () table;
  Buffer.contents b

let of_trace_set traces =
  let signals = Propane.Trace_set.signals traces in
  let b = Buffer.create 4096 in
  Buffer.add_string b (row ("ms" :: signals));
  Buffer.add_char b '\n';
  for ms = 0 to Propane.Trace_set.duration_ms traces - 1 do
    Buffer.add_string b (string_of_int ms);
    List.iter
      (fun s ->
        Buffer.add_char b ',';
        Buffer.add_string b
          (string_of_int (Propane.Trace.get (Propane.Trace_set.trace traces s) ms)))
      signals;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
