type align = Left | Right

type t = {
  title : string option;
  columns : (string * align) list;
  rows : string list list;
}

let make ?title ~columns rows =
  if columns = [] then invalid_arg "Table.make: no columns";
  let width = List.length columns in
  List.iter
    (fun row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Table.make: row has %d cells, expected %d"
             (List.length row) width))
    rows;
  { title; columns; rows }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun idx header ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row idx)))
          (String.length header) t.rows)
      headers
  in
  let render_row cells =
    String.concat " | "
      (List.map2
         (fun (cell, (_, align)) width -> pad align width cell)
         (List.combine cells t.columns)
         widths)
  in
  let rule =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  let lines =
    (match t.title with Some title -> [ title ] | None -> [])
    @ [ render_row headers; rule ]
    @ List.map render_row t.rows
  in
  String.concat "\n" lines

let print t = print_endline (render t)
let row_count t = List.length t.rows
let column_names t = List.map fst t.columns
let fold_rows f acc t = List.fold_left f acc t.rows
let pp ppf t = Fmt.string ppf (render t)
