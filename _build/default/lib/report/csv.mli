(** CSV export of tables and traces (for external plotting). *)

val escape : string -> string
(** RFC-4180 quoting: fields containing commas, quotes or newlines are
    quoted, with inner quotes doubled. *)

val of_table : Table.t -> string
(** Header row plus data rows; the title (if any) is dropped. *)

val of_trace_set : Propane.Trace_set.t -> string
(** One row per millisecond: [ms,sig1,sig2,...]. *)

val write_file : string -> string -> unit
(** [write_file path contents].  @raise Sys_error on I/O failure. *)
