type t =
  | Clamp of { lo : int; hi : int }
  | Hold_last_if of Assertion.t
  | Forward

let make_guard t () =
  match t with
  | Forward -> fun v -> v
  | Clamp { lo; hi } -> fun v -> max lo (min hi v)
  | Hold_last_if assertion ->
      let last = ref None in
      fun v ->
        if Assertion.check assertion ~prev:!last v then begin
          last := Some v;
          v
        end
        else Option.value ~default:0 !last

let describe = function
  | Clamp { lo; hi } -> Printf.sprintf "clamp to [%d, %d]" lo hi
  | Hold_last_if a -> "hold-last unless " ^ Assertion.describe a
  | Forward -> "forward (no recovery)"

let pp ppf t = Fmt.string ppf (describe t)
