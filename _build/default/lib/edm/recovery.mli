(** Error-recovery mechanisms (ERMs) as signal-write wrappers.

    An ERM intercepts every write to a signal (via
    {!Propane.Signal_store.add_write_guard}) and forces the value back
    into a plausible envelope — the "wrappers" of Section 4.1 used to
    increase a module's error-containment capability.  Each run gets a
    fresh, independent guard closure from {!make_guard}. *)

type t =
  | Clamp of { lo : int; hi : int }  (** saturate into [[lo, hi]] *)
  | Hold_last_if of Assertion.t
      (** a write violating the assertion is replaced by the most
          recent accepted value (0 before any write was accepted) *)
  | Forward  (** identity; the do-nothing baseline for ablations *)

val make_guard : t -> unit -> int -> int
(** [make_guard t ()] is a fresh transformer suitable for
    [add_write_guard]; statefulness (the held value of [Hold_last_if])
    is confined to the closure. *)

val describe : t -> string
val pp : Format.formatter -> t -> unit
