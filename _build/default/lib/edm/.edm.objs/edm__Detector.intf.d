lib/edm/detector.mli: Assertion Format Propane
