lib/edm/selector.ml: Float Fmt List Printf Propagation String
