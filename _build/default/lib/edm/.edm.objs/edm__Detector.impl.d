lib/edm/detector.ml: Assertion Fmt List Printf Propane String
