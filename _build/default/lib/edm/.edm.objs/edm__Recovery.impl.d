lib/edm/recovery.ml: Assertion Fmt Option Printf
