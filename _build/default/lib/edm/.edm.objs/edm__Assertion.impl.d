lib/edm/assertion.ml: Fmt Printf
