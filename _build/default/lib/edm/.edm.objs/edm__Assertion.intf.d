lib/edm/assertion.mli: Format
