lib/edm/selector.mli: Format Propagation
