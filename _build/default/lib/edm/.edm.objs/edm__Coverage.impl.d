lib/edm/coverage.ml: Detector Fmt List Propane Simkernel String
