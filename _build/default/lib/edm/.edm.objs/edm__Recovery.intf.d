lib/edm/recovery.mli: Assertion Format
