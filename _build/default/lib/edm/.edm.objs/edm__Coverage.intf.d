lib/edm/coverage.mli: Detector Format Propane
