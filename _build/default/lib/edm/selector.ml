type proposal = { subject : string; score : float; rationale : string }

type plan = {
  edm_locations : proposal list;
  erm_locations : proposal list;
  notes : string list;
}

let take n xs = List.filteri (fun i _ -> i < n) xs

let propose ?(edm_budget = 3) ?(erm_budget = 3)
    (placement : Propagation.Placement.t) =
  let edm_locations =
    take edm_budget
      (List.map
         (fun (row : Propagation.Ranking.signal_row) ->
           {
             subject = Propagation.Signal.name row.signal;
             score = row.exposure;
             rationale =
               Printf.sprintf
                 "signal error exposure %.3f: errors propagating through the \
                  system very likely pass here"
                 row.exposure;
           })
         placement.edm_signals)
  in
  let cut_proposals =
    List.filter_map
      (fun signal ->
        let name = Propagation.Signal.name signal in
        if
          List.exists
            (fun p -> String.equal p.subject name)
            edm_locations
        then
          Some
            {
              subject = name;
              score = Float.infinity;
              rationale =
                "on every non-zero propagation path to the system outputs: \
                 recovery here shields the outputs (OB5)";
            }
        else None)
      placement.cut_signals
  in
  let module_proposals =
    List.map
      (fun (row : Propagation.Ranking.module_row) ->
        {
          subject = row.module_name;
          score = row.relative_permeability;
          rationale =
            Printf.sprintf
              "relative permeability %.3f: incoming errors pass through to \
               other modules"
              row.relative_permeability;
        })
      placement.erm_modules
  in
  let barrier_proposals =
    List.map
      (fun name ->
        {
          subject = name;
          score = 0.0;
          rationale =
            "reads system inputs: a recovery wrapper here is a barrier \
             against external errors entering the system at all (OB6)";
        })
      placement.barrier_modules
  in
  let erm_locations =
    take erm_budget (cut_proposals @ module_proposals) @ barrier_proposals
  in
  let notes =
    List.map
      (fun (signal, reason) ->
        Fmt.str "%a excluded as an EDM location: %a" Propagation.Signal.pp
          signal Propagation.Placement.pp_exclusion_reason reason)
      placement.excluded
  in
  { edm_locations; erm_locations; notes }

let pp_proposal ppf p = Fmt.pf ppf "%-12s %s" p.subject p.rationale

let pp ppf plan =
  Fmt.pf ppf "@[<v>EDM locations:@,%a@,ERM locations:@,%a@,notes:@,%a@]"
    Fmt.(list ~sep:cut pp_proposal)
    plan.edm_locations
    Fmt.(list ~sep:cut pp_proposal)
    plan.erm_locations
    Fmt.(list ~sep:cut string)
    plan.notes
