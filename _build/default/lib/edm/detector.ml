type t = { name : string; signal : string; assertions : Assertion.t list }

let make ~name ~signal assertions =
  if String.length name = 0 then invalid_arg "Detector.make: empty name";
  if String.length signal = 0 then invalid_arg "Detector.make: empty signal";
  if assertions = [] then invalid_arg "Detector.make: no assertions";
  { name; signal; assertions }

type verdict = { fired : bool; first_ms : int option }

let evaluate t trace =
  if not (String.equal (Propane.Trace.signal trace) t.signal) then
    invalid_arg
      (Printf.sprintf "Detector.evaluate: %s monitors %S, trace is %S" t.name
         t.signal
         (Propane.Trace.signal trace));
  let n = Propane.Trace.length trace in
  let rec go prev j =
    if j >= n then { fired = false; first_ms = None }
    else
      let v = Propane.Trace.get trace j in
      if List.for_all (fun a -> Assertion.check a ~prev v) t.assertions then
        go (Some v) (j + 1)
      else { fired = true; first_ms = Some j }
  in
  go None 0

let pp ppf t =
  Fmt.pf ppf "@[<h>%s on %s: %a@]" t.name t.signal
    Fmt.(list ~sep:comma Assertion.pp)
    t.assertions
