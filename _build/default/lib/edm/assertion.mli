(** Executable assertions over signal values.

    The error-detection mechanisms the paper's placement analysis
    targets are "simple assertions" on signals (Section 2's [22],
    Section 8's OB3 referring to the executable-assertion EDMs of [7]).
    An assertion inspects a new sample (and, for rate checks, the
    previous one) and judges it plausible or not. *)

type t =
  | Range of { lo : int; hi : int }
      (** value must lie in [[lo, hi]] (a physical-bounds check) *)
  | Max_rate of { per_sample : int }
      (** |new - prev| must not exceed the bound (a continuity check);
          the first sample is always plausible *)
  | Boolean  (** value must be exactly 0 or 1 *)
  | Non_decreasing
      (** the value must never shrink (e.g. an accumulated pulse
          count); the first sample is always plausible *)

val check : t -> prev:int option -> int -> bool
(** [check a ~prev v] is [true] when [v] is plausible. *)

val describe : t -> string
val pp : Format.formatter -> t -> unit
