(** Error-detection mechanisms (EDMs).

    A detector monitors one signal with a conjunction of executable
    assertions.  It can be evaluated offline against a recorded trace
    (finding the first violation), which is how the cost-effectiveness
    study of {!Coverage} works. *)

type t = {
  name : string;
  signal : string;
  assertions : Assertion.t list;
}

val make : name:string -> signal:string -> Assertion.t list -> t
(** @raise Invalid_argument on empty name/signal or no assertions. *)

type verdict = {
  fired : bool;
  first_ms : int option;  (** millisecond of the first violation *)
}

val evaluate : t -> Propane.Trace.t -> verdict
(** Scans the trace sample by sample, feeding each assertion the
    previous and current values.
    @raise Invalid_argument if the trace belongs to another signal. *)

val pp : Format.formatter -> t -> unit
