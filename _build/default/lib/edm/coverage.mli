(** Cost-effectiveness assessment of detector placements (paper OB3).

    OB3's argument: a detector with excellent detection probability on a
    signal with low error exposure (the [InValue] assertion of [7]) is
    {e less} cost effective than a mediocre detector on a highly exposed
    signal — "not only are the detection capabilities of EDM's
    important, the locations are equally important."

    [assess] re-runs a campaign with full-length injection runs,
    evaluates each candidate detector offline on every run's trace of
    its signal, and tabulates per detector how often it fired, how often
    an error was actually present, and how often it caught an error that
    went on to corrupt a system output (in time to act, i.e. no later
    than the output's first divergence). *)

type report = {
  detector : Detector.t;
  golden_false_alarm : bool;
      (** the detector fired on at least one golden run — its
          assertions are mis-calibrated for the workload *)
  runs : int;  (** injection runs assessed *)
  effective : int;  (** runs where at least one signal diverged *)
  output_failures : int;  (** runs where a system output diverged *)
  fired : int;
      (** runs where the detector fired {e differently from the test
          case's golden run} (a firing identical to the reference
          carries no information) *)
  detections : int;  (** fired and the run was effective *)
  false_alarms : int;  (** fired on a run with no divergence at all *)
  timely_output_detections : int;
      (** fired no later than the system output's first divergence *)
  mean_latency_ms : float option;
      (** mean (first firing - injection instant) over detections *)
}

val detection_coverage : report -> float
(** [detections / effective] ([0.] when no run was effective). *)

val usefulness : report -> float
(** [timely_output_detections / output_failures] — OB3's
    cost-effectiveness figure ([0.] when no output failure occurred). *)

val assess :
  ?max_ms:int ->
  ?seed:int64 ->
  outputs:string list ->
  detectors:Detector.t list ->
  Propane.Sut.t ->
  Propane.Campaign.t ->
  report list
(** One report per detector, in input order.  [outputs] are the system
    output signals whose divergence counts as failure. *)

val pp_report : Format.formatter -> report -> unit
