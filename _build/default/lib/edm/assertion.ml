type t =
  | Range of { lo : int; hi : int }
  | Max_rate of { per_sample : int }
  | Boolean
  | Non_decreasing

let check t ~prev v =
  match t with
  | Range { lo; hi } -> lo <= v && v <= hi
  | Max_rate { per_sample } -> (
      match prev with None -> true | Some p -> abs (v - p) <= per_sample)
  | Boolean -> v = 0 || v = 1
  | Non_decreasing -> ( match prev with None -> true | Some p -> v >= p)

let describe = function
  | Range { lo; hi } -> Printf.sprintf "range [%d, %d]" lo hi
  | Max_rate { per_sample } -> Printf.sprintf "max rate %d/sample" per_sample
  | Boolean -> "boolean"
  | Non_decreasing -> "non-decreasing"

let pp ppf t = Fmt.string ppf (describe t)
