(** Turning placement analysis into concrete mechanism proposals.

    {!Propagation.Placement} ranks signals and modules; this module
    converts the rankings into budgeted, human-readable EDM/ERM
    proposals with the paper's rationale attached (OB1, OB4-OB6). *)

type proposal = {
  subject : string;  (** signal or module name *)
  score : float;  (** the measure that earned the slot *)
  rationale : string;
}

type plan = {
  edm_locations : proposal list;
      (** signals for detectors, ordered by signal error exposure *)
  erm_locations : proposal list;
      (** modules for recovery wrappers, ordered by relative
          permeability, plus cut-signal and barrier proposals *)
  notes : string list;  (** exclusions and caveats (OB4-style) *)
}

val propose :
  ?edm_budget:int -> ?erm_budget:int -> Propagation.Placement.t -> plan
(** Budgets default to 3 of each kind. *)

val pp : Format.formatter -> plan -> unit
