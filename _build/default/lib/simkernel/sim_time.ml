type t = int

let zero = 0

let of_ms ms =
  if ms < 0 then invalid_arg "Sim_time.of_ms: negative time" else ms

let to_ms t = t
let add_ms t ms = of_ms (t + ms)
let diff_ms later earlier = later - earlier

let of_seconds s =
  if Float.is_nan s || s < 0.0 then
    invalid_arg "Sim_time.of_seconds: negative time"
  else int_of_float (Float.round (s *. 1000.0))

let to_seconds t = float_of_int t /. 1000.0
let succ t = t + 1
let equal = Int.equal
let compare = Int.compare
let ( <= ) a b = a <= b
let ( < ) a b = a < b
let ( >= ) a b = a >= b
let pp ppf t = Fmt.pf ppf "%d ms" t
