(** Simulated hardware registers.

    The paper's port of the arrestment software replaced the target's
    hardware with "glue software ... to simulate registers for
    A/D-conversion, timers, counter registers etc." (Section 7.1).  A
    register is a fixed-width unsigned cell with wraparound semantics:
    writes are truncated to the width, increments wrap, and single bits
    can be flipped (the unit the SWIFI error model operates on — all
    signals of the target system are 16 bits wide, Section 7.3). *)

type t

val create : ?width:int -> ?init:int -> string -> t
(** [create name] makes a register of [width] bits (default 16, allowed
    1-30) holding [init] (default 0, truncated to the width).
    @raise Invalid_argument on an empty name or width out of range. *)

val name : t -> string
val width : t -> int
val max_value : t -> int
(** [2^width - 1]. *)

val read : t -> int
val write : t -> int -> unit
(** Truncates to the register width (hardware-like wraparound for
    negative and overflowing values). *)

val increment : ?by:int -> t -> unit
(** Wrapping increment, default step 1. *)

val flip_bit : t -> int -> unit
(** [flip_bit r b] toggles bit [b] (0 = least significant).
    @raise Invalid_argument if [b] is outside [0, width). *)

val reset : t -> unit
(** Back to the initial value. *)

val pp : Format.formatter -> t -> unit
