(** Slot-based non-preemptive scheduler.

    The target system "operates in seven 1-ms-slots.  In each slot, one
    or more modules (except for CALC) are invoked" and CALC "runs when
    other modules are dormant" (Section 7.1).  This scheduler reproduces
    that structure: tasks are statically assigned to slots; advancing
    the simulation by one millisecond runs every task of the current
    slot in registration order, then the background task once.

    The slot number is read from a pluggable {e slot source} on each
    tick.  The arrestment system wires the source to the [ms_slot_nbr]
    output of its CLOCK module, so an injected error in [ms_slot_nbr]
    genuinely disturbs dispatching, exactly as on the real target. *)

type t

val create : ?slots:int -> slot_source:(unit -> int) -> unit -> t
(** [slots] is the cycle length (default 7).  [slot_source] is queried
    once per tick and its result reduced modulo [slots] (a corrupted
    slot number must select {e some} slot, never crash the kernel).
    @raise Invalid_argument unless [slots >= 1]. *)

val add_task : t -> slot:int -> name:string -> (unit -> unit) -> unit
(** Assigns a task to one slot (0-based).
    @raise Invalid_argument if the slot is out of range. *)

val add_every_slot : t -> name:string -> (unit -> unit) -> unit
(** Assigns a task to every slot (a 1 ms period task such as DIST_S). *)

val set_background : t -> name:string -> (unit -> unit) -> unit
(** Registers the background task (CALC).  At most one; a second call
    replaces the first. *)

val tick : t -> unit
(** Advance one millisecond: read the slot source, run that slot's
    tasks, then the background task. *)

val run : t -> ms:int -> unit
(** [run t ~ms] performs [ms] ticks.  @raise Invalid_argument if
    negative. *)

val ticks : t -> int
(** Number of ticks performed so far. *)

val slot_count : t -> int
val last_slot : t -> int option
(** Slot selected by the most recent tick. *)
