type t = { mutable state : int64 }

(* SplitMix64 (Steele, Lea & Flood 2014): tiny, fast and with
   well-understood output quality; the de-facto standard for seeding and
   splitting deterministic simulation streams. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 random bits so the conversion to OCaml's 63-bit int stays
     non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  if Float.is_nan bound || bound <= 0.0 then
    invalid_arg "Rng.float: bound must be positive";
  let r = Int64.shift_right_logical (int64 t) 11 in
  (* 53 uniformly random mantissa bits in [0, 1). *)
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))
