type t = {
  name : string;
  width : int;
  mask : int;
  init : int;
  mutable value : int;
}

let create ?(width = 16) ?(init = 0) name =
  if String.length name = 0 then invalid_arg "Register.create: empty name";
  if width < 1 || width > 30 then
    invalid_arg "Register.create: width must be in [1, 30]";
  let mask = (1 lsl width) - 1 in
  { name; width; mask; init = init land mask; value = init land mask }

let name t = t.name
let width t = t.width
let max_value t = t.mask
let read t = t.value
let write t v = t.value <- v land t.mask
let increment ?(by = 1) t = write t (t.value + by)

let flip_bit t b =
  if b < 0 || b >= t.width then
    invalid_arg
      (Printf.sprintf "Register.flip_bit: bit %d outside [0,%d)" b t.width);
  t.value <- t.value lxor (1 lsl b)

let reset t = t.value <- t.init
let pp ppf t = Fmt.pf ppf "%s=%d (%d bits)" t.name t.value t.width
