type task = { name : string; run : unit -> unit }

type t = {
  slots : int;
  slot_source : unit -> int;
  tasks : task list array;  (* per slot, in registration order *)
  mutable background : task option;
  mutable ticks : int;
  mutable last_slot : int option;
}

let create ?(slots = 7) ~slot_source () =
  if slots < 1 then invalid_arg "Slot_scheduler.create: slots must be >= 1";
  {
    slots;
    slot_source;
    tasks = Array.make slots [];
    background = None;
    ticks = 0;
    last_slot = None;
  }

let add_task t ~slot ~name run =
  if slot < 0 || slot >= t.slots then
    invalid_arg
      (Printf.sprintf "Slot_scheduler.add_task: slot %d outside [0,%d)" slot
         t.slots);
  t.tasks.(slot) <- t.tasks.(slot) @ [ { name; run } ]

let add_every_slot t ~name run =
  for slot = 0 to t.slots - 1 do
    add_task t ~slot ~name run
  done

let set_background t ~name run = t.background <- Some { name; run }

let tick t =
  (* A corrupted slot number still selects a slot: reduce into range the
     way the 3-bit hardware counter of the target would. *)
  let raw = t.slot_source () in
  let slot = ((raw mod t.slots) + t.slots) mod t.slots in
  t.last_slot <- Some slot;
  List.iter (fun task -> task.run ()) t.tasks.(slot);
  (match t.background with Some task -> task.run () | None -> ());
  t.ticks <- t.ticks + 1

let run t ~ms =
  if ms < 0 then invalid_arg "Slot_scheduler.run: negative duration";
  for _ = 1 to ms do
    tick t
  done

let ticks t = t.ticks
let slot_count t = t.slots
let last_slot t = t.last_slot
