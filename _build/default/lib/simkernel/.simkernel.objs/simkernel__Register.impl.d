lib/simkernel/register.ml: Fmt Printf String
