lib/simkernel/sim_time.mli: Format
