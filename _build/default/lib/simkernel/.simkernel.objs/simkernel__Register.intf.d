lib/simkernel/register.mli: Format
