lib/simkernel/sim_time.ml: Float Fmt Int
