lib/simkernel/slot_scheduler.ml: Array List Printf
