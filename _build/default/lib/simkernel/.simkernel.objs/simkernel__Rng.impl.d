lib/simkernel/rng.ml: Float Int64 List
