lib/simkernel/slot_scheduler.mli:
