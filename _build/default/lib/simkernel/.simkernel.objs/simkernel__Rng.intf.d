lib/simkernel/rng.mli:
