(** Deterministic, splittable pseudo-random numbers.

    Fault-injection campaigns must be exactly reproducible: the same
    seed must yield the same injection plan, the same workload and hence
    the same permeability estimates bit-for-bit.  This is a SplitMix64
    generator; {!split} derives an independent stream, so concurrent or
    reordered experiment phases cannot perturb each other's draws. *)

type t

val create : int64 -> t
(** A generator seeded with the given value (any value is fine). *)

val split : t -> t
(** A new generator statistically independent of [t]; both advance
    independently afterwards. *)

val int64 : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [[0, bound)].
    @raise Invalid_argument unless [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [[0, bound)].
    @raise Invalid_argument unless [bound > 0]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform draw from a non-empty list.
    @raise Invalid_argument on an empty list. *)
