(** Simulated time.

    The paper's experiments run real control software in simulated time
    on a desktop ("the intrusion of the traps is non-existent in our
    setup as it runs in simulated time", Section 7.3).  All timestamps in
    this reproduction are simulated milliseconds since the start of a
    run; there is no wall-clock anywhere in the experiment path. *)

type t
(** A millisecond timestamp, >= 0. *)

val zero : t
val of_ms : int -> t
(** @raise Invalid_argument on a negative value. *)

val to_ms : t -> int
val add_ms : t -> int -> t
val diff_ms : t -> t -> int
(** [diff_ms later earlier] in milliseconds (may be negative). *)

val of_seconds : float -> t
(** Rounded to the nearest millisecond.
    @raise Invalid_argument on a negative value. *)

val to_seconds : t -> float
val succ : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val pp : Format.formatter -> t -> unit
