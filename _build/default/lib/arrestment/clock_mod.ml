module Store = Propane.Signal_store

type t = {
  mutable ms : int;
  slot : Store.handle;
  mscnt : Store.handle;
}

let name = Propagation.Signal.name

let create store =
  {
    ms = 0;
    slot = Store.handle store (name Signals.ms_slot_nbr);
    mscnt = Store.handle store (name Signals.mscnt);
  }

let step t =
  let slot = Store.read_handle t.slot in
  Store.write_handle t.slot ((slot + 1) mod 7);
  t.ms <- (t.ms + 1) land 0xFFFF;
  Store.write_handle t.mscnt t.ms

let descriptor =
  Propagation.Sw_module.make ~name:"CLOCK"
    ~inputs:[ Signals.ms_slot_nbr ]
    ~outputs:[ Signals.mscnt; Signals.ms_slot_nbr ]
