(** The environment simulator (paper Fig. 7).

    "An environment simulator used in experiments conducted on the real
    system was also ported, so the environment experienced by the real
    system and the desktop system was identical.  The simulator handles
    the rotating drum and the incoming aircraft."

    The environment owns the {!Physics} state and the hardware side of
    the signal store:

    - {!pre_step} (start of every millisecond, before the software
      runs): advances [TCNT], counts new drum pulses into [PACNT] and
      latches [TIC1];
    - {!post_step} (end of every millisecond): reads the [TOC2] PWM
      register, drives the valve and integrates the physics;
    - {!convert_adc} (called by PRES_S when it samples): performs the
      A/D conversion, writing the applied pressure into [ADC].  The
      conversion overwrites the register — which is why injected [ADC]
      corruption never reaches the software (paper OB3). *)

type t

val create : Propane.Signal_store.t -> mass_kg:float -> velocity_mps:float -> t
val physics : t -> Physics.t

val pre_step : t -> unit
val post_step : t -> unit
val convert_adc : t -> unit

val elapsed_ms : t -> int
val finished : t -> bool
(** The aircraft has been at rest for {!Params.finished_hold_ms}, or
    overran the runway. *)
