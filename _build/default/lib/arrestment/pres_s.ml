module Store = Propane.Signal_store

type t = {
  start_conversion : unit -> unit;
  adc : Store.handle;
  in_value : Store.handle;
  mutable last : int;
  mutable have_last : bool;
  mutable rejected_once : bool;
}

let name = Propagation.Signal.name

let create store ~start_conversion =
  {
    start_conversion;
    adc = Store.handle store (name Signals.adc);
    in_value = Store.handle store (name Signals.in_value);
    last = 0;
    have_last = false;
    rejected_once = false;
  }

let step t =
  t.start_conversion ();
  let raw = Store.read_handle t.adc in
  let value =
    if
      t.have_last
      && abs (raw - t.last) > Params.pres_spike_limit
      && not t.rejected_once
    then begin
      (* One-shot spike rejection: hold the previous conditioned value;
         a second consecutive out-of-band sample is accepted as a real
         step change. *)
      t.rejected_once <- true;
      t.last
    end
    else begin
      t.rejected_once <- false;
      raw
    end
  in
  t.last <- value;
  t.have_last <- true;
  Store.write_handle t.in_value value

let descriptor =
  Propagation.Sw_module.make ~name:"PRES_S" ~inputs:[ Signals.adc ]
    ~outputs:[ Signals.in_value ]
