(** V_REG — the valve regulator: tracks the CALC set point against the
    measured pressure.  Period = 7 ms.

    A PI loop with set-point feed-forward: [OutValue = SetValue +
    Kp * err + Ki * integ] with [err = SetValue - InValue], integrator
    anti-windup at {!Params.integrator_limit} and output clamped to the
    pressure range.  A single corrupted input sample shifts the
    integrator persistently, which is why the paper estimates high
    permeability for both V_REG pairs (0.884 and 0.920 in Table 1). *)

type t

val create : Propane.Signal_store.t -> t
val step : t -> unit

val descriptor : Propagation.Sw_module.t
(** inputs [SetValue; InValue]; outputs [OutValue]. *)
