type t = {
  mass_kg : float;
  mutable x_m : float;
  mutable v_mps : float;
  mutable pressure : float;  (* applied, raw units *)
}

let create ~mass_kg ~velocity_mps =
  if not (mass_kg > 0.0) then invalid_arg "Physics.create: mass must be > 0";
  if not (velocity_mps > 0.0) then
    invalid_arg "Physics.create: velocity must be > 0";
  { mass_kg; x_m = 0.0; v_mps = velocity_mps; pressure = 0.0 }

let full_scale = float_of_int Params.pressure_full_scale

(* First-order valve lag, exact discretisation over one millisecond. *)
let alpha = 1.0 -. exp (-1.0 /. Params.valve_time_constant_ms)

let step_ms t ~commanded_pressure =
  let dt = 0.001 in
  let cmd =
    float_of_int
      (max 0 (min commanded_pressure Params.pressure_full_scale))
  in
  t.pressure <- t.pressure +. (alpha *. (cmd -. t.pressure));
  if t.v_mps > 0.0 then begin
    let brake = t.pressure /. full_scale *. Params.max_brake_force_n in
    let force = brake +. Params.base_friction_n in
    let v' = t.v_mps -. (force /. t.mass_kg *. dt) in
    t.v_mps <- (if v' < Params.stop_velocity_mps then 0.0 else v');
    t.x_m <- t.x_m +. (t.v_mps *. dt)
  end

let position_m t = t.x_m
let velocity_mps t = t.v_mps

let applied_pressure t =
  max 0 (min Params.pressure_full_scale (int_of_float (Float.round t.pressure)))

let total_pulses t = int_of_float (Float.floor (t.x_m *. Params.pulses_per_metre))
let at_rest t = t.v_mps <= 0.0
let overrun t = t.x_m > Params.runway_length_m

let pp ppf t =
  Fmt.pf ppf "x=%.1fm v=%.1fm/s p=%.0f" t.x_m t.v_mps t.pressure
