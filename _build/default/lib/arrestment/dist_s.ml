module Store = Propane.Signal_store

(* Cross-validated pulse counting.  The module fuses all three sensor
   registers: PACNT deltas are plausibility-checked against the
   input-capture gap (TCNT - TIC1) before being accumulated into
   pulscnt, the gap drives the slow-speed condition, and a sliding
   window of raw deltas backs it up.  The fusion is what gives every
   input a propagation path into pulscnt and slow_speed (cf. the
   non-zero structure of the paper's Table 4), while the stopped flag
   is computed from pulse *presence* over a long horizon and therefore
   cannot be forced by any single value error (paper OB2). *)

let window_ms = 32
let glitch_gap_ticks = 2_500
let max_pulses_per_ms = 3

type t = {
  pacnt : Store.handle;
  tic1 : Store.handle;
  tcnt : Store.handle;
  pulscnt : Store.handle;
  slow_speed : Store.handle;
  stopped : Store.handle;
  mutable prev_pacnt : int;
  mutable total : int;
  mutable no_pulse_ms : int;
  mutable saw_pulse : bool;
  mutable slow_ms : int;  (* consecutive ms a slow condition held *)
  window : int array;  (* ring of the last [window_ms] raw deltas *)
  mutable window_pos : int;
  mutable window_sum : int;
}

let name = Propagation.Signal.name

let create store =
  {
    pacnt = Store.handle store (name Signals.pacnt);
    tic1 = Store.handle store (name Signals.tic1);
    tcnt = Store.handle store (name Signals.tcnt);
    pulscnt = Store.handle store (name Signals.pulscnt);
    slow_speed = Store.handle store (name Signals.slow_speed);
    stopped = Store.handle store (name Signals.stopped);
    prev_pacnt = 0;
    total = 0;
    no_pulse_ms = 0;
    saw_pulse = false;
    slow_ms = 0;
    window = Array.make window_ms 0;
    window_pos = 0;
    window_sum = 0;
  }

let mask16 = 0xFFFF

(* Counter deltas are interpreted as signed 16-bit quantities. *)
let sign_extend_16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let step t =
  let pacnt = Store.read_handle t.pacnt in
  let tic1 = Store.read_handle t.tic1 in
  let tcnt = Store.read_handle t.tcnt in
  let delta = sign_extend_16 ((pacnt - t.prev_pacnt) land mask16) in
  t.prev_pacnt <- pacnt;
  let gap = (tcnt - tic1) land mask16 in
  (* A pulse delta is only trusted when the capture gap confirms that
     pulses are actually arriving at a compatible rate. *)
  let accepted =
    if delta <= 0 then 0
    else if gap > glitch_gap_ticks then 0
    else min delta max_pulses_per_ms
  in
  t.total <- (t.total + accepted) land mask16;
  Store.write_handle t.pulscnt t.total;
  t.window_sum <- t.window_sum - t.window.(t.window_pos) + delta;
  t.window.(t.window_pos) <- delta;
  t.window_pos <- (t.window_pos + 1) mod window_ms;
  if delta > 0 then begin
    t.saw_pulse <- true;
    t.no_pulse_ms <- 0
  end
  else t.no_pulse_ms <- t.no_pulse_ms + 1;
  let slow_now =
    t.saw_pulse && (gap > Params.slow_speed_gap_ticks || t.window_sum <= 0)
  in
  if slow_now then t.slow_ms <- t.slow_ms + 1 else t.slow_ms <- 0;
  let slow = t.slow_ms > Params.slow_speed_debounce_ms in
  Store.write_handle t.slow_speed (if slow then 1 else 0);
  let stopped = t.saw_pulse && t.no_pulse_ms >= Params.stopped_debounce_ms in
  Store.write_handle t.stopped (if stopped then 1 else 0)

let descriptor =
  Propagation.Sw_module.make ~name:"DIST_S"
    ~inputs:[ Signals.pacnt; Signals.tic1; Signals.tcnt ]
    ~outputs:[ Signals.pulscnt; Signals.slow_speed; Signals.stopped ]
