(** DIST_S — "receives [PACNT] and [TIC1] from the rotation sensor and
    [TCNT] from the hardware counter modules ...  provides a total count
    of the pulses, [pulscnt], generated during the arrestment.  It also
    provides two boolean values, [slow_speed] and [stopped].
    Period = 1 ms."

    - [pulscnt] accumulates the wrapping [PACNT] deltas;
    - [slow_speed] fires when the latest pulse gap ([TCNT - TIC1],
      wrapping) exceeds {!Params.slow_speed_gap_ticks} — but only after
      the first pulse has been seen;
    - [stopped] fires when no pulse has arrived for
      {!Params.stopped_debounce_ms} consecutive milliseconds.  The
      pulse-presence counter makes it immune to value errors on the
      sensor inputs — a bit flip yields a {e non-zero} delta and resets
      the counter — which reproduces the paper's OB2: all permeabilities
      into [stopped] are zero because "although injected errors can
      alter the perceived velocity, it is hard to make it zero". *)

type t

val create : Propane.Signal_store.t -> t
val step : t -> unit

val descriptor : Propagation.Sw_module.t
(** inputs [PACNT; TIC1; TCNT]; outputs [pulscnt; slow_speed; stopped]. *)
