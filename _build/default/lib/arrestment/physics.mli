(** Continuous dynamics of the arrestment (aircraft, cable, drum,
    hydraulic valve).

    The incoming aircraft engages the cable at velocity [v0]; the
    hydraulic brake on the rotating drum applies a retarding force
    proportional to the applied pressure; the tooth wheel on the drum
    emits {!Params.pulses_per_metre} pulses per metre of cable run-out.
    Integration is explicit Euler at 1 ms, which is ample for a system
    whose fastest time constant is the 60 ms valve lag. *)

type t

val create : mass_kg:float -> velocity_mps:float -> t
(** @raise Invalid_argument unless both are positive. *)

val step_ms : t -> commanded_pressure:int -> unit
(** Advance 1 ms.  [commanded_pressure] is in raw pressure units
    (0 .. {!Params.pressure_full_scale}); the applied pressure follows
    it through the valve's first-order lag. *)

val position_m : t -> float
val velocity_mps : t -> float
val applied_pressure : t -> int
(** Raw units, rounded — what the A/D converter digitises. *)

val total_pulses : t -> int
(** Drum pulses emitted since engagement ([floor (x * ppm)]). *)

val at_rest : t -> bool
(** Velocity has reached {!Params.stop_velocity_mps}. *)

val overrun : t -> bool
(** The aircraft ran past the available cable. *)

val pp : Format.formatter -> t -> unit
