(** Physical and controller constants of the arrestment system.

    The original constants are proprietary (the system is built to the
    specification of [19], a military arresting-gear standard); these
    values are chosen so the closed loop reproduces the paper's
    experimental envelope: aircraft of 8,000-20,000 kg engaging at
    40-80 m/s are brought to rest within the runway in roughly 6-16 s,
    comfortably bracketing the 0.5-5.0 s injection window of Section
    7.3. *)

(** {1 Geometry and sensing} *)

val pulses_per_metre : float
(** tooth-wheel resolution of the rotation sensor. *)

val tcnt_ticks_per_ms : int
(** free-running timer rate (100 ticks/ms, i.e. 100 kHz). *)

val runway_length_m : float
(** cable run-out available for the arrestment. *)

val checkpoint_pulses : int array
(** the six predefined [pulscnt] checkpoints of CALC. *)

(** {1 Hydraulics} *)

val pressure_full_scale : int
(** pressure signals ([SetValue], [InValue], [OutValue]) use raw units
    0 .. [pressure_full_scale]. *)

val max_brake_force_n : float
(** cable tension at full pressure. *)

val base_friction_n : float
(** pressure-independent drag (sheaves, tape drag). *)

val valve_time_constant_ms : float
(** first-order lag of the hydraulic valve. *)

val toc2_shift : int
(** PRES_A writes [TOC2 = OutValue >> toc2_shift] (12-bit PWM). *)

(** {1 Controller} *)

val initial_set_value : int
(** set point before the first checkpoint. *)

val slow_speed_set_value : int
(** set point once [slow_speed] is reported. *)

val kp_num : int
val kp_den : int
(** proportional gain [kp_num/kp_den] of V_REG. *)

val ki_num : int
val ki_den : int
(** integral gain of V_REG. *)

val integrator_limit : int
(** anti-windup clamp for the V_REG integrator. *)

(** {1 Detection thresholds (DIST_S)} *)

val slow_speed_gap_ticks : int
(** a pulse gap longer than this (in TCNT ticks) means "slow". *)

val slow_speed_debounce_ms : int
(** consecutive milliseconds the gap must persist. *)

val stopped_gap_ticks : int
val stopped_debounce_ms : int

(** {1 Sensor conditioning (PRES_S)} *)

val pres_spike_limit : int
(** an [ADC] step larger than this per 7 ms sample is rejected as a
    spike and the previous conditioned value is held. *)

(** {1 Run control} *)

val stop_velocity_mps : float
(** below this the aircraft is considered at rest. *)

val finished_hold_ms : int
(** the run ends this long after the velocity first reaches zero. *)
