lib/arrestment/system.mli: Propane
