lib/arrestment/physics.mli: Format
