lib/arrestment/clock_mod.ml: Propagation Propane Signals
