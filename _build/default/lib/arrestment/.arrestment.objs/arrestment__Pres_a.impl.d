lib/arrestment/pres_a.ml: Params Propagation Propane Signals
