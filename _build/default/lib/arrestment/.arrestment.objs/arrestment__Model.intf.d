lib/arrestment/model.mli: Propagation
