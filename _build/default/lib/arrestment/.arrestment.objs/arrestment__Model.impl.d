lib/arrestment/model.ml: Calc Clock_mod Dist_s List Pres_a Pres_s Propagation Signals String V_reg
