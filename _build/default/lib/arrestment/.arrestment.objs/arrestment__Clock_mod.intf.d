lib/arrestment/clock_mod.mli: Propagation Propane
