lib/arrestment/system.ml: Calc Clock_mod Dist_s Environment List Model Params Pres_a Pres_s Printf Propagation Propane Signals Simkernel V_reg
