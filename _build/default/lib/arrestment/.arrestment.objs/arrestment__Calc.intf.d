lib/arrestment/calc.mli: Propagation Propane
