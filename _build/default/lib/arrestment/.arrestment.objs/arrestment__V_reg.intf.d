lib/arrestment/v_reg.mli: Propagation Propane
