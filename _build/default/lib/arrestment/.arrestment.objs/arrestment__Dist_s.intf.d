lib/arrestment/dist_s.mli: Propagation Propane
