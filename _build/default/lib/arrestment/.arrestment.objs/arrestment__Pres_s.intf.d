lib/arrestment/pres_s.mli: Propagation Propane
