lib/arrestment/environment.ml: Params Physics Propagation Propane Signals
