lib/arrestment/pres_a.mli: Propagation Propane
