lib/arrestment/physics.ml: Float Fmt Params
