lib/arrestment/params.mli:
