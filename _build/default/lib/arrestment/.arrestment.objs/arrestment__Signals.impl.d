lib/arrestment/signals.ml: List Propagation
