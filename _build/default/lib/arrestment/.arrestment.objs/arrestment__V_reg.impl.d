lib/arrestment/v_reg.ml: Params Propagation Propane Signals
