lib/arrestment/dist_s.ml: Array Params Propagation Propane Signals
