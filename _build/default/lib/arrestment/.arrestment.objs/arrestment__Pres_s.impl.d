lib/arrestment/pres_s.ml: Params Propagation Propane Signals
