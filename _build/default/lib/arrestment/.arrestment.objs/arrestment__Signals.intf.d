lib/arrestment/signals.mli: Propagation
