lib/arrestment/environment.mli: Physics Propane
