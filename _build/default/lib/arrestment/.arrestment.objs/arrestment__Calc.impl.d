lib/arrestment/calc.ml: Array Float Params Propagation Propane Signals
