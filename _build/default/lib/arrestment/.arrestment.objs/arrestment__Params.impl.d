lib/arrestment/params.ml:
