(* Geometry and sensing *)
let pulses_per_metre = 10.0
let tcnt_ticks_per_ms = 100
let runway_length_m = 335.0
let checkpoint_pulses = [| 200; 600; 1100; 1700; 2400; 3200 |]

(* Hydraulics *)
let pressure_full_scale = 60_000
let max_brake_force_n = 450_000.0
let base_friction_n = 6_000.0
let valve_time_constant_ms = 60.0
let toc2_shift = 4

(* Controller *)
let initial_set_value = 12_000
let slow_speed_set_value = 5_000
let kp_num = 1
let kp_den = 2
let ki_num = 1
let ki_den = 8
let integrator_limit = 100_000

(* Detection thresholds (DIST_S) *)
let slow_speed_gap_ticks = 2_000
let slow_speed_debounce_ms = 0
let stopped_gap_ticks = 40_000
let stopped_debounce_ms = 400

(* Sensor conditioning (PRES_S) *)
let pres_spike_limit = 8_000

(* Run control *)
let stop_velocity_mps = 0.05
let finished_hold_ms = 600
