(** Signal inventory of the target system (paper Fig. 8).

    All fourteen signals of the arrestment controller, named exactly as
    in the paper.  Every signal is 16 bits wide (Section 7.3).  The
    [Propagation.Signal.t] values carry placement-relevant kinds:
    [TOC2] is a hardware register (OB4 excludes it from ERM placement)
    and the clock outputs are time-base signals. *)

val width : int
(** 16 — "the input signals were all 16 bits wide". *)

(** {1 System inputs (sensor-side hardware registers)} *)

val pacnt : Propagation.Signal.t
(** [PACNT] — hardware pulse-counter register fed by the drum tooth
    wheel; wraps at 2^16. *)

val tic1 : Propagation.Signal.t
(** [TIC1] — input-capture register: value of [TCNT] latched at the
    most recent drum pulse. *)

val tcnt : Propagation.Signal.t
(** [TCNT] — free-running 16-bit timer (100 ticks per millisecond). *)

val adc : Propagation.Signal.t
(** [ADC] — A/D conversion of the hydraulic pressure actually applied
    by the valves. *)

(** {1 Internal signals} *)

val mscnt : Propagation.Signal.t
(** millisecond clock provided by CLOCK. *)

val ms_slot_nbr : Propagation.Signal.t
(** current execution slot (0-6); CLOCK output fed back to itself and
    read by the module scheduler. *)

val pulscnt : Propagation.Signal.t
(** total drum pulses since the start of the arrestment (DIST_S). *)

val slow_speed : Propagation.Signal.t
(** boolean: velocity below threshold (DIST_S). *)

val stopped : Propagation.Signal.t
(** boolean: drum has stopped (DIST_S). *)

val i : Propagation.Signal.t
(** current checkpoint index 0-6 (CALC, module-local feedback). *)

val set_value : Propagation.Signal.t
(** [SetValue] — pressure set point computed by CALC. *)

val in_value : Propagation.Signal.t
(** [InValue] — conditioned measured pressure (PRES_S). *)

val out_value : Propagation.Signal.t
(** [OutValue] — valve command computed by V_REG. *)

(** {1 System output} *)

val toc2 : Propagation.Signal.t
(** [TOC2] — output-compare (PWM) hardware register driving the
    pressure valves. *)

val all : Propagation.Signal.t list
(** The fourteen signals in a fixed documentation order. *)

val store_layout : (string * int) list
(** [(name, width)] for {!Propane.Signal_store.create}. *)

val system_inputs : Propagation.Signal.t list
val system_outputs : Propagation.Signal.t list
