module Store = Propane.Signal_store

type t = {
  physics : Physics.t;
  tcnt : Store.handle;
  tic1 : Store.handle;
  pacnt : Store.handle;
  adc : Store.handle;
  toc2 : Store.handle;
  mutable prev_pulses : int;
  mutable latch_pending : bool;  (* a pulse arrived in the previous ms *)
  mutable elapsed_ms : int;
  mutable rest_ms : int;  (* consecutive ms at rest *)
}

let name = Propagation.Signal.name

let create store ~mass_kg ~velocity_mps =
  {
    physics = Physics.create ~mass_kg ~velocity_mps;
    tcnt = Store.handle store (name Signals.tcnt);
    tic1 = Store.handle store (name Signals.tic1);
    pacnt = Store.handle store (name Signals.pacnt);
    adc = Store.handle store (name Signals.adc);
    toc2 = Store.handle store (name Signals.toc2);
    prev_pulses = 0;
    latch_pending = false;
    elapsed_ms = 0;
    rest_ms = 0;
  }

let physics t = t.physics

let pre_step t =
  (* The free-running timer and the pulse counter are hardware counters:
     they accumulate on top of whatever the register holds, so injected
     corruption is carried along rather than overwritten. *)
  Store.poke_handle t.tcnt
    (Store.peek_handle t.tcnt + Params.tcnt_ticks_per_ms);
  (* Input capture: TIC1 latches the timer at each pulse.  On the 1 ms
     grid the latch becomes visible at the start of the millisecond
     following the pulse (capture latency). *)
  if t.latch_pending then Store.poke_handle t.tic1 (Store.peek_handle t.tcnt);
  let pulses = Physics.total_pulses t.physics in
  let delta = pulses - t.prev_pulses in
  if delta > 0 then
    Store.poke_handle t.pacnt (Store.peek_handle t.pacnt + delta);
  t.latch_pending <- delta > 0;
  t.prev_pulses <- pulses

let convert_adc t =
  (* A full register write: the conversion result replaces the cell
     content, clobbering any injected corruption (see Signal_store). *)
  Store.poke_handle t.adc (Physics.applied_pressure t.physics)

let post_step t =
  let toc2 = Store.read_handle t.toc2 in
  let commanded_pressure = toc2 lsl Params.toc2_shift in
  Physics.step_ms t.physics ~commanded_pressure;
  t.elapsed_ms <- t.elapsed_ms + 1;
  if Physics.at_rest t.physics then t.rest_ms <- t.rest_ms + 1
  else t.rest_ms <- 0

let elapsed_ms t = t.elapsed_ms

let finished t =
  t.rest_ms >= Params.finished_hold_ms || Physics.overrun t.physics
