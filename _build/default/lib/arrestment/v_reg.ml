module Store = Propane.Signal_store

type t = {
  set_value : Store.handle;
  in_value : Store.handle;
  out_value : Store.handle;
  mutable integ : int;
}

let name = Propagation.Signal.name

let create store =
  {
    set_value = Store.handle store (name Signals.set_value);
    in_value = Store.handle store (name Signals.in_value);
    out_value = Store.handle store (name Signals.out_value);
    integ = 0;
  }

let clamp lo hi v = max lo (min hi v)

let step t =
  let sv = Store.read_handle t.set_value in
  let iv = Store.read_handle t.in_value in
  let err = sv - iv in
  t.integ <-
    clamp (-Params.integrator_limit) Params.integrator_limit (t.integ + err);
  let out =
    sv
    + (Params.kp_num * err / Params.kp_den)
    + (Params.ki_num * t.integ / Params.ki_den)
  in
  Store.write_handle t.out_value (clamp 0 Params.pressure_full_scale out)

let descriptor =
  Propagation.Sw_module.make ~name:"V_REG"
    ~inputs:[ Signals.set_value; Signals.in_value ]
    ~outputs:[ Signals.out_value ]
