(** PRES_S — "reads the pressure that is actually being applied by the
    pressure valves, using [ADC] from the internal A/D-converter.  This
    value is provided in [InValue].  Period = 7 ms."

    Each activation starts an A/D conversion (the environment writes the
    digitised pressure into the [ADC] register) and then reads the
    register.  Because the conversion is a full register write, an
    injected corruption of [ADC] is always clobbered before the module
    samples it — the mechanism behind the paper's estimated
    [P(ADC -> InValue) = 0] (OB3).  The module also carries standard
    spike rejection ({!Params.pres_spike_limit}) as the production code
    would; under this fault model the filter never fires. *)

type t

val create : Propane.Signal_store.t -> start_conversion:(unit -> unit) -> t
(** [start_conversion] is the glue callback that performs the A/D
    conversion into the [ADC] register. *)

val step : t -> unit

val descriptor : Propagation.Sw_module.t
(** inputs [ADC]; outputs [InValue]. *)
