let width = 16

let pacnt = Propagation.Signal.make "PACNT"
let tic1 = Propagation.Signal.make "TIC1"
let tcnt = Propagation.Signal.make "TCNT"
let adc = Propagation.Signal.make "ADC"
let mscnt = Propagation.Signal.make ~kind:Propagation.Signal.Clock "mscnt"

let ms_slot_nbr =
  Propagation.Signal.make ~kind:Propagation.Signal.Clock "ms_slot_nbr"

let pulscnt = Propagation.Signal.make "pulscnt"
let slow_speed = Propagation.Signal.make "slow_speed"
let stopped = Propagation.Signal.make "stopped"
let i = Propagation.Signal.make "i"
let set_value = Propagation.Signal.make "SetValue"
let in_value = Propagation.Signal.make "InValue"
let out_value = Propagation.Signal.make "OutValue"

let toc2 =
  Propagation.Signal.make ~kind:Propagation.Signal.Hardware_register "TOC2"

let all =
  [
    pacnt;
    tic1;
    tcnt;
    adc;
    mscnt;
    ms_slot_nbr;
    pulscnt;
    slow_speed;
    stopped;
    i;
    set_value;
    in_value;
    out_value;
    toc2;
  ]

let store_layout = List.map (fun s -> (Propagation.Signal.name s, width)) all
let system_inputs = [ pacnt; tic1; tcnt; adc ]
let system_outputs = [ toc2 ]
