module Store = Propane.Signal_store

type t = {
  pulscnt : Store.handle;
  mscnt : Store.handle;
  slow_speed : Store.handle;
  stopped : Store.handle;
  index : Store.handle;
  set_value : Store.handle;
  mutable last_cp_pulscnt : int;
  mutable last_cp_mscnt : int;
  mutable current_sv : int;
  mutable finished : bool;
}

let name = Propagation.Signal.name

let create store =
  {
    pulscnt = Store.handle store (name Signals.pulscnt);
    mscnt = Store.handle store (name Signals.mscnt);
    slow_speed = Store.handle store (name Signals.slow_speed);
    stopped = Store.handle store (name Signals.stopped);
    index = Store.handle store (name Signals.i);
    set_value = Store.handle store (name Signals.set_value);
    last_cp_pulscnt = 0;
    last_cp_mscnt = 0;
    current_sv = Params.initial_set_value;
    finished = false;
  }

let checkpoint_count = Array.length Params.checkpoint_pulses

(* Pressure set point for the deceleration that stops a nominal-mass
   aircraft within the remaining cable run-out. *)
let set_point ~velocity_mps ~position_m =
  let nominal_mass_kg = 14_000.0 in
  let target_m = Params.runway_length_m -. 5.0 in
  let remaining = Float.max 5.0 (target_m -. position_m) in
  let decel = velocity_mps *. velocity_mps /. (2.0 *. remaining) in
  let force = decel *. nominal_mass_kg in
  let raw =
    force /. Params.max_brake_force_n
    *. float_of_int Params.pressure_full_scale
  in
  max 2_000 (min Params.pressure_full_scale (int_of_float (Float.round raw)))

let step t =
  let pulscnt = Store.read_handle t.pulscnt in
  let mscnt = Store.read_handle t.mscnt in
  let slow_speed = Store.read_handle t.slow_speed in
  let stopped = Store.read_handle t.stopped in
  let index_raw = Store.read_handle t.index in
  (* The raw index is clamped for checkpoint lookup only; the stored
     signal keeps whatever value it has (the production code never
     sanitises its own state variable). *)
  let index = max 0 (min checkpoint_count index_raw) in
  if stopped = 1 then t.finished <- true;
  if t.finished then begin
    Store.write_handle t.index index_raw;
    Store.write_handle t.set_value 0
  end
  else begin
    (* Reported slow speed means the arrestment is in its final phase:
       checkpoint tracking is abandoned and the index fast-forwarded. *)
    let index, index_raw =
      if slow_speed = 1 then (checkpoint_count, checkpoint_count)
      else (index, index_raw)
    in
    let index_raw =
      if
        index < checkpoint_count
        && pulscnt >= Params.checkpoint_pulses.(index)
      then begin
        let dp = pulscnt - t.last_cp_pulscnt in
        let dt = (mscnt - t.last_cp_mscnt) land 0xFFFF in
        if dp > 0 && dt > 0 then begin
          let velocity_mps =
            float_of_int dp /. Params.pulses_per_metre
            /. (float_of_int dt /. 1000.0)
          in
          let position_m = float_of_int pulscnt /. Params.pulses_per_metre in
          t.current_sv <- set_point ~velocity_mps ~position_m
        end;
        t.last_cp_pulscnt <- pulscnt;
        t.last_cp_mscnt <- mscnt;
        index + 1
      end
      else index_raw
    in
    Store.write_handle t.index index_raw;
    let sv =
      if slow_speed = 1 then Params.slow_speed_set_value else t.current_sv
    in
    Store.write_handle t.set_value sv
  end

let descriptor =
  Propagation.Sw_module.make ~name:"CALC"
    ~inputs:
      [
        Signals.pulscnt;
        Signals.mscnt;
        Signals.slow_speed;
        Signals.stopped;
        Signals.i;
      ]
    ~outputs:[ Signals.i; Signals.set_value ]
