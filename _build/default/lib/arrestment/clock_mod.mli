(** CLOCK — "provides a millisecond-clock, [mscnt].  The system operates
    in seven 1-ms-slots ...  The signal [ms_slot_nbr] tells the module
    scheduler the current execution slot.  Period = 1 ms."

    [ms_slot_nbr] is read back by the module itself (module-local
    feedback): each activation publishes the slot number of the {e next}
    millisecond.  [mscnt] comes from an internal counter, which is why
    slot-number errors never permeate to it — the paper's estimated
    CLOCK matrix is exactly [[1; 0]]. *)

type t

val create : Propane.Signal_store.t -> t
val step : t -> unit

val descriptor : Propagation.Sw_module.t
(** inputs [ms_slot_nbr]; outputs [mscnt; ms_slot_nbr]. *)
