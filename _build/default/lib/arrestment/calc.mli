(** CALC — "uses [mscnt], [pulscnt], [slow_speed] and [stopped] to
    calculate a set point value for the pressure valves, [SetValue], at
    six predefined checkpoints along the runway.  The checkpoints are
    detected by comparing the current [pulscnt] with pre-defined
    [pulscnt]-values ...  The current checkpoint is stored in [i].
    Period = n/a (background task, runs when other modules are
    dormant)."

    At each checkpoint crossing the module estimates the engagement
    velocity from the pulse count and millisecond clock since the
    previous checkpoint, computes the deceleration needed to stop within
    the remaining cable, and converts it into a pressure set point for a
    nominal aircraft mass (the controller does not know the true mass;
    velocity feedback at the next checkpoint compensates).  While
    [slow_speed] is reported the set point drops to
    {!Params.slow_speed_set_value}; once [stopped] is reported the
    arrestment is latched finished and the set point goes to zero.

    The checkpoint index [i] is kept {e in the signal itself} and read
    back each activation — the module-local feedback loop of the paper's
    Figs. 9, 10 and 12.  A corrupted index is clamped into [0, 6]
    (defensive indexing), then written back: index errors persist, which
    is why the estimated [P(i -> i)] is 1.0 (Table 1's sentinel row). *)

type t

val create : Propane.Signal_store.t -> t
val step : t -> unit

val descriptor : Propagation.Sw_module.t
(** inputs [pulscnt; mscnt; slow_speed; stopped; i]; outputs
    [i; SetValue]. *)
