module Store = Propane.Signal_store

type t = { out_value : Store.handle; toc2 : Store.handle }

let name = Propagation.Signal.name

let create store =
  {
    out_value = Store.handle store (name Signals.out_value);
    toc2 = Store.handle store (name Signals.toc2);
  }

let step t =
  Store.write_handle t.toc2 (Store.read_handle t.out_value lsr Params.toc2_shift)

let descriptor =
  Propagation.Sw_module.make ~name:"PRES_A" ~inputs:[ Signals.out_value ]
    ~outputs:[ Signals.toc2 ]
