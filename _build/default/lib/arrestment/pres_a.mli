(** PRES_A — pressure actuation: converts the regulator command into the
    PWM duty cycle of the valve driver.  Period = 7 ms.

    [TOC2 = OutValue >> toc2_shift] (a 12-bit output-compare register):
    the low bits of the command are below the PWM resolution, so bit
    flips there never reach the hardware — the reason the paper's
    estimated [P(OutValue -> TOC2)] (0.860) is high but below 1. *)

type t

val create : Propane.Signal_store.t -> t
val step : t -> unit

val descriptor : Propagation.Sw_module.t
(** inputs [OutValue]; outputs [TOC2]. *)
