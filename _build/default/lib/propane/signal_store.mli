(** Trap-instrumented signal storage.

    PROPANE instruments the target with "high-level software traps"
    reached as the software reads its signals (Section 7.3).  This store
    is that instrumentation layer, reusable by any system under test:

    - producers {!write} values (truncated to the signal width);
    - consumers {!read} values through the trap: a pending injection is
      applied to the stored value the first time the signal is read at
      or after the injection instant, so the corruption lands between
      the producer's write and the consumer's read exactly like a trap
      placed at the read site;
    - the tracing runner uses {!peek}, which never triggers traps.

    A corrupted value persists until the producer overwrites it — the
    transient-data-error semantics of the paper's SWIFI model. *)

type t

type mode =
  | At_read
      (** software signal: the corruption is applied the first time the
          software reads the signal after the injection instant — the
          trap sits at the consumer's read site, so a producer write in
          between does not clear it.  Default. *)
  | Immediate
      (** hardware register: the corruption lands in the register cell
          at the injection instant; a later full register write (e.g. an
          A/D conversion result) clobbers it, while read-modify-write
          updates (hardware counters) carry it along.  This asymmetry is
          what makes the paper's [ADC -> InValue] permeability exactly
          zero while [PACNT -> pulscnt] is high: conversions refresh the
          ADC register before the software samples it, but counters
          accumulate on top of the corrupted count. *)

val create : ?modes:(string * mode) list -> signals:(string * int) list -> unit -> t
(** [(name, width)] pairs.  All values start at 0; signals default to
    {!At_read} unless listed in [modes].
    @raise Invalid_argument on duplicates, empty names, widths outside
    [1, 30], or a mode for an unknown signal. *)

val names : t -> string list
val width : t -> string -> int
val mem : t -> string -> bool

val read : t -> string -> int
(** Trap-aware read (applies and clears a pending injection first).
    @raise Invalid_argument for an unknown signal. *)

val peek : t -> string -> int
(** Raw read; never fires traps.  Used for tracing. *)

val write : t -> string -> int -> unit
(** Producer write; truncates to the signal width.  Does {e not} clear a
    pending injection: the error then corrupts the freshly produced
    value, as a trap at the consumer side would. *)

val poke : t -> string -> int -> unit
(** Direct overwrite bypassing traps (test setup, not injection). *)

val inject : t -> string -> (int -> int) -> unit
(** Registers a one-shot corruption.  For an {!At_read} signal it fires
    at the next {!read}; for an {!Immediate} signal it corrupts the
    stored value right away.  A second registration before an [At_read]
    trap fires replaces the first. *)

val mode : t -> string -> mode
val pending_injection : t -> string -> bool
val clear_injections : t -> unit

(** {1 Handles}

    Hot paths (module bodies executing every simulated millisecond)
    can resolve a signal once and then access its cell directly. *)

type handle

val handle : t -> string -> handle
(** @raise Invalid_argument for an unknown signal. *)

val read_handle : handle -> int
(** Same trap semantics as {!read}. *)

val peek_handle : handle -> int

val write_handle : handle -> int -> unit
(** Same guard semantics as {!write}. *)

val poke_handle : handle -> int -> unit
(** Same semantics as {!poke} (no guards). *)

val add_write_guard : t -> string -> (int -> int) -> unit
(** Appends a transformer applied (in registration order) whenever a
    value crosses the signal's software boundary: on every {!write},
    and on the value produced by a fired injection trap inside {!read}
    — the hook EDM/ERM wrappers attach to.  Guards do not apply to
    {!poke}. *)
