type divergence = { signal : string; first_ms : int }

let check_signal_sets ~golden ~run =
  let gs = Trace_set.signals golden and rs = Trace_set.signals run in
  if not (List.equal String.equal gs rs) then
    invalid_arg "Golden.compare_runs: trace sets cover different signals"

let compare_runs ?until_ms ~golden ~run () =
  check_signal_sets ~golden ~run;
  List.filter_map
    (fun signal ->
      match
        Trace.first_difference ?until_ms
          (Trace_set.trace golden signal)
          (Trace_set.trace run signal)
      with
      | None -> None
      | Some first_ms -> Some { signal; first_ms })
    (Trace_set.signals golden)

let diverged ?until_ms ~golden ~run signal =
  Trace.first_difference ?until_ms
    (Trace_set.trace golden signal)
    (Trace_set.trace run signal)

type tolerance = { epsilon : int; hold_ms : int }

let exact = { epsilon = 0; hold_ms = 0 }

let first_tolerant_difference ~until_ms tolerance golden run =
  let common = min (Trace.length golden) (Trace.length run) in
  let stop = min common until_ms in
  (* [streak] counts consecutive out-of-band samples ending just before
     position [j]. *)
  let rec go j streak =
    if j >= stop then
      if
        Trace.length golden <> Trace.length run
        && common < until_ms
      then Some common
      else None
    else if abs (Trace.get golden j - Trace.get run j) > tolerance.epsilon
    then
      let streak = streak + 1 in
      if streak > tolerance.hold_ms then Some (j - tolerance.hold_ms)
      else go (j + 1) streak
    else go (j + 1) 0
  in
  go 0 0

let compare_runs_tolerant ?(until_ms = max_int) ~tolerance_for ~golden ~run ()
    =
  check_signal_sets ~golden ~run;
  List.filter_map
    (fun signal ->
      match
        first_tolerant_difference ~until_ms (tolerance_for signal)
          (Trace_set.trace golden signal)
          (Trace_set.trace run signal)
      with
      | None -> None
      | Some first_ms -> Some { signal; first_ms })
    (Trace_set.signals golden)

let pp_divergence ppf d = Fmt.pf ppf "%s@%dms" d.signal d.first_ms
