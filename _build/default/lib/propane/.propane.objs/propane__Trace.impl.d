lib/propane/trace.ml: Array Fmt List Printf String
