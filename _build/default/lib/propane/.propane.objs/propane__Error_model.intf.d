lib/propane/error_model.mli: Format Simkernel
