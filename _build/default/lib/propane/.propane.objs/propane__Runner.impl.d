lib/propane/runner.ml: Array Atomic Campaign Domain Error_model Golden Injection Int64 List Logs Printf Results Simkernel Sut Testcase Trace_set
