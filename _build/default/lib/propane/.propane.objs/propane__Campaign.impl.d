lib/propane/campaign.ml: Error_model Fmt Injection List Simkernel String Testcase
