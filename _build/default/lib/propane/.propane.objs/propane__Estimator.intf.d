lib/propane/estimator.mli: Format Propagation Results
