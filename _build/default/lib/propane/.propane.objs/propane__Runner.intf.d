lib/propane/runner.mli: Campaign Injection Results Simkernel Sut Testcase Trace_set
