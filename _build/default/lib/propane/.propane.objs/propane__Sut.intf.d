lib/propane/sut.mli: Testcase
