lib/propane/storage.ml: Array Error_model Fun Golden In_channel Injection List Option Printf Propagation Result Results Simkernel String
