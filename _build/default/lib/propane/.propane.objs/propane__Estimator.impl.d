lib/propane/estimator.ml: Fmt Fun Injection List Printf Propagation Results Simkernel String
