lib/propane/campaign.mli: Error_model Format Injection Simkernel Testcase
