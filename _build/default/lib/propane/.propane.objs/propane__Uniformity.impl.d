lib/propane/uniformity.ml: Array Fmt Hashtbl Injection Int List Results Simkernel String
