lib/propane/uniformity.mli: Format Results
