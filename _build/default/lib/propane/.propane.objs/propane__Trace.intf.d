lib/propane/trace.mli: Format
