lib/propane/results.ml: Fmt Golden Injection List Map Option String
