lib/propane/testcase.ml: Fmt List Printf String
