lib/propane/severity.mli: Campaign Format Sut Trace_set
