lib/propane/injection.mli: Error_model Format Simkernel
