lib/propane/storage.mli: Error_model Propagation Results
