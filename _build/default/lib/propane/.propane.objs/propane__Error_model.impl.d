lib/propane/error_model.ml: Fmt Int List Printf Simkernel
