lib/propane/results.mli: Format Golden Injection
