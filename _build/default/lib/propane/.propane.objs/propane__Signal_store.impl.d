lib/propane/signal_store.ml: Hashtbl List Option Printf String
