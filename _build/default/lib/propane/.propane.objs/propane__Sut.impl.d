lib/propane/sut.ml: List Printf Testcase
