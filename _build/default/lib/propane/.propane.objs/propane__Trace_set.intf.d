lib/propane/trace_set.mli: Format Trace
