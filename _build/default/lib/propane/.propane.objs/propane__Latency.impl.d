lib/propane/latency.ml: Estimator Fmt Fun Injection Int List Propagation Results Simkernel
