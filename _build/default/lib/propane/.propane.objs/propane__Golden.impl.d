lib/propane/golden.ml: Fmt List String Trace Trace_set
