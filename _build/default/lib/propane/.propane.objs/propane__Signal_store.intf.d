lib/propane/signal_store.mli:
