lib/propane/golden.mli: Format Trace_set
