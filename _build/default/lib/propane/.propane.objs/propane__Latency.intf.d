lib/propane/latency.mli: Estimator Format Propagation Results
