lib/propane/severity.ml: Campaign Fmt Golden Hashtbl Injection List Runner Simkernel String Sut Testcase Trace_set
