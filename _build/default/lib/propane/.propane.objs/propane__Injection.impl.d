lib/propane/injection.ml: Error_model Fmt Printf Simkernel String
