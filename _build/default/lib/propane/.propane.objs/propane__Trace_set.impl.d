lib/propane/trace_set.ml: Array Fmt List Map Printf String Trace
