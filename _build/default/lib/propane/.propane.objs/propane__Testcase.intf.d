lib/propane/testcase.mli: Format
