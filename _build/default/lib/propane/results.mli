(** Raw campaign outcomes.

    One {!outcome} per injection run: which injection was performed
    under which test case, and the first divergence (against the test
    case's golden run) of every signal that diverged at all.  The
    estimator consumes this database; keeping first-divergence times
    rather than whole traces keeps paper-scale campaigns (52,000 runs)
    small in memory. *)

type outcome = {
  testcase : string;  (** test case id *)
  injection : Injection.t;
  divergences : Golden.divergence list;
      (** signals whose trace diverged from the golden run, with the
          millisecond of first divergence; signals that never diverged
          are absent *)
}

type t

val create : sut:string -> campaign:string -> t
val sut : t -> string
val campaign : t -> string

val add : t -> outcome -> unit
val count : t -> int
val outcomes : t -> outcome list
(** In insertion (i.e. deterministic campaign) order. *)

val by_target : t -> string -> outcome list
(** Outcomes whose injection targeted the given signal. *)

val injections_into : t -> string -> int
(** [List.length (by_target t s)], computed without building the list. *)

val divergence_of : outcome -> string -> int option
(** First divergence of a signal within one outcome. *)

val merge : t -> t -> t
(** Concatenates two result sets from the same SUT and campaign (for
    sharded runs).  @raise Invalid_argument on mismatched names. *)

val pp_summary : Format.formatter -> t -> unit
