type t = {
  target : string;
  at : Simkernel.Sim_time.t;
  error : Error_model.t;
}

let make ~target ~at ~error =
  if String.length target = 0 then invalid_arg "Injection.make: empty target";
  { target; at; error }

let describe t =
  Printf.sprintf "%s into %s at %d ms"
    (Error_model.describe t.error)
    t.target
    (Simkernel.Sim_time.to_ms t.at)

let pp ppf t = Fmt.string ppf (describe t)
