let src = Logs.Src.create "propane.runner" ~doc:"PROPANE campaign runner"

module Log = (val Logs.src_log src : Logs.LOG)

let default_max_ms = 20_000

let sample_into traces (instance : Sut.instance) =
  Trace_set.sample traces instance.Sut.read

let golden_run ?(max_ms = default_max_ms) (sut : Sut.t) testcase =
  let instance = sut.Sut.instantiate testcase in
  let traces = Trace_set.create ~signals:(Sut.signal_names sut) () in
  let rec go ms =
    if ms >= max_ms || instance.Sut.finished () then traces
    else begin
      instance.Sut.step ();
      sample_into traces instance;
      go (ms + 1)
    end
  in
  go 0

let injection_run ?rng ?truncate_after_ms (sut : Sut.t) ~duration_ms testcase
    injection =
  let target = injection.Injection.target in
  if not (Sut.has_signal sut target) then
    invalid_arg
      (Printf.sprintf "Runner.injection_run: %S has no signal %S" sut.Sut.name
         target);
  let rng =
    match rng with Some r -> r | None -> Simkernel.Rng.create 0x5EEDL
  in
  let width = Sut.signal_width sut target in
  let inject_at = Simkernel.Sim_time.to_ms injection.Injection.at in
  let duration_ms =
    match truncate_after_ms with
    | None -> duration_ms
    | Some extra -> min duration_ms (inject_at + extra + 1)
  in
  let instance = sut.Sut.instantiate testcase in
  let traces = Trace_set.create ~signals:(Sut.signal_names sut) () in
  for ms = 0 to duration_ms - 1 do
    if ms = inject_at then
      instance.Sut.inject target (fun v ->
          Error_model.apply injection.Injection.error ~width ~rng v);
    instance.Sut.step ();
    sample_into traces instance
  done;
  traces

let run_experiment ?rng ?truncate_after_ms sut ~golden testcase injection =
  let run =
    injection_run ?rng ?truncate_after_ms sut
      ~duration_ms:(Trace_set.duration_ms golden)
      testcase injection
  in
  let until_ms =
    (* A truncated run only vouches for the window it covers. *)
    match truncate_after_ms with
    | None -> None
    | Some _ -> Some (Trace_set.duration_ms run)
  in
  {
    Results.testcase = Testcase.id testcase;
    injection;
    divergences = Golden.compare_runs ?until_ms ~golden ~run ();
  }

type progress = { completed : int; total : int }

(* The per-run generator is derived from the seed and the experiment's
   position alone, so run order (and hence parallel scheduling) cannot
   change any outcome. *)
let rng_for seed index =
  Simkernel.Rng.create
    (Int64.add seed (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L))

let golden_runs ~max_ms sut campaign =
  List.map
    (fun tc ->
      Log.debug (fun m -> m "golden run for %s" (Testcase.id tc));
      (Testcase.id tc, golden_run ~max_ms sut tc))
    campaign.Campaign.testcases

let run_campaign ?(max_ms = default_max_ms) ?(seed = 42L) ?truncate_after_ms
    ?on_progress (sut : Sut.t) campaign =
  let goldens = golden_runs ~max_ms sut campaign in
  let golden_for tc = List.assoc (Testcase.id tc) goldens in
  let results =
    Results.create ~sut:sut.Sut.name ~campaign:campaign.Campaign.name
  in
  let experiments = Campaign.experiments campaign in
  let total = List.length experiments in
  Log.info (fun m ->
      m "campaign %s on %s: %d runs" campaign.Campaign.name sut.Sut.name total);
  List.iteri
    (fun idx (testcase, injection) ->
      let outcome =
        run_experiment ~rng:(rng_for seed idx) ?truncate_after_ms sut
          ~golden:(golden_for testcase) testcase injection
      in
      Results.add results outcome;
      match on_progress with
      | Some f -> f { completed = idx + 1; total }
      | None -> ())
    experiments;
  results

let run_campaign_parallel ?(max_ms = default_max_ms) ?(seed = 42L)
    ?truncate_after_ms ?domains (sut : Sut.t) campaign =
  let domains =
    match domains with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Runner.run_campaign_parallel: domains must be >= 1"
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let goldens = golden_runs ~max_ms sut campaign in
  let golden_for tc = List.assoc (Testcase.id tc) goldens in
  let experiments = Array.of_list (Campaign.experiments campaign) in
  let total = Array.length experiments in
  Log.info (fun m ->
      m "campaign %s on %s: %d runs across %d domains" campaign.Campaign.name
        sut.Sut.name total domains);
  let outcomes = Array.make total None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let idx = Atomic.fetch_and_add next 1 in
      if idx < total then begin
        let testcase, injection = experiments.(idx) in
        outcomes.(idx) <-
          Some
            (run_experiment ~rng:(rng_for seed idx) ?truncate_after_ms sut
               ~golden:(golden_for testcase) testcase injection);
        loop ()
      end
    in
    loop ()
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  let results =
    Results.create ~sut:sut.Sut.name ~campaign:campaign.Campaign.name
  in
  Array.iter
    (function
      | Some outcome -> Results.add results outcome
      | None -> assert false)
    outcomes;
  results
