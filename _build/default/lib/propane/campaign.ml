type t = {
  name : string;
  targets : string list;
  testcases : Testcase.t list;
  times : Simkernel.Sim_time.t list;
  errors : Error_model.t list;
}

let make ~name ~targets ~testcases ~times ~errors =
  if String.length name = 0 then invalid_arg "Campaign.make: empty name";
  if targets = [] then invalid_arg "Campaign.make: no targets";
  if testcases = [] then invalid_arg "Campaign.make: no test cases";
  if times = [] then invalid_arg "Campaign.make: no injection times";
  if errors = [] then invalid_arg "Campaign.make: no error instances";
  if
    List.length (List.sort_uniq String.compare targets)
    <> List.length targets
  then invalid_arg "Campaign.make: duplicate targets";
  { name; targets; testcases; times; errors }

let paper_times =
  List.init 10 (fun j ->
      Simkernel.Sim_time.of_ms (500 * (j + 1)))

let paper_plan ?(name = "paper-7.3") ~targets ~testcases ~width () =
  make ~name ~targets ~testcases ~times:paper_times
    ~errors:(Error_model.bit_flips ~width)

let runs_per_target t =
  List.length t.testcases * List.length t.times * List.length t.errors

let size t = List.length t.targets * runs_per_target t

let experiments t =
  List.concat_map
    (fun target ->
      List.concat_map
        (fun testcase ->
          List.concat_map
            (fun at ->
              List.map
                (fun error ->
                  (testcase, Injection.make ~target ~at ~error))
                t.errors)
            t.times)
        t.testcases)
    t.targets

let pp ppf t =
  Fmt.pf ppf
    "@[<v>campaign %s: %d targets x %d cases x %d times x %d errors = %d runs@]"
    t.name (List.length t.targets)
    (List.length t.testcases)
    (List.length t.times) (List.length t.errors) (size t)
