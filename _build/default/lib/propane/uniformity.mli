(** Uniform-propagation analysis (the paper's Section 2 rebuttal).

    [12] reported "evidence of uniform propagation of data errors": at
    a given program location, either (nearly) all injected data errors
    propagate to the system output or (nearly) none do.  The paper
    states "Our findings do not corroborate this assertion of uniform
    propagation."  This module reproduces that check on campaign data:
    a {e location} is an (injected signal, test case, injection time)
    triple; its propagation ratio is the fraction of its error
    instances (the 16 bit positions) whose error reached a system
    output.  Uniform propagation predicts a bimodal ratio distribution
    concentrated at 0 and 1. *)

type location = {
  target : string;
  testcase : string;
  at_ms : int;
  injections : int;
  propagated : int;  (** runs whose error reached a system output *)
}

val ratio : location -> float

val locations : outputs:string list -> Results.t -> location list
(** Groups the outcomes by location, in first-seen order. *)

type report = {
  locations : int;
  uniform_all : int;  (** ratio = 1: every error propagated *)
  uniform_none : int;  (** ratio = 0: no error propagated *)
  mixed : int;  (** strictly between — evidence against [12] *)
  histogram : int array;
      (** ratio distribution over 10 equal-width bins, [0, 0.1) ... *)
}

val analyse : outputs:string list -> Results.t -> report

val uniform_fraction : report -> float
(** [(uniform_all + uniform_none) / locations]; [12] predicts close to
    1, the paper's data (and ours) does not. *)

val pp_report : Format.formatter -> report -> unit
