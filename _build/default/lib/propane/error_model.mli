(** SWIFI error models.

    The paper's campaign injects single bit-flips (Section 7.3); the
    other models are the standard SWIFI repertoire, implemented because
    Section 6 flags error-model sensitivity ("the type of injected
    errors can also effect the estimates") and the benchmark suite runs
    an error-model ablation. *)

type t =
  | Bit_flip of int  (** toggle bit [b] (0 = LSB) of the current value *)
  | Stuck_at of int  (** replace the value with a constant *)
  | Offset of int  (** add a (possibly negative) delta, wrapping *)
  | Replace_uniform  (** replace with a uniform random value *)

val apply : t -> width:int -> rng:Simkernel.Rng.t -> int -> int
(** [apply e ~width ~rng v] is the corrupted value; the result is always
    truncated to [width] bits.  Only [Replace_uniform] consumes
    randomness.  @raise Invalid_argument if a [Bit_flip] position is
    outside [0, width) or [width] is outside [1, 30]. *)

val bit_flips : width:int -> t list
(** One [Bit_flip] per bit position, LSB first — the paper's "bit-flips
    in each bit position" of a 16-bit signal. *)

val equal : t -> t -> bool
val describe : t -> string
val pp : Format.formatter -> t -> unit
