(** Single-injection descriptors.

    The paper's campaigns inject exactly one error, in one signal, at
    one time instant per run ("For each injection run only one error was
    injected at one time, i.e., no multiple errors were injected",
    Section 7.3). *)

type t = {
  target : string;  (** signal to corrupt *)
  at : Simkernel.Sim_time.t;
      (** the error is applied at the start of this millisecond, before
          any module executes in it *)
  error : Error_model.t;
}

val make : target:string -> at:Simkernel.Sim_time.t -> error:Error_model.t -> t
(** @raise Invalid_argument on an empty target name. *)

val describe : t -> string
val pp : Format.formatter -> t -> unit
