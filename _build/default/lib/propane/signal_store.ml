module String_tbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type mode = At_read | Immediate

type cell = {
  width : int;
  mask : int;
  mode : mode;
  mutable value : int;
  mutable pending : (int -> int) option;
  mutable guards : (int -> int) list;  (* in application order *)
}

type t = { order : string list; cells : cell String_tbl.t }

let create ?(modes = []) ~signals () =
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name signals) then
        invalid_arg
          (Printf.sprintf "Signal_store.create: mode for unknown signal %S"
             name))
    modes;
  let cells = String_tbl.create (List.length signals * 2) in
  List.iter
    (fun (name, width) ->
      if String.length name = 0 then
        invalid_arg "Signal_store.create: empty signal name";
      if width < 1 || width > 30 then
        invalid_arg
          (Printf.sprintf "Signal_store.create: width %d outside [1,30]" width);
      if String_tbl.mem cells name then
        invalid_arg
          (Printf.sprintf "Signal_store.create: duplicate signal %S" name);
      let mode =
        Option.value ~default:At_read (List.assoc_opt name modes)
      in
      String_tbl.add cells name
        {
          width;
          mask = (1 lsl width) - 1;
          mode;
          value = 0;
          pending = None;
          guards = [];
        })
    signals;
  { order = List.map fst signals; cells }

let cell t name =
  match String_tbl.find_opt t.cells name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Signal_store: unknown signal %S" name)

let names t = t.order
let width t name = (cell t name).width
let mem t name = String_tbl.mem t.cells name
let mode t name = (cell t name).mode

let apply_guards c v = List.fold_left (fun v g -> g v) v c.guards

let read_cell c =
  (match c.pending with
  | Some corrupt ->
      c.pending <- None;
      (* A freshly corrupted value crosses the module boundary here, so
         wrapper guards get to inspect (and possibly repair) it just as
         they inspect produced values. *)
      c.value <- apply_guards c (corrupt c.value land c.mask) land c.mask
  | None -> ());
  c.value

let read t name = read_cell (cell t name)

let peek t name = (cell t name).value

let write_cell c v = c.value <- apply_guards c v land c.mask
let write t name v = write_cell (cell t name) v

let poke t name v =
  let c = cell t name in
  c.value <- v land c.mask

let inject t name corrupt =
  let c = cell t name in
  match c.mode with
  | At_read -> c.pending <- Some corrupt
  | Immediate -> c.value <- corrupt c.value land c.mask

let pending_injection t name = (cell t name).pending <> None

let clear_injections t =
  String_tbl.iter (fun _ c -> c.pending <- None) t.cells

let add_write_guard t name guard =
  let c = cell t name in
  c.guards <- c.guards @ [ guard ]

type handle = cell

let handle = cell
let read_handle = read_cell
let peek_handle c = c.value
let write_handle = write_cell
let poke_handle c v = c.value <- v land c.mask
