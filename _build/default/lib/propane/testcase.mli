(** Workload descriptors.

    Permeability estimates depend on the workload (Section 6: "it is
    generally preferred to have realistic input distributions"); a
    campaign therefore runs every injection under several test cases.  A
    test case is an id plus named numeric parameters — for the
    arrestment system, the mass and engagement velocity of the incoming
    aircraft. *)

type t = private { id : string; params : (string * float) list }

val make : id:string -> params:(string * float) list -> t
(** @raise Invalid_argument on an empty id or duplicate parameter
    names. *)

val id : t -> string
val param : t -> string -> float option
val param_exn : t -> string -> float
(** @raise Invalid_argument when the parameter is missing. *)

val grid : (string * float list) list -> t list
(** Cartesian product of parameter ranges, e.g.
    [grid ["mass", [8000.; 14000.; 20000.]; "velocity", [40.; 60.; 80.]]]
    yields 9 test cases with ids like ["mass=8000/velocity=40"].  The
    paper's study uses a 5 x 5 grid (Section 7.3).
    @raise Invalid_argument on an empty axis or duplicate axis names. *)

val uniform_axis : string -> lo:float -> hi:float -> steps:int -> string * float list
(** [steps] uniformly spaced values from [lo] to [hi] inclusive — the
    paper's "uniformly distributed between 8,000-20,000 kg".
    @raise Invalid_argument unless [steps >= 2] and [lo < hi]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
