type location = {
  target : string;
  testcase : string;
  at_ms : int;
  injections : int;
  propagated : int;
}

let ratio l =
  if l.injections = 0 then 0.0
  else float_of_int l.propagated /. float_of_int l.injections

module Key = struct
  type t = string * string * int

  let equal (a1, b1, c1) (a2, b2, c2) =
    String.equal a1 a2 && String.equal b1 b2 && Int.equal c1 c2

  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

let locations ~outputs results =
  let table = Tbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (o : Results.outcome) ->
      let key =
        ( o.injection.Injection.target,
          o.testcase,
          Simkernel.Sim_time.to_ms o.injection.Injection.at )
      in
      let reached =
        List.exists
          (fun out -> Results.divergence_of o out <> None)
          outputs
      in
      match Tbl.find_opt table key with
      | None ->
          Tbl.add table key
            (ref (1, if reached then 1 else 0));
          order := key :: !order
      | Some cell ->
          let n, p = !cell in
          cell := (n + 1, if reached then p + 1 else p))
    (Results.outcomes results);
  List.rev_map
    (fun ((target, testcase, at_ms) as key) ->
      let n, p = !(Tbl.find table key) in
      { target; testcase; at_ms; injections = n; propagated = p })
    !order

type report = {
  locations : int;
  uniform_all : int;
  uniform_none : int;
  mixed : int;
  histogram : int array;
}

let analyse ~outputs results =
  let locs = locations ~outputs results in
  let histogram = Array.make 10 0 in
  let all = ref 0 and none = ref 0 and mixed = ref 0 in
  List.iter
    (fun l ->
      let r = ratio l in
      let bin = min 9 (int_of_float (r *. 10.0)) in
      histogram.(bin) <- histogram.(bin) + 1;
      if l.propagated = 0 then incr none
      else if l.propagated = l.injections then incr all
      else incr mixed)
    locs;
  {
    locations = List.length locs;
    uniform_all = !all;
    uniform_none = !none;
    mixed = !mixed;
    histogram;
  }

let uniform_fraction r =
  if r.locations = 0 then 0.0
  else
    float_of_int (r.uniform_all + r.uniform_none) /. float_of_int r.locations

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>%d locations: %d all-propagate, %d none-propagate, %d mixed \
     (uniform fraction %.2f)@,ratio histogram: %a@]"
    r.locations r.uniform_all r.uniform_none r.mixed (uniform_fraction r)
    Fmt.(array ~sep:sp int)
    r.histogram
