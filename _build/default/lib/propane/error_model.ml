type t =
  | Bit_flip of int
  | Stuck_at of int
  | Offset of int
  | Replace_uniform

let apply t ~width ~rng v =
  if width < 1 || width > 30 then
    invalid_arg "Error_model.apply: width must be in [1, 30]";
  let mask = (1 lsl width) - 1 in
  let v = v land mask in
  match t with
  | Bit_flip b ->
      if b < 0 || b >= width then
        invalid_arg
          (Printf.sprintf "Error_model.apply: bit %d outside [0,%d)" b width)
      else v lxor (1 lsl b)
  | Stuck_at c -> c land mask
  | Offset d -> (v + d) land mask
  | Replace_uniform -> Simkernel.Rng.int rng (mask + 1)

let bit_flips ~width =
  if width < 1 || width > 30 then
    invalid_arg "Error_model.bit_flips: width must be in [1, 30]";
  List.init width (fun b -> Bit_flip b)

let equal a b =
  match (a, b) with
  | Bit_flip x, Bit_flip y -> Int.equal x y
  | Stuck_at x, Stuck_at y -> Int.equal x y
  | Offset x, Offset y -> Int.equal x y
  | Replace_uniform, Replace_uniform -> true
  | (Bit_flip _ | Stuck_at _ | Offset _ | Replace_uniform), _ -> false

let describe = function
  | Bit_flip b -> Printf.sprintf "bit-flip@%d" b
  | Stuck_at c -> Printf.sprintf "stuck-at %d" c
  | Offset d -> Printf.sprintf "offset %+d" d
  | Replace_uniform -> "replace-uniform"

let pp ppf t = Fmt.string ppf (describe t)
