type t = { id : string; params : (string * float) list }

let make ~id ~params =
  if String.length id = 0 then invalid_arg "Testcase.make: empty id";
  let names = List.map fst params in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Testcase.make: duplicate parameter names";
  { id; params }

let id t = t.id
let param t name = List.assoc_opt name t.params

let param_exn t name =
  match param t name with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Testcase.param_exn: test case %S has no parameter %S"
           t.id name)

let grid axes =
  if axes = [] then invalid_arg "Testcase.grid: no axes";
  let names = List.map fst axes in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Testcase.grid: duplicate axis names";
  List.iter
    (fun (name, values) ->
      if values = [] then
        invalid_arg (Printf.sprintf "Testcase.grid: empty axis %S" name))
    axes;
  let rec expand = function
    | [] -> [ [] ]
    | (name, values) :: rest ->
        let tails = expand rest in
        List.concat_map
          (fun v -> List.map (fun tail -> (name, v) :: tail) tails)
          values
  in
  List.map
    (fun params ->
      let id =
        String.concat "/"
          (List.map (fun (n, v) -> Printf.sprintf "%s=%g" n v) params)
      in
      make ~id ~params)
    (expand axes)

let uniform_axis name ~lo ~hi ~steps =
  if steps < 2 then invalid_arg "Testcase.uniform_axis: steps must be >= 2";
  if not (lo < hi) then invalid_arg "Testcase.uniform_axis: need lo < hi";
  let width = (hi -. lo) /. float_of_int (steps - 1) in
  (name, List.init steps (fun j -> lo +. (float_of_int j *. width)))

let equal a b = String.equal a.id b.id

let pp ppf t =
  let pp_param ppf (n, v) = Fmt.pf ppf "%s=%g" n v in
  Fmt.pf ppf "@[<h>%s {%a}@]" t.id Fmt.(list ~sep:comma pp_param) t.params
