(** Campaign execution: golden runs, injection runs, golden-run
    comparison (Sections 6 and 7.3).

    The runner steps a {!Sut.instance} millisecond by millisecond,
    sampling every observable signal after each step.  A golden run
    executes until the SUT reports completion (or [max_ms] as a safety
    net); each injection run executes for {e exactly} the duration of
    its test case's golden run, so traces compare sample by sample. *)

val default_max_ms : int
(** 20,000 simulated ms. *)

val golden_run : ?max_ms:int -> Sut.t -> Testcase.t -> Trace_set.t
(** Runs without injections and returns the reference traces. *)

val injection_run :
  ?rng:Simkernel.Rng.t ->
  ?truncate_after_ms:int ->
  Sut.t ->
  duration_ms:int ->
  Testcase.t ->
  Injection.t ->
  Trace_set.t
(** Runs for [duration_ms] with the single injection applied at its
    instant (registered as a one-shot trap corruption at the start of
    that millisecond).  [rng] feeds non-deterministic error models and
    defaults to a fixed seed.  An injection time beyond the duration
    leaves the run golden.

    [truncate_after_ms] stops the run that many milliseconds after the
    injection instant — a large speed-up for permeability estimation,
    which only inspects a direct window after the injection (see
    {!Estimator.attribution}); pick a truncation comfortably larger
    than the attribution window.  @raise Invalid_argument if the target
    signal is unknown to the SUT. *)

val run_experiment :
  ?rng:Simkernel.Rng.t ->
  ?truncate_after_ms:int ->
  Sut.t ->
  golden:Trace_set.t ->
  Testcase.t ->
  Injection.t ->
  Results.outcome
(** One injection run plus golden-run comparison.  With
    [truncate_after_ms] the comparison window is bounded by the
    truncated run's duration. *)

type progress = { completed : int; total : int }

val run_campaign :
  ?max_ms:int ->
  ?seed:int64 ->
  ?truncate_after_ms:int ->
  ?on_progress:(progress -> unit) ->
  Sut.t ->
  Campaign.t ->
  Results.t
(** Full campaign: one golden run per test case (computed once and
    shared), then every experiment of {!Campaign.experiments} in order.
    Deterministic for a fixed [seed] (default [42L]): each run's
    generator is derived from the seed and the experiment index, never
    from execution order.  [on_progress] is called after each completed
    run. *)

val run_campaign_parallel :
  ?max_ms:int ->
  ?seed:int64 ->
  ?truncate_after_ms:int ->
  ?domains:int ->
  Sut.t ->
  Campaign.t ->
  Results.t
(** Same results as {!run_campaign} — outcome for outcome, in the same
    order — computed on [domains] cores (default: the recommended
    domain count minus one, at least 1).  Golden runs execute up front
    in the calling domain and are shared read-only; every injection run
    gets a fresh SUT instance, so the SUT's [instantiate] must not rely
    on global mutable state.  @raise Invalid_argument if [domains < 1]. *)
