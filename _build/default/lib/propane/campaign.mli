(** Campaign plans.

    A campaign is the cartesian product {e targets x test cases x
    injection times x error instances}, each element being one
    injection run compared against the golden run of its test case.
    The paper's plan (Section 7.3) is, per target signal: 16 bit
    positions x 10 time instants (0.5 s to 5.0 s in half-second steps)
    x 25 test cases = 4,000 injections. *)

type t = private {
  name : string;
  targets : string list;  (** signals to inject into *)
  testcases : Testcase.t list;
  times : Simkernel.Sim_time.t list;
  errors : Error_model.t list;
}

val make :
  name:string ->
  targets:string list ->
  testcases:Testcase.t list ->
  times:Simkernel.Sim_time.t list ->
  errors:Error_model.t list ->
  t
(** @raise Invalid_argument if any dimension is empty or [targets]
    contains duplicates. *)

val paper_times : Simkernel.Sim_time.t list
(** The 10 instants of Section 7.3: 0.5 s, 1.0 s, ..., 5.0 s. *)

val paper_plan :
  ?name:string ->
  targets:string list ->
  testcases:Testcase.t list ->
  width:int ->
  unit ->
  t
(** Bit-flips in every bit position at {!paper_times}. *)

val size : t -> int
(** Total number of injection runs. *)

val runs_per_target : t -> int

val experiments : t -> (Testcase.t * Injection.t) list
(** The full expansion in deterministic order: targets, then test
    cases, then times, then errors. *)

val pp : Format.formatter -> t -> unit
