lib/propagation/monte_carlo.ml: Array Fmt Hashtbl Int64 List Perm_graph Perm_matrix Queue Signal Sw_module System_model
