lib/propagation/placement.ml: Backtrack_tree Fmt List Path Perm_graph Ranking Signal Sw_module System_model
