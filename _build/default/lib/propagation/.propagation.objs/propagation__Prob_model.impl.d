lib/propagation/prob_model.ml: Analysis Float Fmt List Option Path Printf Signal System_model
