lib/propagation/ranking.mli: Backtrack_tree Format Path Perm_graph Signal Trace_tree
