lib/propagation/monte_carlo.mli: Perm_graph Perm_matrix Signal
