lib/propagation/signal.ml: Fmt Hashtbl Map Set String
