lib/propagation/analysis.mli: Backtrack_tree Format Perm_graph Perm_matrix Placement Ranking Signal String_map System_model Trace_tree
