lib/propagation/perm_matrix.mli: Format
