lib/propagation/perm_graph.mli: Format Perm_matrix Set Signal String_map System_model
