lib/propagation/path.mli: Backtrack_tree Format Perm_graph Signal Trace_tree
