lib/propagation/system_model.ml: Fmt List Map Option Printf Result Signal String Sw_module
