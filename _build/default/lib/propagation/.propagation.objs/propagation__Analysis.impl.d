lib/propagation/analysis.ml: Backtrack_tree Fmt List Perm_graph Placement Ranking Signal System_model Trace_tree
