lib/propagation/perm_graph.ml: Fmt Int List Perm_matrix Printf Set Signal String String_map Sw_module System_model
