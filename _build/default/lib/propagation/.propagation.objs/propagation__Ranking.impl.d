lib/propagation/ranking.ml: Exposure Float Fmt List Path Perm_graph Perm_matrix Signal String Sw_module System_model
