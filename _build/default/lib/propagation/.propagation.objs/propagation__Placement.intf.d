lib/propagation/placement.mli: Format Perm_graph Ranking Signal
