lib/propagation/sensitivity.ml: Array Float Fmt Hashtbl Int64 List Perm_graph Perm_matrix Placement Ranking Signal String String_map
