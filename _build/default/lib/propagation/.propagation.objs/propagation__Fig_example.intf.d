lib/propagation/fig_example.mli: Analysis Perm_graph Perm_matrix Signal String_map System_model
