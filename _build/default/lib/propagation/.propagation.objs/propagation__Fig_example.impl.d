lib/propagation/fig_example.ml: Analysis Perm_graph Perm_matrix Signal String_map Sw_module System_model
