lib/propagation/signal.mli: Format Map Set
