lib/propagation/sw_module.ml: Array Fmt List Printf Signal String
