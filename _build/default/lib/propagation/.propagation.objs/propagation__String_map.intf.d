lib/propagation/string_map.mli: Map
