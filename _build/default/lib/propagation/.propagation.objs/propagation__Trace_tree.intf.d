lib/propagation/trace_tree.mli: Format Perm_graph Signal
