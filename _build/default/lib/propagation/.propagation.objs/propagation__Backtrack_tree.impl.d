lib/propagation/backtrack_tree.ml: Fmt List Perm_graph Perm_matrix Signal Sw_module System_model
