lib/propagation/trace_tree.ml: Fmt Fun List Perm_graph Perm_matrix Signal Sw_module System_model
