lib/propagation/compose.ml: Analysis Array Float List Path Perm_graph Perm_matrix Signal Sw_module System_model
