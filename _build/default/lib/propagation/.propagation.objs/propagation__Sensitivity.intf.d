lib/propagation/sensitivity.mli: Format Perm_matrix String_map System_model
