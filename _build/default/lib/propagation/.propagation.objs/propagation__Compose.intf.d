lib/propagation/compose.mli: Analysis Perm_matrix Sw_module
