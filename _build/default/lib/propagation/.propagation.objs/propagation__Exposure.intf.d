lib/propagation/exposure.mli: Backtrack_tree Perm_graph Signal
