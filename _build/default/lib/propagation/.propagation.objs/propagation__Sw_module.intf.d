lib/propagation/sw_module.mli: Format Signal
