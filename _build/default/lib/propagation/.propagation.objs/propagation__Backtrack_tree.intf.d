lib/propagation/backtrack_tree.mli: Format Perm_graph Signal
