lib/propagation/exposure.ml: Backtrack_tree List Perm_graph Perm_matrix Sw_module System_model
