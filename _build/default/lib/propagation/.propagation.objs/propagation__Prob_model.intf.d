lib/propagation/prob_model.mli: Analysis Format Path Signal System_model
