lib/propagation/system_model.mli: Format Signal Sw_module
