lib/propagation/string_map.ml: List Map String
