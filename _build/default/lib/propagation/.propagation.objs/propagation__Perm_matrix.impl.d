lib/propagation/perm_matrix.ml: Array Float Fmt Printf
