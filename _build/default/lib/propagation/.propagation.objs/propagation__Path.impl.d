lib/propagation/path.ml: Backtrack_tree Float Fmt Int List Perm_graph Signal String Trace_tree
