type kind = Data | Hardware_register | Clock

type t = { name : string; kind : kind }

let make ?(kind = Data) name =
  if String.length name = 0 then invalid_arg "Signal.make: empty name";
  { name; kind }

let name t = t.name
let kind t = t.kind
let equal a b = String.equal a.name b.name
let compare a b = String.compare a.name b.name
let hash t = Hashtbl.hash t.name

let pp_kind ppf = function
  | Data -> Fmt.string ppf "data"
  | Hardware_register -> Fmt.string ppf "hw-register"
  | Clock -> Fmt.string ppf "clock"

let pp ppf t = Fmt.string ppf t.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
