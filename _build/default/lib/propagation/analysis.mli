(** End-to-end propagation analysis.

    [run model matrices] performs the complete pipeline of Sections 4-5:
    build the permeability graph, grow the backtrack tree of every system
    output and the trace tree of every system input, tabulate the module
    and signal measures, enumerate and rank propagation paths, and derive
    placement recommendations.  This is the function a user of the
    library calls after estimating (or postulating) the permeability
    matrices. *)

type t = {
  graph : Perm_graph.t;
  backtrack_trees : (Signal.t * Backtrack_tree.t) list;
      (** one per system output, in declaration order *)
  trace_trees : (Signal.t * Trace_tree.t) list;
      (** one per system input, in declaration order *)
  module_rows : Ranking.module_row list;  (** Table 2 *)
  signal_rows : Ranking.signal_row list;  (** Table 3 *)
  output_paths : (Signal.t * Ranking.path_row list) list;
      (** Table 4: per system output, non-zero paths heaviest first *)
  input_paths : (Signal.t * Ranking.path_row list) list;
  placement : Placement.t;
}

val run :
  System_model.t -> Perm_matrix.t String_map.t -> (t, string) result
(** Fails with the message of {!Perm_graph.build} on inconsistent
    matrices. *)

val run_exn : System_model.t -> Perm_matrix.t String_map.t -> t
(** @raise Invalid_argument on the errors {!run} reports. *)

val pp_summary : Format.formatter -> t -> unit
(** Compact human-readable overview of every computed artifact. *)
