(** Maps keyed by module names (plain strings), shared across the
    propagation library — notably the "module name -> permeability
    matrix" assignment consumed by {!Perm_graph.build}. *)

include Map.S with type key = string

val of_list : (string * 'a) list -> 'a t
(** Later bindings win on duplicate keys. *)
