type t = {
  name : string;
  inputs : Signal.t array;
  outputs : Signal.t array;
}

let check_distinct what signals =
  let rec go seen = function
    | [] -> ()
    | s :: rest ->
        if Signal.Set.mem s seen then
          invalid_arg
            (Printf.sprintf "Sw_module.make: duplicate %s signal %S" what
               (Signal.name s))
        else go (Signal.Set.add s seen) rest
  in
  go Signal.Set.empty signals

let make ~name ~inputs ~outputs =
  if String.length name = 0 then invalid_arg "Sw_module.make: empty name";
  if inputs = [] then
    invalid_arg (Printf.sprintf "Sw_module.make: module %S has no inputs" name);
  if outputs = [] then
    invalid_arg
      (Printf.sprintf "Sw_module.make: module %S has no outputs" name);
  check_distinct "input" inputs;
  check_distinct "output" outputs;
  { name; inputs = Array.of_list inputs; outputs = Array.of_list outputs }

let name t = t.name
let input_count t = Array.length t.inputs
let output_count t = Array.length t.outputs
let pair_count t = input_count t * output_count t

let port_signal what ports idx =
  if idx < 1 || idx > Array.length ports then
    invalid_arg (Printf.sprintf "Sw_module.%s_signal: port %d out of range" what idx)
  else ports.(idx - 1)

let input_signal t i = port_signal "input" t.inputs i
let output_signal t k = port_signal "output" t.outputs k

let find_index signals s =
  let rec go i =
    if i >= Array.length signals then None
    else if Signal.equal signals.(i) s then Some (i + 1)
    else go (i + 1)
  in
  go 0

let input_index t s = find_index t.inputs s
let output_index t s = find_index t.outputs s
let input_signals t = Array.to_list t.inputs
let output_signals t = Array.to_list t.outputs

let feedback_signals t =
  List.filter (fun s -> input_index t s <> None) (output_signals t)

let has_feedback t = feedback_signals t <> []
let equal a b = String.equal a.name b.name

let pp ppf t =
  Fmt.pf ppf "@[<h>%s(%a -> %a)@]" t.name
    Fmt.(list ~sep:comma Signal.pp)
    (input_signals t)
    Fmt.(list ~sep:comma Signal.pp)
    (output_signals t)
