type module_row = {
  module_name : string;
  relative_permeability : float;
  non_weighted_permeability : float;
  exposure : float;
  non_weighted_exposure : float;
}

type signal_row = { signal : Signal.t; exposure : float }
type path_row = { rank : int; path : Path.t; weight : float }

type module_key =
  | By_relative_permeability
  | By_non_weighted_permeability
  | By_exposure
  | By_non_weighted_exposure

let module_rows graph =
  let model = Perm_graph.model graph in
  List.map
    (fun m ->
      let name = Sw_module.name m in
      let matrix = Perm_graph.matrix graph name in
      {
        module_name = name;
        relative_permeability = Perm_matrix.relative matrix;
        non_weighted_permeability = Perm_matrix.non_weighted matrix;
        exposure = Exposure.module_exposure graph name;
        non_weighted_exposure = Exposure.module_exposure_nw graph name;
      })
    (System_model.modules model)

let key_value key row =
  match key with
  | By_relative_permeability -> row.relative_permeability
  | By_non_weighted_permeability -> row.non_weighted_permeability
  | By_exposure -> row.exposure
  | By_non_weighted_exposure -> row.non_weighted_exposure

let sort_module_rows key rows =
  let cmp a b =
    match Float.compare (key_value key b) (key_value key a) with
    | 0 -> String.compare a.module_name b.module_name
    | c -> c
  in
  List.stable_sort cmp rows

let signal_rows graph =
  let model = Perm_graph.model graph in
  let rows =
    List.map
      (fun signal -> { signal; exposure = Exposure.signal_exposure graph signal })
      (System_model.internal_signals model)
  in
  let cmp a b =
    match Float.compare b.exposure a.exposure with
    | 0 -> Signal.compare a.signal b.signal
    | c -> c
  in
  List.stable_sort cmp rows

let rank_paths ?(include_zero = false) paths =
  let paths = if include_zero then paths else Path.non_zero paths in
  List.mapi
    (fun idx path -> { rank = idx + 1; path; weight = Path.weight path })
    (Path.sort_by_weight paths)

let path_rows ?include_zero tree =
  rank_paths ?include_zero (Path.of_backtrack_tree tree)

let trace_path_rows ?include_zero tree =
  rank_paths ?include_zero (Path.of_trace_tree tree)

let pp_module_row ppf r =
  Fmt.pf ppf "@[<h>%-10s P=%.3f Pnw=%.3f X=%.3f Xnw=%.3f@]" r.module_name
    r.relative_permeability r.non_weighted_permeability r.exposure
    r.non_weighted_exposure

let pp_signal_row ppf r =
  Fmt.pf ppf "@[<h>%-14s X=%.3f@]" (Signal.name r.signal) r.exposure

let pp_path_row ppf r =
  Fmt.pf ppf "@[<h>%2d. %a@]" r.rank Path.pp r.path
