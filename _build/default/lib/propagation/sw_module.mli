(** Software-module descriptors.

    Following the system model of Section 3, a module is a black box with
    [m] input ports and [n] output ports.  Each port is bound to exactly
    one signal.  Ports are numbered [1 .. m] (inputs) and [1 .. n]
    (outputs) as in the paper (e.g. [PACNT] is input #1 of [DIST_S]). *)

type t = private {
  name : string;
  inputs : Signal.t array;  (** [inputs.(i-1)] is the signal on input [i] *)
  outputs : Signal.t array;  (** [outputs.(k-1)] is the signal on output [k] *)
}

val make :
  name:string -> inputs:Signal.t list -> outputs:Signal.t list -> t
(** Builds a module descriptor.

    @raise Invalid_argument if the name is empty, if there are no inputs
    or no outputs, or if a signal appears twice among the inputs or twice
    among the outputs.  A signal {e may} appear both as an input and as an
    output: that is a module-local feedback (paper Section 4.2). *)

val name : t -> string
val input_count : t -> int
(** [m] *)

val output_count : t -> int
(** [n] *)

val pair_count : t -> int
(** [m * n], the number of permeability values *)

val input_signal : t -> int -> Signal.t
(** [input_signal t i] is the signal bound to input port [i] (1-based).
    @raise Invalid_argument if [i] is out of range. *)

val output_signal : t -> int -> Signal.t
(** 1-based, like {!input_signal}. *)

val input_index : t -> Signal.t -> int option
(** Port number of the input carrying the given signal, if any. *)

val output_index : t -> Signal.t -> int option

val input_signals : t -> Signal.t list
val output_signals : t -> Signal.t list

val feedback_signals : t -> Signal.t list
(** Signals that this module both produces and consumes (module-local
    feedback loops, e.g. signal [i] of module [CALC]). *)

val has_feedback : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
