type t = { model : System_model.t; probabilities : float Signal.Map.t }

let check_probability p =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Prob_model: probability %g not in [0,1]" p)

let uniform model ~probability =
  check_probability probability;
  let probabilities =
    List.fold_left
      (fun acc s -> Signal.Map.add s probability acc)
      Signal.Map.empty
      (System_model.system_inputs model)
  in
  { model; probabilities }

let of_list model bindings =
  let rec go acc = function
    | [] -> Ok { model; probabilities = acc }
    | (s, p) :: rest ->
        if not (System_model.is_system_input model s) then
          Error (Fmt.str "%a is not a system input" Signal.pp s)
        else if Signal.Map.mem s acc then
          Error (Fmt.str "duplicate probability for %a" Signal.pp s)
        else if Float.is_nan p || p < 0.0 || p > 1.0 then
          Error (Fmt.str "probability %g for %a not in [0,1]" p Signal.pp s)
        else go (Signal.Map.add s p acc) rest
  in
  go Signal.Map.empty bindings

let probability t s =
  Option.value ~default:0.0 (Signal.Map.find_opt s t.probabilities)

type weighted_path = { path : Path.t; adjusted : float }

let adjust_paths t paths =
  let adjust path =
    let pr =
      match path.Path.terminal with
      | Path.At_system_input -> probability t (Path.leaf_signal path)
      | Path.At_system_output | Path.At_feedback | Path.At_dead_end -> 0.0
    in
    { path; adjusted = pr *. Path.weight path }
  in
  List.map adjust paths

let sort_desc scored =
  List.stable_sort
    (fun (sa, a) (sb, b) ->
      match Float.compare b a with 0 -> Signal.compare sa sb | c -> c)
    scored

let output_arrival t (analysis : Analysis.t) =
  sort_desc
    (List.map
       (fun (output, tree) ->
         let total =
           List.fold_left
             (fun acc wp -> acc +. wp.adjusted)
             0.0
             (adjust_paths t (Path.of_backtrack_tree tree))
         in
         (output, total))
       analysis.Analysis.backtrack_trees)

let input_criticality t (analysis : Analysis.t) =
  sort_desc
    (List.map
       (fun (input, tree) ->
         let pr = probability t input in
         let total =
           List.fold_left
             (fun acc path ->
               match path.Path.terminal with
               | Path.At_system_output -> acc +. (pr *. Path.weight path)
               | Path.At_system_input | Path.At_feedback | Path.At_dead_end ->
                   acc)
             0.0
             (Path.of_trace_tree tree)
         in
         (input, total))
       analysis.Analysis.trace_trees)

let pp ppf t =
  let pp_binding ppf (s, p) = Fmt.pf ppf "Pr(%a)=%.3f" Signal.pp s p in
  Fmt.pf ppf "@[<h>%a@]"
    Fmt.(list ~sep:comma pp_binding)
    (Signal.Map.bindings t.probabilities)
