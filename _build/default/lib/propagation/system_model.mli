(** Static structure of a modular software system.

    A system is a set of {!Sw_module} descriptors inter-linked via
    signals (Section 3).  Every signal has at most one producer: either a
    module output port, or the environment (a {e system input}).  Signals
    consumed by the environment are {e system outputs}.

    The model is validated on construction; all analysis code can then
    rely on the wiring invariants. *)

type t

type error =
  | Duplicate_module of string
  | Multiple_producers of Signal.t
  | System_input_produced of Signal.t
      (** a system input is also produced by a module output *)
  | Unproduced_input of string * Signal.t
      (** module input bound to a signal with no producer that is not a
          system input *)
  | Unproduced_system_output of Signal.t
  | Unknown_system_output of Signal.t
      (** declared system output not bound to any module output *)
  | No_modules

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val make :
  modules:Sw_module.t list ->
  system_inputs:Signal.t list ->
  system_outputs:Signal.t list ->
  (t, error) result
(** Validates and builds a system model.  The checks are:

    - at least one module, no duplicate module names;
    - every signal is produced by at most one module output port;
    - a system input has no internal producer;
    - every consumed signal is either a system input or internally
      produced;
    - every system output is produced by some module output. *)

val make_exn :
  modules:Sw_module.t list ->
  system_inputs:Signal.t list ->
  system_outputs:Signal.t list ->
  t
(** Like {!make}.  @raise Invalid_argument on a validation error. *)

val modules : t -> Sw_module.t list
val system_inputs : t -> Signal.t list
val system_outputs : t -> Signal.t list

val find_module : t -> string -> Sw_module.t option
val find_module_exn : t -> string -> Sw_module.t

val producer : t -> Signal.t -> (Sw_module.t * int) option
(** The module output port producing a signal ([None] for system inputs
    and unknown signals).  The port is 1-based. *)

val consumers : t -> Signal.t -> (Sw_module.t * int) list
(** All module input ports consuming a signal, in declaration order. *)

val is_system_input : t -> Signal.t -> bool
val is_system_output : t -> Signal.t -> bool

val signals : t -> Signal.t list
(** All distinct signals mentioned by the system, sorted by name. *)

val internal_signals : t -> Signal.t list
(** Signals produced by a module (i.e. everything except system
    inputs), sorted by name. *)

val pair_count : t -> int
(** Total number of input/output pairs, i.e. of permeability values the
    analysis needs (25 for the paper's target system). *)

val reachable_from_inputs : t -> Signal.Set.t
(** Signals reachable from any system input by following modules from
    any input port to every output port.  Used by {!Placement} to spot
    "independent" signals (paper OB4: errors cannot reach [mscnt] from
    the system inputs, so it is a poor EDM location). *)

val pp : Format.formatter -> t -> unit
