(** Maps keyed by module names (plain strings), shared across the
    propagation library. *)

include Map.Make (String)

let of_list bindings =
  List.fold_left (fun acc (k, v) -> add k v acc) empty bindings
