(** Error-permeability matrices.

    For a module with [m] inputs and [n] outputs, the permeability matrix
    holds the [m * n] values {m P^M_(i,k) = Pr(error on output k | error
    on input i)} of Eq. (1).  All entries are probabilities in [0, 1].

    The two module-level measures of Section 4.1 are derived from the
    matrix: {!relative} is Eq. (2) and {!non_weighted} is Eq. (3). *)

type t

val create : inputs:int -> outputs:int -> t
(** All-zero matrix.  @raise Invalid_argument unless both dimensions are
    at least 1. *)

val of_rows : float array array -> t
(** [of_rows rows] builds a matrix where [rows.(i-1).(k-1)] is
    {m P_(i,k)}.  @raise Invalid_argument if the array is empty, ragged,
    or contains a value outside [0, 1] (NaN included). *)

val input_count : t -> int
val output_count : t -> int

val get : t -> input:int -> output:int -> float
(** 1-based ports.  @raise Invalid_argument when out of range. *)

val set : t -> input:int -> output:int -> float -> t
(** Functional update.  @raise Invalid_argument if the value is outside
    [0, 1] or the ports are out of range. *)

val relative : t -> float
(** Eq. (2): {m P^M = (1 / (m n)) * sum_i sum_k P_(i,k)}, in [0, 1]. *)

val non_weighted : t -> float
(** Eq. (3): {m Pbar^M = sum_i sum_k P_(i,k)}, in [0, m*n]. *)

val row : t -> input:int -> float array
(** Copy of the permeabilities from one input to every output. *)

val column : t -> output:int -> float array
(** Copy of the permeabilities from every input to one output. *)

val row_sum : t -> input:int -> float
val column_sum : t -> output:int -> float

val fold : (input:int -> output:int -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over all pairs in row-major order, ports 1-based. *)

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise comparison with tolerance [eps] (default [1e-12]). *)

val pp : Format.formatter -> t -> unit
