type exclusion_reason =
  | Hardware_register
  | Unreachable_from_inputs
  | Zero_exposure

type t = {
  edm_signals : Ranking.signal_row list;
  erm_modules : Ranking.module_row list;
  exposed_modules : Ranking.module_row list;
  barrier_modules : string list;
  cut_signals : Signal.t list;
  excluded : (Signal.t * exclusion_reason) list;
}

let truncate top xs =
  match top with
  | None -> xs
  | Some n -> List.filteri (fun i _ -> i < n) xs

(* Signals occurring in every non-zero root-to-leaf path of every
   system-output backtrack tree.  Cutting errors on such a signal (with a
   perfect ERM) shields the outputs (OB5). *)
let cut_signals graph =
  let trees = Backtrack_tree.build_all graph in
  let paths =
    List.concat_map
      (fun tree -> Path.non_zero (Path.of_backtrack_tree tree))
      trees
  in
  match paths with
  | [] -> []
  | first :: rest ->
      let model = Perm_graph.model graph in
      let signals_of p =
        List.fold_left
          (fun acc (s : Path.step) ->
            if System_model.is_system_input model s.signal then acc
            else Signal.Set.add s.signal acc)
          Signal.Set.empty p.Path.steps
      in
      let common =
        List.fold_left
          (fun acc p -> Signal.Set.inter acc (signals_of p))
          (signals_of first) rest
      in
      Signal.Set.elements common

let recommend ?top graph =
  let model = Perm_graph.model graph in
  let reachable = System_model.reachable_from_inputs model in
  let classify (row : Ranking.signal_row) =
    if Signal.kind row.signal = Signal.Hardware_register then
      Error (row.signal, Hardware_register)
    else if not (Signal.Set.mem row.signal reachable) then
      Error (row.signal, Unreachable_from_inputs)
    else if row.exposure <= 0.0 then Error (row.signal, Zero_exposure)
    else Ok row
  in
  let candidates, excluded =
    List.partition_map
      (fun row ->
        match classify row with
        | Ok row -> Left row
        | Error e -> Right e)
      (Ranking.signal_rows graph)
  in
  let module_rows = Ranking.module_rows graph in
  let erm_modules =
    Ranking.sort_module_rows Ranking.By_relative_permeability module_rows
  in
  let exposed_modules =
    Ranking.sort_module_rows Ranking.By_non_weighted_exposure module_rows
  in
  let barrier_modules =
    List.filter_map
      (fun m ->
        let reads_input =
          List.exists
            (fun s -> System_model.is_system_input model s)
            (Sw_module.input_signals m)
        in
        if reads_input then Some (Sw_module.name m) else None)
      (System_model.modules model)
  in
  {
    edm_signals = truncate top candidates;
    erm_modules = truncate top erm_modules;
    exposed_modules = truncate top exposed_modules;
    barrier_modules;
    cut_signals = cut_signals graph;
    excluded;
  }

let pp_exclusion_reason ppf = function
  | Hardware_register -> Fmt.string ppf "hardware register"
  | Unreachable_from_inputs -> Fmt.string ppf "unreachable from system inputs"
  | Zero_exposure -> Fmt.string ppf "zero exposure"

let pp ppf t =
  let pp_excluded ppf (s, r) =
    Fmt.pf ppf "%a (%a)" Signal.pp s pp_exclusion_reason r
  in
  Fmt.pf ppf
    "@[<v>EDM candidates:@,\
     %a@,\
     ERM candidates:@,\
     %a@,\
     most exposed modules:@,\
     %a@,\
     barrier modules: %a@,\
     cut signals: %a@,\
     excluded: %a@]"
    Fmt.(list ~sep:cut Ranking.pp_signal_row)
    t.edm_signals
    Fmt.(list ~sep:cut Ranking.pp_module_row)
    t.erm_modules
    Fmt.(list ~sep:cut Ranking.pp_module_row)
    t.exposed_modules
    Fmt.(list ~sep:comma string)
    t.barrier_modules
    Fmt.(list ~sep:comma Signal.pp)
    t.cut_signals
    Fmt.(list ~sep:comma pp_excluded)
    t.excluded
