module String_map = Map.Make (String)

type t = {
  modules : Sw_module.t list;
  system_inputs : Signal.t list;
  system_outputs : Signal.t list;
  producers : (Sw_module.t * int) Signal.Map.t;
  consumers : (Sw_module.t * int) list Signal.Map.t;
}

type error =
  | Duplicate_module of string
  | Multiple_producers of Signal.t
  | System_input_produced of Signal.t
  | Unproduced_input of string * Signal.t
  | Unproduced_system_output of Signal.t
  | Unknown_system_output of Signal.t
  | No_modules

let pp_error ppf = function
  | Duplicate_module name -> Fmt.pf ppf "duplicate module name %S" name
  | Multiple_producers s ->
      Fmt.pf ppf "signal %a is produced by more than one module output"
        Signal.pp s
  | System_input_produced s ->
      Fmt.pf ppf "system input %a is also produced by a module" Signal.pp s
  | Unproduced_input (m, s) ->
      Fmt.pf ppf
        "input %a of module %s has no producer and is not a system input"
        Signal.pp s m
  | Unproduced_system_output s ->
      Fmt.pf ppf "system output %a is not produced by any module" Signal.pp s
  | Unknown_system_output s ->
      Fmt.pf ppf "system output %a is not bound to any module output"
        Signal.pp s
  | No_modules -> Fmt.string ppf "a system needs at least one module"

let error_to_string e = Fmt.str "%a" pp_error e

let ( let* ) = Result.bind

let check_module_names modules =
  let rec go seen = function
    | [] -> Ok ()
    | m :: rest ->
        let name = Sw_module.name m in
        if String_map.mem name seen then Error (Duplicate_module name)
        else go (String_map.add name () seen) rest
  in
  go String_map.empty modules

let build_producers modules =
  List.fold_left
    (fun acc m ->
      let* acc = acc in
      let outputs = Sw_module.output_signals m in
      List.fold_left
        (fun acc (k, s) ->
          let* acc = acc in
          if Signal.Map.mem s acc then Error (Multiple_producers s)
          else Ok (Signal.Map.add s (m, k) acc))
        (Ok acc)
        (List.mapi (fun idx s -> (idx + 1, s)) outputs))
    (Ok Signal.Map.empty) modules

let build_consumers modules =
  List.fold_left
    (fun acc m ->
      List.fold_left
        (fun acc (i, s) ->
          let prev = Option.value ~default:[] (Signal.Map.find_opt s acc) in
          Signal.Map.add s (prev @ [ (m, i) ]) acc)
        acc
        (List.mapi (fun idx s -> (idx + 1, s)) (Sw_module.input_signals m)))
    Signal.Map.empty modules

let make ~modules ~system_inputs ~system_outputs =
  let* () = if modules = [] then Error No_modules else Ok () in
  let* () = check_module_names modules in
  let* producers = build_producers modules in
  let consumers = build_consumers modules in
  let input_set = Signal.Set.of_list system_inputs in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        if Signal.Map.mem s producers then Error (System_input_produced s)
        else Ok ())
      (Ok ()) system_inputs
  in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        List.fold_left
          (fun acc s ->
            let* () = acc in
            if Signal.Map.mem s producers || Signal.Set.mem s input_set then
              Ok ()
            else Error (Unproduced_input (Sw_module.name m, s)))
          (Ok ())
          (Sw_module.input_signals m))
      (Ok ()) modules
  in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        if Signal.Map.mem s producers then Ok ()
        else if Signal.Set.mem s input_set then
          Error (Unproduced_system_output s)
        else Error (Unknown_system_output s))
      (Ok ()) system_outputs
  in
  Ok { modules; system_inputs; system_outputs; producers; consumers }

let make_exn ~modules ~system_inputs ~system_outputs =
  match make ~modules ~system_inputs ~system_outputs with
  | Ok t -> t
  | Error e -> invalid_arg ("System_model.make_exn: " ^ error_to_string e)

let modules t = t.modules
let system_inputs t = t.system_inputs
let system_outputs t = t.system_outputs

let find_module t name =
  List.find_opt (fun m -> String.equal (Sw_module.name m) name) t.modules

let find_module_exn t name =
  match find_module t name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "System_model: unknown module %S" name)

let producer t s = Signal.Map.find_opt s t.producers
let consumers t s = Option.value ~default:[] (Signal.Map.find_opt s t.consumers)
let is_system_input t s = List.exists (Signal.equal s) t.system_inputs
let is_system_output t s = List.exists (Signal.equal s) t.system_outputs

let signals t =
  let add = List.fold_left (fun set s -> Signal.Set.add s set) in
  let set =
    List.fold_left
      (fun set m ->
        add (add set (Sw_module.input_signals m)) (Sw_module.output_signals m))
      Signal.Set.empty t.modules
  in
  Signal.Set.elements (add set t.system_inputs)

let internal_signals t =
  List.filter (fun s -> not (is_system_input t s)) (signals t)

let pair_count t =
  List.fold_left (fun acc m -> acc + Sw_module.pair_count m) 0 t.modules

let reachable_from_inputs t =
  (* Fixpoint: a module touched through any input lights all of its
     outputs; iterate until the reachable set is stable. *)
  let step reached =
    List.fold_left
      (fun acc m ->
        let touched =
          List.exists (fun s -> Signal.Set.mem s acc)
            (Sw_module.input_signals m)
        in
        if touched then
          List.fold_left
            (fun acc s -> Signal.Set.add s acc)
            acc
            (Sw_module.output_signals m)
        else acc)
      reached t.modules
  in
  let rec fix reached =
    let next = step reached in
    if Signal.Set.equal next reached then reached else fix next
  in
  fix (Signal.Set.of_list t.system_inputs)

let pp ppf t =
  Fmt.pf ppf "@[<v>system inputs: %a@,system outputs: %a@,%a@]"
    Fmt.(list ~sep:comma Signal.pp)
    t.system_inputs
    Fmt.(list ~sep:comma Signal.pp)
    t.system_outputs
    Fmt.(list ~sep:cut Sw_module.pp)
    t.modules
