(* Deterministic unit draw from (seed, trial, pair); SplitMix64
   finaliser over the structural hash. *)
let unit_draw ~seed ~trial (pair : Perm_graph.pair) =
  let h =
    Hashtbl.hash (seed, trial, pair.module_name, pair.input, pair.output)
  in
  let z = Int64.add (Int64.of_int h) 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

(* One trial: spread the corruption breadth-first; every signal is
   corrupted at most once. *)
let trial_reaches graph ~seed ~trial ~input ~output =
  let model = Perm_graph.model graph in
  let corrupted = ref (Signal.Set.singleton input) in
  let queue = Queue.create () in
  Queue.add input queue;
  let reached = ref false in
  while not (Queue.is_empty queue) do
    let signal = Queue.pop queue in
    if Signal.equal signal output then reached := true
    else
      List.iter
        (fun (m, i) ->
          let name = Sw_module.name m in
          let matrix = Perm_graph.matrix graph name in
          for k = 1 to Sw_module.output_count m do
            let out_signal = Sw_module.output_signal m k in
            if not (Signal.Set.mem out_signal !corrupted) then begin
              let pair = { Perm_graph.module_name = name; input = i; output = k } in
              let p = Perm_matrix.get matrix ~input:i ~output:k in
              if p > 0.0 && unit_draw ~seed ~trial pair < p then begin
                corrupted := Signal.Set.add out_signal !corrupted;
                Queue.add out_signal queue
              end
            end
          done)
        (System_model.consumers model signal)
  done;
  !reached

let arrival_probability ?(trials = 10_000) ~seed graph ~input ~output =
  if trials < 1 then invalid_arg "Monte_carlo: trials must be >= 1";
  let model = Perm_graph.model graph in
  if not (System_model.is_system_input model input) then
    invalid_arg
      (Fmt.str "Monte_carlo: %a is not a system input" Signal.pp input);
  if not (System_model.is_system_output model output) then
    invalid_arg
      (Fmt.str "Monte_carlo: %a is not a system output" Signal.pp output);
  let hits = ref 0 in
  for trial = 0 to trials - 1 do
    if trial_reaches graph ~seed ~trial ~input ~output then incr hits
  done;
  float_of_int !hits /. float_of_int trials

let arrival_matrix ?trials ~seed graph =
  let model = Perm_graph.model graph in
  Perm_matrix.of_rows
    (Array.of_list
       (List.map
          (fun input ->
            Array.of_list
              (List.map
                 (fun output ->
                   arrival_probability ?trials ~seed graph ~input ~output)
                 (System_model.system_outputs model)))
          (System_model.system_inputs model)))
