(** The five-module example system of the paper's Figs. 2-5.

    Modules A through E inter-linked by signals; external input enters
    at A, C and E, the system output leaves E, and module B has a
    module-local feedback loop (the paper's double-line case).  The
    exact wiring of Fig. 2 is not fully recoverable from our source, so
    this is a reconstruction with every feature the paper discusses:
    multi-consumer signals, a self-loop, three system inputs and one
    output.  Permeability values are fixed arbitrary constants so the
    example analyses are reproducible.

    Used by the quickstart example, the Fig. 3-5 benchmark target and
    the test suite. *)

val system : System_model.t
val matrices : Perm_matrix.t String_map.t
val graph : Perm_graph.t

val output : Signal.t
(** The system output signal (the paper's {m O^E_1}). *)

val inputs : Signal.t list
(** The three system inputs (at A, C and E). *)

val analysis : unit -> Analysis.t
(** Full pipeline over the example (rebuilt on each call). *)
