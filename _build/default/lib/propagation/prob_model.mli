(** Input error-occurrence models and adjusted propagation measures.

    Section 4.2: "If the probability of an error appearing on
    {m I^A_1} is {m Pr(A_1)}, then P can be adjusted with this factor,
    giving us {m P' = Pr(A_1) * P^A_(1,1) * P^B_(2,2) * P^E_(1,1)}".
    The permeability framework deliberately works without an occurrence
    model (Section 4: "the results are useful even with minimal
    knowledge of the distribution of the occurring errors"); when one
    {e is} available, this module folds it in. *)

type t
(** A map from system-input signals to per-run error-occurrence
    probabilities. *)

val uniform : System_model.t -> probability:float -> t
(** Every system input gets the same occurrence probability.
    @raise Invalid_argument if the probability is outside [0, 1]. *)

val of_list : System_model.t -> (Signal.t * float) list -> (t, string) result
(** Explicit probabilities.  Fails on signals that are not system
    inputs of the model, on duplicates, and on values outside [0, 1];
    inputs not listed get probability [0]. *)

val probability : t -> Signal.t -> float
(** [0.] for unknown signals. *)

type weighted_path = {
  path : Path.t;
  adjusted : float;  (** {m P' = Pr(leaf input) * path weight} *)
}

val adjust_paths : t -> Path.t list -> weighted_path list
(** Adjusts every backtrack path that terminates at a system input;
    paths ending elsewhere (feedback leaves) get the occurrence
    probability [0].  Order is preserved. *)

val output_arrival : t -> Analysis.t -> (Signal.t * float) list
(** For each system output, an upper bound on the probability that an
    input-born error arrives there: the sum of the adjusted weights of
    all its backtrack paths (a union bound — path events overlap, so
    this is a relative measure, like the paper's exposures).  Sorted
    descending. *)

val input_criticality : t -> Analysis.t -> (Signal.t * float) list
(** For each system input, the sum of adjusted weights of all paths
    from that input to any system output (computed on the trace trees):
    how much output-corruption "mass" an error source contributes.
    Sorted descending.  This quantifies OB4's reasoning for guarding
    [pulscnt]-like signals close to the inputs. *)

val pp : Format.formatter -> t -> unit
