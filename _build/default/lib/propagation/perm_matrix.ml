type t = { rows : float array array }

(* Invariant: [rows] is rectangular and non-empty, every entry is a
   probability.  All construction goes through [check_value]. *)

let check_value ~ctx v =
  if Float.is_nan v || v < 0.0 || v > 1.0 then
    invalid_arg (Printf.sprintf "Perm_matrix.%s: value %g not in [0,1]" ctx v)

let create ~inputs ~outputs =
  if inputs < 1 || outputs < 1 then
    invalid_arg "Perm_matrix.create: dimensions must be >= 1";
  { rows = Array.make_matrix inputs outputs 0.0 }

let of_rows rows =
  if Array.length rows = 0 then invalid_arg "Perm_matrix.of_rows: no rows";
  let cols = Array.length rows.(0) in
  if cols = 0 then invalid_arg "Perm_matrix.of_rows: no columns";
  Array.iter
    (fun r ->
      if Array.length r <> cols then
        invalid_arg "Perm_matrix.of_rows: ragged rows";
      Array.iter (check_value ~ctx:"of_rows") r)
    rows;
  { rows = Array.map Array.copy rows }

let input_count t = Array.length t.rows
let output_count t = Array.length t.rows.(0)

let check_ports t ~ctx ~input ~output =
  if input < 1 || input > input_count t then
    invalid_arg (Printf.sprintf "Perm_matrix.%s: input %d out of range" ctx input);
  if output < 1 || output > output_count t then
    invalid_arg
      (Printf.sprintf "Perm_matrix.%s: output %d out of range" ctx output)

let get t ~input ~output =
  check_ports t ~ctx:"get" ~input ~output;
  t.rows.(input - 1).(output - 1)

let set t ~input ~output v =
  check_ports t ~ctx:"set" ~input ~output;
  check_value ~ctx:"set" v;
  let rows = Array.map Array.copy t.rows in
  rows.(input - 1).(output - 1) <- v;
  { rows }

let fold f t acc =
  let acc = ref acc in
  Array.iteri
    (fun i r ->
      Array.iteri (fun k v -> acc := f ~input:(i + 1) ~output:(k + 1) v !acc) r)
    t.rows;
  !acc

let non_weighted t = fold (fun ~input:_ ~output:_ v acc -> acc +. v) t 0.0

let relative t =
  non_weighted t /. float_of_int (input_count t * output_count t)

let row t ~input =
  check_ports t ~ctx:"row" ~input ~output:1;
  Array.copy t.rows.(input - 1)

let column t ~output =
  check_ports t ~ctx:"column" ~input:1 ~output;
  Array.map (fun r -> r.(output - 1)) t.rows

let row_sum t ~input = Array.fold_left ( +. ) 0.0 (row t ~input)
let column_sum t ~output = Array.fold_left ( +. ) 0.0 (column t ~output)

let equal ?(eps = 1e-12) a b =
  input_count a = input_count b
  && output_count a = output_count b
  && fold
       (fun ~input ~output v ok ->
         ok && Float.abs (v -. get b ~input ~output) <= eps)
       a true

let pp ppf t =
  let pp_row ppf r =
    Fmt.pf ppf "@[<h>%a@]" Fmt.(array ~sep:sp (fmt "%.3f")) r
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(array ~sep:cut pp_row) t.rows
