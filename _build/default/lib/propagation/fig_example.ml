let ext_a = Signal.make "ext_a"
let ext_c = Signal.make "ext_c"
let ext_e = Signal.make "ext_e"
let a1 = Signal.make "a1"
let a2 = Signal.make "a2"
let b_fb = Signal.make "b_fb"
let b2 = Signal.make "b2"
let c1 = Signal.make "c1"
let c2 = Signal.make "c2"
let d1 = Signal.make "d1"
let e_out = Signal.make "e_out"

let module_a =
  Sw_module.make ~name:"A" ~inputs:[ ext_a ] ~outputs:[ a1; a2 ]

let module_b =
  Sw_module.make ~name:"B" ~inputs:[ a1; b_fb; c1 ] ~outputs:[ b_fb; b2 ]

let module_c =
  Sw_module.make ~name:"C" ~inputs:[ ext_c; a2 ] ~outputs:[ c1; c2 ]

let module_d = Sw_module.make ~name:"D" ~inputs:[ c2 ] ~outputs:[ d1 ]

let module_e =
  Sw_module.make ~name:"E" ~inputs:[ b2; ext_e; d1 ] ~outputs:[ e_out ]

let system =
  System_model.make_exn
    ~modules:[ module_a; module_b; module_c; module_d; module_e ]
    ~system_inputs:[ ext_a; ext_c; ext_e ]
    ~system_outputs:[ e_out ]

let matrices =
  String_map.of_list
    [
      ("A", Perm_matrix.of_rows [| [| 0.8; 0.3 |] |]);
      ( "B",
        Perm_matrix.of_rows
          [| [| 0.5; 0.7 |]; [| 0.9; 0.2 |]; [| 0.1; 0.4 |] |] );
      ("C", Perm_matrix.of_rows [| [| 0.6; 0.2 |]; [| 0.3; 0.5 |] |]);
      ("D", Perm_matrix.of_rows [| [| 0.75 |] |]);
      ("E", Perm_matrix.of_rows [| [| 0.9 |]; [| 0.25 |]; [| 0.65 |] |]);
    ]

let graph = Perm_graph.build_exn system matrices
let output = e_out
let inputs = [ ext_a; ext_c; ext_e ]
let analysis () = Analysis.run_exn system matrices
