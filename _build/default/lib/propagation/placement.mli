(** EDM/ERM location recommendations (Section 5 and observations
    OB1-OB6 of Section 8).

    The paper's rules of thumb, encoded:

    - signals with high signal error exposure are cost-effective EDM
      locations; modules with high error exposure likewise (OB1);
    - modules with high permeability are cost-effective ERM locations
      (they spread incoming errors onward, OB5);
    - signals lying on {e every} non-zero propagation path to a system
      output are cut points: recovering there shields the output (OB5);
    - modules that read system inputs form barriers against external
      errors (OB6) even when their own permeability is modest;
    - hardware-register signals and signals unreachable from the system
      inputs are poor locations (OB4: [TOC2], [mscnt]). *)

type exclusion_reason =
  | Hardware_register  (** errors here come from upstream anyway (OB4) *)
  | Unreachable_from_inputs
      (** no propagating error can arrive: independent signal (OB4) *)
  | Zero_exposure  (** never carries propagated errors in the model *)

type t = {
  edm_signals : Ranking.signal_row list;
      (** EDM candidates, best first (highest signal exposure) *)
  erm_modules : Ranking.module_row list;
      (** ERM candidates, best first (highest relative permeability) *)
  exposed_modules : Ranking.module_row list;
      (** modules ranked by non-weighted exposure (OB1 "system hubs") *)
  barrier_modules : string list;
      (** modules consuming at least one system input (OB6), in
          declaration order *)
  cut_signals : Signal.t list;
      (** internal signals present in every non-zero backtrack path of
          every system output (OB5), sorted by name *)
  excluded : (Signal.t * exclusion_reason) list;
      (** signals rejected as EDM locations, with the reason *)
}

val recommend : ?top:int -> Perm_graph.t -> t
(** Runs the full recommendation pipeline.  [top] truncates the ranked
    candidate lists (default: keep everything). *)

val pp_exclusion_reason : Format.formatter -> exclusion_reason -> unit
val pp : Format.formatter -> t -> unit
