type combinator = Noisy_or | Max_path

let combine combinator weights =
  match combinator with
  | Noisy_or ->
      1.0 -. List.fold_left (fun acc w -> acc *. (1.0 -. w)) 1.0 weights
  | Max_path -> List.fold_left Float.max 0.0 weights

let equivalent_matrix ?(combinator = Noisy_or) (analysis : Analysis.t) =
  let model = Perm_graph.model analysis.Analysis.graph in
  let inputs = System_model.system_inputs model in
  let outputs = System_model.system_outputs model in
  let paths_to_input output input =
    let tree = List.assoc output analysis.Analysis.backtrack_trees in
    List.filter_map
      (fun path ->
        match path.Path.terminal with
        | Path.At_system_input when Signal.equal (Path.leaf_signal path) input
          ->
            Some (Path.weight path)
        | Path.At_system_input | Path.At_system_output | Path.At_feedback
        | Path.At_dead_end ->
            None)
      (Path.of_backtrack_tree tree)
  in
  Perm_matrix.of_rows
    (Array.of_list
       (List.map
          (fun input ->
            Array.of_list
              (List.map
                 (fun output ->
                   combine combinator (paths_to_input output input))
                 outputs))
          inputs))

let as_module ?combinator ~name (analysis : Analysis.t) =
  let model = Perm_graph.model analysis.Analysis.graph in
  let descriptor =
    Sw_module.make ~name
      ~inputs:(System_model.system_inputs model)
      ~outputs:(System_model.system_outputs model)
  in
  (descriptor, equivalent_matrix ?combinator analysis)
