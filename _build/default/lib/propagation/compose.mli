(** Hierarchical composition of analysed systems.

    Section 3: "Of course, this system may be seen as a larger
    component or module in an even larger system."  This module
    collapses an analysed system into a single black-box
    {!Sw_module} whose inputs are the system inputs and whose outputs
    are the system outputs, with an {e equivalent} permeability matrix
    derived from the propagation paths, so the result can be wired into
    a coarser model and analysed again.

    The equivalent permeability of a pair (system input [i], system
    output [k]) combines the weights of all backtrack paths from [k]
    to [i].  Two combinators are provided:

    - {!Noisy_or}: {m 1 - prod (1 - w_p)} — treats the paths as
      independent propagation opportunities.  An optimistic upper
      estimate (paths overlap, so true dependence lowers it).
    - {!Max_path}: the single heaviest path — a lower estimate.

    Both are relative measures in the spirit of Eqs. (2)-(6); the
    bracket [Max_path, Noisy_or] they form is often tight because one
    dominant path carries most of the weight (cf. Table 4). *)

type combinator = Noisy_or | Max_path

val equivalent_matrix : ?combinator:combinator -> Analysis.t -> Perm_matrix.t
(** Rows in system-input declaration order, columns in system-output
    declaration order; [combinator] defaults to {!Noisy_or}. *)

val as_module :
  ?combinator:combinator ->
  name:string ->
  Analysis.t ->
  Sw_module.t * Perm_matrix.t
(** The collapsed black box: ready to drop into a larger
    {!System_model} together with its equivalent matrix. *)
