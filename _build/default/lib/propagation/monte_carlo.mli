(** Monte-Carlo propagation on the permeability graph.

    The tree-based path weights (Section 4.2) describe {e individual}
    paths; combining them into "does the error reach the output at all"
    requires handling overlapping paths.  This module estimates that
    union probability directly: each trial seeds an error on one system
    input and lets it spread through the graph, every input/output pair
    transmitting independently with its permeability — the natural
    probabilistic reading of Eq. (1).  A signal is corrupted at most
    once per trial, mirroring the single-unrolling of feedback loops in
    the trees.

    The estimate is bracketed by the {!Compose} combinators
    ({m max path <= MC <= noisy-or}, property-tested), usually close to
    the noisy-or bound because real systems rarely have many disjoint
    heavy paths.

    Sampling is deterministic: draws are hash-mixed from the seed, the
    trial index and the pair identity, so results reproduce exactly. *)

val arrival_probability :
  ?trials:int ->
  seed:int ->
  Perm_graph.t ->
  input:Signal.t ->
  output:Signal.t ->
  float
(** Estimated probability that an error on the system input reaches the
    system output, over [trials] (default 10,000) trials.
    @raise Invalid_argument if [input] is not a system input or
    [output] not a system output of the graph's model. *)

val arrival_matrix : ?trials:int -> seed:int -> Perm_graph.t -> Perm_matrix.t
(** All input/output estimates: rows in system-input declaration order,
    columns in system-output declaration order — directly comparable to
    {!Compose.equivalent_matrix}. *)
