(** Robustness of the relative orderings to estimation error.

    Section 6 argues that the framework tolerates unrealistic error
    models because its measures are "mainly used as relative measures
    ... assuming that the relative order of the modules and signals
    when analysing permeability is maintained".  This module tests that
    assumption: perturb every permeability value, re-run the analysis,
    and measure how much the module and signal rankings move.

    Perturbations are deterministic functions of the pair identity and
    a caller-supplied seed (a tiny hash-based generator), so studies
    reproduce without threading an RNG through the pure core. *)

type perturbation =
  | Relative_noise of float
      (** multiply each value by a factor drawn uniformly from
          [1-eps, 1+eps], clamping into [0, 1] *)
  | Absolute_noise of float
      (** add a value drawn uniformly from [-eps, +eps], clamping *)
  | Quantise of int
      (** round each value to the nearest of [n] levels in [0, 1] — a
          coarse-campaign model (e.g. [Quantise 4] is what a 4-run
          estimate could resolve) *)

val perturb_matrices :
  seed:int ->
  perturbation ->
  Perm_matrix.t String_map.t ->
  Perm_matrix.t String_map.t

val kendall_tau : string list -> string list -> float
(** Kendall rank correlation of two orderings of the same item set, in
    [[-1, 1]]; [1.] for identical orders.  @raise Invalid_argument if
    the lists are not permutations of each other or have fewer than two
    elements. *)

type report = {
  perturbation : perturbation;
  trials : int;
  module_tau_by_permeability : float;
      (** mean Kendall tau of the relative-permeability module ranking *)
  module_tau_by_exposure : float;
      (** mean tau of the non-weighted-exposure module ranking *)
  signal_tau : float;  (** mean tau of the signal-exposure ranking *)
  top_edm_stable : float;
      (** fraction of trials in which the top EDM signal is unchanged *)
}

val study :
  ?trials:int ->
  seed:int ->
  perturbation ->
  System_model.t ->
  Perm_matrix.t String_map.t ->
  report
(** Runs [trials] (default 32) perturbed analyses and aggregates the
    rank-stability statistics. *)

val pp_report : Format.formatter -> report -> unit
