type t = {
  graph : Perm_graph.t;
  backtrack_trees : (Signal.t * Backtrack_tree.t) list;
  trace_trees : (Signal.t * Trace_tree.t) list;
  module_rows : Ranking.module_row list;
  signal_rows : Ranking.signal_row list;
  output_paths : (Signal.t * Ranking.path_row list) list;
  input_paths : (Signal.t * Ranking.path_row list) list;
  placement : Placement.t;
}

let run model matrices =
  match Perm_graph.build model matrices with
  | Error _ as e -> e
  | Ok graph ->
      let backtrack_trees =
        List.map
          (fun s -> (s, Backtrack_tree.build graph s))
          (System_model.system_outputs model)
      in
      let trace_trees =
        List.map
          (fun s -> (s, Trace_tree.build graph s))
          (System_model.system_inputs model)
      in
      Ok
        {
          graph;
          backtrack_trees;
          trace_trees;
          module_rows = Ranking.module_rows graph;
          signal_rows = Ranking.signal_rows graph;
          output_paths =
            List.map
              (fun (s, tree) -> (s, Ranking.path_rows tree))
              backtrack_trees;
          input_paths =
            List.map
              (fun (s, tree) -> (s, Ranking.trace_path_rows tree))
              trace_trees;
          placement = Placement.recommend graph;
        }

let run_exn model matrices =
  match run model matrices with
  | Ok t -> t
  | Error msg -> invalid_arg ("Analysis.run_exn: " ^ msg)

let pp_summary ppf t =
  let pp_tree_stats what count ppf (s, _tree) =
    Fmt.pf ppf "%s tree for %a: %d paths" what Signal.pp s count
  in
  let pp_bt ppf ((s, tree) as e) =
    pp_tree_stats "backtrack" (Backtrack_tree.leaf_count tree) ppf e;
    ignore s
  in
  let pp_tt ppf ((s, tree) as e) =
    pp_tree_stats "trace" (Trace_tree.leaf_count tree) ppf e;
    ignore s
  in
  Fmt.pf ppf
    "@[<v>modules:@,%a@,signals:@,%a@,%a@,%a@,placement:@,%a@]"
    Fmt.(list ~sep:cut Ranking.pp_module_row)
    t.module_rows
    Fmt.(list ~sep:cut Ranking.pp_signal_row)
    t.signal_rows
    Fmt.(list ~sep:cut pp_bt)
    t.backtrack_trees
    Fmt.(list ~sep:cut pp_tt)
    t.trace_trees Placement.pp t.placement
