type perturbation =
  | Relative_noise of float
  | Absolute_noise of float
  | Quantise of int

(* Deterministic per-pair uniform draw in [0, 1): a 64-bit mix of the
   seed and the pair identity (SplitMix64 finaliser). *)
let unit_draw ~seed ~module_name ~input ~output =
  let h = Hashtbl.hash (seed, module_name, input, output) in
  let z = Int64.of_int h in
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let clamp01 v = Float.max 0.0 (Float.min 1.0 v)

let perturb_value perturbation draw v =
  match perturbation with
  | Relative_noise eps -> clamp01 (v *. (1.0 -. eps +. (2.0 *. eps *. draw)))
  | Absolute_noise eps -> clamp01 (v +. (eps *. ((2.0 *. draw) -. 1.0)))
  | Quantise levels ->
      if levels < 1 then invalid_arg "Sensitivity: Quantise needs >= 1 level"
      else
        let n = float_of_int levels in
        clamp01 (Float.round (v *. n) /. n)

let perturb_matrices ~seed perturbation matrices =
  String_map.mapi
    (fun module_name matrix ->
      Perm_matrix.fold
        (fun ~input ~output v acc ->
          let draw = unit_draw ~seed ~module_name ~input ~output in
          Perm_matrix.set acc ~input ~output
            (perturb_value perturbation draw v))
        matrix matrix)
    matrices

let kendall_tau order_a order_b =
  let n = List.length order_a in
  if n < 2 then invalid_arg "Sensitivity.kendall_tau: need >= 2 items";
  if
    not
      (List.equal String.equal
         (List.sort String.compare order_a)
         (List.sort String.compare order_b))
  then invalid_arg "Sensitivity.kendall_tau: orders cover different items";
  let rank order =
    List.mapi (fun idx name -> (name, idx)) order
    |> List.to_seq |> Hashtbl.of_seq
  in
  let rb = rank order_b in
  let positions = List.map (fun name -> Hashtbl.find rb name) order_a in
  let arr = Array.of_list positions in
  let concordant = ref 0 and discordant = ref 0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      if arr.(i) < arr.(j) then incr concordant else incr discordant
    done
  done;
  float_of_int (!concordant - !discordant)
  /. (float_of_int (n * (n - 1)) /. 2.0)

type report = {
  perturbation : perturbation;
  trials : int;
  module_tau_by_permeability : float;
  module_tau_by_exposure : float;
  signal_tau : float;
  top_edm_stable : float;
}

let module_order key graph =
  List.map
    (fun (r : Ranking.module_row) -> r.module_name)
    (Ranking.sort_module_rows key (Ranking.module_rows graph))

let signal_order graph =
  List.map
    (fun (r : Ranking.signal_row) -> Signal.name r.signal)
    (Ranking.signal_rows graph)

let top_edm graph =
  match (Placement.recommend graph).Placement.edm_signals with
  | [] -> None
  | top :: _ -> Some (Signal.name top.Ranking.signal)

let study ?(trials = 32) ~seed perturbation model matrices =
  if trials < 1 then invalid_arg "Sensitivity.study: trials must be >= 1";
  let reference = Perm_graph.build_exn model matrices in
  let ref_perm = module_order Ranking.By_relative_permeability reference in
  let ref_expo = module_order Ranking.By_non_weighted_exposure reference in
  let ref_signals = signal_order reference in
  let ref_top = top_edm reference in
  let totals = ref (0.0, 0.0, 0.0) and stable = ref 0 in
  for trial = 0 to trials - 1 do
    let perturbed =
      perturb_matrices ~seed:(seed + trial) perturbation matrices
    in
    let graph = Perm_graph.build_exn model perturbed in
    let tp, te, ts = !totals in
    totals :=
      ( tp
        +. kendall_tau ref_perm
             (module_order Ranking.By_relative_permeability graph),
        te
        +. kendall_tau ref_expo
             (module_order Ranking.By_non_weighted_exposure graph),
        ts +. kendall_tau ref_signals (signal_order graph) );
    if top_edm graph = ref_top then incr stable
  done;
  let tp, te, ts = !totals in
  let n = float_of_int trials in
  {
    perturbation;
    trials;
    module_tau_by_permeability = tp /. n;
    module_tau_by_exposure = te /. n;
    signal_tau = ts /. n;
    top_edm_stable = float_of_int !stable /. n;
  }

let pp_perturbation ppf = function
  | Relative_noise eps -> Fmt.pf ppf "relative noise +-%.0f%%" (eps *. 100.0)
  | Absolute_noise eps -> Fmt.pf ppf "absolute noise +-%.2f" eps
  | Quantise n -> Fmt.pf ppf "quantised to %d levels" n

let pp_report ppf r =
  Fmt.pf ppf
    "@[<h>%a (%d trials): module tau (P^M) %.3f, module tau (Xnw) %.3f, \
     signal tau %.3f, top EDM stable %.0f%%@]"
    pp_perturbation r.perturbation r.trials r.module_tau_by_permeability
    r.module_tau_by_exposure r.signal_tau
    (r.top_edm_stable *. 100.0)
