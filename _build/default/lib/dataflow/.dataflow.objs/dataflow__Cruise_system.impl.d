lib/dataflow/cruise_system.ml: Array Builder Float List Propagation Propane Simkernel
