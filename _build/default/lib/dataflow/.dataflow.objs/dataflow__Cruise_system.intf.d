lib/dataflow/cruise_system.mli: Builder Propagation Propane Simkernel
