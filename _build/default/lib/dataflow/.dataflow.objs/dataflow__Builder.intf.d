lib/dataflow/builder.mli: Propagation Propane
