lib/dataflow/builder.ml: Array Fmt List Printf Propagation Propane Result String
