lib/dataflow/fig2_system.mli: Builder Propagation Propane Simkernel
