lib/dataflow/fig2_system.ml: Array Builder List Propagation Propane Simkernel
