(** A second closed-loop target: an automotive cruise controller.

    The paper motivates its framework with "consumer-based
    cost-sensitive systems, such as cars" (Section 1) and lists
    workload/error-model studies on "varied embedded software based
    systems" as future work (Section 9).  This target exercises exactly
    that: a three-module speed controller (sensor conditioning, setpoint
    shaping, PI regulation) closed over a vehicle plant, built entirely
    with {!Builder} — including the hardware-register clobbering
    semantics for the plant-refreshed speed sensor.

    Signals (all 16 bit, speeds in cm/s, throttle 0-4095):
    - [speed_adc] (plant -> SPEED_S): raw wheel-speed reading;
    - [target_knob] (stimulus -> SETPOINT): driver demand, a step from
      20 m/s to 30 m/s at 1 s;
    - [speed_flt] (SPEED_S -> REG): low-pass-filtered speed;
    - [setpoint] (SETPOINT -> REG): rate-limited demand;
    - [throttle] (REG -> plant): actuator command. *)

val system : Builder.t
val sut : Propane.Sut.t

val campaign : ?times:Simkernel.Sim_time.t list -> unit -> Propane.Campaign.t
(** Bit-flips on every block-input signal, default instants spread over
    the 3 s run. *)

val measure :
  ?seed:int64 ->
  unit ->
  Propagation.Perm_matrix.t Propagation.String_map.t

val mission_failed :
  golden:Propane.Trace_set.t -> run:Propane.Trace_set.t -> bool
(** Cruise service judgement: the final speed is more than 2 m/s away
    from the golden run's final speed. *)
