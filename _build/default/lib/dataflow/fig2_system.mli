(** An executable twin of the five-module example system (Fig. 2).

    The static {!Propagation.Fig_example} postulates permeability
    values; this module implements the same topology as running code —
    integer dataflow blocks with deliberately varied masking behaviour
    (shifts, saturation, mixing) — so a real PROPANE campaign can
    measure its permeabilities.  The wiring (and hence the derived
    model) is identical to [Fig_example.system]. *)

val system : Builder.t
val sut : Propane.Sut.t

val campaign : ?times:Simkernel.Sim_time.t list -> unit -> Propane.Campaign.t
(** Bit-flips on every block-input signal under a single deterministic
    stimulus test case; default times are 100 ms apart through the
    run. *)

val measure :
  ?seed:int64 ->
  unit ->
  Propagation.Perm_matrix.t Propagation.String_map.t
(** Runs the campaign and estimates all five matrices.
    @raise Failure if estimation fails (cannot happen for the built-in
    campaign). *)
