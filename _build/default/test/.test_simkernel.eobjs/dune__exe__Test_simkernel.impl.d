test/test_simkernel.ml: Alcotest Int64 List QCheck2 QCheck_alcotest Register Rng Sim_time Simkernel Slot_scheduler
