test/test_propane.ml: Alcotest Array Arrestment Filename Fmt Fun List Propagation Propane QCheck2 QCheck_alcotest Simkernel String Sys
