test/test_arrestment.mli:
