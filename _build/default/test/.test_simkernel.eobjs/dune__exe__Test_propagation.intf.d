test/test_propagation.mli:
