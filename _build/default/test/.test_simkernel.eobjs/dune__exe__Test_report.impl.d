test/test_report.ml: Alcotest Arrestment Filename Fun In_channel List Propagation Propane Report String Sys
