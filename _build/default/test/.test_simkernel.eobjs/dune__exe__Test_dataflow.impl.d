test/test_dataflow.ml: Alcotest Array Dataflow Float Int List Printf Propagation Propane QCheck2 QCheck_alcotest Simkernel
