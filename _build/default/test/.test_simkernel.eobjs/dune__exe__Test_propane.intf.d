test/test_propane.mli:
