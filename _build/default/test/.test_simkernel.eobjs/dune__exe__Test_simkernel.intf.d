test/test_simkernel.mli:
