test/test_edm.ml: Alcotest Arrestment Edm List Propagation Propane Simkernel String
