The static analysis reproduces the paper's Table 2 aggregates exactly:

  $ ../../bin/propane_cli.exe analyze | sed -n '/Table 2/,/PRES_A/p'
  Table 2. Relative permeability and error exposure
  Module |   P^M | Pnw^M |   X^M | Xnw^M
  -------+-------+-------+-------+------
  CLOCK  | 0.500 | 1.000 | 0.500 | 1.000
  DIST_S | 0.079 | 0.715 | 0.000 | 0.000
  PRES_S | 0.000 | 0.000 | 0.000 | 0.000
  CALC   | 0.523 | 5.229 | 0.313 | 3.130
  V_REG  | 0.902 | 1.804 | 1.407 | 2.814
  PRES_A | 0.860 | 0.860 | 1.804 | 1.804

Placement recommendations carry the paper's OB4-OB6 structure:

  $ ../../bin/propane_cli.exe placement --budget 2 | head -6
  EDM locations:
  SetValue     signal error exposure 2.814: errors propagating through the system very likely pass here
  i            signal error exposure 2.415: errors propagating through the system very likely pass here
  ERM locations:
  SetValue     on every non-zero propagation path to the system outputs: recovery here shields the outputs (OB5)
  V_REG        relative permeability 0.902: incoming errors pass through to other modules

A golden run arrests the aircraft:

  $ ../../bin/propane_cli.exe golden --mass 14000 --velocity 60 | head -3
  arrestment of 14000 kg at 60 m/s: 10656 ms
    PACNT        final=2920
    TIC1         final=4760

The quickstart example runs end to end:

  $ ../../examples/quickstart.exe | tail -1
  path: command_reg -> clean_value -> raw_reading (w=0.315000)
