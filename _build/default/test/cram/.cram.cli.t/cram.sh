  $ ../../bin/propane_cli.exe analyze | sed -n '/Table 2/,/PRES_A/p'
  $ ../../bin/propane_cli.exe placement --budget 2 | head -6
  $ ../../bin/propane_cli.exe golden --mass 14000 --velocity 60 | head -3
  $ ../../examples/quickstart.exe | tail -1
