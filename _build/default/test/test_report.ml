(* Tests for the reporting library: table rendering, DOT output and the
   paper-table regeneration. *)

let check_raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.equal (String.sub haystack i nn) needle then true
    else go (i + 1)
  in
  go 0

let lines s = String.split_on_char '\n' s

(* ------------------------------------------------------------------ *)

let table_tests =
  [
    Alcotest.test_case "renders header, rule and rows" `Quick (fun () ->
        let t =
          Report.Table.make
            ~columns:[ ("Name", Report.Table.Left); ("V", Report.Table.Right) ]
            [ [ "a"; "1" ]; [ "bb"; "22" ] ]
        in
        match lines (Report.Table.render t) with
        | [ header; rule; row1; row2 ] ->
            Alcotest.(check bool) "header" true (contains header "Name");
            Alcotest.(check bool) "rule" true (contains rule "---");
            Alcotest.(check bool) "row1" true (contains row1 "a");
            Alcotest.(check bool) "row2" true (contains row2 "22")
        | other -> Alcotest.failf "unexpected shape (%d lines)" (List.length other));
    Alcotest.test_case "columns align to the widest cell" `Quick (fun () ->
        let t =
          Report.Table.make
            ~columns:[ ("C", Report.Table.Right) ]
            [ [ "1" ]; [ "12345" ] ]
        in
        let widths =
          List.map String.length (lines (Report.Table.render t))
        in
        Alcotest.(check bool)
          "uniform" true
          (List.for_all (fun w -> w = List.hd widths) widths));
    Alcotest.test_case "right alignment pads on the left" `Quick (fun () ->
        let t =
          Report.Table.make
            ~columns:[ ("Value", Report.Table.Right) ]
            [ [ "7" ] ]
        in
        match lines (Report.Table.render t) with
        | [ _; _; row ] -> Alcotest.(check string) "padded" "    7" row
        | _ -> Alcotest.fail "unexpected shape");
    Alcotest.test_case "title is the first line" `Quick (fun () ->
        let t =
          Report.Table.make ~title:"My table"
            ~columns:[ ("C", Report.Table.Left) ]
            [ [ "x" ] ]
        in
        Alcotest.(check string)
          "title" "My table"
          (List.hd (lines (Report.Table.render t))));
    check_raises_invalid "ragged rows rejected" (fun () ->
        Report.Table.make
          ~columns:[ ("A", Report.Table.Left); ("B", Report.Table.Left) ]
          [ [ "only one" ] ]);
    check_raises_invalid "no columns rejected" (fun () ->
        Report.Table.make ~columns:[] []);
    Alcotest.test_case "row_count" `Quick (fun () ->
        let t =
          Report.Table.make ~columns:[ ("C", Report.Table.Left) ]
            [ [ "a" ]; [ "b" ] ]
        in
        Alcotest.(check int) "rows" 2 (Report.Table.row_count t));
  ]

(* ------------------------------------------------------------------ *)

let paper_analysis () =
  Propagation.Analysis.run_exn Arrestment.Model.system
    (Arrestment.Model.paper_matrices ())

let dot_tests =
  [
    Alcotest.test_case "system model diagram covers modules and wiring"
      `Quick (fun () ->
        let dot = Report.Dot.of_system_model Arrestment.Model.system in
        List.iter
          (fun m -> Alcotest.(check bool) m true (contains dot m))
          Arrestment.Model.module_names;
        Alcotest.(check bool)
          "SetValue edge" true
          (contains dot "SetValue (out 2) (in 1)");
        Alcotest.(check bool) "system output" true (contains dot "ENV_OUT"));
    Alcotest.test_case "permeability graph mentions every module" `Quick
      (fun () ->
        let dot =
          Report.Dot.of_perm_graph (paper_analysis ()).Propagation.Analysis.graph
        in
        List.iter
          (fun m -> Alcotest.(check bool) m true (contains dot m))
          Arrestment.Model.module_names;
        Alcotest.(check bool) "digraph" true (contains dot "digraph"));
    Alcotest.test_case "zero arcs omitted by default, kept on demand" `Quick
      (fun () ->
        let graph = (paper_analysis ()).Propagation.Analysis.graph in
        let default = Report.Dot.of_perm_graph graph in
        let all = Report.Dot.of_perm_graph ~include_zero:true graph in
        (* P^PRES_S_{1,1} = 0 is only drawn with include_zero. *)
        Alcotest.(check bool) "omitted" false (contains default "P^PRES_S");
        Alcotest.(check bool) "kept" true (contains all "P^PRES_S"));
    Alcotest.test_case "backtrack tree renders every leaf" `Quick (fun () ->
        let analysis = paper_analysis () in
        let tree =
          List.assoc Arrestment.Signals.toc2
            analysis.Propagation.Analysis.backtrack_trees
        in
        let dot = Report.Dot.of_backtrack_tree tree in
        Alcotest.(check bool) "PACNT" true (contains dot "PACNT");
        Alcotest.(check bool) "ADC" true (contains dot "ADC");
        Alcotest.(check bool) "digraph" true (contains dot "digraph"));
    Alcotest.test_case "trace tree renders the output" `Quick (fun () ->
        let analysis = paper_analysis () in
        let tree =
          List.assoc Arrestment.Signals.pacnt
            analysis.Propagation.Analysis.trace_trees
        in
        let dot = Report.Dot.of_trace_tree tree in
        Alcotest.(check bool) "TOC2" true (contains dot "TOC2"));
  ]

(* ------------------------------------------------------------------ *)

let experiments_tests =
  [
    Alcotest.test_case "table1 has the 25 pairs" `Quick (fun () ->
        Alcotest.(check int)
          "rows" 25
          (Report.Table.row_count (Report.Experiments.table1 (paper_analysis ()))));
    Alcotest.test_case "table1 reference column is aligned" `Quick (fun () ->
        let rendered =
          Report.Table.render
            (Report.Experiments.table1
               ~reference:(Arrestment.Model.paper_matrices ())
               (paper_analysis ()))
        in
        Alcotest.(check bool) "has Paper column" true (contains rendered "Paper"));
    Alcotest.test_case "table2 has one row per module" `Quick (fun () ->
        Alcotest.(check int)
          "rows" 6
          (Report.Table.row_count (Report.Experiments.table2 (paper_analysis ()))));
    Alcotest.test_case "table3 lists internal signals, highest first" `Quick
      (fun () ->
        let t = Report.Experiments.table3 (paper_analysis ()) in
        Alcotest.(check int) "rows" 10 (Report.Table.row_count t);
        let rendered = Report.Table.render t in
        Alcotest.(check bool) "SetValue" true (contains rendered "SetValue"));
    Alcotest.test_case "table4 lists the 13 non-zero paths" `Quick (fun () ->
        Alcotest.(check int)
          "rows" 13
          (Report.Table.row_count
             (Report.Experiments.table4 (paper_analysis ())
                Arrestment.Signals.toc2)));
    check_raises_invalid "table4 rejects unknown outputs" (fun () ->
        Report.Experiments.table4 (paper_analysis ())
          (Propagation.Signal.make "nonsense"));
    Alcotest.test_case "input paths table covers PACNT" `Quick (fun () ->
        let t =
          Report.Experiments.input_paths_table (paper_analysis ())
            Arrestment.Signals.pacnt
        in
        Alcotest.(check bool) "rows" true (Report.Table.row_count t > 0));
    Alcotest.test_case "estimates table renders intervals" `Quick (fun () ->
        let estimates =
          [
            {
              Propane.Estimator.pair =
                { Propagation.Perm_graph.module_name = "M"; input = 1; output = 1 };
              injections = 100;
              errors = 50;
              value = 0.5;
              interval = (0.4, 0.6);
            };
          ]
        in
        let rendered =
          Report.Table.render (Report.Experiments.estimates_table estimates)
        in
        Alcotest.(check bool) "pair" true (contains rendered "P^M_{1,1}");
        Alcotest.(check bool) "interval" true (contains rendered "[0.400, 0.600]"));
  ]

(* ------------------------------------------------------------------ *)

let csv_tests =
  [
    Alcotest.test_case "plain fields pass through" `Quick (fun () ->
        Alcotest.(check string) "plain" "abc" (Report.Csv.escape "abc"));
    Alcotest.test_case "commas and quotes are quoted" `Quick (fun () ->
        Alcotest.(check string) "comma" "\"a,b\"" (Report.Csv.escape "a,b");
        Alcotest.(check string)
          "quote" "\"say \"\"hi\"\"\""
          (Report.Csv.escape "say \"hi\""));
    Alcotest.test_case "table converts with header" `Quick (fun () ->
        let t =
          Report.Table.make ~title:"ignored"
            ~columns:[ ("A", Report.Table.Left); ("B", Report.Table.Right) ]
            [ [ "x"; "1" ]; [ "y,z"; "2" ] ]
        in
        Alcotest.(check string)
          "csv" "A,B\nx,1\n\"y,z\",2\n"
          (Report.Csv.of_table t));
    Alcotest.test_case "trace set converts row per millisecond" `Quick
      (fun () ->
        let set = Propane.Trace_set.create ~signals:[ "a"; "b" ] () in
        Propane.Trace_set.sample set (function "a" -> 1 | _ -> 2);
        Propane.Trace_set.sample set (function "a" -> 3 | _ -> 4);
        Alcotest.(check string)
          "csv" "ms,a,b\n0,1,2\n1,3,4\n"
          (Report.Csv.of_trace_set set));
    Alcotest.test_case "write_file round-trips" `Quick (fun () ->
        let path = Filename.temp_file "propane_csv" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Report.Csv.write_file path "a,b\n1,2\n";
            let ic = open_in path in
            let contents =
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> In_channel.input_all ic)
            in
            Alcotest.(check string) "contents" "a,b\n1,2\n" contents));
  ]

let () =
  Alcotest.run "report"
    [
      ("table", table_tests);
      ("dot", dot_tests);
      ("experiments", experiments_tests);
      ("csv", csv_tests);
    ]
