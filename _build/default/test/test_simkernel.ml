(* Unit and property tests for the simulated-time kernel. *)

open Simkernel

let check_raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

(* ------------------------------------------------------------------ *)

let sim_time_tests =
  [
    Alcotest.test_case "zero is 0 ms" `Quick (fun () ->
        Alcotest.(check int) "ms" 0 (Sim_time.to_ms Sim_time.zero));
    Alcotest.test_case "of_ms/to_ms roundtrip" `Quick (fun () ->
        Alcotest.(check int) "ms" 1234 (Sim_time.to_ms (Sim_time.of_ms 1234)));
    check_raises_invalid "of_ms rejects negatives" (fun () ->
        Sim_time.of_ms (-1));
    Alcotest.test_case "add_ms accumulates" `Quick (fun () ->
        Alcotest.(check int) "ms" 700
          (Sim_time.to_ms (Sim_time.add_ms (Sim_time.of_ms 500) 200)));
    Alcotest.test_case "diff_ms is signed" `Quick (fun () ->
        Alcotest.(check int) "diff" (-300)
          (Sim_time.diff_ms (Sim_time.of_ms 200) (Sim_time.of_ms 500)));
    Alcotest.test_case "of_seconds rounds to nearest ms" `Quick (fun () ->
        Alcotest.(check int) "ms" 1500
          (Sim_time.to_ms (Sim_time.of_seconds 1.4999)));
    check_raises_invalid "of_seconds rejects negatives" (fun () ->
        Sim_time.of_seconds (-0.1));
    Alcotest.test_case "to_seconds inverse" `Quick (fun () ->
        Alcotest.(check (float 1e-9))
          "s" 2.5
          (Sim_time.to_seconds (Sim_time.of_ms 2500)));
    Alcotest.test_case "succ advances one ms" `Quick (fun () ->
        Alcotest.(check int) "ms" 1
          (Sim_time.to_ms (Sim_time.succ Sim_time.zero)));
    Alcotest.test_case "ordering operators" `Quick (fun () ->
        let a = Sim_time.of_ms 5 and b = Sim_time.of_ms 6 in
        Alcotest.(check bool) "lt" true Sim_time.(a < b);
        Alcotest.(check bool) "le" true Sim_time.(a <= a);
        Alcotest.(check bool) "ge" true Sim_time.(b >= a);
        Alcotest.(check bool) "equal" true (Sim_time.equal a a);
        Alcotest.(check int) "compare" (-1) (Sim_time.compare a b));
  ]

(* ------------------------------------------------------------------ *)

let register_tests =
  [
    Alcotest.test_case "defaults: 16 bits, init 0" `Quick (fun () ->
        let r = Register.create "r" in
        Alcotest.(check int) "width" 16 (Register.width r);
        Alcotest.(check int) "max" 65535 (Register.max_value r);
        Alcotest.(check int) "value" 0 (Register.read r));
    Alcotest.test_case "write truncates to width" `Quick (fun () ->
        let r = Register.create ~width:8 "r" in
        Register.write r 0x1FF;
        Alcotest.(check int) "value" 0xFF (Register.read r));
    Alcotest.test_case "negative writes wrap like hardware" `Quick (fun () ->
        let r = Register.create ~width:16 "r" in
        Register.write r (-1);
        Alcotest.(check int) "value" 0xFFFF (Register.read r));
    Alcotest.test_case "increment wraps at width" `Quick (fun () ->
        let r = Register.create ~width:4 ~init:15 "r" in
        Register.increment r;
        Alcotest.(check int) "value" 0 (Register.read r));
    Alcotest.test_case "increment by custom step" `Quick (fun () ->
        let r = Register.create "r" in
        Register.increment ~by:1000 r;
        Register.increment ~by:1000 r;
        Alcotest.(check int) "value" 2000 (Register.read r));
    Alcotest.test_case "flip_bit toggles and restores" `Quick (fun () ->
        let r = Register.create ~init:0b1010 "r" in
        Register.flip_bit r 0;
        Alcotest.(check int) "set" 0b1011 (Register.read r);
        Register.flip_bit r 0;
        Alcotest.(check int) "cleared" 0b1010 (Register.read r));
    check_raises_invalid "flip_bit out of range" (fun () ->
        Register.flip_bit (Register.create ~width:8 "r") 8);
    check_raises_invalid "width out of range" (fun () ->
        Register.create ~width:31 "r");
    check_raises_invalid "empty name" (fun () -> Register.create "");
    Alcotest.test_case "reset restores initial value" `Quick (fun () ->
        let r = Register.create ~init:42 "r" in
        Register.write r 7;
        Register.reset r;
        Alcotest.(check int) "value" 42 (Register.read r));
  ]

(* ------------------------------------------------------------------ *)

let rng_tests =
  [
    Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Rng.create 99L and b = Rng.create 99L in
        for _ = 1 to 100 do
          Alcotest.(check int64) "draw" (Rng.int64 a) (Rng.int64 b)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Rng.create 1L and b = Rng.create 2L in
        Alcotest.(check bool) "differ" true (Rng.int64 a <> Rng.int64 b));
    Alcotest.test_case "split streams are independent" `Quick (fun () ->
        let parent = Rng.create 7L in
        let child = Rng.split parent in
        let child_draws = List.init 10 (fun _ -> Rng.int64 child) in
        (* Re-deriving the same split gives the same child stream. *)
        let parent' = Rng.create 7L in
        let child' = Rng.split parent' in
        let child_draws' = List.init 10 (fun _ -> Rng.int64 child') in
        Alcotest.(check (list int64)) "stream" child_draws child_draws');
    check_raises_invalid "int rejects non-positive bound" (fun () ->
        Rng.int (Rng.create 0L) 0);
    check_raises_invalid "pick rejects empty list" (fun () ->
        Rng.pick (Rng.create 0L) []);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"int stays within bound" ~count:500
         QCheck2.Gen.(pair (int_range 1 10_000) int)
         (fun (bound, seed) ->
           let v = Rng.int (Rng.create (Int64.of_int seed)) bound in
           0 <= v && v < bound));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"float stays within bound" ~count:500
         QCheck2.Gen.(pair (float_range 0.001 1000.0) int)
         (fun (bound, seed) ->
           let v = Rng.float (Rng.create (Int64.of_int seed)) bound in
           0.0 <= v && v < bound));
    Alcotest.test_case "bool is not constant" `Quick (fun () ->
        let rng = Rng.create 5L in
        let draws = List.init 64 (fun _ -> Rng.bool rng) in
        Alcotest.(check bool) "has true" true (List.mem true draws);
        Alcotest.(check bool) "has false" true (List.mem false draws));
    Alcotest.test_case "pick draws members" `Quick (fun () ->
        let rng = Rng.create 5L in
        for _ = 1 to 50 do
          let v = Rng.pick rng [ 1; 2; 3 ] in
          Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
        done);
  ]

(* ------------------------------------------------------------------ *)

let scheduler_tests =
  let make ?(slots = 7) source =
    Slot_scheduler.create ~slots ~slot_source:source ()
  in
  [
    Alcotest.test_case "tasks run in their slot only" `Quick (fun () ->
        let slot = ref 0 in
        let sched = make (fun () -> !slot) in
        let hits = ref [] in
        Slot_scheduler.add_task sched ~slot:2 ~name:"t2" (fun () ->
            hits := 2 :: !hits);
        Slot_scheduler.add_task sched ~slot:5 ~name:"t5" (fun () ->
            hits := 5 :: !hits);
        for s = 0 to 6 do
          slot := s;
          Slot_scheduler.tick sched
        done;
        Alcotest.(check (list int)) "hits" [ 5; 2 ] !hits);
    Alcotest.test_case "add_every_slot runs every tick" `Quick (fun () ->
        let slot = ref 0 in
        let sched = make (fun () -> !slot) in
        let count = ref 0 in
        Slot_scheduler.add_every_slot sched ~name:"all" (fun () -> incr count);
        for s = 0 to 13 do
          slot := s mod 7;
          Slot_scheduler.tick sched
        done;
        Alcotest.(check int) "count" 14 !count);
    Alcotest.test_case "background runs after slot tasks" `Quick (fun () ->
        let sched = make (fun () -> 0) in
        let order = ref [] in
        Slot_scheduler.add_task sched ~slot:0 ~name:"slot" (fun () ->
            order := "slot" :: !order);
        Slot_scheduler.set_background sched ~name:"bg" (fun () ->
            order := "bg" :: !order);
        Slot_scheduler.tick sched;
        Alcotest.(check (list string)) "order" [ "bg"; "slot" ] !order);
    Alcotest.test_case "registration order within a slot" `Quick (fun () ->
        let sched = make (fun () -> 0) in
        let order = ref [] in
        Slot_scheduler.add_task sched ~slot:0 ~name:"a" (fun () ->
            order := "a" :: !order);
        Slot_scheduler.add_task sched ~slot:0 ~name:"b" (fun () ->
            order := "b" :: !order);
        Slot_scheduler.tick sched;
        Alcotest.(check (list string)) "order" [ "b"; "a" ] !order);
    Alcotest.test_case "corrupted slot numbers are reduced mod slots" `Quick
      (fun () ->
        let sched = make (fun () -> 23) in
        Slot_scheduler.tick sched;
        Alcotest.(check (option int)) "slot" (Some 2)
          (Slot_scheduler.last_slot sched));
    Alcotest.test_case "negative slot numbers are safe" `Quick (fun () ->
        let sched = make (fun () -> -1) in
        Slot_scheduler.tick sched;
        Alcotest.(check (option int)) "slot" (Some 6)
          (Slot_scheduler.last_slot sched));
    Alcotest.test_case "run performs n ticks" `Quick (fun () ->
        let sched = make (fun () -> 0) in
        Slot_scheduler.run sched ~ms:25;
        Alcotest.(check int) "ticks" 25 (Slot_scheduler.ticks sched));
    check_raises_invalid "run rejects negative duration" (fun () ->
        Slot_scheduler.run (make (fun () -> 0)) ~ms:(-1));
    check_raises_invalid "add_task rejects bad slot" (fun () ->
        Slot_scheduler.add_task (make (fun () -> 0)) ~slot:7 ~name:"x" ignore);
    check_raises_invalid "create rejects zero slots" (fun () ->
        Slot_scheduler.create ~slots:0 ~slot_source:(fun () -> 0) ());
    Alcotest.test_case "background replacement" `Quick (fun () ->
        let sched = make (fun () -> 0) in
        let hit = ref "" in
        Slot_scheduler.set_background sched ~name:"one" (fun () -> hit := "one");
        Slot_scheduler.set_background sched ~name:"two" (fun () -> hit := "two");
        Slot_scheduler.tick sched;
        Alcotest.(check string) "background" "two" !hit);
  ]

let () =
  Alcotest.run "simkernel"
    [
      ("sim_time", sim_time_tests);
      ("register", register_tests);
      ("rng", rng_tests);
      ("slot_scheduler", scheduler_tests);
    ]
