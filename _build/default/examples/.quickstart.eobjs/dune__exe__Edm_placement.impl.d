examples/edm_placement.ml: Arrestment Edm Format List Printf Propane Simkernel
