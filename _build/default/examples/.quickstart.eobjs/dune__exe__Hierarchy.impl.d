examples/hierarchy.ml: Analysis Arrestment Compose Format List Monte_carlo Perm_matrix Placement Prob_model Propagation Report Signal String_map Sw_module System_model
