examples/quickstart.ml: Analysis Backtrack_tree Exposure Format List Path Perm_graph Perm_matrix Propagation Signal String_map Sw_module System_model
