examples/hierarchy.mli:
