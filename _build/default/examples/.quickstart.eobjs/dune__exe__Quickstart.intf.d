examples/quickstart.mli:
