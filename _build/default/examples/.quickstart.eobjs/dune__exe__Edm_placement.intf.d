examples/edm_placement.mli:
