examples/arrestment_study.ml: Arrestment Edm Format List Propagation Propane Report Simkernel Sys
