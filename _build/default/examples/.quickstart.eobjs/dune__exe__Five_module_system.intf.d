examples/five_module_system.mli:
