examples/five_module_system.ml: Analysis Backtrack_tree Dataflow Fig_example Format List Path Perm_graph Propagation Report Signal Trace_tree
