examples/arrestment_study.mli:
