(* Hierarchical analysis: a system as a module in a larger system.

   Section 3 remarks that an analysed system "may be seen as a larger
   component or module in an even larger system".  This example:

   1. collapses the analysed arrestment controller into one black-box
      module with an equivalent 4x1 permeability matrix (two bounds:
      max-path and noisy-or, cross-validated by Monte-Carlo sampling);
   2. wires that black box into a two-node supervision layer
      (a SENSOR_BUS feeding it, a MONITOR consuming TOC2);
   3. analyses the composed system, showing how exposure and placement
      reasoning lift to the system-of-systems level.

   Run with: dune exec examples/hierarchy.exe *)

open Propagation

let () =
  (* 1. Analyse the inner system from the paper's permeability values
        and collapse it. *)
  let inner_analysis =
    Analysis.run_exn Arrestment.Model.system
      (Arrestment.Model.paper_matrices ())
  in
  let inner, inner_matrix =
    Compose.as_module ~name:"ARRESTMENT" inner_analysis
  in
  let lower =
    Compose.equivalent_matrix ~combinator:Compose.Max_path inner_analysis
  in
  let mc =
    Monte_carlo.arrival_matrix ~trials:20_000 ~seed:42
      inner_analysis.Analysis.graph
  in
  Format.printf
    "equivalent permeability of the collapsed controller (input -> TOC2):@.";
  List.iteri
    (fun idx input ->
      let i = idx + 1 in
      Format.printf "  %-6s max-path %.4f | monte-carlo %.4f | noisy-or %.4f@."
        (Signal.name input)
        (Perm_matrix.get lower ~input:i ~output:1)
        (Perm_matrix.get mc ~input:i ~output:1)
        (Perm_matrix.get inner_matrix ~input:i ~output:1))
    (System_model.system_inputs Arrestment.Model.system);
  print_newline ();

  (* 2. Wire it into a supervision layer. *)
  let raw_bus = Signal.make "raw_bus" in
  let alarm = Signal.make "alarm" in
  let sensor_bus =
    Sw_module.make ~name:"SENSOR_BUS" ~inputs:[ raw_bus ]
      ~outputs:
        [
          Arrestment.Signals.pacnt;
          Arrestment.Signals.tic1;
          Arrestment.Signals.tcnt;
          Arrestment.Signals.adc;
        ]
  in
  let monitor =
    Sw_module.make ~name:"MONITOR"
      ~inputs:[ Arrestment.Signals.toc2 ]
      ~outputs:[ alarm ]
  in
  let outer_model =
    System_model.make_exn
      ~modules:[ sensor_bus; inner; monitor ]
      ~system_inputs:[ raw_bus ] ~system_outputs:[ alarm ]
  in
  let outer_matrices =
    String_map.of_list
      [
        (* A shared bus passes most errors through to every channel. *)
        ( "SENSOR_BUS",
          Perm_matrix.of_rows [| [| 0.9; 0.9; 0.9; 0.7 |] |] );
        ("ARRESTMENT", inner_matrix);
        ("MONITOR", Perm_matrix.of_rows [| [| 0.95 |] |]);
      ]
  in
  let outer = Analysis.run_exn outer_model outer_matrices in

  (* 3. System-of-systems results. *)
  Report.Table.print (Report.Experiments.table2 outer);
  print_newline ();
  Report.Table.print (Report.Experiments.table4 outer alarm);
  print_newline ();
  Format.printf "placement at the outer level:@.%a@." Placement.pp
    outer.Analysis.placement;
  print_newline ();
  let prob_model = Prob_model.uniform outer_model ~probability:0.05 in
  Format.printf
    "with Pr(bus error) = 0.05, the alarm sees corrupt commands with \
     probability <= %.5f@."
    (match Prob_model.output_arrival prob_model outer with
    | (_, p) :: _ -> p
    | [] -> 0.0)
