(* Quickstart: analyse the error propagation of a small system you
   describe yourself.

   A sensor-filter-actuator chain: FILTER cleans the raw sensor reading,
   ACTUATOR turns the filtered value into a command.  We postulate
   permeability values (in a real project you would estimate them with a
   Propane campaign, see examples/arrestment_study.ml) and let the
   library derive every measure of the paper.

   Run with: dune exec examples/quickstart.exe *)

open Propagation

let () =
  (* 1. Describe the modules and their signal wiring. *)
  let raw = Signal.make "raw_reading" in
  let clean = Signal.make "clean_value" in
  let command = Signal.make ~kind:Signal.Hardware_register "command_reg" in
  let filter =
    Sw_module.make ~name:"FILTER" ~inputs:[ raw ] ~outputs:[ clean ]
  in
  let actuator =
    Sw_module.make ~name:"ACTUATOR" ~inputs:[ clean ] ~outputs:[ command ]
  in
  let system =
    System_model.make_exn
      ~modules:[ filter; actuator ]
      ~system_inputs:[ raw ] ~system_outputs:[ command ]
  in

  (* 2. Provide the error-permeability matrices (Eq. 1). *)
  let matrices =
    String_map.of_list
      [
        ("FILTER", Perm_matrix.of_rows [| [| 0.35 |] |]);
        ("ACTUATOR", Perm_matrix.of_rows [| [| 0.90 |] |]);
      ]
  in

  (* 3. Run the full analysis pipeline of Sections 4-5. *)
  let analysis = Analysis.run_exn system matrices in
  Format.printf "%a@.@." Analysis.pp_summary analysis;

  (* 4. Individual measures are also available directly. *)
  let graph = analysis.Analysis.graph in
  Format.printf "relative permeability of FILTER: %.3f@."
    (Perm_matrix.relative (Perm_graph.matrix graph "FILTER"));
  Format.printf "error exposure of ACTUATOR (Eq. 4): %.3f@."
    (Exposure.module_exposure graph "ACTUATOR");
  Format.printf "signal exposure of %a (Eq. 6): %.3f@." Signal.pp clean
    (Exposure.signal_exposure graph clean);

  (* 5. Propagation paths from the backtrack tree of the output. *)
  let tree = Backtrack_tree.build graph command in
  List.iter
    (fun path -> Format.printf "path: %a@." Path.pp path)
    (Path.sort_by_weight (Path.of_backtrack_tree tree))
