(* The five-module example system of the paper's Figs. 2-5.

   Prints the permeability graph, the backtrack tree of the system
   output (Fig. 4), the trace trees of all three system inputs (Fig. 5)
   and the ranked propagation paths, plus DOT renderings.

   Run with: dune exec examples/five_module_system.exe *)

open Propagation

let () =
  let analysis = Fig_example.analysis () in
  let graph = Fig_example.graph in

  Format.printf "== Permeability graph (Fig. 3) ==@.%a@.@." Perm_graph.pp graph;

  let backtrack = Backtrack_tree.build graph Fig_example.output in
  Format.printf "== Backtrack tree for %a (Fig. 4) ==@.%a@.@." Signal.pp
    Fig_example.output Backtrack_tree.pp backtrack;
  Format.printf "(%d root-to-leaf paths, depth %d)@.@."
    (Backtrack_tree.leaf_count backtrack)
    (Backtrack_tree.depth backtrack);

  List.iter
    (fun input ->
      let trace = Trace_tree.build graph input in
      Format.printf "== Trace tree for %a (Fig. 5) ==@.%a@.@." Signal.pp input
        Trace_tree.pp trace)
    Fig_example.inputs;

  Report.Table.print (Report.Experiments.table2 analysis);
  print_newline ();
  Report.Table.print (Report.Experiments.table3 analysis);
  print_newline ();
  Report.Table.print (Report.Experiments.table4 analysis Fig_example.output);
  print_newline ();

  (* Pr-adjusted path weights: assume errors appear on ext_a with
     probability 0.1 (the paper's P' = Pr x prod P). *)
  let paths = Path.sort_by_weight (Path.of_backtrack_tree backtrack) in
  let from_ext_a =
    List.filter
      (fun p -> Signal.equal (Path.leaf_signal p) (Signal.make "ext_a"))
      paths
  in
  Format.printf "paths ending at ext_a, adjusted with Pr(err) = 0.1:@.";
  List.iter
    (fun p ->
      Format.printf "  %a  P' = %.6f@." Path.pp p
        (Path.adjusted_weight ~input_error_probability:0.1 p))
    from_ext_a;

  print_newline ();
  print_endline "== DOT (render with graphviz) ==";
  print_endline (Report.Dot.of_backtrack_tree backtrack);

  (* The same topology also exists as running code (Dataflow.Fig2_system):
     measure its permeabilities with a real campaign and compare the
     resulting analysis against the postulated values above. *)
  print_endline "== Executable twin: measured permeabilities ==";
  let measured = Dataflow.Fig2_system.measure () in
  let measured_analysis =
    Analysis.run_exn (Dataflow.Builder.model Dataflow.Fig2_system.system)
      measured
  in
  Report.Table.print (Report.Experiments.table2 measured_analysis);
  print_newline ();
  Report.Table.print
    (Report.Experiments.table4 measured_analysis (Signal.make "e_out"))
