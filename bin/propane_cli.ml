(* propane — command-line front end for the PROPANE reproduction.

   Sub-commands:
     analyze    propagation analysis of the arrestment system using the
                paper's (reconstructed) permeability values
     campaign   run a fault-injection campaign and print the measured
                tables
     example    analyse the five-module example system of Figs. 2-5
     golden     execute one golden run and summarise it
     placement  print EDM/ERM placement proposals *)

open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let log_term =
  Term.(const setup_logs $ Logs_cli.level ())

(* ------------------------------------------------------------------ *)

let print_analysis_tables ?reference analysis =
  Report.Table.print (Report.Experiments.table1 ?reference analysis);
  print_newline ();
  Report.Table.print (Report.Experiments.table2 analysis);
  print_newline ();
  Report.Table.print (Report.Experiments.table3 analysis);
  print_newline ();
  List.iter
    (fun (output, _) ->
      Report.Table.print (Report.Experiments.table4 analysis output);
      print_newline ())
    analysis.Propagation.Analysis.output_paths

let dump_figures dir analysis =
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  write "permeability_graph.dot"
    (Report.Dot.of_perm_graph analysis.Propagation.Analysis.graph);
  List.iter
    (fun (output, tree) ->
      write
        (Printf.sprintf "backtrack_%s.dot" (Propagation.Signal.name output))
        (Report.Dot.of_backtrack_tree tree))
    analysis.Propagation.Analysis.backtrack_trees;
  List.iter
    (fun (input, tree) ->
      write
        (Printf.sprintf "trace_%s.dot" (Propagation.Signal.name input))
        (Report.Dot.of_trace_tree tree))
    analysis.Propagation.Analysis.trace_trees

let dot_dir =
  let doc = "Also write Graphviz .dot files for every graph and tree into $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"DIR" ~doc)

let analyze_cmd =
  let run () dot =
    let analysis =
      Propagation.Analysis.run_exn Arrestment.Model.system
        (Arrestment.Model.paper_matrices ())
    in
    print_analysis_tables analysis;
    Option.iter (fun dir -> dump_figures dir analysis) dot
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Propagation analysis of the arrestment system from the paper's \
          permeability values (Tables 1-4).")
    Term.(const run $ log_term $ dot_dir)

(* ------------------------------------------------------------------ *)

let seed_arg =
  let doc = "Campaign seed (campaigns are fully deterministic)." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let cases_arg =
  let doc = "Test cases per axis: $(docv) masses x $(docv) velocities (paper: 5)." in
  Arg.(value & opt int 3 & info [ "cases" ] ~docv:"N" ~doc)

let times_arg =
  let doc = "Number of injection instants, evenly spread in 0.5-5.0 s (paper: 10)." in
  Arg.(value & opt int 4 & info [ "times" ] ~docv:"N" ~doc)

let full_arg =
  let doc = "Run the paper-scale campaign (25 cases, 10 times, 52,000 runs)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let window_arg =
  let doc = "Direct-attribution window in ms (see Estimator)." in
  Arg.(value & opt int 64 & info [ "window" ] ~docv:"MS" ~doc)

let progress_arg =
  let doc = "Print progress every $(docv) runs (0 = silent)." in
  Arg.(value & opt int 0 & info [ "progress" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc = "Worker domains for the campaign (1 = run serially)." in
  Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc)

let journal_arg =
  let doc =
    "Stream every outcome to an append-only journal at $(docv) as it \
     completes, so an interrupted campaign can be resumed (see \
     Propane.Journal)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Replay the --journal file and continue the campaign, skipping runs it \
     already records.  Results are identical to an uninterrupted campaign \
     with the same seed."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let keep_traces_arg =
  let doc =
    "Record full per-run traces instead of streaming each run through the \
     observer pipeline (see Propane.Observer).  Results are identical; \
     streaming is faster and uses constant per-run memory, this flag \
     restores the legacy record-everything data path for debugging or \
     cost comparison."
  in
  Arg.(value & flag & info [ "keep-traces" ] ~doc)

let run_timeout_arg =
  let doc =
    "Wall-clock watchdog per injection run, in milliseconds: a run over \
     budget is recorded as a hung outcome instead of stalling the campaign \
     (0 = no watchdog)."
  in
  Arg.(value & opt int 0 & info [ "run-timeout-ms" ] ~docv:"MS" ~doc)

let retries_arg =
  let doc =
    "Re-execute a crashed or hung run up to $(docv) times, each attempt on \
     a fresh deterministic RNG stream, before its failure stands."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let fail_fast_arg =
  let doc =
    "Abort the campaign on the first run still crashed or hung after its \
     retry budget (the failed outcome is journalled before aborting).  \
     Without this flag failures are recorded as outcomes and the campaign \
     continues."
  in
  Arg.(value & flag & info [ "fail-fast" ] ~doc)

let chaos_crash_arg =
  let doc =
    "Chaos harness: make every injected run raise $(docv) simulated \
     milliseconds after its injection (exercises the failure handling; see \
     Propane.Fault)."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-crash-after" ] ~docv:"MS" ~doc)

let chaos_hang_arg =
  let doc =
    "Chaos harness: make every injected run hang (burn wall-clock on each \
     step) from $(docv) simulated milliseconds after its injection on."
  in
  Arg.(
    value & opt (some int) None & info [ "chaos-hang-after" ] ~docv:"MS" ~doc)

let telemetry_arg =
  let doc =
    "Write a machine-readable JSON campaign summary (throughput, ETA, \
     per-domain utilisation) to $(docv); '-' writes to stdout."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

let build_campaign ~cases ~times ~full () =
  let testcases =
    if full then Arrestment.System.paper_testcases
    else
      Propane.Testcase.grid
        [
          Propane.Testcase.uniform_axis "mass" ~lo:8_000.0 ~hi:20_000.0
            ~steps:(max 2 cases);
          Propane.Testcase.uniform_axis "velocity" ~lo:40.0 ~hi:80.0
            ~steps:(max 2 cases);
        ]
  in
  let times =
    if full then Propane.Campaign.paper_times
    else
      List.init (max 1 times) (fun j ->
          Simkernel.Sim_time.of_ms (500 + (j * 4500 / max 1 (times - 1))))
  in
  Propane.Campaign.make
    ~name:(if full then "paper-7.3" else "reduced-7.3")
    ~targets:Arrestment.Model.injection_targets ~testcases ~times
    ~errors:(Propane.Error_model.bit_flips ~width:Arrestment.Signals.width)

let write_telemetry path telemetry =
  let json =
    Propane.Telemetry.to_json (Propane.Telemetry.snapshot telemetry)
  in
  if String.equal path "-" then print_endline json
  else begin
    let oc = open_out path in
    output_string oc json;
    output_char oc '\n';
    close_out oc;
    Printf.printf "telemetry written to %s\n" path
  end

let run_measured_campaign ~cases ~times ~full ~seed ~window ~progress ~jobs
    ~journal ~resume ~telemetry ~keep_traces ~run_timeout_ms ~retries
    ~fail_fast ~chaos_crash ~chaos_hang () =
  if resume && journal = None then begin
    prerr_endline "propane campaign: --resume requires --journal";
    exit 1
  end;
  let campaign = build_campaign ~cases ~times ~full () in
  Format.printf "%a@." Propane.Campaign.pp campaign;
  let fault =
    match (chaos_crash, chaos_hang) with
    | None, None -> None
    | crash_after_ms, hang_after_ms ->
        Some (Propane.Fault.spec ?crash_after_ms ?hang_after_ms ())
  in
  let sut = Arrestment.System.sut ?fault () in
  let tele = Propane.Telemetry.create () in
  let on_event ev =
    Propane.Telemetry.observe tele ev;
    match ev with
    | Propane.Runner.Run_done { completed; total; _ }
      when progress > 0 && (completed mod progress = 0 || completed = total)
      ->
        Format.eprintf "\r%a%!" Propane.Telemetry.pp_live
          (Propane.Telemetry.snapshot tele);
        if completed = total then prerr_newline ()
    | _ -> ()
  in
  let run_timeout_ms =
    if run_timeout_ms <= 0 then None else Some run_timeout_ms
  in
  let results =
    try
      Propane.Runner.run ~seed ~truncate_after_ms:(window * 2) ?run_timeout_ms
        ~retries ~fail_fast ~jobs ?journal ~resume ~on_event ~keep_traces sut
        campaign
    with Propane.Runner.Failed_run { index; outcome } ->
      Option.iter (fun path -> write_telemetry path tele) telemetry;
      Format.eprintf "propane campaign: run %d %a; aborting (--fail-fast)@."
        index Propane.Results.pp_status outcome.Propane.Results.status;
      exit 1
  in
  Option.iter (fun path -> write_telemetry path tele) telemetry;
  if Propane.Results.failed_count results > 0 then
    Printf.printf "failed runs: %d crashed, %d hung\n"
      (Propane.Results.crashed_count results)
      (Propane.Results.hung_count results);
  let attribution = Propane.Estimator.Direct { window_ms = window } in
  match
    Propane.Estimator.estimate_all ~attribution ~model:Arrestment.Model.system
      results
  with
  | Error msg -> failwith msg
  | Ok matrices ->
      (results, Propagation.Analysis.run_exn Arrestment.Model.system matrices)

let save_arg =
  let doc = "Save the raw campaign results to $(docv) (see Propane.Storage)." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)

let campaign_cmd =
  let run () cases times full seed window progress jobs journal resume
      telemetry keep_traces run_timeout_ms retries fail_fast chaos_crash
      chaos_hang save =
    let results, analysis =
      run_measured_campaign ~cases ~times ~full ~seed ~window ~progress ~jobs
        ~journal ~resume ~telemetry ~keep_traces ~run_timeout_ms ~retries
        ~fail_fast ~chaos_crash ~chaos_hang ()
    in
    Option.iter
      (fun path ->
        match Propane.Storage.save_results path results with
        | Ok () -> Printf.printf "results saved to %s\n" path
        | Error msg ->
            prerr_endline msg;
            exit 1)
      save;
    print_analysis_tables ~reference:(Arrestment.Model.paper_matrices ())
      analysis
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a SWIFI campaign on the arrestment system and print the \
          measured Tables 1-4 (side by side with the paper's values).  \
          $(b,--jobs) parallelises over worker domains, $(b,--journal) \
          streams outcomes to disk as they complete, $(b,--resume) continues \
          an interrupted campaign from its journal, and $(b,--telemetry) \
          emits a JSON throughput summary; all combinations produce results \
          identical to a serial uninterrupted run with the same seed.  A \
          crashing or hanging SUT does not abort the campaign: failures \
          become recorded outcomes ($(b,--run-timeout-ms), $(b,--retries)) \
          unless $(b,--fail-fast) restores abort semantics.")
    Term.(
      const run $ log_term $ cases_arg $ times_arg $ full_arg $ seed_arg
      $ window_arg $ progress_arg $ jobs_arg $ journal_arg $ resume_arg
      $ telemetry_arg $ keep_traces_arg $ run_timeout_arg $ retries_arg
      $ fail_fast_arg $ chaos_crash_arg $ chaos_hang_arg $ save_arg)

(* ------------------------------------------------------------------ *)

let load_arg =
  let doc = "Results file produced by campaign --save." in
  Arg.(
    required
    & opt (some non_dir_file) None
    & info [ "load" ] ~docv:"FILE" ~doc)

let with_loaded_results load f =
  match Propane.Storage.load_results load with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok results -> f results

let estimate_cmd =
  let run () load window =
    with_loaded_results load (fun results ->
        let attribution = Propane.Estimator.Direct { window_ms = window } in
        match
          Propane.Estimator.estimate_all ~attribution
            ~model:Arrestment.Model.system results
        with
        | Error msg ->
            prerr_endline msg;
            exit 1
        | Ok matrices ->
            let analysis =
              Propagation.Analysis.run_exn Arrestment.Model.system matrices
            in
            print_analysis_tables
              ~reference:(Arrestment.Model.paper_matrices ())
              analysis)
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Re-analyse previously saved campaign results (Tables 1-4).")
    Term.(const run $ log_term $ load_arg $ window_arg)

let latency_cmd =
  let run () load window =
    with_loaded_results load (fun results ->
        let attribution = Propane.Estimator.Direct { window_ms = window } in
        List.iter
          (fun s -> Format.printf "%a@." Propane.Latency.pp_stats s)
          (Propane.Latency.all_stats ~attribution
             ~model:Arrestment.Model.system results))
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:"Propagation-latency statistics from saved campaign results.")
    Term.(const run $ log_term $ load_arg $ window_arg)

let uniformity_cmd =
  let run () load =
    with_loaded_results load (fun results ->
        Format.printf "%a@." Propane.Uniformity.pp_report
          (Propane.Uniformity.analyse ~outputs:[ "TOC2" ] results))
  in
  Cmd.v
    (Cmd.info "uniformity"
       ~doc:
         "Uniform-propagation analysis (paper Section 2 vs. [12]) from saved \
          campaign results.")
    Term.(const run $ log_term $ load_arg)

(* ------------------------------------------------------------------ *)

let example_cmd =
  let run () dot =
    let analysis = Propagation.Fig_example.analysis () in
    print_analysis_tables analysis;
    List.iter
      (fun (input, _) ->
        Report.Table.print (Report.Experiments.input_paths_table analysis input);
        print_newline ())
      analysis.Propagation.Analysis.input_paths;
    Option.iter (fun dir -> dump_figures dir analysis) dot
  in
  Cmd.v
    (Cmd.info "example"
       ~doc:"Analyse the five-module example system of the paper's Figs. 2-5.")
    Term.(const run $ log_term $ dot_dir)

(* ------------------------------------------------------------------ *)

let golden_cmd =
  let mass =
    Arg.(value & opt float 14_000.0 & info [ "mass" ] ~docv:"KG" ~doc:"Aircraft mass.")
  in
  let velocity =
    Arg.(
      value & opt float 60.0
      & info [ "velocity" ] ~docv:"M/S" ~doc:"Engagement velocity.")
  in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Dump all signal traces as CSV to stdout.")
  in
  let run () mass velocity csv =
    let sut = Arrestment.System.sut () in
    let tc = Arrestment.System.testcase ~mass_kg:mass ~velocity_mps:velocity in
    let traces = Propane.Runner.golden_run sut tc in
    let dur = Propane.Trace_set.duration_ms traces in
    if csv then begin
      let signals = Propane.Trace_set.signals traces in
      print_endline ("ms," ^ String.concat "," signals);
      for ms = 0 to dur - 1 do
        print_string (string_of_int ms);
        List.iter
          (fun s ->
            print_char ',';
            print_string
              (string_of_int (Propane.Trace.get (Propane.Trace_set.trace traces s) ms)))
          signals;
        print_newline ()
      done
    end
    else begin
      Printf.printf "arrestment of %.0f kg at %.0f m/s: %d ms\n" mass velocity
        dur;
      List.iter
        (fun s ->
          let trace = Propane.Trace_set.trace traces s in
          Printf.printf "  %-12s final=%d\n" s
            (Propane.Trace.get trace (dur - 1)))
        (Propane.Trace_set.signals traces)
    end
  in
  Cmd.v
    (Cmd.info "golden" ~doc:"Execute one golden run of the arrestment system.")
    Term.(const run $ log_term $ mass $ velocity $ csv)

(* ------------------------------------------------------------------ *)

let placement_cmd =
  let budget =
    Arg.(
      value & opt int 3
      & info [ "budget" ] ~docv:"N" ~doc:"Mechanisms of each kind to propose.")
  in
  let run () budget =
    let analysis =
      Propagation.Analysis.run_exn Arrestment.Model.system
        (Arrestment.Model.paper_matrices ())
    in
    let plan =
      Edm.Selector.propose ~edm_budget:budget ~erm_budget:budget
        analysis.Propagation.Analysis.placement
    in
    Format.printf "%a@." Edm.Selector.pp plan
  in
  Cmd.v
    (Cmd.info "placement"
       ~doc:"EDM/ERM placement proposals for the arrestment system (OB1-OB6).")
    Term.(const run $ log_term $ budget)

(* ------------------------------------------------------------------ *)

let main =
  Cmd.group
    (Cmd.info "propane" ~version:"1.0.0"
       ~doc:
         "Error-propagation analysis for modular software (reproduction of \
          Hiller, Jhumka & Suri, DSN 2001).")
    [
      analyze_cmd;
      campaign_cmd;
      estimate_cmd;
      latency_cmd;
      uniformity_cmd;
      example_cmd;
      golden_cmd;
      placement_cmd;
    ]

let () = exit (Cmd.eval main)
