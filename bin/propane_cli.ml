(* propane — command-line front end for the PROPANE reproduction.

   Sub-commands:
     analyze    propagation analysis of the arrestment system using the
                paper's (reconstructed) permeability values
     campaign   run a fault-injection campaign and print the measured
                tables
     example    analyse the five-module example system of Figs. 2-5
     golden     execute one golden run and summarise it
     placement  print EDM/ERM placement proposals *)

open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let log_term =
  Term.(const setup_logs $ Logs_cli.level ())

(* ------------------------------------------------------------------ *)

(* Inconsistent or mis-dimensioned matrices are a usage problem, not a
   crash: report them like cmdliner reports a bad flag (clean one-line
   message, exit 124) instead of letting Analysis.run_exn escape as an
   Invalid_argument backtrace. *)
let analysis_or_die model matrices =
  match Propagation.Analysis.run model matrices with
  | Ok analysis -> analysis
  | Error msg ->
      prerr_endline ("propane: inconsistent permeability matrices: " ^ msg);
      exit 124

let print_analysis_tables ?reference ?(ci = false) analysis =
  Report.Table.print (Report.Experiments.table1 ?reference ~ci analysis);
  print_newline ();
  Report.Table.print (Report.Experiments.table2 ~ci analysis);
  print_newline ();
  Report.Table.print (Report.Experiments.table3 ~ci analysis);
  print_newline ();
  List.iter
    (fun (output, _) ->
      Report.Table.print (Report.Experiments.table4 ~ci analysis output);
      print_newline ())
    analysis.Propagation.Analysis.output_paths

let ci_arg =
  let doc =
    "Add uncertainty columns to every table: per-pair n_err/n_inj counts and \
     95% confidence intervals (Table 1), interval bounds and rank \
     resolvedness (Tables 2-4).  Postulated values show zero-width \
     intervals."
  in
  Arg.(value & flag & info [ "ci" ] ~doc)

let dump_figures dir analysis =
  let write name contents =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  write "permeability_graph.dot"
    (Report.Dot.of_perm_graph analysis.Propagation.Analysis.graph);
  List.iter
    (fun (output, tree) ->
      write
        (Printf.sprintf "backtrack_%s.dot" (Propagation.Signal.name output))
        (Report.Dot.of_backtrack_tree tree))
    analysis.Propagation.Analysis.backtrack_trees;
  List.iter
    (fun (input, tree) ->
      write
        (Printf.sprintf "trace_%s.dot" (Propagation.Signal.name input))
        (Report.Dot.of_trace_tree tree))
    analysis.Propagation.Analysis.trace_trees

let dot_dir =
  let doc = "Also write Graphviz .dot files for every graph and tree into $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"DIR" ~doc)

(* analyze_cmd itself is defined after the campaign machinery: its
   --by-model mode runs real (reduced) campaigns, one per error-model
   roster, and needs the workload grid helpers below. *)

(* ------------------------------------------------------------------ *)

(* Validated integer converters: nonsense like --jobs 0 or --retries -1
   must die at the command line with a usage error, not surface later as
   an Invalid_argument from the engine. *)
let int_at_least lo what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= lo -> Ok n
    | Some n ->
        Error
          (`Msg (Printf.sprintf "%s must be at least %d, got %d" what lo n))
    | None ->
        Error (`Msg (Printf.sprintf "%s must be an integer, got %S" what s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let address_conv =
  let parse s =
    match Cluster.Address.of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"ADDR" (parse, Cluster.Address.pp)

let seed_arg =
  let doc = "Campaign seed (campaigns are fully deterministic)." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let cases_arg =
  let doc = "Test cases per axis: $(docv) masses x $(docv) velocities (paper: 5)." in
  Arg.(value & opt int 3 & info [ "cases" ] ~docv:"N" ~doc)

let times_arg =
  let doc = "Number of injection instants, evenly spread in 0.5-5.0 s (paper: 10)." in
  Arg.(value & opt int 4 & info [ "times" ] ~docv:"N" ~doc)

let full_arg =
  let doc = "Run the paper-scale campaign (25 cases, 10 times, 52,000 runs)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let window_arg =
  let doc = "Direct-attribution window in ms (see Estimator)." in
  Arg.(value & opt int 64 & info [ "window" ] ~docv:"MS" ~doc)

let progress_arg =
  let doc = "Print progress every $(docv) runs (0 = silent)." in
  Arg.(value & opt int 0 & info [ "progress" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc = "Worker domains for the campaign (1 = run serially)." in
  Arg.(value & opt (int_at_least 1 "--jobs") 1 & info [ "jobs" ] ~docv:"N" ~doc)

let workers_arg =
  let doc =
    "Spawn $(docv) local $(b,propane worker) processes and distribute the \
     campaign over them (0 = no worker processes).  Results and journal are \
     byte-identical to a serial run with the same seed."
  in
  Arg.(
    value
    & opt (int_at_least 0 "--workers") 0
    & info [ "workers" ] ~docv:"N" ~doc)

let listen_arg =
  let doc =
    "Accept $(b,propane worker) connections on $(docv) (unix:PATH or \
     tcp:HOST:PORT) instead of a private socket, so workers on other \
     machines can join the campaign.  Combines with $(b,--workers)."
  in
  Arg.(
    value & opt (some address_conv) None & info [ "listen" ] ~docv:"ADDR" ~doc)

let chaos_kill_arg =
  let doc =
    "Chaos harness: spawned workers exit (code 42) after sending $(docv) \
     results, forcing the coordinator down its reassignment and respawn \
     paths."
  in
  Arg.(
    value
    & opt (some (int_at_least 1 "--chaos-worker-kill-after")) None
    & info [ "chaos-worker-kill-after" ] ~docv:"N" ~doc)

let model_conv =
  let parse s =
    match
      Propane.Error_model.roster_of_string ~width:Arrestment.Signals.width s
    with
    | Ok _ -> Ok s
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"SPEC" (parse, Format.pp_print_string)

let model_arg =
  let doc =
    "Error-model roster for the campaign: $(b,single-bit) (default — the \
     paper's one flip per bit position), $(b,multi-bit:K) (K-bit flips, \
     positions spread), $(b,burst:L) (L adjacent bits), $(b,stuck-at) \
     (stuck-at-0 and stuck-at-ones) or $(b,stuck-at:C), $(b,offset:D) (+D \
     and -D), $(b,noise:A) (uniform nonzero delta in [-A,A]), $(b,uniform) \
     (replace with a different uniform value), and the temporal wrappers \
     $(b,delayed:MS)[:SPEC] and $(b,intermittent:PERIOD:WINDOW)[:SPEC] \
     (defaulting to wrapping single-bit)."
  in
  Arg.(value & opt model_conv "single-bit" & info [ "model" ] ~docv:"SPEC" ~doc)

let journal_arg =
  let doc =
    "Stream every outcome to an append-only journal at $(docv) as it \
     completes, so an interrupted campaign can be resumed (see \
     Propane.Journal)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Replay the --journal file and continue the campaign, skipping runs it \
     already records.  Results are identical to an uninterrupted campaign \
     with the same seed."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let keep_traces_arg =
  let doc =
    "Record full per-run traces instead of streaming each run through the \
     observer pipeline (see Propane.Observer).  Results are identical; \
     streaming is faster and uses constant per-run memory, this flag \
     restores the legacy record-everything data path for debugging or \
     cost comparison."
  in
  Arg.(value & flag & info [ "keep-traces" ] ~doc)

let run_timeout_arg =
  let doc =
    "Wall-clock watchdog per injection run, in milliseconds: a run over \
     budget is recorded as a hung outcome instead of stalling the campaign \
     (0 = no watchdog)."
  in
  Arg.(
    value
    & opt (int_at_least 0 "--run-timeout-ms") 0
    & info [ "run-timeout-ms" ] ~docv:"MS" ~doc)

let retries_arg =
  let doc =
    "Re-execute a crashed or hung run up to $(docv) times, each attempt on \
     a fresh deterministic RNG stream, before its failure stands."
  in
  Arg.(
    value
    & opt (int_at_least 0 "--retries") 0
    & info [ "retries" ] ~docv:"N" ~doc)

let fail_fast_arg =
  let doc =
    "Abort the campaign on the first run still crashed or hung after its \
     retry budget (the failed outcome is journalled before aborting).  \
     Without this flag failures are recorded as outcomes and the campaign \
     continues."
  in
  Arg.(value & flag & info [ "fail-fast" ] ~doc)

let chaos_crash_arg =
  let doc =
    "Chaos harness: make every injected run raise $(docv) simulated \
     milliseconds after its injection (exercises the failure handling; see \
     Propane.Fault)."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-crash-after" ] ~docv:"MS" ~doc)

let chaos_hang_arg =
  let doc =
    "Chaos harness: make every injected run hang (burn wall-clock on each \
     step) from $(docv) simulated milliseconds after its injection on."
  in
  Arg.(
    value & opt (some int) None & info [ "chaos-hang-after" ] ~docv:"MS" ~doc)

let stop_when_conv =
  let parse s =
    match Propane.Live.rule_of_string s with
    | Ok rule -> Ok rule
    | Error _ ->
        Error
          (`Msg
             (Printf.sprintf
                "--stop-when must be rankings-stable:N (N >= 1) or ci-width:W \
                 (0 < W <= 1), got %S"
                s))
  in
  Arg.conv ~docv:"RULE" (parse, Propane.Live.pp_rule)

let stop_when_arg =
  let doc =
    "Stop the campaign early once the live analysis satisfies $(docv): \
     $(b,rankings-stable:N) after the module ranking has not changed for N \
     consecutive runs, $(b,ci-width:W) once every 95% interval over the \
     campaign's target pairs is at most W wide.  Runs never executed are \
     absent from results and journal, so an early-stopped campaign remains \
     resumable."
  in
  Arg.(
    value
    & opt (some stop_when_conv) None
    & info [ "stop-when" ] ~docv:"RULE" ~doc)

let plan_mode_conv =
  let parse s =
    match Propane.Plan.mode_of_string s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"MODE"
    (parse, fun ppf m -> Format.pp_print_string ppf (Propane.Plan.mode_to_string m))

let budget_arg =
  let doc =
    "Run a budgeted campaign: instead of executing every experiment, a plan \
     ($(b,--plan)) decides which targets get how many of the $(docv) \
     injections, round by round.  Runs never allocated are absent from \
     results and journal; the round history is journalled, so kill-and-resume \
     re-derives the identical schedule."
  in
  Arg.(
    value
    & opt (some (int_at_least 1 "--budget")) None
    & info [ "budget" ] ~docv:"RUNS" ~doc)

let plan_arg =
  let doc =
    "Budget allocation mode (with $(b,--budget)): $(b,adaptive) spends a \
     pilot round proportionally to analytical priors, then refines towards \
     the widest unresolved rankings; $(b,uniform) splits the whole budget \
     evenly across targets in one round (the paper's fixed plan, scaled)."
  in
  Arg.(
    value
    & opt plan_mode_conv Propane.Plan.Adaptive
    & info [ "plan" ] ~docv:"MODE" ~doc)

let journal_batch_arg =
  let doc =
    "Commit journal records to disk every $(docv) appends instead of one \
     fsync-able flush per record.  Journal contents are unaffected — only \
     the crash-loss window: a killed campaign loses at most $(docv) - 1 \
     records, which --resume simply re-runs."
  in
  Arg.(
    value
    & opt
        (int_at_least 1 "--journal-batch")
        Propane.Runner.Config.default.Propane.Runner.Config.journal_batch
    & info [ "journal-batch" ] ~docv:"N" ~doc)

let telemetry_arg =
  let doc =
    "Write a machine-readable JSON campaign summary (throughput, ETA, \
     per-domain utilisation) to $(docv); '-' writes to stdout."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

let default_model = "single-bit"

let roster_or_die model =
  match
    Propane.Error_model.roster_of_string ~width:Arrestment.Signals.width model
  with
  | Ok errors -> errors
  | Error msg ->
      (* The --model converter already validated; this only triggers on
         a recipe forged outside the CLI. *)
      prerr_endline ("propane: bad error-model roster: " ^ msg);
      exit 124

let campaign_workload ~cases ~times ~full =
  let testcases =
    if full then Arrestment.System.paper_testcases
    else
      Propane.Testcase.grid
        [
          Propane.Testcase.uniform_axis "mass" ~lo:8_000.0 ~hi:20_000.0
            ~steps:(max 2 cases);
          Propane.Testcase.uniform_axis "velocity" ~lo:40.0 ~hi:80.0
            ~steps:(max 2 cases);
        ]
  in
  let times =
    if full then Propane.Campaign.paper_times
    else
      List.init (max 1 times) (fun j ->
          Simkernel.Sim_time.of_ms (500 + (j * 4500 / max 1 (times - 1))))
  in
  (testcases, times)

let build_campaign ~cases ~times ~full ~model () =
  let testcases, times = campaign_workload ~cases ~times ~full in
  let base = if full then "paper-7.3" else "reduced-7.3" in
  (* The default roster keeps the historical campaign name (and so the
     journal header bytes); any other roster is part of the campaign's
     identity and must show up in validation. *)
  let name =
    if String.equal model default_model then base else base ^ "+" ^ model
  in
  Propane.Campaign.make ~name ~targets:Arrestment.Model.injection_targets
    ~testcases ~times ~errors:(roster_or_die model)

(* The coordinator's Welcome carries this opaque recipe so a bare
   [propane worker --connect ADDR] can rebuild the exact campaign and
   SUT the coordinator is running — the cluster library itself stays
   SUT-agnostic. *)
module Recipe = struct
  type t = {
    cases : int;
    times : int;
    full : bool;
    model : string;  (* error-model roster spec, see Error_model *)
    window : int;
    config : Propane.Runner.Config.t;
        (* the engine's own option record, embedded via its codec so
           worker-side execution options cannot drift from what the
           local engine accepts *)
    chaos_crash : int option;
    chaos_hang : int option;
  }

  let magic = "propane-recipe3"

  let encode r =
    let opt = function None -> "" | Some n -> string_of_int n in
    Printf.sprintf
      "%s;cases=%d;times=%d;full=%b;model=%s;window=%d;config=%s;chaos_crash=%s;chaos_hang=%s"
      magic r.cases r.times r.full r.model r.window
      (Propane.Runner.Config.encode r.config)
      (opt r.chaos_crash) (opt r.chaos_hang)

  let decode s =
    match String.split_on_char ';' s with
    | v :: fields when String.equal v magic -> (
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun f ->
            match String.index_opt f '=' with
            | Some i ->
                Hashtbl.replace tbl (String.sub f 0 i)
                  (String.sub f (i + 1) (String.length f - i - 1))
            | None -> ())
          fields;
        let get parse k =
          match Hashtbl.find_opt tbl k with
          | None -> failwith (Printf.sprintf "missing field %s" k)
          | Some v -> (
              match parse v with
              | Some x -> x
              | None -> failwith (Printf.sprintf "bad field %s=%s" k v))
        in
        let opt v = if String.equal v "" then Some None
          else Option.map Option.some (int_of_string_opt v)
        in
        let config v = Result.to_option (Propane.Runner.Config.decode v) in
        try
          Ok
            {
              cases = get int_of_string_opt "cases";
              times = get int_of_string_opt "times";
              full = get bool_of_string_opt "full";
              model = get Option.some "model";
              window = get int_of_string_opt "window";
              config = get config "config";
              chaos_crash = get opt "chaos_crash";
              chaos_hang = get opt "chaos_hang";
            }
        with Failure msg -> Error ("bad campaign recipe: " ^ msg))
    | v :: _ ->
        Error
          (Printf.sprintf
             "campaign recipe %S is not %S; coordinator and worker binaries \
              disagree"
             v magic)
    | [] -> Error "empty campaign recipe"

  let sut_of r =
    let fault =
      match (r.chaos_crash, r.chaos_hang) with
      | None, None -> None
      | crash_after_ms, hang_after_ms ->
          Some (Propane.Fault.spec ?crash_after_ms ?hang_after_ms ())
    in
    Arrestment.System.sut ?fault ()

  let campaign_of r =
    build_campaign ~cases:r.cases ~times:r.times ~full:r.full ~model:r.model ()
end

let write_telemetry path telemetry =
  let json =
    Propane.Telemetry.to_json (Propane.Telemetry.snapshot telemetry)
  in
  if String.equal path "-" then print_endline json
  else begin
    let oc = open_out path in
    output_string oc json;
    output_char oc '\n';
    close_out oc;
    Printf.printf "telemetry written to %s\n" path
  end

(* Distributed mode: bind the listener, spawn the local pool (each
   worker is this same binary re-invoked as [propane worker]), and let
   the coordinator schedule everything.  The listener is bound before
   any worker starts, so workers never race it. *)
let run_cluster_campaign ~recipe ~sut ~campaign ~config ~on_event ~workers
    ~listen ~chaos_kill ~live ?select ?cells ?plan () =
  let addr =
    match listen with
    | Some a -> a
    | None ->
        Cluster.Address.Unix_sock
          (Filename.concat
             (Filename.get_temp_dir_name ())
             (Printf.sprintf "propane-%d.sock" (Unix.getpid ())))
  in
  let fd = Cluster.Address.listen addr in
  let total = Propane.Campaign.size campaign in
  let pool =
    if workers = 0 then None
    else begin
      let command =
        Array.of_list
          ([ Sys.executable_name; "worker"; "--connect";
             Cluster.Address.to_string addr ]
          @ match chaos_kill with
            | None -> []
            | Some n -> [ "--die-after"; string_of_int n ])
      in
      (* Deliberately suicidal workers need enough respawns to drain
         the whole campaign, not the default crash allowance. *)
      let respawn_budget =
        Option.map (fun n -> (total / max 1 n) + workers + 4) chaos_kill
      in
      Some (Cluster.Local.spawn ?respawn_budget ~command ~n:workers ())
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Cluster.Local.shutdown pool;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Cluster.Address.unlink addr)
    (fun () ->
      Cluster.Coordinator.serve ~on_event
        ~on_tick:(fun () -> Option.iter Cluster.Local.tend pool)
        ?live ?select ?cells ?plan
        ~recipe:(Recipe.encode recipe)
        ~config ~listen:fd ~sut:sut.Propane.Sut.name
        ~campaign:campaign.Propane.Campaign.name ~total ())

let run_measured_campaign ~cases ~times ~full ~model ~seed ~window ~progress
    ~jobs ~journal ~resume ~journal_batch ~telemetry ~keep_traces
    ~run_timeout_ms ~retries ~fail_fast ~chaos_crash ~chaos_hang ~workers
    ~listen ~chaos_kill ~stop_when ~reuse ~budget ~plan_mode () =
  if resume && journal = None then begin
    prerr_endline "propane campaign: --resume requires --journal";
    exit 1
  end;
  let cluster = workers > 0 || listen <> None in
  if cluster && keep_traces then begin
    prerr_endline
      "propane campaign: --keep-traces is unavailable with --workers/--listen \
       (traces stay inside the worker processes)";
    exit 1
  end;
  if cluster && jobs <> 1 then begin
    prerr_endline
      "propane campaign: --jobs parallelises in-process domains; it cannot \
       combine with --workers/--listen";
    exit 1
  end;
  if (not cluster) && chaos_kill <> None then begin
    prerr_endline
      "propane campaign: --chaos-worker-kill-after needs worker processes \
       (--workers)";
    exit 1
  end;
  (* One Config.t drives every mode: the local engine gets it directly,
     the coordinator reads its scheduling/journal fields, and the
     recipe embeds it so remote workers execute runs under the exact
     same options. *)
  let config =
    Propane.Runner.Config.make ~seed ~truncate_after_ms:(window * 2)
      ?run_timeout_ms:
        (if run_timeout_ms <= 0 then None else Some run_timeout_ms)
      ~retries ~fail_fast
      ~jobs:(if cluster then max workers 1 else jobs)
      ?journal ~resume ~journal_batch ~keep_traces ?stop_when ?budget
      ~plan:plan_mode ()
  in
  let recipe =
    {
      Recipe.cases;
      times;
      full;
      model;
      window;
      (* [jobs] is host-local scheduling, not part of the campaign's
         identity: normalising it keeps the journal's recipe line — and
         so the whole journal — byte-identical across serial, --jobs
         and cluster executions of the same campaign. *)
      config = { config with Propane.Runner.Config.jobs = 1 };
      chaos_crash;
      chaos_hang;
    }
  in
  let campaign = Recipe.campaign_of recipe in
  Format.printf "%a@." Propane.Campaign.pp campaign;
  let sut = Recipe.sut_of recipe in
  (* The cache key recipe covers exactly the options a cell's counters
     depend on.  Scheduling and durability knobs (jobs, journalling,
     fail-fast, stop rule) are deliberately absent: they change which
     runs execute or where records land, never a completed run's
     outcome, so estimates cached under one schedule are valid under
     any other. *)
  let reuse_plan =
    Option.map
      (fun dir ->
        let {
          Propane.Runner.Config.max_ms;
          seed;
          truncate_after_ms;
          run_timeout_ms;
          retries;
          _;
        } =
          config
        in
        let opt = function None -> "-" | Some v -> string_of_int v in
        let recipe =
          Printf.sprintf
            "max_ms=%d;seed=%Ld;truncate=%s;timeout=%s;retries=%d;window=%d;chaos=%s,%s"
            max_ms seed (opt truncate_after_ms) (opt run_timeout_ms) retries
            window (opt chaos_crash) (opt chaos_hang)
        in
        Propane.Reuse.plan ~recipe ~sut ~model:Arrestment.Model.system ~dir
          campaign)
      reuse
  in
  Option.iter
    (fun plan ->
      Format.printf "reused %d of %d cells@."
        (Propane.Reuse.reused_cells plan)
        (Propane.Reuse.total_cells plan))
    reuse_plan;
  let select = Option.map Propane.Reuse.select reuse_plan in
  let cells = Option.map Propane.Reuse.journal_cells reuse_plan in
  (* The budget scheduler: one Plan.t instance is the work source for
     whichever backend runs the campaign (serial, --jobs, --workers).
     --reuse composes: cached cells are deselected, so they receive
     zero fresh allocation and the budget concentrates on the dirty
     targets. *)
  let plan =
    Option.map
      (fun budget ->
        try
          Propane.Plan.create ~mode:plan_mode ?select
            ~attribution:(Propane.Estimator.Direct { window_ms = window })
            ~budget ~model:Arrestment.Model.system ~campaign ()
        with Invalid_argument msg ->
          prerr_endline ("propane campaign: " ^ msg);
          exit 1)
      budget
  in
  (* The live analysis mirrors the post-campaign estimation exactly
     (same attribution window, same failure accounting), so the stop
     rule judges the same numbers the final tables print.  Under
     --reuse only the dirty targets' cells are fed fresh runs, so the
     rule watches those — cached cells are already as precise as they
     will get.  A budgeted campaign needs it too: batch estimation
     rejects the partial coverage a plan deliberately leaves behind,
     the live stream tolerates it. *)
  let live =
    if stop_when = None && budget = None then None
    else
      Some
        (Propane.Live.create
           ~attribution:(Propane.Estimator.Direct { window_ms = window })
           ~model:Arrestment.Model.system
           ~targets:
             (match reuse_plan with
             | Some plan -> Propane.Reuse.dirty_targets plan
             | None -> campaign.Propane.Campaign.targets)
           ())
  in
  let tele = Propane.Telemetry.create () in
  let on_event ev =
    Propane.Telemetry.observe tele ev;
    match ev with
    | Propane.Runner.Run_done { completed; total; _ }
      when progress > 0 && (completed mod progress = 0 || completed = total)
      ->
        Format.eprintf "\r%a%!" Propane.Telemetry.pp_live
          (Propane.Telemetry.snapshot tele);
        if completed = total then prerr_newline ()
    | _ -> ()
  in
  let results =
    try
      if cluster then
        run_cluster_campaign ~recipe ~sut ~campaign ~config ~on_event ~workers
          ~listen ~chaos_kill ~live ?select ?cells ?plan ()
      else
        Propane.Runner.run ~config ~on_event ?live ?select ?cells ?plan
          ~recipe:(Recipe.encode recipe) sut campaign
    with Propane.Runner.Failed_run { index; outcome } ->
      Option.iter (fun path -> write_telemetry path tele) telemetry;
      Format.eprintf "propane campaign: run %d %a; aborting (--fail-fast)@."
        index Propane.Results.pp_status outcome.Propane.Results.status;
      exit 1
  in
  Option.iter (fun path -> write_telemetry path tele) telemetry;
  if Propane.Results.failed_count results > 0 then
    Printf.printf "failed runs: %d crashed, %d hung\n"
      (Propane.Results.crashed_count results)
      (Propane.Results.hung_count results);
  (* Under --reuse the stop rule judged freshly injected runs only, so
     the "N of M" it reports must too: M is the selected (dirty) run
     count, not the campaign size the cache already covers. *)
  let selected_total =
    match reuse_plan with
    | Some plan -> Propane.Reuse.selected_runs plan
    | None -> Propane.Campaign.size campaign
  in
  (match stop_when with
  | Some rule when Propane.Results.count results < selected_total ->
      Format.printf "stopped early: %d of %d runs (--stop-when %a)@."
        (Propane.Results.count results)
        selected_total Propane.Live.pp_rule rule
  | _ -> ());
  (match plan with
  | Some p ->
      let nrounds =
        List.fold_left
          (fun acc (r : Propane.Journal.round) -> max acc (r.round + 1))
          0 (Propane.Plan.rounds p)
      in
      Format.printf "plan %s: %d of %d runs in %d round%s (--budget %d)@."
        (Propane.Plan.mode_to_string plan_mode)
        (Propane.Results.count results)
        selected_total nrounds
        (if nrounds = 1 then "" else "s")
        (Option.value ~default:0 budget)
  | None -> ());
  match reuse_plan with
  | Some plan ->
      (* Composition replaces both estimation paths: cached rows seed
         the stream, fresh outcomes fold in, and the matrices are
         byte-identical to a from-scratch campaign's (property-tested).
         Freshly measured complete targets flow back into the cache. *)
      let stream =
        Propane.Reuse.compose
          ~attribution:(Propane.Estimator.Direct { window_ms = window })
          plan results
      in
      (match Propane.Reuse.persist plan stream results with
      | Ok () -> ()
      | Error msg ->
          prerr_endline ("propane campaign: " ^ msg);
          exit 1);
      (match Propane.Reuse.write_stats plan with
      | Ok () -> ()
      | Error msg ->
          prerr_endline ("propane campaign: " ^ msg);
          exit 1);
      ( results,
        analysis_or_die Arrestment.Model.system
          (Propane.Estimator.Stream.matrices stream) )
  | None -> (
  match live with
  | Some l -> (
      (* The live analysis has already folded in every outcome — and,
         unlike batch estimation, it tolerates a partial campaign that
         never reached some targets (their cells simply keep zero-trial
         intervals). *)
      match Propane.Live.snapshot l with
      | Ok analysis -> (results, analysis)
      | Error msg ->
          prerr_endline
            ("propane: inconsistent permeability matrices: " ^ msg);
          exit 124)
  | None -> (
      let attribution = Propane.Estimator.Direct { window_ms = window } in
      match
        Propane.Estimator.estimate_all ~attribution
          ~model:Arrestment.Model.system results
      with
      | Error msg ->
          prerr_endline ("propane campaign: " ^ msg);
          exit 124
      | Ok matrices ->
          (results, analysis_or_die Arrestment.Model.system matrices)))

let save_arg =
  let doc = "Save the raw campaign results to $(docv) (see Propane.Storage)." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)

let reuse_arg =
  let doc =
    "Content-addressed estimate cache: classify every (module, input) cell \
     of the campaign against $(docv), skip the injection targets whose \
     cells are all cached, re-inject only dirty modules, and compose cached \
     and fresh estimates into the final tables (reported as \"reused K of M \
     cells\").  Fresh complete measurements flow back into $(docv), and \
     cache-hit statistics land in $(docv)/stats.json."
  in
  Arg.(value & opt (some string) None & info [ "reuse" ] ~docv:"CACHE_DIR" ~doc)

(* ------------------------------------------------------------------ *)

(* Error-model ablation (analyze --by-model; bench has a scaled-down
   twin).  One reduced campaign per roster over the identical workload
   and injection grid, so any ranking shift is attributable to the
   error model alone — the axis the paper's Section 6 flags but never
   measures. *)
let ablation_specs =
  [
    "single-bit";
    "multi-bit:2";
    "burst:4";
    "stuck-at";
    "offset:64";
    "noise:16";
    "uniform";
    "delayed:8";
    "intermittent:4:16";
  ]

let run_model_ablation ~cases ~times ~seed ~window ~jobs ~ci () =
  let config =
    Propane.Runner.Config.make ~seed ~truncate_after_ms:(window * 2) ~jobs ()
  in
  let testcases, times = campaign_workload ~cases ~times ~full:false in
  let campaign_of errors =
    Propane.Campaign.make ~name:"ablation-7.3"
      ~targets:Arrestment.Model.injection_targets ~testcases ~times ~errors
  in
  let rosters =
    List.map (fun spec -> (spec, roster_or_die spec)) ablation_specs
  in
  match
    Propane.Ablation.study ~config
      ~attribution:(Propane.Estimator.Direct { window_ms = window })
      ~sut:(Arrestment.System.sut ()) ~model:Arrestment.Model.system
      ~campaign_of rosters
  with
  | Error msg ->
      prerr_endline ("propane analyze: " ^ msg);
      exit 124
  | Ok rows ->
      let ranking (r : Propane.Ablation.row) =
        (* " > " separates a resolved rank boundary, " ~ " one whose
           95% intervals still overlap. *)
        let rec join = function
          | [] -> ""
          | [ (name, _, _) ] -> name
          | (name, _, resolved) :: rest ->
              name ^ (if resolved then " > " else " ~ ") ^ join rest
        in
        join r.estimates
      in
      Report.Table.print
        (Report.Table.make ~title:"Module ranking by error model"
           ~columns:
             [
               ("Model", Report.Table.Left);
               ("Runs", Report.Table.Right);
               ("Tau", Report.Table.Right);
               ("Ranking by P~rel (~ = unresolved)", Report.Table.Left);
             ]
           (List.map
              (fun (r : Propane.Ablation.row) ->
                [
                  r.spec;
                  string_of_int r.runs;
                  Printf.sprintf "%+.2f" r.tau_vs_baseline;
                  ranking r;
                ])
              rows));
      if ci then begin
        print_newline ();
        Report.Table.print
          (Report.Table.make
             ~title:"Relative permeability per error model (95% CI)"
             ~columns:
               [
                 ("Model", Report.Table.Left);
                 ("Module", Report.Table.Left);
                 ("P~rel", Report.Table.Right);
                 ("95% CI", Report.Table.Left);
               ]
             (List.concat_map
                (fun (r : Propane.Ablation.row) ->
                  List.map
                    (fun (name, (e : Propagation.Estimate.t), _) ->
                      [
                        r.spec;
                        name;
                        Printf.sprintf "%.3f" e.Propagation.Estimate.value;
                        Printf.sprintf "[%.3f, %.3f]" e.lo e.hi;
                      ])
                    r.estimates)
                rows))
      end

let by_model_arg =
  let doc =
    "Instead of analysing the paper's postulated permeabilities, measure \
     them: run one reduced campaign per error-model roster (single-bit \
     baseline, multi-bit, burst, stuck-at, offset, noise, uniform, delayed, \
     intermittent) over the same workload grid and report each model's \
     module ranking with its Kendall tau against the single-bit baseline.  \
     $(b,--cases), $(b,--times), $(b,--seed), $(b,--window) and $(b,--jobs) \
     shape the campaigns; $(b,--ci) adds per-module intervals."
  in
  Arg.(value & flag & info [ "by-model" ] ~doc)

let analyze_cmd =
  let run () dot ci by_model cases times seed window jobs =
    if by_model then run_model_ablation ~cases ~times ~seed ~window ~jobs ~ci ()
    else begin
      let analysis =
        analysis_or_die Arrestment.Model.system
          (Arrestment.Model.paper_matrices ())
      in
      print_analysis_tables ~ci analysis;
      Option.iter (fun dir -> dump_figures dir analysis) dot
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Propagation analysis of the arrestment system from the paper's \
          permeability values (Tables 1-4).  $(b,--ci) adds confidence \
          intervals and rank resolvedness to every table.  $(b,--by-model) \
          switches to a measured error-model ablation: one campaign per \
          roster, reporting permeability-ranking shifts per model.")
    Term.(
      const run $ log_term $ dot_dir $ ci_arg $ by_model_arg $ cases_arg
      $ times_arg $ seed_arg $ window_arg $ jobs_arg)

let campaign_cmd =
  let run () cases times full model seed window progress jobs journal resume
      journal_batch telemetry keep_traces run_timeout_ms retries fail_fast
      chaos_crash chaos_hang workers listen chaos_kill stop_when ci save reuse
      budget plan_mode =
    let results, analysis =
      run_measured_campaign ~cases ~times ~full ~model ~seed ~window ~progress
        ~jobs ~journal ~resume ~journal_batch ~telemetry ~keep_traces
        ~run_timeout_ms ~retries ~fail_fast ~chaos_crash ~chaos_hang ~workers
        ~listen ~chaos_kill ~stop_when ~reuse ~budget ~plan_mode ()
    in
    Option.iter
      (fun path ->
        match Propane.Storage.save_results path results with
        | Ok () -> Printf.printf "results saved to %s\n" path
        | Error msg ->
            prerr_endline msg;
            exit 1)
      save;
    print_analysis_tables ~reference:(Arrestment.Model.paper_matrices ()) ~ci
      analysis
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a SWIFI campaign on the arrestment system and print the \
          measured Tables 1-4 (side by side with the paper's values).  \
          $(b,--jobs) parallelises over worker domains, $(b,--journal) \
          streams outcomes to disk as they complete, $(b,--resume) continues \
          an interrupted campaign from its journal, and $(b,--telemetry) \
          emits a JSON throughput summary; all combinations produce results \
          identical to a serial uninterrupted run with the same seed.  A \
          crashing or hanging SUT does not abort the campaign: failures \
          become recorded outcomes ($(b,--run-timeout-ms), $(b,--retries)) \
          unless $(b,--fail-fast) restores abort semantics.  \
          $(b,--workers) distributes the campaign over local worker \
          processes, and $(b,--listen) additionally accepts $(b,propane \
          worker) connections from other machines.  $(b,--stop-when) \
          attaches a live analysis and stops the campaign as soon as its \
          rankings are stable or precise enough; $(b,--ci) prints the \
          resulting uncertainty columns.  $(b,--budget) caps the total \
          injections and lets a plan ($(b,--plan), preview with $(b,propane \
          plan)) decide where to spend them.")
    Term.(
      const run $ log_term $ cases_arg $ times_arg $ full_arg $ model_arg
      $ seed_arg $ window_arg $ progress_arg $ jobs_arg $ journal_arg
      $ resume_arg
      $ journal_batch_arg $ telemetry_arg $ keep_traces_arg $ run_timeout_arg
      $ retries_arg $ fail_fast_arg $ chaos_crash_arg $ chaos_hang_arg
      $ workers_arg $ listen_arg $ chaos_kill_arg $ stop_when_arg $ ci_arg
      $ save_arg $ reuse_arg $ budget_arg $ plan_arg)

(* ------------------------------------------------------------------ *)

(* Plan preview: the analytical half of a budgeted campaign without
   executing anything — the priors every target would start from, and
   (given --budget) the deterministic round-0 split. *)
let plan_cmd =
  let run () cases times full model seed window budget plan_mode =
    ignore seed;
    let campaign = build_campaign ~cases ~times ~full ~model () in
    Format.printf "%a@." Propane.Campaign.pp campaign;
    let priors =
      Propane.Plan.priors ~model:Arrestment.Model.system
        ~targets:campaign.Propane.Campaign.targets ()
    in
    let pilot =
      Option.map
        (fun budget ->
          let p =
            try
              Propane.Plan.create ~mode:plan_mode ~priors
                ~attribution:(Propane.Estimator.Direct { window_ms = window })
                ~budget ~model:Arrestment.Model.system ~campaign ()
            with Invalid_argument msg ->
              prerr_endline ("propane plan: " ^ msg);
              exit 1
          in
          (* A zero-size take allocates round 0 without handing out (or
             executing) anything; the preview then reads the recorded
             round — the same bytes a real run would journal. *)
          ignore (Propane.Plan.take p ~max:0);
          List.filter_map
            (fun (r : Propane.Journal.round) ->
              if r.Propane.Journal.round = 0 then
                Some (r.Propane.Journal.target, r.Propane.Journal.runs)
              else None)
            (Propane.Plan.rounds p))
        budget
    in
    Format.printf
      "analytical priors (flat 0.5 permeability matrices, %d runs per \
       target):@."
      (Propane.Campaign.runs_per_target campaign);
    Format.printf "  %-16s %6s %8s %7s %8s%s@." "target" "cells" "spread"
      "reach" "weight"
      (if pilot = None then "" else "   round0");
    List.iter
      (fun (pr : Propane.Plan.prior) ->
        Format.printf "  %-16s %6d %8.3f %7.3f %8.3f%s@."
          pr.Propane.Plan.target pr.Propane.Plan.cells pr.Propane.Plan.spread
          pr.Propane.Plan.reach pr.Propane.Plan.weight
          (match pilot with
          | None -> ""
          | Some alloc ->
              Printf.sprintf " %8d"
                (Option.value ~default:0
                   (List.assoc_opt pr.Propane.Plan.target alloc))))
      priors;
    match (budget, pilot) with
    | Some b, Some alloc ->
        let granted = List.fold_left (fun acc (_, n) -> acc + n) 0 alloc in
        Format.printf
          "@.round 0 (%s) grants %d of %d budget runs%s@."
          (Propane.Plan.mode_to_string plan_mode)
          granted b
          (match plan_mode with
          | Propane.Plan.Uniform -> "; uniform plans stop there"
          | Propane.Plan.Adaptive ->
              "; later rounds refine towards the widest unresolved rankings")
    | _ ->
        Format.printf
          "@.(give --budget N to preview the first allocation round)@."
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Preview a budgeted campaign's injection plan without running it: \
          the analytical prior of every target (fed cells, expected variance \
          mass, system-output reach under flat permeability matrices) and, \
          with $(b,--budget), the deterministic pilot-round allocation a \
          $(b,propane campaign --budget) run would execute and journal.")
    Term.(
      const run $ log_term $ cases_arg $ times_arg $ full_arg $ model_arg
      $ seed_arg $ window_arg $ budget_arg $ plan_arg)

(* ------------------------------------------------------------------ *)

(* The welcome-to-executor bridge shared by one-shot and fleet workers:
   decode the recipe, rebuild the campaign and SUT, and refuse a
   coordinator whose recipe disagrees with its own announcement. *)
let executor_of_welcome (w : Cluster.Protocol.welcome) =
  match Recipe.decode w.Cluster.Protocol.config with
  | Error _ as e -> e
  | Ok recipe ->
      let campaign = Recipe.campaign_of recipe in
      let sut = Recipe.sut_of recipe in
      if not (String.equal campaign.Propane.Campaign.name w.campaign) then
        Error
          (Printf.sprintf "coordinator runs campaign %S, its recipe builds %S"
             w.campaign campaign.Propane.Campaign.name)
      else if not (String.equal sut.Propane.Sut.name w.sut) then
        Error
          (Printf.sprintf "coordinator runs SUT %S, its recipe builds %S" w.sut
             sut.Propane.Sut.name)
      else if Propane.Campaign.size campaign <> w.total then
        Error
          (Printf.sprintf "coordinator expects %d runs, the recipe builds %d"
             w.total
             (Propane.Campaign.size campaign))
      else
        (* The shipped config already carries truncation, watchdog
           and retries; only the seed is authoritative from the
           Welcome, not the recipe. *)
        Ok
          (Propane.Runner.executor ~config:recipe.Recipe.config ~seed:w.seed
             sut campaign)

let worker_cmd =
  let connect_arg =
    let doc =
      "Coordinator address (unix:PATH or tcp:HOST:PORT), as given to \
       $(b,propane campaign --listen) or $(b,propane serve --listen)."
    in
    Arg.(
      required
      & opt (some address_conv) None
      & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let die_after_arg =
    let doc =
      "Chaos harness: exit with code 42 after sending $(docv) results \
       (exercises the coordinator's dead-worker reassignment)."
    in
    Arg.(
      value
      & opt (some (int_at_least 1 "--die-after")) None
      & info [ "die-after" ] ~docv:"N" ~doc)
  in
  let fleet_arg =
    let doc =
      "Join a $(b,propane serve) fleet instead of a single campaign: \
       register once, then execute whatever campaign the service assigns, \
       being retargeted across campaigns until the service dismisses the \
       fleet."
    in
    Arg.(value & flag & info [ "fleet" ] ~doc)
  in
  let pin_config_arg =
    let doc =
      "Refuse the handshake unless the coordinator's campaign recipe hashes \
       to $(docv) (MD5 hex) — pins the worker to one exact campaign \
       configuration.  One-shot connections only; a fleet worker is \
       retargeted by the service and validates each assignment instead."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "pin-config" ] ~docv:"DIGEST" ~doc)
  in
  let run () connect die_after fleet pin_config =
    if fleet && pin_config <> None then begin
      prerr_endline
        "propane worker: --pin-config applies to the one-shot handshake and \
         cannot combine with --fleet";
      exit 1
    end;
    let on_result =
      Option.map (fun n ~completed -> if completed >= n then exit 42) die_after
    in
    let make = executor_of_welcome in
    let outcome =
      if fleet then Cluster.Worker.join ?on_result ~connect ~make ()
      else
        Cluster.Worker.run ?on_result ?config_digest:pin_config ~connect ~make
          ()
    in
    match outcome with
    | Ok n -> Logs.info (fun m -> m "campaign complete; executed %d runs" n)
    | Error msg ->
        prerr_endline ("propane worker: " ^ msg);
        exit 1
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Serve a campaign coordinator: connect to a $(b,propane campaign \
          --listen) process, pull batches of runs, execute them, and stream \
          the outcomes back.  The coordinator's welcome tells the worker \
          which campaign to build; results are deterministic per run, so any \
          number of workers on any machines produce the same campaign.  With \
          $(b,--fleet), join a $(b,propane serve) daemon instead and execute \
          every campaign it assigns.")
    Term.(
      const run $ log_term $ connect_arg $ die_after_arg $ fleet_arg
      $ pin_config_arg)

(* ------------------------------------------------------------------ *)

(* Campaign-as-a-service: [serve] hosts the daemon; [submit]/[status]/
   [cancel] are thin HTTP clients.  Exit codes for the clients follow
   the CLI's convention: 124 for argument/usage errors (cmdliner's
   default), 3 for a failure the server reported, 1 for transport
   errors. *)

module Submission = struct
  (* The JSON body of POST /campaigns.  Campaign-identity fields mirror
     [propane campaign]'s flags exactly, so a submitted campaign's
     recipe — and therefore its journal — is byte-identical to a serial
     [propane campaign --journal] run with the same flags. *)

  module J = Propane_service.Json

  let build ~tenant ~weight ~cases ~times ~full ~model ~seed ~window
      ~run_timeout_ms ~retries ~fail_fast ~stop_when ~budget ~plan_mode =
    J.to_string
      (J.Obj
         ([
            ("tenant", J.Str tenant);
            ("weight", J.Num (float_of_int weight));
            ("cases", J.Num (float_of_int cases));
            ("times", J.Num (float_of_int times));
            ("full", J.Bool full);
            ("model", J.Str model);
            ("seed", J.Str (Int64.to_string seed));
            ("window", J.Num (float_of_int window));
            ("run_timeout_ms", J.Num (float_of_int run_timeout_ms));
            ("retries", J.Num (float_of_int retries));
            ("fail_fast", J.Bool fail_fast);
          ]
         @ (match stop_when with
           | None -> []
           | Some r -> [ ("stop_when", J.Str (Propane.Live.rule_to_string r)) ])
         @
         match budget with
         | None -> []
         | Some b ->
             [
               ("budget", J.Num (float_of_int b));
               ("plan", J.Str (Propane.Plan.mode_to_string plan_mode));
             ]))

  let parse body =
    let ( let* ) = Result.bind in
    let* json =
      Result.map_error (fun m -> "body is not JSON: " ^ m) (J.parse body)
    in
    let field name access ~default =
      match J.member name json with
      | None | Some J.Null -> Ok default
      | Some v -> (
          match access v with
          | Some x -> Ok x
          | None -> Error (Printf.sprintf "bad field %S" name))
    in
    let* tenant = field "tenant" J.str ~default:"default" in
    let* () = if tenant = "" then Error "empty tenant" else Ok () in
    let* weight = field "weight" J.int ~default:1 in
    let* () =
      if weight >= 1 then Ok () else Error "weight must be at least 1"
    in
    let* cases = field "cases" J.int ~default:3 in
    let* times = field "times" J.int ~default:4 in
    let* full = field "full" J.bool ~default:false in
    let* model = field "model" J.str ~default:default_model in
    let* _roster =
      Propane.Error_model.roster_of_string ~width:Arrestment.Signals.width
        model
    in
    let* seed =
      field "seed"
        (fun v -> Option.bind (J.str v) Int64.of_string_opt)
        ~default:42L
    in
    let* window = field "window" J.int ~default:64 in
    let* () = if window >= 1 then Ok () else Error "window must be >= 1" in
    let* run_timeout_ms = field "run_timeout_ms" J.int ~default:0 in
    let* retries = field "retries" J.int ~default:0 in
    let* () = if retries >= 0 then Ok () else Error "retries must be >= 0" in
    let* fail_fast = field "fail_fast" J.bool ~default:false in
    let* stop_when =
      match J.member "stop_when" json with
      | None | Some J.Null -> Ok None
      | Some v -> (
          match J.str v with
          | None -> Error "bad field \"stop_when\""
          | Some s -> Result.map Option.some (Propane.Live.rule_of_string s))
    in
    let* budget =
      match J.member "budget" json with
      | None | Some J.Null -> Ok None
      | Some v -> (
          match J.int v with
          | Some b when b >= 1 -> Ok (Some b)
          | _ -> Error "bad field \"budget\"")
    in
    let* plan_mode =
      match J.member "plan" json with
      | None | Some J.Null -> Ok Propane.Plan.Adaptive
      | Some v -> (
          match J.str v with
          | None -> Error "bad field \"plan\""
          | Some s -> Propane.Plan.mode_of_string s)
    in
    match
      let config =
        Propane.Runner.Config.make ~seed ~truncate_after_ms:(window * 2)
          ?run_timeout_ms:
            (if run_timeout_ms <= 0 then None else Some run_timeout_ms)
          ~retries ~fail_fast ~jobs:1 ?stop_when ?budget ~plan:plan_mode ()
      in
      let recipe =
        {
          Recipe.cases;
          times;
          full;
          model;
          window;
          config;
          chaos_crash = None;
          chaos_hang = None;
        }
      in
      let campaign = Recipe.campaign_of recipe in
      let sut = Recipe.sut_of recipe in
      (* Always attach a live analysis — GET /campaigns/:id serves
         rankings with Wilson CIs while the campaign is in flight. *)
      let live =
        Propane.Live.create
          ~attribution:(Propane.Estimator.Direct { window_ms = window })
          ~model:Arrestment.Model.system
          ~targets:campaign.Propane.Campaign.targets ()
      in
      (* Each parse builds a fresh plan — plans are single-use work
         sources, and a recovered campaign must re-derive its rounds
         from its own journal, not inherit a spent scheduler. *)
      let plan =
        Option.map
          (fun budget ->
            Propane.Plan.create ~mode:plan_mode
              ~attribution:(Propane.Estimator.Direct { window_ms = window })
              ~budget ~model:Arrestment.Model.system ~campaign ())
          budget
      in
      {
        Propane_service.Service.tenant;
        weight;
        name = campaign.Propane.Campaign.name;
        sut = sut.Propane.Sut.name;
        total = Propane.Campaign.size campaign;
        recipe = Recipe.encode recipe;
        config;
        live = Some live;
        plan;
      }
    with
    | spec -> Ok spec
    | exception Invalid_argument msg -> Error msg
end

let http_addr_arg =
  let doc =
    "Control endpoint of the $(b,propane serve) daemon (unix:PATH or \
     tcp:HOST:PORT)."
  in
  Arg.(
    required
    & opt (some address_conv) None
    & info [ "http" ] ~docv:"ADDR" ~doc)

(* One request against the daemon; [on_2xx] sees the parsed body. *)
let service_call ~cmd ~addr ~meth ~path ?body on_2xx =
  match Propane_service.Http.request ?body ~addr ~meth ~path () with
  | Error msg ->
      Printf.eprintf "propane %s: %s\n" cmd msg;
      exit 1
  | Ok (status, body) ->
      if status >= 200 && status < 300 then begin
        match Propane_service.Json.parse body with
        | Ok json -> on_2xx json
        | Error msg ->
            Printf.eprintf "propane %s: malformed response: %s\n" cmd msg;
            exit 1
      end
      else begin
        let reason =
          match
            Option.bind
              (Propane_service.Json.member "error"
                 (Result.value ~default:Propane_service.Json.Null
                    (Propane_service.Json.parse body)))
              Propane_service.Json.str
          with
          | Some e -> e
          | None -> body
        in
        Printf.eprintf "propane %s: server: %s (HTTP %d)\n" cmd reason status;
        exit 3
      end

let serve_cmd =
  let state_dir_arg =
    let doc =
      "Service state directory: the campaign manifest and one journal per \
       campaign live here.  Restarting on the same directory resumes every \
       queued or running campaign."
    in
    Arg.(
      required & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let serve_listen_arg =
    let doc =
      "Fleet endpoint for $(b,propane worker --fleet) connections (default \
       unix:$(b,STATE_DIR)/fleet.sock)."
    in
    Arg.(
      value & opt (some address_conv) None & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let serve_http_arg =
    let doc =
      "HTTP control endpoint (default unix:$(b,STATE_DIR)/http.sock)."
    in
    Arg.(
      value & opt (some address_conv) None & info [ "http" ] ~docv:"ADDR" ~doc)
  in
  let serve_workers_arg =
    let doc =
      "Spawn $(docv) local fleet workers alongside the daemon (0 = workers \
       join from outside)."
    in
    Arg.(
      value
      & opt (int_at_least 0 "--workers") 0
      & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_max_arg =
    let doc =
      "Backpressure: reject new submissions while $(docv) campaigns are \
       queued or running."
    in
    Arg.(
      value
      & opt (int_at_least 1 "--queue-max") 16
      & info [ "queue-max" ] ~docv:"N" ~doc)
  in
  let tenant_quota_arg =
    let doc =
      "Per-tenant backpressure: reject a tenant's submissions while it has \
       $(docv) campaigns queued or running."
    in
    Arg.(
      value
      & opt (int_at_least 1 "--tenant-quota") 4
      & info [ "tenant-quota" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc = "Upper bound on runs per worker batch." in
    Arg.(
      value & opt (int_at_least 1 "--batch") 16 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let heartbeat_arg =
    let doc =
      "Reassign a worker's outstanding runs after $(docv) seconds of \
       silence."
    in
    Arg.(
      value & opt float 30.0 & info [ "heartbeat-timeout" ] ~docv:"S" ~doc)
  in
  let exit_when_idle_arg =
    let doc =
      "Drain and exit once at least one campaign was accepted and every \
       campaign is done, cancelled or failed (for batch drivers and CI)."
    in
    Arg.(value & flag & info [ "exit-when-idle" ] ~doc)
  in
  let run () state_dir listen http workers queue_max tenant_quota batch
      heartbeat exit_when_idle =
    let listen =
      match listen with
      | Some a -> a
      | None ->
          Cluster.Address.Unix_sock (Filename.concat state_dir "fleet.sock")
    in
    let http =
      match http with
      | Some a -> a
      | None ->
          Cluster.Address.Unix_sock (Filename.concat state_dir "http.sock")
    in
    let stop_flag = ref false in
    List.iter
      (fun s ->
        try Sys.set_signal s (Sys.Signal_handle (fun _ -> stop_flag := true))
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigterm; Sys.sigint ];
    let cfg =
      Propane_service.Service.config ~queue_max ~tenant_quota ~batch_max:batch
        ~heartbeat_timeout_s:heartbeat ~exit_when_idle ~listen ~http
        ~state_dir ~parse:Submission.parse ()
    in
    let pool =
      if workers = 0 then None
      else
        Some
          (Cluster.Local.spawn
             ~command:
               [|
                 Sys.executable_name;
                 "worker";
                 "--connect";
                 Cluster.Address.to_string listen;
                 "--fleet";
               |]
             ~n:workers ())
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Cluster.Local.shutdown pool)
      (fun () ->
        match
          Propane_service.Service.run
            ~on_tick:(fun () -> Option.iter Cluster.Local.tend pool)
            ~stop:(fun () -> if !stop_flag then `Drain else `Continue)
            cfg
        with
        | Ok () -> ()
        | Error msg ->
            prerr_endline ("propane serve: " ^ msg);
            exit 1
        | exception Invalid_argument msg ->
            prerr_endline ("propane serve: " ^ msg);
            exit 124)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign service: a long-lived daemon owning a fleet of \
          $(b,propane worker --fleet) processes and a crash-safe queue of \
          named campaigns, multiplexed over the fleet by tenant-assigned \
          weights.  Campaigns are submitted and monitored over a JSON HTTP \
          control surface ($(b,propane submit)/$(b,status)/$(b,cancel), or \
          curl).  Every campaign journals under $(b,--state-dir) with \
          byte-identical records to a serial run of the same flags, and a \
          restarted service resumes every unfinished campaign from its \
          journal.")
    Term.(
      const run $ log_term $ state_dir_arg $ serve_listen_arg $ serve_http_arg
      $ serve_workers_arg $ queue_max_arg $ tenant_quota_arg $ batch_arg
      $ heartbeat_arg $ exit_when_idle_arg)

let tenant_arg =
  let doc = "Tenant the campaign is accounted to." in
  Arg.(value & opt string "default" & info [ "tenant" ] ~docv:"NAME" ~doc)

let weight_arg =
  let doc =
    "Scheduling weight: the fleet is apportioned over runnable campaigns \
     proportionally to their weights."
  in
  Arg.(
    value & opt (int_at_least 1 "--weight") 1 & info [ "weight" ] ~docv:"W" ~doc)

let submit_cmd =
  let run () http tenant weight cases times full model seed window
      run_timeout_ms retries fail_fast stop_when budget plan_mode =
    let body =
      Submission.build ~tenant ~weight ~cases ~times ~full ~model ~seed
        ~window ~run_timeout_ms ~retries ~fail_fast ~stop_when ~budget
        ~plan_mode
    in
    service_call ~cmd:"submit" ~addr:http ~meth:"POST" ~path:"/campaigns"
      ~body (fun json ->
        match
          Option.bind
            (Propane_service.Json.member "id" json)
            Propane_service.Json.str
        with
        | Some id -> print_endline id
        | None ->
            prerr_endline "propane submit: response carries no campaign id";
            exit 1)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a campaign to a $(b,propane serve) daemon and print its id. \
          The campaign flags mirror $(b,propane campaign), and the journal \
          the service writes is byte-identical to the journal a serial \
          $(b,propane campaign --journal) run with the same flags would \
          write.  Exit status: 0 accepted, 3 rejected by the server \
          (backpressure, quota, invalid campaign), 124 usage error.")
    Term.(
      const run $ log_term $ http_addr_arg $ tenant_arg $ weight_arg
      $ cases_arg $ times_arg $ full_arg $ model_arg $ seed_arg $ window_arg
      $ run_timeout_arg $ retries_arg $ fail_fast_arg $ stop_when_arg
      $ budget_arg $ plan_arg)

let id_pos_arg =
  let doc = "Campaign id, as printed by $(b,propane submit)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc)

let status_cmd =
  let module J = Propane_service.Json in
  let jstr ?(default = "?") name json =
    Option.value ~default (Option.bind (J.member name json) J.str)
  in
  let jint name json =
    Option.value ~default:0 (Option.bind (J.member name json) J.int)
  in
  let print_summary c =
    Printf.printf "%-6s %-9s %-28s tenant=%s weight=%d %d/%d\n" (jstr "id" c)
      (jstr "state" c) (jstr "name" c) (jstr "tenant" c) (jint "weight" c)
      (jint "completed" c) (jint "total" c)
  in
  let run () http id =
    match id with
    | None ->
        service_call ~cmd:"status" ~addr:http ~meth:"GET" ~path:"/campaigns"
          (fun json ->
            let campaigns =
              Option.value ~default:[]
                (Option.bind (J.member "campaigns" json) J.list)
            in
            if campaigns = [] then print_endline "no campaigns"
            else List.iter print_summary campaigns);
        service_call ~cmd:"status" ~addr:http ~meth:"GET" ~path:"/fleet"
          (fun json ->
            Printf.printf "fleet: %d worker%s\n" (jint "count" json)
              (if jint "count" json = 1 then "" else "s"))
    | Some id ->
        service_call ~cmd:"status" ~addr:http ~meth:"GET"
          ~path:("/campaigns/" ^ id) (fun c ->
            print_summary c;
            let reason = jstr ~default:"" "reason" c in
            if reason <> "" then Printf.printf "reason: %s\n" reason;
            let rankings =
              Option.value ~default:[]
                (Option.bind (J.member "rankings" c) J.list)
            in
            if rankings <> [] then begin
              print_endline "module rankings (P~rel, 95% CI):";
              List.iter
                (fun row ->
                  let est =
                    Option.value ~default:J.Null
                      (J.member "relative_permeability" row)
                  in
                  let f name =
                    Option.value ~default:Float.nan
                      (Option.bind (J.member name est) J.num)
                  in
                  Printf.printf "  %-16s %.3f [%.3f, %.3f]%s\n"
                    (jstr "module" row) (f "value") (f "lo") (f "hi")
                    (match Option.bind (J.member "resolved" row) J.bool with
                    | Some true -> ""
                    | _ -> "  (unresolved)"))
                rankings
            end)
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Query a $(b,propane serve) daemon: without $(i,ID), list every \
          campaign and the fleet size; with $(i,ID), show one campaign's \
          progress and its live module rankings with 95% confidence \
          intervals.  Exit status: 0 on success, 3 if the server reports an \
          error (e.g. unknown id), 124 usage error.")
    Term.(const run $ log_term $ http_addr_arg $ id_pos_arg)

let cancel_cmd =
  let id_arg =
    let doc = "Campaign id to cancel." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run () http id =
    service_call ~cmd:"cancel" ~addr:http ~meth:"DELETE"
      ~path:("/campaigns/" ^ id) (fun json ->
        Printf.printf "%s %s\n" id
          (Option.value ~default:"cancelled"
             (Option.bind
                (Propane_service.Json.member "state" json)
                Propane_service.Json.str)))
  in
  Cmd.v
    (Cmd.info "cancel"
       ~doc:
         "Cancel a queued or running campaign on a $(b,propane serve) \
          daemon: the service stops handing out its batches, drains in-\
          flight runs into the journal, and marks it cancelled.  Exit \
          status: 0 on success, 3 if the server reports an error, 124 usage \
          error.")
    Term.(const run $ log_term $ http_addr_arg $ id_arg)

(* ------------------------------------------------------------------ *)

(* Deterministic re-execution of one journalled run.  The journal's
   recipe line rebuilds the exact SUT, campaign and engine options; a
   run's RNG stream depends only on (seed, index, attempt), so the
   replay must reproduce the journal record byte for byte — anything
   else is a determinism bug worth failing loudly over. *)
let replay_cmd =
  let journal_path_arg =
    let doc = "Journal written by $(b,propane campaign --journal)." in
    Arg.(
      required
      & opt (some non_dir_file) None
      & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let index_arg =
    let doc =
      "Campaign index of the run to replay (the first field of its journal \
       record)."
    in
    Arg.(
      required
      & opt (some (int_at_least 0 "--index")) None
      & info [ "index" ] ~docv:"I" ~doc)
  in
  let keep_arg =
    let doc =
      "Record the replayed run's full signal traces and, once the outcome \
       is verified against the journal, write them as CSV next to the \
       journal ($(i,FILE).run$(i,I).csv)."
    in
    Arg.(value & flag & info [ "keep-traces" ] ~doc)
  in
  let run () path index keep_traces =
    let die msg =
      prerr_endline ("propane replay: " ^ msg);
      exit 1
    in
    let j =
      match Propane.Journal.load path with Ok j -> j | Error msg -> die msg
    in
    let recipe =
      match j.Propane.Journal.recipe with
      | None ->
          die
            "journal carries no recipe line (written by an older propane, or \
             by a bare library caller); replay cannot rebuild its campaign"
      | Some r -> (
          match Recipe.decode r with Ok r -> r | Error msg -> die msg)
    in
    let sut = Recipe.sut_of recipe in
    let campaign = Recipe.campaign_of recipe in
    let config = recipe.Recipe.config in
    (match
       Propane.Journal.validate j ~path ~sut:sut.Propane.Sut.name
         ~campaign:campaign.Propane.Campaign.name
         ~seed:config.Propane.Runner.Config.seed
         ~total:(Propane.Campaign.size campaign)
     with
    | Ok () -> ()
    | Error msg -> die msg);
    let recorded =
      match Hashtbl.find_opt (Propane.Journal.completed j) index with
      | Some o -> o
      | None -> die (Printf.sprintf "journal has no record for index %d" index)
    in
    (* Scheduling and durability knobs are irrelevant to a single run's
       outcome; strip them (the budget included — a plan decides which
       runs execute, never how one executes) so the replay is a plain
       serial execution that cannot touch the journal it is checking. *)
    let config =
      {
        config with
        Propane.Runner.Config.jobs = 1;
        journal = None;
        resume = false;
        fail_fast = false;
        stop_when = None;
        budget = None;
        keep_traces;
      }
    in
    let traces = ref None in
    let results =
      Propane.Runner.run ~config
        ?on_run_traces:
          (if keep_traces then Some (fun ~index:_ ts -> traces := Some ts)
           else None)
        ~select:(fun i -> i = index)
        sut campaign
    in
    let replayed =
      match Propane.Results.outcomes results with
      | [ o ] -> o
      | os ->
          die
            (Printf.sprintf "replay executed %d runs instead of 1"
               (List.length os))
    in
    let record o =
      match Propane.Journal.record_string ~index o with
      | Ok s -> s
      | Error msg -> die msg
    in
    let expected = record recorded in
    let got = record replayed in
    if not (String.equal expected got) then begin
      Printf.eprintf
        "propane replay: run %d DIVERGES from its journal record\n\
         journal: %s\n\
         replay:  %s\n"
        index expected got;
      exit 3
    end;
    Printf.printf "run %d of %s: outcome matches journal (%s, %d divergence%s)\n"
      index path
      (Format.asprintf "%a" Propane.Results.pp_status
         replayed.Propane.Results.status)
      (List.length replayed.Propane.Results.divergences)
      (if List.length replayed.Propane.Results.divergences = 1 then "" else "s");
    if keep_traces then
      match !traces with
      | None -> die "engine returned no traces despite --keep-traces"
      | Some ts ->
          let out = Printf.sprintf "%s.run%d.csv" path index in
          let oc = open_out out in
          let signals = Propane.Trace_set.signals ts in
          output_string oc ("ms," ^ String.concat "," signals ^ "\n");
          let dur = Propane.Trace_set.duration_ms ts in
          for ms = 0 to dur - 1 do
            output_string oc (string_of_int ms);
            List.iter
              (fun s ->
                output_char oc ',';
                output_string oc
                  (string_of_int
                     (Propane.Trace.get (Propane.Trace_set.trace ts s) ms)))
              signals;
            output_char oc '\n'
          done;
          close_out oc;
          Printf.printf "traces written to %s\n" out
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Deterministically re-execute one journalled run: rebuild the \
          campaign from the journal's recipe line, re-run the given index on \
          its original RNG stream, and verify the outcome is byte-identical \
          to the journal record before optionally dumping its traces \
          ($(b,--keep-traces)).  Works on serial, $(b,--jobs) and cluster \
          journals alike — records are index-addressed, so scheduling never \
          matters.")
    Term.(const run $ log_term $ journal_path_arg $ index_arg $ keep_arg)

(* ------------------------------------------------------------------ *)

let load_arg =
  let doc = "Results file produced by campaign --save." in
  Arg.(
    required
    & opt (some non_dir_file) None
    & info [ "load" ] ~docv:"FILE" ~doc)

let with_loaded_results load f =
  match Propane.Storage.load_results load with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok results -> f results

let estimate_cmd =
  let run () load window ci =
    with_loaded_results load (fun results ->
        let attribution = Propane.Estimator.Direct { window_ms = window } in
        match
          Propane.Estimator.estimate_all ~attribution
            ~model:Arrestment.Model.system results
        with
        | Error msg ->
            prerr_endline msg;
            exit 1
        | Ok matrices ->
            let analysis = analysis_or_die Arrestment.Model.system matrices in
            print_analysis_tables
              ~reference:(Arrestment.Model.paper_matrices ())
              ~ci analysis)
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Re-analyse previously saved campaign results (Tables 1-4).")
    Term.(const run $ log_term $ load_arg $ window_arg $ ci_arg)

let latency_cmd =
  let run () load window =
    with_loaded_results load (fun results ->
        let attribution = Propane.Estimator.Direct { window_ms = window } in
        List.iter
          (fun s -> Format.printf "%a@." Propane.Latency.pp_stats s)
          (Propane.Latency.all_stats ~attribution
             ~model:Arrestment.Model.system results))
  in
  Cmd.v
    (Cmd.info "latency"
       ~doc:"Propagation-latency statistics from saved campaign results.")
    Term.(const run $ log_term $ load_arg $ window_arg)

let uniformity_cmd =
  let run () load =
    with_loaded_results load (fun results ->
        Format.printf "%a@." Propane.Uniformity.pp_report
          (Propane.Uniformity.analyse ~outputs:[ "TOC2" ] results))
  in
  Cmd.v
    (Cmd.info "uniformity"
       ~doc:
         "Uniform-propagation analysis (paper Section 2 vs. [12]) from saved \
          campaign results.")
    Term.(const run $ log_term $ load_arg)

(* ------------------------------------------------------------------ *)

let example_cmd =
  let run () dot ci =
    let analysis = Propagation.Fig_example.analysis () in
    print_analysis_tables ~ci analysis;
    List.iter
      (fun (input, _) ->
        Report.Table.print
          (Report.Experiments.input_paths_table ~ci analysis input);
        print_newline ())
      analysis.Propagation.Analysis.input_paths;
    Option.iter (fun dir -> dump_figures dir analysis) dot
  in
  Cmd.v
    (Cmd.info "example"
       ~doc:"Analyse the five-module example system of the paper's Figs. 2-5.")
    Term.(const run $ log_term $ dot_dir $ ci_arg)

(* ------------------------------------------------------------------ *)

let golden_cmd =
  let mass =
    Arg.(value & opt float 14_000.0 & info [ "mass" ] ~docv:"KG" ~doc:"Aircraft mass.")
  in
  let velocity =
    Arg.(
      value & opt float 60.0
      & info [ "velocity" ] ~docv:"M/S" ~doc:"Engagement velocity.")
  in
  let csv =
    Arg.(
      value & flag
      & info [ "csv" ] ~doc:"Dump all signal traces as CSV to stdout.")
  in
  let run () mass velocity csv =
    let sut = Arrestment.System.sut () in
    let tc = Arrestment.System.testcase ~mass_kg:mass ~velocity_mps:velocity in
    let traces = Propane.Runner.golden_run sut tc in
    let dur = Propane.Trace_set.duration_ms traces in
    if csv then begin
      let signals = Propane.Trace_set.signals traces in
      print_endline ("ms," ^ String.concat "," signals);
      for ms = 0 to dur - 1 do
        print_string (string_of_int ms);
        List.iter
          (fun s ->
            print_char ',';
            print_string
              (string_of_int (Propane.Trace.get (Propane.Trace_set.trace traces s) ms)))
          signals;
        print_newline ()
      done
    end
    else begin
      Printf.printf "arrestment of %.0f kg at %.0f m/s: %d ms\n" mass velocity
        dur;
      List.iter
        (fun s ->
          let trace = Propane.Trace_set.trace traces s in
          Printf.printf "  %-12s final=%d\n" s
            (Propane.Trace.get trace (dur - 1)))
        (Propane.Trace_set.signals traces)
    end
  in
  Cmd.v
    (Cmd.info "golden" ~doc:"Execute one golden run of the arrestment system.")
    Term.(const run $ log_term $ mass $ velocity $ csv)

(* ------------------------------------------------------------------ *)

let placement_cmd =
  let budget =
    Arg.(
      value & opt int 3
      & info [ "budget" ] ~docv:"N" ~doc:"Mechanisms of each kind to propose.")
  in
  let run () budget =
    let analysis =
      analysis_or_die Arrestment.Model.system
        (Arrestment.Model.paper_matrices ())
    in
    let plan =
      Edm.Selector.propose ~edm_budget:budget ~erm_budget:budget
        analysis.Propagation.Analysis.placement
    in
    Format.printf "%a@." Edm.Selector.pp plan
  in
  Cmd.v
    (Cmd.info "placement"
       ~doc:"EDM/ERM placement proposals for the arrestment system (OB1-OB6).")
    Term.(const run $ log_term $ budget)

(* ------------------------------------------------------------------ *)

let main =
  Cmd.group
    (Cmd.info "propane" ~version:"1.0.0"
       ~doc:
         "Error-propagation analysis for modular software (reproduction of \
          Hiller, Jhumka & Suri, DSN 2001).")
    [
      analyze_cmd;
      campaign_cmd;
      plan_cmd;
      replay_cmd;
      worker_cmd;
      serve_cmd;
      submit_cmd;
      status_cmd;
      cancel_cmd;
      estimate_cmd;
      latency_cmd;
      uniformity_cmd;
      example_cmd;
      golden_cmd;
      placement_cmd;
    ]

let () = exit (Cmd.eval main)
