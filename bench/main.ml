(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 8) and runs a bechamel performance suite.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- table1 fig10 perf   -- selected targets

   The fault-injection campaign behind Tables 1-4 defaults to a reduced
   but representative grid (3x3 test cases, 5 instants); set
   PROPANE_SCALE=full in the environment for the paper-scale campaign
   (25 test cases, 10 instants, 52,000 runs, several minutes). *)

let full_scale =
  match Sys.getenv_opt "PROPANE_SCALE" with
  | Some "full" -> true
  | Some _ | None -> false

(* PROPANE_JOBS=n runs the measured campaign on n worker domains;
   results are identical either way (see Propane.Runner.run). *)
let jobs =
  match Option.map int_of_string_opt (Sys.getenv_opt "PROPANE_JOBS") with
  | Some (Some n) when n >= 1 -> n
  | Some _ | None -> 1

(* PROPANE_PERF_SMOKE=1 shrinks the perf target (short bechamel quota,
   small throughput campaign) so CI can smoke-test it in seconds. *)
let perf_smoke =
  match Sys.getenv_opt "PROPANE_PERF_SMOKE" with
  | Some ("1" | "true") -> true
  | Some _ | None -> false

(* PROPANE_SCALING_CHECK=1 turns the scaling target into a regression
   gate: domains-2 and workers-2 must not fall below serial throughput
   on the same machine.  Skipped (with a message) when the host has a
   single core, where parallel modes lose by construction. *)
let scaling_check =
  match Sys.getenv_opt "PROPANE_SCALING_CHECK" with
  | Some ("1" | "true") -> true
  | Some _ | None -> false

let nproc = Domain.recommended_domain_count ()

let git_rev =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       ignore (Unix.close_process_in ic);
       if String.equal line "" then "unknown" else line
     with _ -> "unknown")

let section title =
  Printf.printf "\n================ %s ================\n\n" title

(* ------------------------------------------------------------------ *)
(* Machine-readable campaign throughput.  Targets that time whole
   campaigns record a row per (SUT, execution mode); the accumulated
   rows are written to BENCH_campaign.json when the bench exits, so CI
   can track runs/sec across serial, domain and worker-process
   execution at every core count. *)

type bench_row = {
  row_sut : string;
  row_mode : string;
  row_cores : int;
      (** effective cores: what the mode can actually use on this
          host, [min jobs nproc] — never more than the top-level
          [nproc], so a 1-core host reports 1 here even for 2-job
          rows (the request lives in [row_jobs]) *)
  row_jobs : int;  (** domains or worker processes requested *)
  row_oversubscribed : bool;
      (** more jobs than cores: the row measures scheduling overhead,
          not parallel speedup, and must not feed a scaling claim *)
  row_runs : int;
  row_seconds : float;
}

let bench_rows : bench_row list ref = ref []

let record_mode ~sut ~mode ~jobs ~runs ~seconds =
  bench_rows :=
    !bench_rows
    @ [
        {
          row_sut = sut;
          row_mode = mode;
          row_cores = min jobs nproc;
          row_jobs = jobs;
          row_oversubscribed = jobs > nproc;
          row_runs = runs;
          row_seconds = seconds;
        };
      ]

let runs_per_sec r =
  if r.row_seconds > 0.0 then float_of_int r.row_runs /. r.row_seconds else 0.0

(* Error-model ablation rows (the [models] target): ranking shift per
   roster, with the full per-module interval data behind it. *)
type model_row = {
  m_spec : string;
  m_runs : int;
  m_tau : float;
  m_estimates : (string * Propagation.Estimate.t * bool) list;
}

let model_rows : model_row list ref = ref []

(* Campaign-service rows (the [service] target): concurrent campaigns
   multiplexed over one fleet, with the submit-to-first-result latency
   the control surface adds on top of raw throughput. *)
type service_row = {
  s_campaigns : int;
  s_workers : int;
  s_modules : int;  (** synthetic workload size *)
  s_runs : int;  (** aggregate over all campaigns *)
  s_seconds : float;  (** first submit to last campaign done *)
  s_first_result_s : float;
      (** worst submit-to-first-result latency across campaigns *)
}

let service_rows : service_row list ref = ref []

(* Plan rows (the [plan] target): runs-to-resolved-rankings for the
   adaptive budget scheduler vs the paper's uniform allocation, on the
   layered SUT. *)
type plan_row = {
  p_mode : string;
  p_budget : int;  (** budget offered to the scheduler *)
  p_runs : int;  (** injections actually executed *)
  p_rounds : int;
  p_resolved : bool;  (** every module ranking resolved at 95% *)
  p_ratio : float;  (** runs / uniform's runs-to-resolved *)
}

let plan_rows : plan_row list ref = ref []

let write_bench_json () =
  if
    !bench_rows <> [] || !model_rows <> [] || !service_rows <> []
    || !plan_rows <> []
  then begin
    let row r =
      Printf.sprintf
        {|    {"sut":"%s","mode":"%s","cores_requested":%d,"cores_effective":%d,"jobs":%d,"oversubscribed":%b,"runs":%d,"seconds":%.3f,"runs_per_sec":%.1f}|}
        r.row_sut r.row_mode r.row_jobs r.row_cores r.row_jobs
        r.row_oversubscribed r.row_runs r.row_seconds (runs_per_sec r)
    in
    let model_json m =
      let est (name, (e : Propagation.Estimate.t), resolved) =
        Printf.sprintf
          {|{"module":"%s","p_rel":%.4f,"lo":%.4f,"hi":%.4f,"resolved":%b}|}
          name e.Propagation.Estimate.value e.lo e.hi resolved
      in
      Printf.sprintf
        {|    {"model":"%s","runs":%d,"tau_vs_single_bit":%.3f,"ranking":[%s]}|}
        m.m_spec m.m_runs m.m_tau
        (String.concat "," (List.map est m.m_estimates))
    in
    let service_json s =
      Printf.sprintf
        {|    {"campaigns":%d,"workers":%d,"modules":%d,"runs":%d,"seconds":%.3f,"runs_per_sec":%.1f,"submit_to_first_result_s":%.4f}|}
        s.s_campaigns s.s_workers s.s_modules s.s_runs s.s_seconds
        (if s.s_seconds > 0.0 then float_of_int s.s_runs /. s.s_seconds
         else 0.0)
        s.s_first_result_s
    in
    let plan_json p =
      Printf.sprintf
        {|    {"sut":"layered","mode":"%s","budget":%d,"runs":%d,"rounds":%d,"resolved":%b,"ratio_vs_uniform":%.3f}|}
        p.p_mode p.p_budget p.p_runs p.p_rounds p.p_resolved p.p_ratio
    in
    let oc = open_out "BENCH_campaign.json" in
    Printf.fprintf oc
      "{\n\
      \  \"campaign\": \"scaling-matrix\",\n\
      \  \"nproc\": %d,\n\
      \  \"git_rev\": \"%s\",\n\
      \  \"modes\": [\n\
       %s\n\
      \  ],\n\
      \  \"models\": [\n\
       %s\n\
      \  ],\n\
      \  \"service\": [\n\
       %s\n\
      \  ],\n\
      \  \"plan\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      nproc (Lazy.force git_rev)
      (String.concat ",\n" (List.map row !bench_rows))
      (String.concat ",\n" (List.map model_json !model_rows))
      (String.concat ",\n" (List.map service_json !service_rows))
      (String.concat ",\n" (List.map plan_json !plan_rows));
    close_out oc;
    print_endline "wrote BENCH_campaign.json"
  end

(* ------------------------------------------------------------------ *)
(* The measured campaign behind Tables 1-4 (run once, memoised).       *)

let campaign () =
  if full_scale then Arrestment.System.paper_campaign ()
  else
    Propane.Campaign.make ~name:"reduced-7.3"
      ~targets:Arrestment.Model.injection_targets
      ~testcases:
        (Propane.Testcase.grid
           [
             Propane.Testcase.uniform_axis "mass" ~lo:8_000.0 ~hi:20_000.0
               ~steps:3;
             Propane.Testcase.uniform_axis "velocity" ~lo:40.0 ~hi:80.0
               ~steps:3;
           ])
      ~times:(List.map Simkernel.Sim_time.of_ms [ 500; 1500; 2500; 3500; 4500 ])
      ~errors:(Propane.Error_model.bit_flips ~width:Arrestment.Signals.width)

(* The small campaign used for whole-campaign throughput timing, shared
   by the perf and cluster targets — and rebuilt identically inside
   bench worker children, which is why it must be a deterministic
   function of the environment only. *)
let throughput_tc =
  lazy (Arrestment.System.testcase ~mass_kg:14_000.0 ~velocity_mps:60.0)

let throughput_campaign () =
  let targets = Arrestment.Model.injection_targets in
  let targets =
    if perf_smoke then List.filteri (fun i _ -> i < 4) targets else targets
  in
  let times = if perf_smoke then [ 500 ] else [ 500; 1500; 2500 ] in
  Propane.Campaign.make ~name:"throughput" ~targets
    ~testcases:[ Lazy.force throughput_tc ]
    ~times:(List.map Simkernel.Sim_time.of_ms times)
    ~errors:(Propane.Error_model.bit_flips ~width:Arrestment.Signals.width)

let measured_results : Propane.Results.t option ref = ref None

let results () =
  match !measured_results with
  | Some r -> r
  | None ->
      let c = campaign () in
      Format.printf "running campaign: %a@." Propane.Campaign.pp c;
      let t0 = Sys.time () in
      let r =
        Propane.Runner.run
          ~config:
            (Propane.Runner.Config.make ~seed:42L ~truncate_after_ms:128 ~jobs
               ())
          (Arrestment.System.sut ())
          c
      in
      Format.printf "campaign finished in %.1f s (cpu)@." (Sys.time () -. t0);
      measured_results := Some r;
      r

let measured_analysis_ref : Propagation.Analysis.t option ref = ref None

let measured_analysis () =
  match !measured_analysis_ref with
  | Some a -> a
  | None ->
      let matrices =
        match
          Propane.Estimator.estimate_all ~model:Arrestment.Model.system
            (results ())
        with
        | Ok m -> m
        | Error msg -> failwith msg
      in
      let a = Propagation.Analysis.run_exn Arrestment.Model.system matrices in
      measured_analysis_ref := Some a;
      a

let paper_analysis =
  lazy
    (Propagation.Analysis.run_exn Arrestment.Model.system
       (Arrestment.Model.paper_matrices ()))

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)

let table1 () =
  section "Table 1: error permeability of the 25 input/output pairs";
  print_endline "(Value = measured by this reproduction's campaign;";
  print_endline " Paper = the paper's values as reconstructed in Model)";
  print_newline ();
  Report.Table.print
    (Report.Experiments.table1
       ~reference:(Arrestment.Model.paper_matrices ())
       (measured_analysis ()))

let table2 () =
  section "Table 2: relative permeability and error exposure per module";
  print_endline "-- measured --";
  Report.Table.print (Report.Experiments.table2 (measured_analysis ()));
  print_newline ();
  print_endline "-- from the paper's permeability values --";
  Report.Table.print (Report.Experiments.table2 (Lazy.force paper_analysis))

let table3 () =
  section "Table 3: signal error exposures";
  print_endline "-- measured --";
  Report.Table.print (Report.Experiments.table3 (measured_analysis ()));
  print_newline ();
  print_endline "-- from the paper's permeability values --";
  Report.Table.print (Report.Experiments.table3 (Lazy.force paper_analysis))

let table4 () =
  section "Table 4: propagation paths for system output TOC2";
  print_endline "-- measured --";
  Report.Table.print
    (Report.Experiments.table4 (measured_analysis ()) Arrestment.Signals.toc2);
  print_newline ();
  print_endline "-- from the paper's permeability values --";
  Report.Table.print
    (Report.Experiments.table4 (Lazy.force paper_analysis)
       Arrestment.Signals.toc2);
  print_newline ();
  let count analysis =
    let tree =
      List.assoc Arrestment.Signals.toc2
        analysis.Propagation.Analysis.backtrack_trees
    in
    let all = Propagation.Path.of_backtrack_tree tree in
    (List.length all, List.length (Propagation.Path.non_zero all))
  in
  let total_p, nz_p = count (Lazy.force paper_analysis) in
  let total_m, nz_m = count (measured_analysis ()) in
  Printf.printf
    "path census: paper values %d paths / %d non-zero (paper reports 22/13); \
     measured %d / %d\n"
    total_p nz_p total_m nz_m

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)

let fig345 () =
  section "Figs. 3-5: the five-module example system";
  let graph = Propagation.Fig_example.graph in
  Format.printf "permeability graph (Fig. 3):@.%a@.@." Propagation.Perm_graph.pp
    graph;
  let tree =
    Propagation.Backtrack_tree.build graph Propagation.Fig_example.output
  in
  Format.printf "backtrack tree of %a (Fig. 4):@.%a@.@." Propagation.Signal.pp
    Propagation.Fig_example.output Propagation.Backtrack_tree.pp tree;
  List.iter
    (fun input ->
      Format.printf "trace tree of %a (Fig. 5):@.%a@.@." Propagation.Signal.pp
        input Propagation.Trace_tree.pp
        (Propagation.Trace_tree.build graph input))
    Propagation.Fig_example.inputs

let fig8 () =
  section "Fig. 8: module and signal diagram of the target system";
  Format.printf "%a@.@." Propagation.System_model.pp Arrestment.Model.system;
  print_endline "DOT rendering:";
  print_endline (Report.Dot.of_system_model Arrestment.Model.system)

let fig9 () =
  section "Fig. 9: permeability graph of the target system";
  let analysis = Lazy.force paper_analysis in
  Format.printf "%a@.@." Propagation.Perm_graph.pp
    analysis.Propagation.Analysis.graph;
  print_endline "DOT rendering:";
  print_endline (Report.Dot.of_perm_graph analysis.Propagation.Analysis.graph)

let fig10 () =
  section "Fig. 10: backtrack tree of system output TOC2";
  let analysis = Lazy.force paper_analysis in
  let tree =
    List.assoc Arrestment.Signals.toc2
      analysis.Propagation.Analysis.backtrack_trees
  in
  Format.printf "%a@.@." Propagation.Backtrack_tree.pp tree;
  Printf.printf "leaf count: %d (the paper's tree generates 22 paths)\n"
    (Propagation.Backtrack_tree.leaf_count tree)

let trace_fig name signal () =
  section name;
  let analysis = Lazy.force paper_analysis in
  let tree = List.assoc signal analysis.Propagation.Analysis.trace_trees in
  Format.printf "%a@.@." Propagation.Trace_tree.pp tree

let fig11 = trace_fig "Fig. 11: trace tree of system input ADC" Arrestment.Signals.adc
let fig12 = trace_fig "Fig. 12: trace tree of system input PACNT" Arrestment.Signals.pacnt

(* ------------------------------------------------------------------ *)
(* Section 8 observations                                              *)

let observations () =
  section "Section 8 observations (OB1-OB6)";
  let analysis = measured_analysis () in
  let placement = analysis.Propagation.Analysis.placement in
  let module_row name =
    List.find
      (fun (r : Propagation.Ranking.module_row) ->
        String.equal r.module_name name)
      analysis.Propagation.Analysis.module_rows
  in
  let ob1 =
    List.filteri
      (fun idx _ -> idx < 2)
      placement.Propagation.Placement.exposed_modules
  in
  Printf.printf "OB1. most exposed modules (Xnw): %s (paper: CALC and V_REG)\n"
    (String.concat ", "
       (List.map
          (fun (r : Propagation.Ranking.module_row) ->
            Printf.sprintf "%s (%.3f)" r.module_name r.non_weighted_exposure)
          ob1));
  let stopped_column =
    Propagation.Perm_matrix.column_sum
      (Propagation.Perm_graph.matrix analysis.Propagation.Analysis.graph
         "DIST_S")
      ~output:3
  in
  Printf.printf
    "OB2. permeability into `stopped` (column sum): %.3f (paper: 0.000)\n"
    stopped_column;
  let pres_s = module_row "PRES_S" in
  Printf.printf
    "OB3. PRES_S permeability: %.3f (paper: 0.000) while \
     P(InValue->OutValue) = %.3f (paper: 0.920)\n"
    pres_s.relative_permeability
    (Propagation.Perm_matrix.get
       (Propagation.Perm_graph.matrix analysis.Propagation.Analysis.graph
          "V_REG")
       ~input:2 ~output:1);
  Printf.printf "OB4. EDM signal ranking: %s\n"
    (String.concat ", "
       (List.filteri
          (fun idx _ -> idx < 4)
          (List.map
             (fun (r : Propagation.Ranking.signal_row) ->
               Printf.sprintf "%s (%.3f)" (Propagation.Signal.name r.signal)
                 r.exposure)
             placement.Propagation.Placement.edm_signals)));
  Printf.printf "     excluded: %s\n"
    (String.concat ", "
       (List.map
          (fun (s, reason) ->
            Fmt.str "%a (%a)" Propagation.Signal.pp s
              Propagation.Placement.pp_exclusion_reason reason)
          placement.Propagation.Placement.excluded));
  Printf.printf "OB5. cut signals (on every non-zero path to TOC2): %s\n"
    (String.concat ", "
       (List.map Propagation.Signal.name
          placement.Propagation.Placement.cut_signals));
  Printf.printf "OB6. barrier modules (read system inputs): %s\n"
    (String.concat ", " placement.Propagation.Placement.barrier_modules);
  print_newline ();
  Format.printf "%a@." Edm.Selector.pp (Edm.Selector.propose placement)

(* ------------------------------------------------------------------ *)
(* Ablations (beyond the paper; see DESIGN.md section 9)               *)

let ablation () =
  section "Ablation: error model and attribution window";
  let testcases =
    Propane.Testcase.grid
      [
        Propane.Testcase.uniform_axis "mass" ~lo:8_000.0 ~hi:20_000.0 ~steps:2;
        Propane.Testcase.uniform_axis "velocity" ~lo:40.0 ~hi:80.0 ~steps:2;
      ]
  in
  let times = List.map Simkernel.Sim_time.of_ms [ 1_000; 3_000 ] in
  let sut = Arrestment.System.sut () in
  let run name errors =
    let c =
      Propane.Campaign.make ~name ~targets:Arrestment.Model.injection_targets
        ~testcases ~times ~errors
    in
    Propane.Runner.run
      ~config:(Propane.Runner.Config.make ~seed:42L ~truncate_after_ms:128 ())
      sut c
  in
  let summarise name results attribution =
    match
      Propane.Estimator.estimate_all ~attribution
        ~model:Arrestment.Model.system results
    with
    | Error msg -> Printf.printf "%-28s estimation failed: %s\n" name msg
    | Ok matrices ->
        let total =
          Propagation.String_map.fold
            (fun _ m acc -> acc +. Propagation.Perm_matrix.non_weighted m)
            matrices 0.0
        in
        let analysis =
          Propagation.Analysis.run_exn Arrestment.Model.system matrices
        in
        let nz =
          List.length
            (List.assoc Arrestment.Signals.toc2
               analysis.Propagation.Analysis.output_paths)
        in
        Printf.printf
          "%-28s sum of all 25 permeabilities = %6.3f; non-zero TOC2 paths = \
           %d\n"
          name total nz
  in
  let direct = Propane.Estimator.default_attribution in
  let bitflip_results =
    run "ablation-bitflip"
      (Propane.Error_model.bit_flips ~width:Arrestment.Signals.width)
  in
  summarise "bit-flips, direct window" bitflip_results direct;
  summarise "bit-flips, any divergence" bitflip_results
    Propane.Estimator.Any_divergence;
  summarise "stuck-at {0,max}, direct"
    (run "ablation-stuckat"
       [ Propane.Error_model.Stuck_at 0; Propane.Error_model.Stuck_at 0xFFFF ])
    direct;
  summarise "offsets {-256,+256}, direct"
    (run "ablation-offset"
       [ Propane.Error_model.Offset (-256); Propane.Error_model.Offset 256 ])
    direct;
  summarise "uniform replacement, direct"
    (run "ablation-uniform"
       (List.init 4 (fun _ -> Propane.Error_model.Replace_uniform)))
    direct

(* ------------------------------------------------------------------ *)
(* Error-model ablation with ranking shifts.  One reduced campaign per
   roster over the identical workload grid; each row lands in
   BENCH_campaign.json with the full per-module interval data so CI
   can track how far each model moves the paper's module ranking. *)

let model_specs =
  [
    "single-bit";
    "multi-bit:2";
    "burst:4";
    "stuck-at";
    "offset:64";
    "noise:16";
    "uniform";
    "delayed:8";
    "intermittent:4:16";
  ]

let models () =
  section "Error-model ablation: permeability-ranking shift per model";
  let testcases =
    Propane.Testcase.grid
      [
        Propane.Testcase.uniform_axis "mass" ~lo:8_000.0 ~hi:20_000.0 ~steps:2;
        Propane.Testcase.uniform_axis "velocity" ~lo:40.0 ~hi:80.0 ~steps:2;
      ]
  in
  let times = List.map Simkernel.Sim_time.of_ms [ 1_000; 3_000 ] in
  let campaign_of errors =
    Propane.Campaign.make ~name:"bench-models"
      ~targets:Arrestment.Model.injection_targets ~testcases ~times ~errors
  in
  let rosters =
    List.map
      (fun spec ->
        match
          Propane.Error_model.roster_of_string
            ~width:Arrestment.Signals.width spec
        with
        | Ok errors -> (spec, errors)
        | Error msg -> failwith (spec ^ ": " ^ msg))
      model_specs
  in
  match
    Propane.Ablation.study
      ~config:
        (Propane.Runner.Config.make ~seed:42L ~truncate_after_ms:128 ())
      ~sut:(Arrestment.System.sut ()) ~model:Arrestment.Model.system
      ~campaign_of rosters
  with
  | Error msg -> failwith ("models: " ^ msg)
  | Ok rows ->
      List.iter
        (fun (r : Propane.Ablation.row) ->
          Printf.printf "%-18s %5d runs  tau %+.2f  %s\n" r.spec r.runs
            r.tau_vs_baseline
            (String.concat " > " r.order);
          model_rows :=
            !model_rows
            @ [
                {
                  m_spec = r.spec;
                  m_runs = r.runs;
                  m_tau = r.tau_vs_baseline;
                  m_estimates = r.estimates;
                };
              ])
        rows

(* ------------------------------------------------------------------ *)
(* Failure-severity classification                                     *)

let severity () =
  section "Failure-severity classification per injected signal";
  let campaign =
    Propane.Campaign.make ~name:"severity"
      ~targets:Arrestment.Model.injection_targets
      ~testcases:
        [
          Arrestment.System.testcase ~mass_kg:11_000.0 ~velocity_mps:55.0;
          Arrestment.System.testcase ~mass_kg:18_000.0 ~velocity_mps:75.0;
        ]
      ~times:(List.map Simkernel.Sim_time.of_ms [ 1_000; 3_000 ])
      ~errors:(Propane.Error_model.bit_flips ~width:Arrestment.Signals.width)
  in
  let reports =
    Propane.Severity.assess ~outputs:[ "TOC2" ]
      ~mission_failed:Arrestment.System.mission_failed
      (Arrestment.System.sut ())
      campaign
  in
  List.iter
    (fun r -> Format.printf "%a@." Propane.Severity.pp_report r)
    reports;
  print_newline ();
  print_endline
    "Reading: signals whose errors end in the mission-failure bin are\n\
     the ones the OB4/OB5 placement guards; a large internal-only bin\n\
     shows the latent errors the paper's exposure measures track.";
  let total v =
    List.fold_left (fun acc r -> acc + Propane.Severity.count r v) 0 reports
  in
  Printf.printf
    "\ntotals: %d no effect, %d internal only, %d output deviation, %d \
     mission failures\n"
    (total Propane.Severity.No_effect)
    (total Propane.Severity.Internal_only)
    (total Propane.Severity.Output_deviation)
    (total Propane.Severity.Mission_failure)

(* ------------------------------------------------------------------ *)
(* Uniform-propagation check (the paper's Section 2 rebuttal of [12]) *)

let uniformity () =
  section "Uniform propagation? (paper Section 2 vs. [12])";
  let report =
    Propane.Uniformity.analyse ~outputs:[ "TOC2" ] (results ())
  in
  Format.printf "%a@." Propane.Uniformity.pp_report report;
  let f = Propane.Uniformity.uniform_fraction report in
  Printf.printf
    "\n\
     [12] predicts a uniform fraction close to 1.00; the paper reports \
     \"our findings do not corroborate this assertion\".  Measured: %.2f \
     (%d of %d locations show mixed behaviour).\n"
    f report.Propane.Uniformity.mixed report.Propane.Uniformity.locations

(* ------------------------------------------------------------------ *)
(* Propagation latency per pair                                        *)

let latency () =
  section "Propagation latency per input/output pair (direct errors)";
  let stats =
    Propane.Latency.all_stats ~model:Arrestment.Model.system (results ())
  in
  Report.Table.print
    (Report.Table.make ~title:"Latency of direct error propagation"
       ~columns:
         [
           ("Pair", Report.Table.Left);
           ("n", Report.Table.Right);
           ("min ms", Report.Table.Right);
           ("median ms", Report.Table.Right);
           ("mean ms", Report.Table.Right);
           ("max ms", Report.Table.Right);
         ]
       (List.map
          (fun (s : Propane.Latency.stats) ->
            [
              Fmt.str "%a" Propagation.Perm_graph.pp_pair s.pair;
              string_of_int s.samples;
              string_of_int s.min_ms;
              string_of_int s.median_ms;
              Printf.sprintf "%.1f" s.mean_ms;
              string_of_int s.max_ms;
            ])
          stats))

(* ------------------------------------------------------------------ *)
(* Rank-stability study (Section 6's relative-order assumption)        *)

let sensitivity () =
  section "Rank stability under permeability perturbation (Section 6)";
  let matrices = Arrestment.Model.paper_matrices () in
  List.iter
    (fun perturbation ->
      let report =
        Propagation.Sensitivity.study ~trials:64 ~seed:42 perturbation
          Arrestment.Model.system matrices
      in
      Format.printf "%a@." Propagation.Sensitivity.pp_report report)
    [
      Propagation.Sensitivity.Relative_noise 0.05;
      Propagation.Sensitivity.Relative_noise 0.20;
      Propagation.Sensitivity.Relative_noise 0.50;
      Propagation.Sensitivity.Absolute_noise 0.10;
      Propagation.Sensitivity.Quantise 10;
      Propagation.Sensitivity.Quantise 4;
    ];
  print_newline ();
  print_endline
    "High tau at moderate noise supports the paper's claim that the\n\
     analysis only needs the relative order of the estimates."

(* ------------------------------------------------------------------ *)
(* Workload sensitivity (paper Section 6 / future work)                *)

let workload () =
  section "Workload sensitivity of the permeability estimates";
  let sut = Arrestment.System.sut () in
  let times = List.map Simkernel.Sim_time.of_ms [ 1_000; 3_000 ] in
  let estimate name testcases =
    let c =
      Propane.Campaign.make ~name
        ~targets:Arrestment.Model.injection_targets ~testcases ~times
        ~errors:(Propane.Error_model.bit_flips ~width:Arrestment.Signals.width)
    in
    let results =
      Propane.Runner.run
        ~config:
          (Propane.Runner.Config.make ~seed:42L ~truncate_after_ms:128 ())
        sut c
    in
    match
      Propane.Estimator.estimate_all ~model:Arrestment.Model.system results
    with
    | Error msg -> failwith msg
    | Ok matrices -> matrices
  in
  let light = estimate "wl-light" [ Arrestment.System.testcase ~mass_kg:8_000.0 ~velocity_mps:40.0 ] in
  let heavy = estimate "wl-heavy" [ Arrestment.System.testcase ~mass_kg:20_000.0 ~velocity_mps:80.0 ] in
  let order matrices =
    let graph = Propagation.Perm_graph.build_exn Arrestment.Model.system matrices in
    List.map
      (fun (r : Propagation.Ranking.module_row) -> r.module_name)
      (Propagation.Ranking.sort_module_rows
         Propagation.Ranking.By_relative_permeability
         (Propagation.Ranking.module_rows graph))
  in
  let sum matrices =
    Propagation.String_map.fold
      (fun _ m acc -> acc +. Propagation.Perm_matrix.non_weighted m)
      matrices 0.0
  in
  Printf.printf "light workload (8 t, 40 m/s):  total permeability %.3f\n"
    (sum light);
  Printf.printf "heavy workload (20 t, 80 m/s): total permeability %.3f\n"
    (sum heavy);
  Printf.printf "module ranking, light: %s\n" (String.concat " > " (order light));
  Printf.printf "module ranking, heavy: %s\n" (String.concat " > " (order heavy));
  Printf.printf "rank correlation (Kendall tau): %.3f\n"
    (Propagation.Sensitivity.kendall_tau (order light) (order heavy))

(* ------------------------------------------------------------------ *)
(* Adjusted path probabilities (Section 4.2's P' analysis)             *)

let prob () =
  section "Pr-adjusted propagation measures (Section 4.2's P')";
  let analysis = Lazy.force paper_analysis in
  let model = Propagation.Perm_graph.model analysis.Propagation.Analysis.graph in
  let prob_model =
    Propagation.Prob_model.uniform model ~probability:0.01
  in
  Format.printf "occurrence model: %a@.@." Propagation.Prob_model.pp prob_model;
  print_endline "error-arrival bound per system output:";
  List.iter
    (fun (output, p) ->
      Format.printf "  %a: %.5f@." Propagation.Signal.pp output p)
    (Propagation.Prob_model.output_arrival prob_model analysis);
  print_newline ();
  print_endline "input criticality (output-corruption mass per error source):";
  List.iter
    (fun (input, p) ->
      Format.printf "  %a: %.5f@." Propagation.Signal.pp input p)
    (Propagation.Prob_model.input_criticality prob_model analysis);
  print_newline ();
  print_endline
    "end-to-end arrival probability per system input (conditioned on an\n\
     error occurring there): max-path <= Monte-Carlo <= noisy-or";
  let graph = analysis.Propagation.Analysis.graph in
  let lo =
    Propagation.Compose.equivalent_matrix
      ~combinator:Propagation.Compose.Max_path analysis
  in
  let hi = Propagation.Compose.equivalent_matrix analysis in
  let mc = Propagation.Monte_carlo.arrival_matrix ~trials:20_000 ~seed:42 graph in
  List.iteri
    (fun idx input ->
      let i = idx + 1 in
      Format.printf "  %a -> TOC2: %.4f <= %.4f <= %.4f@."
        Propagation.Signal.pp input
        (Propagation.Perm_matrix.get lo ~input:i ~output:1)
        (Propagation.Perm_matrix.get mc ~input:i ~output:1)
        (Propagation.Perm_matrix.get hi ~input:i ~output:1))
    (Propagation.System_model.system_inputs model)

(* ------------------------------------------------------------------ *)
(* Bechamel performance suite                                          *)

let perf () =
  section "Performance micro-benchmarks (bechamel)";
  let open Bechamel in
  let paper = Lazy.force paper_analysis in
  let graph = paper.Propagation.Analysis.graph in
  let matrices = Arrestment.Model.paper_matrices () in
  (* Force the campaign now so the first timed iteration does not pay
     for running it. *)
  let (_ : Propane.Results.t) = results () in
  let sut = Arrestment.System.sut () in
  let tc = Arrestment.System.testcase ~mass_kg:14_000.0 ~velocity_mps:60.0 in
  let golden = Propane.Runner.golden_run ~max_ms:2_000 sut tc in
  let frozen = Propane.Golden.freeze golden in
  let injection =
    Propane.Injection.make ~target:"pulscnt"
      ~at:(Simkernel.Sim_time.of_ms 500)
      ~error:(Propane.Error_model.Bit_flip 9)
  in
  (* A wide synthetic layered system stressing tree construction. *)
  let synth_graph =
    let layers = 6 and width = 4 in
    let signal l j = Propagation.Signal.make (Printf.sprintf "s%d_%d" l j) in
    let modules =
      List.concat_map
        (fun l ->
          List.init width (fun j ->
              Propagation.Sw_module.make
                ~name:(Printf.sprintf "M%d_%d" l j)
                ~inputs:(List.init width (signal l))
                ~outputs:[ signal (l + 1) j ]))
        (List.init layers Fun.id)
    in
    let collector =
      Propagation.Sw_module.make ~name:"SINK"
        ~inputs:(List.init width (signal layers))
        ~outputs:[ Propagation.Signal.make "sink_out" ]
    in
    let matrices =
      Propagation.String_map.of_list
        (List.map
           (fun m ->
             ( Propagation.Sw_module.name m,
               Propagation.Perm_matrix.of_rows
                 (Array.init
                    (Propagation.Sw_module.input_count m)
                    (fun i ->
                      Array.init
                        (Propagation.Sw_module.output_count m)
                        (fun k -> Float.of_int ((i + k) mod 3) /. 4.0))) ))
           (collector :: modules))
    in
    let model =
      Propagation.System_model.make_exn
        ~modules:(modules @ [ collector ])
        ~system_inputs:(List.init width (signal 0))
        ~system_outputs:[ Propagation.Signal.make "sink_out" ]
    in
    Propagation.Perm_graph.build_exn model matrices
  in
  let sink_out = Propagation.Signal.make "sink_out" in
  let tests =
    [
      Test.make ~name:"table1:estimate_all(measured)"
        (Staged.stage (fun () ->
             Propane.Estimator.estimate_all ~model:Arrestment.Model.system
               (results ())));
      Test.make ~name:"table2:analysis+module-rows"
        (Staged.stage (fun () ->
             (Propagation.Analysis.run_exn Arrestment.Model.system matrices)
               .Propagation.Analysis.module_rows));
      Test.make ~name:"table3:signal-exposures"
        (Staged.stage (fun () -> Propagation.Ranking.signal_rows graph));
      Test.make ~name:"table4:paths(TOC2)"
        (Staged.stage (fun () ->
             Propagation.Ranking.path_rows
               (Propagation.Backtrack_tree.build graph Arrestment.Signals.toc2)));
      Test.make ~name:"fig10:backtrack-tree(TOC2)"
        (Staged.stage (fun () ->
             Propagation.Backtrack_tree.build graph Arrestment.Signals.toc2));
      Test.make ~name:"fig12:trace-tree(PACNT)"
        (Staged.stage (fun () ->
             Propagation.Trace_tree.build graph Arrestment.Signals.pacnt));
      Test.make ~name:"synthetic:backtrack-tree(6x4)"
        (Staged.stage (fun () ->
             Propagation.Backtrack_tree.build synth_graph sink_out));
      Test.make ~name:"campaign:golden-run(2s)"
        (Staged.stage (fun () ->
             Propane.Runner.golden_run ~max_ms:2_000 sut tc));
      Test.make ~name:"campaign:injection-run(truncated)"
        (Staged.stage (fun () ->
             Propane.Runner.run_experiment ~truncate_after_ms:128 sut
               ~golden:frozen tc injection));
      Test.make ~name:"campaign:run-experiment(streaming)"
        (Staged.stage (fun () ->
             Propane.Runner.run_experiment sut ~golden:frozen tc injection));
      Test.make ~name:"campaign:run-experiment(keep-traces)"
        (Staged.stage (fun () ->
             let recorder, _traces =
               Propane.Observer.recorder
                 ~signals:(Propane.Sut.signal_names sut)
             in
             Propane.Runner.run_experiment ~observers:[ recorder ] sut
               ~golden:frozen tc injection));
      Test.make ~name:"grc:compare-2s-run"
        (Staged.stage (fun () -> Propane.Golden.compare_runs ~golden ~run:golden ()));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2_000
        ~quota:(Time.second (if perf_smoke then 0.05 else 0.5))
        ~kde:(Some 1_000) ()
    in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-36s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests;
  (* Whole-campaign throughput: the streaming observer pipeline versus
     the legacy record-everything data path (--keep-traces).  Outcomes
     are identical either way — only the cost differs. *)
  let throughput_campaign = throughput_campaign () in
  let time_campaign ~keep_traces =
    let t0 = Unix.gettimeofday () in
    let r =
      Propane.Runner.run
        ~config:
          (Propane.Runner.Config.make ~seed:42L ~truncate_after_ms:128 ~jobs
             ~keep_traces ())
        sut throughput_campaign
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let streaming, t_stream = time_campaign ~keep_traces:false in
  let kept, t_keep = time_campaign ~keep_traces:true in
  if Propane.Results.outcomes streaming <> Propane.Results.outcomes kept then
    failwith "perf: streaming and keep-traces outcomes differ";
  let runs = List.length (Propane.Campaign.experiments throughput_campaign) in
  record_mode ~sut:"arrestment" ~mode:"streaming" ~jobs ~runs
    ~seconds:t_stream;
  record_mode ~sut:"arrestment" ~mode:"keep-traces" ~jobs ~runs
    ~seconds:t_keep;
  Printf.printf "campaign-throughput (%d runs, jobs=%d):\n" runs jobs;
  Printf.printf "  streaming      %10.1f runs/s  (%.2f s)\n"
    (float_of_int runs /. t_stream)
    t_stream;
  Printf.printf "  --keep-traces  %10.1f runs/s  (%.2f s, %.2fx slower)\n"
    (float_of_int runs /. t_keep)
    t_keep (t_keep /. t_stream)

(* ------------------------------------------------------------------ *)
(* Scaling matrix: serial / domains-k / workers-k over two SUTs        *)

(* The second SUT of the matrix: a wide layered dataflow network built
   with {!Dataflow.Builder}.  Unlike the arrestment system it has no
   plant — per-run cost is dominated by the block schedule and the
   trap-instrumented signal store, so it stresses a different profile
   of the engine (many cheap module activations instead of a few
   physics-heavy ones). *)
let layered_width = 4
let layered_layers = 6

(* [edit_l3_1] builds the system "after the developer edited module
   L3_1": a different transfer function and a bumped content tag, so
   its digest — and only its digest — moves.  The reuse bench injects
   into layers 0-3, whose cells observe layer-0..3 block outputs; the
   edit sits strictly downstream of every clean cell's observation
   point, which is the feed-forward case where cell reuse is exact. *)
let make_layered ~edit_l3_1 =
  let mask = 0xFFFF in
  let signal l j = Propagation.Signal.make (Printf.sprintf "l%d_%d" l j) in
  let layer_inputs l = List.init layered_width (signal l) in
  let blocks =
    List.concat_map
      (fun l ->
        List.init layered_width (fun j ->
            let edited = edit_l3_1 && l = 3 && j = 1 in
            Dataflow.Builder.block
              ~name:(Printf.sprintf "L%d_%d" l j)
              ~tag:(if edited then "v2" else "")
              ~inputs:(layer_inputs l)
              ~outputs:[ signal (l + 1) j ]
              (fun () ->
                fun inputs ->
                 (* Rotate, mix and mask so every input reaches the
                    output with a different (partial) permeability. *)
                 let acc = ref 0 in
                 Array.iteri
                   (fun i v ->
                     acc := !acc lxor (v lsr ((i + j) mod 4)) lxor (v lsl j))
                   inputs;
                 [| (!acc + if edited then 17 else 0) land mask |])))
      (List.init layered_layers Fun.id)
  in
  let sink =
    Dataflow.Builder.block ~name:"SINK"
      ~inputs:(layer_inputs layered_layers)
      ~outputs:[ Propagation.Signal.make "sink_out" ]
      (fun () ->
        fun inputs ->
         [| Array.fold_left (fun a v -> (a + v) land mask) 0 inputs |])
  in
  Dataflow.Builder.create_exn ~name:"layered" ~duration_ms:400
    ~blocks:(blocks @ [ sink ])
    ~stimuli:
      (List.init layered_width (fun j ->
           Dataflow.Builder.ramp ~slope:((2 * j) + 3) (signal 0 j)))
    ()

let layered_system = lazy (make_layered ~edit_l3_1:false)
let edited_layered_system = lazy (make_layered ~edit_l3_1:true)

let layered_campaign () =
  let system = Lazy.force layered_system in
  let targets = Dataflow.Builder.injection_targets system in
  let keep = if perf_smoke then 4 else 8 in
  let targets = List.filteri (fun i _ -> i < keep) targets in
  let times = if perf_smoke then [ 100 ] else [ 100; 200; 300 ] in
  Propane.Campaign.make ~name:"layered" ~targets
    ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
    ~times:(List.map Simkernel.Sim_time.of_ms times)
    ~errors:(Propane.Error_model.bit_flips ~width:16)

(* One config for every mode of the matrix — only [jobs] (and the
   journal path) vary per cell, so any byte difference between two
   cells' journals is the engine's fault, not the options'. *)
let scaling_config ?journal ~jobs () =
  Propane.Runner.Config.make ~seed:42L ~truncate_after_ms:128 ~jobs ?journal
    ()

(* Spawned copies of this binary re-enter main with [--worker-child];
   see the dispatch at the bottom.  The welcome's campaign name selects
   which (SUT, campaign) pair the child rebuilds. *)
let worker_child_flag = "--worker-child"

let suts_under_test () =
  [
    ("arrestment", (fun () -> Arrestment.System.sut ()), throughput_campaign);
    ( "layered",
      (fun () -> Dataflow.Builder.sut (Lazy.force layered_system)),
      layered_campaign );
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let tmp_journal tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "propane-bench-%s-%d.journal" tag (Unix.getpid ()))

(* Parallel core counts to sweep: always 2 (the regression gate's
   column, oversubscribed on a 1-core host but still a correctness
   exercise), then 4 and the full machine when available. *)
let parallel_core_counts =
  List.sort_uniq compare
    (List.filter (fun k -> k >= 2) [ 2; min 4 nproc; nproc ])

let scaling () =
  section "Scaling matrix: serial / domains-k / workers-k per SUT";
  Printf.printf "host: %d core(s), rev %s\n" nproc (Lazy.force git_rev);
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let report ~mode ~jobs ~runs seconds =
    Printf.printf "  %-12s %10.1f runs/s  (%.2f s)%s\n" mode
      (float_of_int runs /. seconds)
      seconds
      (if jobs > nproc then
         Printf.sprintf "  [oversubscribed: %d jobs on %d core(s)]" jobs nproc
       else "")
  in
  List.iter
    (fun (sut_name, make_sut, make_campaign) ->
      let c = make_campaign () in
      let runs = Propane.Campaign.size c in
      Printf.printf "\n-- %s (%d runs) --\n" sut_name runs;
      let serial_journal = tmp_journal (sut_name ^ "-serial") in
      let serial, t_serial =
        time (fun () ->
            Propane.Runner.run
              ~config:(scaling_config ~journal:serial_journal ~jobs:1 ())
              (make_sut ()) c)
      in
      record_mode ~sut:sut_name ~mode:"serial" ~jobs:1 ~runs
        ~seconds:t_serial;
      report ~mode:"serial" ~jobs:1 ~runs t_serial;
      let serial_bytes = read_file serial_journal in
      let check_identical ~mode results journal =
        if Propane.Results.outcomes serial <> Propane.Results.outcomes results
        then failwith (Printf.sprintf "%s: %s outcomes differ from serial"
                         sut_name mode);
        let bytes = read_file journal in
        if not (String.equal serial_bytes bytes) then
          failwith
            (Printf.sprintf "%s: %s journal is not byte-identical to serial"
               sut_name mode);
        Sys.remove journal
      in
      List.iter
        (fun k ->
          let mode = Printf.sprintf "domains-%d" k in
          let journal = tmp_journal (sut_name ^ "-" ^ mode) in
          let results, seconds =
            time (fun () ->
                Propane.Runner.run
                  ~config:(scaling_config ~journal ~jobs:k ())
                  (make_sut ()) c)
          in
          record_mode ~sut:sut_name ~mode ~jobs:k ~runs ~seconds;
          report ~mode ~jobs:k ~runs seconds;
          check_identical ~mode results journal)
        parallel_core_counts;
      List.iter
        (fun k ->
          let mode = Printf.sprintf "workers-%d" k in
          let journal = tmp_journal (sut_name ^ "-" ^ mode) in
          let addr =
            Cluster.Address.Unix_sock
              (Filename.concat
                 (Filename.get_temp_dir_name ())
                 (Printf.sprintf "propane-bench-%s-%d.sock" mode
                    (Unix.getpid ())))
          in
          let listen = Cluster.Address.listen addr in
          let pool =
            Cluster.Local.spawn
              ~command:
                [| Sys.executable_name; worker_child_flag;
                   Cluster.Address.to_string addr |]
              ~n:k ()
          in
          let results, seconds =
            Fun.protect
              ~finally:(fun () ->
                Cluster.Local.shutdown pool;
                (try Unix.close listen with Unix.Unix_error _ -> ());
                Cluster.Address.unlink addr)
              (fun () ->
                time (fun () ->
                    Cluster.Coordinator.serve
                      ~on_tick:(fun () -> Cluster.Local.tend pool)
                      ~config:(scaling_config ~journal ~jobs:k ())
                      ~listen ~sut:sut_name ~campaign:c.Propane.Campaign.name
                      ~total:runs ()))
          in
          record_mode ~sut:sut_name ~mode ~jobs:k ~runs ~seconds;
          report ~mode ~jobs:k ~runs seconds;
          check_identical ~mode results journal)
        parallel_core_counts;
      Sys.remove serial_journal)
    (suts_under_test ());
  if scaling_check then
    if nproc < 2 then
      print_endline
        "\nscaling check: skipped (single-core host, parallel modes lose by \
         construction)"
    else begin
      let failures = ref [] in
      List.iter
        (fun (sut_name, _, _) ->
          let find mode =
            List.find_opt
              (fun r ->
                String.equal r.row_sut sut_name
                && String.equal r.row_mode mode)
              !bench_rows
          in
          match find "serial" with
          | None -> ()
          | Some serial_row ->
              let serial_rate = runs_per_sec serial_row in
              List.iter
                (fun mode ->
                  match find mode with
                  | Some r when r.row_oversubscribed ->
                      (* Same reasoning as the whole-gate skip above:
                         an oversubscribed row measures scheduling
                         overhead, not scaling, so it cannot fail the
                         gate either. *)
                      Printf.printf
                        "scaling check: %s %s skipped (oversubscribed: %d \
                         jobs on %d core(s))\n"
                        sut_name mode r.row_jobs nproc
                  | Some r when runs_per_sec r < serial_rate ->
                      failures :=
                        Printf.sprintf
                          "%s: %s (%.1f runs/s) below serial (%.1f runs/s)"
                          sut_name mode (runs_per_sec r) serial_rate
                        :: !failures
                  | Some _ | None -> ())
                [ "domains-2"; "workers-2" ])
        (suts_under_test ());
      match !failures with
      | [] -> print_endline "\nscaling check: ok (parallel >= serial at 2 cores)"
      | fs ->
          List.iter (fun f -> prerr_endline ("scaling check FAILED: " ^ f)) fs;
          write_bench_json ();
          exit 1
    end

(* ------------------------------------------------------------------ *)
(* Cell reuse: cold campaign, one-module edit, warm campaign.  The
   warm run must re-inject only the edited module's cells (the four
   layer-3 targets feeding L3_1), run >= 3x faster than cold, and
   compose estimates byte-identical to a from-scratch campaign on the
   edited system.                                                      *)

let reuse_campaign () =
  let system = Lazy.force layered_system in
  let targets = Dataflow.Builder.injection_targets system in
  (* Layers 0-3: every target strictly upstream of the edit's output. *)
  let targets = List.filteri (fun i _ -> i < 4 * layered_width) targets in
  let times = if perf_smoke then [ 100 ] else [ 100; 200; 300 ] in
  Propane.Campaign.make ~name:"layered-reuse" ~targets
    ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
    ~times:(List.map Simkernel.Sim_time.of_ms times)
    ~errors:(Propane.Error_model.bit_flips ~width:16)

let same_matrices m1 m2 =
  Propagation.String_map.equal
    (fun a b ->
      let open Propagation.Perm_matrix in
      input_count a = input_count b
      && output_count a = output_count b
      && List.for_all
           (fun input ->
             List.for_all
               (fun output ->
                 estimate a ~input ~output = estimate b ~input ~output)
               (List.init (output_count a) (fun k -> k + 1)))
           (List.init (input_count a) (fun i -> i + 1)))
    m1 m2

let reuse_bench () =
  section "Cell reuse: cold vs warm after editing one module";
  let campaign = reuse_campaign () in
  let runs = Propane.Campaign.size campaign in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "propane-bench-reuse-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  let recipe = "bench-reuse scaling-config-v1" in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () ->
      let base = Lazy.force layered_system in
      let edited = Lazy.force edited_layered_system in
      let campaign_on sys plan =
        Propane.Runner.run
          ~config:(scaling_config ~jobs:1 ())
          ~select:(Propane.Reuse.select plan)
          (Dataflow.Builder.sut sys) campaign
      in
      (* Cold: everything dirty; measure, compose, fill the cache. *)
      let (), cold_s =
        time (fun () ->
            let cold =
              Propane.Reuse.plan ~recipe ~sut:(Dataflow.Builder.sut base)
                ~model:(Dataflow.Builder.model base) ~dir campaign
            in
            let results = campaign_on base cold in
            let stream = Propane.Reuse.compose cold results in
            match Propane.Reuse.persist cold stream results with
            | Ok () -> ()
            | Error msg -> failwith ("reuse bench: persist failed: " ^ msg))
      in
      record_mode ~sut:"layered" ~mode:"reuse-cold" ~jobs:1 ~runs
        ~seconds:cold_s;
      Printf.printf "  %-12s %10.1f runs/s  (%.2f s, %d runs)\n" "cold"
        (float_of_int runs /. cold_s)
        cold_s runs;
      (* Warm: the developer edited L3_1; only its four input targets
         may re-run. *)
      let warm_matrices, warm_fresh, warm_s =
        let (matrices, fresh), seconds =
          time (fun () ->
              let warm =
                Propane.Reuse.plan ~recipe
                  ~sut:(Dataflow.Builder.sut edited)
                  ~model:(Dataflow.Builder.model edited) ~dir campaign
              in
              let expected_dirty =
                List.init layered_width (fun j -> Printf.sprintf "l3_%d" j)
              in
              if Propane.Reuse.dirty_targets warm <> expected_dirty then
                failwith
                  (Printf.sprintf
                     "reuse bench: dirty targets %s, expected only L3_1's \
                      inputs %s"
                     (String.concat ","
                        (Propane.Reuse.dirty_targets warm))
                     (String.concat "," expected_dirty));
              Printf.printf "  reused %d of %d cells\n"
                (Propane.Reuse.reused_cells warm)
                (Propane.Reuse.total_cells warm);
              let results = campaign_on edited warm in
              let stream = Propane.Reuse.compose warm results in
              ( Propane.Estimator.Stream.matrices stream,
                Propane.Reuse.selected_runs warm ))
        in
        (matrices, fresh, seconds)
      in
      record_mode ~sut:"layered" ~mode:"reuse-warm" ~jobs:1 ~runs:warm_fresh
        ~seconds:warm_s;
      Printf.printf "  %-12s %10.1f runs/s  (%.2f s, %d fresh runs)\n" "warm"
        (float_of_int warm_fresh /. warm_s)
        warm_s warm_fresh;
      (* Ground truth: the edited system from scratch. *)
      let scratch =
        Propane.Runner.run
          ~config:(scaling_config ~jobs:1 ())
          (Dataflow.Builder.sut edited) campaign
      in
      let scratch_stream =
        Propane.Estimator.Stream.create
          ~model:(Dataflow.Builder.model edited) ()
      in
      List.iter
        (Propane.Estimator.Stream.observe scratch_stream)
        (Propane.Results.outcomes scratch);
      if
        not
          (same_matrices warm_matrices
             (Propane.Estimator.Stream.matrices scratch_stream))
      then
        failwith
          "reuse bench: composed estimates differ from a from-scratch \
           campaign on the edited system";
      print_endline
        "  composed estimates identical to from-scratch (counts, values, \
         intervals)";
      let speedup = cold_s /. warm_s in
      Printf.printf "  warm speedup over cold: %.1fx\n" speedup;
      if (not perf_smoke) && speedup < 3.0 then begin
        Printf.eprintf "reuse bench FAILED: speedup %.1fx below 3x\n" speedup;
        write_bench_json ();
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* Plan: runs-to-resolved-rankings, adaptive vs uniform.  The paper
   spends its SWIFI budget uniformly across targets (4,000 injections
   each, Section 7.3) and only afterwards checks which rankings the
   data resolves.  The adaptive scheduler re-aims every round at the
   targets whose cells are still wide and whose modules' rankings are
   still unresolved, so — offered the whole campaign as its budget —
   it must reach fully resolved rankings in well under the runs the
   smallest sufficient uniform allocation needs.                       *)

(* A layered system tuned so full resolution is reachable and its cost
   is measurably asymmetric: each module xors its two inputs and keeps
   only the low [keep] bits, so a bit flip propagates iff it lands on a
   kept bit — every permeability cell is exactly [keep/16].  The rank
   ladder (SINK 1.0, L1_0 .875, L0_0 .5625, L0_1 .5, L1_1 .0625) has
   one deliberately tight pair: separating L0_0 from L0_1 at 95% takes
   on the order of a thousand runs per l0 target, while every other
   row resolves in a couple of hundred.  A uniform allocation must
   drag {e all} targets to the tight pair's depth; an adaptive one
   parks the cheap targets early and spends the difference where the
   ranking is still open. *)
let plan_system =
  lazy
    (let s = Propagation.Signal.make in
     let block ~name ~keep ~inputs ~output =
       Dataflow.Builder.block ~name ~inputs ~outputs:[ output ]
         (fun () ->
           fun inputs ->
            let acc = ref 0 in
            Array.iter (fun v -> acc := !acc lxor v) inputs;
            [| !acc land ((1 lsl keep) - 1) |])
     in
     Dataflow.Builder.create_exn ~name:"layered-plan" ~duration_ms:400
       ~blocks:
         [
           block ~name:"L0_0" ~keep:9
             ~inputs:[ s "l0_0"; s "l0_1" ]
             ~output:(s "l1_0");
           block ~name:"L0_1" ~keep:8
             ~inputs:[ s "l0_0"; s "l0_1" ]
             ~output:(s "l1_1");
           block ~name:"L1_0" ~keep:14
             ~inputs:[ s "l1_0"; s "l1_1" ]
             ~output:(s "l2_0");
           block ~name:"L1_1" ~keep:1
             ~inputs:[ s "l1_0"; s "l1_1" ]
             ~output:(s "l2_1");
           block ~name:"SINK" ~keep:16
             ~inputs:[ s "l2_0"; s "l2_1" ]
             ~output:(s "sink_out");
         ]
       ~stimuli:
         [
           Dataflow.Builder.ramp ~slope:3 (s "l0_0");
           Dataflow.Builder.ramp ~slope:5 (s "l0_1");
         ]
       ())

let plan_campaign () =
  let system = Lazy.force plan_system in
  let targets = Dataflow.Builder.injection_targets system in
  (* 64 injection instants x 16 bit positions = 1024 runs per target,
     enough headroom for the tight pair; smoke keeps the shape with a
     quarter of the depth. *)
  let steps = if perf_smoke then 16 else 64 in
  let times = List.init steps (fun k -> 6 * (k + 1)) in
  Propane.Campaign.make ~name:"layered-plan" ~targets
    ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
    ~times:(List.map Simkernel.Sim_time.of_ms times)
    ~errors:(Propane.Error_model.bit_flips ~width:16)

let plan_bench () =
  section "Plan: adaptive vs uniform runs-to-resolved (layered SUT)";
  let system = Lazy.force plan_system in
  let model = Dataflow.Builder.model system in
  let campaign = plan_campaign () in
  let total = Propane.Campaign.size campaign in
  let ntargets = List.length campaign.Propane.Campaign.targets in
  Printf.printf "campaign: %d targets, %d runs available\n" ntargets total;
  (* Post-hoc judgement, identical for both modes: stream the executed
     outcomes into a fresh live analysis and ask whether every module
     ranking is resolved at the 95% level. *)
  let resolved_of results =
    let live =
      Propane.Live.create ~model ~targets:campaign.Propane.Campaign.targets ()
    in
    let digest =
      List.fold_left
        (fun _ o -> Propane.Live.observe live o)
        (Propane.Live.digest live)
        (Propane.Results.outcomes results)
    in
    (if Sys.getenv_opt "PROPANE_PLAN_DEBUG" <> None then
       match Propane.Live.snapshot live with
       | Error msg -> Printf.printf "  [debug] snapshot: %s\n" msg
       | Ok analysis ->
           List.iter
             (fun (r : Propagation.Ranking.module_row) ->
               Printf.printf "  [debug] %-8s p_rel %.4f [%.4f, %.4f] %s\n"
                 r.module_name r.relative_permeability
                 r.relative_permeability_est.Propagation.Estimate.lo
                 r.relative_permeability_est.Propagation.Estimate.hi
                 (if r.resolved then "resolved" else "UNRESOLVED"))
             (Propagation.Ranking.sort_module_rows
                Propagation.Ranking.By_relative_permeability
                analysis.Propagation.Analysis.module_rows));
    digest.Propane.Live.resolved_modules = digest.Propane.Live.module_count
  in
  let budgeted ~mode ~budget =
    let plan =
      (* Finer refinement rounds than the default budget/8: the
         scheduler re-aims more often, so it overshoots the resolution
         point by less. *)
      Propane.Plan.create ~mode ~round_budget:(max ntargets (total / 16))
        ~budget ~model ~campaign ()
    in
    let results =
      Propane.Runner.run
        ~config:
          (Propane.Runner.Config.make ~seed:42L ~truncate_after_ms:128 ~budget
             ~plan:mode ())
        ~plan
        (Dataflow.Builder.sut system)
        campaign
    in
    (plan, results)
  in
  (* Adaptive: offer everything; the scheduler stops itself the round
     after every ranking resolves. *)
  let adaptive_plan, adaptive_results =
    budgeted ~mode:Propane.Plan.Adaptive ~budget:total
  in
  let adaptive_runs = Propane.Results.count adaptive_results in
  let adaptive_rounds =
    List.fold_left
      (fun acc (r : Propane.Journal.round) -> max acc (r.round + 1))
      0
      (Propane.Plan.rounds adaptive_plan)
  in
  let adaptive_resolved = resolved_of adaptive_results in
  Printf.printf "  %-10s %5d runs in %d rounds, resolved: %b\n" "adaptive"
    adaptive_runs adaptive_rounds adaptive_resolved;
  (* Composition semantics: the adaptive subset's estimates are pure
     counter sums, so observation order cannot matter (the same
     commutativity cell reuse relies on to mix cached and fresh
     counts). *)
  let matrices_in outcomes =
    let stream = Propane.Estimator.Stream.create ~model () in
    List.iter (Propane.Estimator.Stream.observe stream) outcomes;
    Propane.Estimator.Stream.matrices stream
  in
  let outs = Propane.Results.outcomes adaptive_results in
  if not (same_matrices (matrices_in outs) (matrices_in (List.rev outs))) then
    failwith "plan bench: adaptive estimates are not order-independent";
  print_endline
    "  adaptive estimates order-independent (counts, values, intervals)";
  (* Uniform: the smallest even split that resolves, found by binary
     search over the budget (resolution is monotone in runs-per-target
     for this SUT; the probe at [total] guards the assumption). *)
  let uniform_resolves budget =
    let _, results = budgeted ~mode:Propane.Plan.Uniform ~budget in
    resolved_of results
  in
  let uniform_runs =
    if not (uniform_resolves total) then None
    else begin
      let lo = ref ntargets and hi = ref total in
      (* invariant: hi resolves, lo-1 (or nothing below ntargets) *)
      while !lo < !hi do
        let mid = !lo + ((!hi - !lo) / 2) in
        if uniform_resolves mid then hi := mid else lo := mid + 1
      done;
      Some !hi
    end
  in
  (match uniform_runs with
  | Some n -> Printf.printf "  %-10s %5d runs in 1 round, resolved: true\n"
                "uniform" n
  | None ->
      Printf.printf
        "  %-10s never resolves, even spending all %d runs\n" "uniform" total);
  let ratio =
    match uniform_runs with
    | Some n when n > 0 -> float_of_int adaptive_runs /. float_of_int n
    | _ -> Float.nan
  in
  (match uniform_runs with
  | Some n ->
      Printf.printf "  adaptive reaches resolution in %.0f%% of uniform's \
                     runs (%d vs %d)\n"
        (100.0 *. ratio) adaptive_runs n
  | None -> ());
  plan_rows :=
    !plan_rows
    @ [
        {
          p_mode = "adaptive";
          p_budget = total;
          p_runs = adaptive_runs;
          p_rounds = adaptive_rounds;
          p_resolved = adaptive_resolved;
          p_ratio = ratio;
        };
        {
          p_mode = "uniform";
          p_budget = Option.value uniform_runs ~default:total;
          p_runs = Option.value uniform_runs ~default:total;
          p_rounds = 1;
          p_resolved = uniform_runs <> None;
          p_ratio = 1.0;
        };
      ];
  let failed msg =
    Printf.eprintf "plan bench FAILED: %s\n" msg;
    write_bench_json ();
    exit 1
  in
  (* Smoke depth cannot resolve the tight pair by construction; the
     gate only means something at full depth. *)
  if not perf_smoke then begin
    if not adaptive_resolved then
      failed "adaptive stopped with unresolved rankings";
    match uniform_runs with
    | None -> failed "uniform never resolves on this campaign"
    | Some n ->
        if float_of_int adaptive_runs > 0.6 *. float_of_int n then
          failed
            (Printf.sprintf
               "adaptive took %d runs, above 60%% of uniform's %d"
               adaptive_runs n)
  end

let worker_child addr_string =
  let fail msg =
    prerr_endline ("bench worker: " ^ msg);
    exit 1
  in
  match Cluster.Address.of_string addr_string with
  | Error msg -> fail msg
  | Ok connect -> (
      let make (w : Cluster.Protocol.welcome) =
        let sut, c =
          (* The welcome names which cell of the matrix this child
             serves; both sides rebuild the campaign deterministically
             from the environment alone. *)
          if String.equal w.Cluster.Protocol.campaign "layered" then
            (Dataflow.Builder.sut (Lazy.force layered_system),
             layered_campaign ())
          else (Arrestment.System.sut (), throughput_campaign ())
        in
        if w.Cluster.Protocol.total <> Propane.Campaign.size c then
          Error "worker child rebuilt a campaign of the wrong size"
        else
          Ok
            (Propane.Runner.executor
               ~config:(scaling_config ~jobs:1 ())
               ~seed:w.Cluster.Protocol.seed sut c)
      in
      match Cluster.Worker.run ~connect ~make () with
      | Ok _ -> exit 0
      | Error msg -> fail msg)

(* ------------------------------------------------------------------ *)
(* Campaign service: two tenants' campaigns multiplexed over one
   in-process fleet, timing what the control surface costs — the
   submit-to-first-result latency over the HTTP hop, and the aggregate
   runs/sec the daemon sustains with concurrent campaigns.  The
   workload is a [Dataflow.Builder.synthetic] system so SUT cost is a
   knob, not the arrestment physics. *)

let service_modules = if perf_smoke then 8 else 24

let service_system =
  lazy
    (Dataflow.Builder.synthetic ~modules:service_modules ~fan_in:3 ~fan_out:2
       ~feedback:4 ~seed:424242L ())

let service_campaign () =
  let system = Lazy.force service_system in
  let keep = if perf_smoke then 4 else 12 in
  let targets = Dataflow.Builder.injection_targets system in
  let targets = List.filteri (fun i _ -> i < keep) targets in
  let times = if perf_smoke then [ 50 ] else [ 50; 110; 170 ] in
  Propane.Campaign.make ~name:"service-synthetic" ~targets
    ~testcases:[ Propane.Testcase.make ~id:"t0" ~params:[] ]
    ~times:(List.map Simkernel.Sim_time.of_ms times)
    ~errors:(Propane.Error_model.bit_flips ~width:16)

(* Submission body and wire recipe are the same tiny string; tenant
   and seed are all that distinguish the two campaigns. *)
let service_recipe ~tenant ~seed =
  Printf.sprintf "svc-bench;tenant=%s;seed=%Ld" tenant seed

let service_recipe_fields r =
  match String.split_on_char ';' r with
  | [ "svc-bench"; tenant_f; seed_f ] -> (
      match
        (String.split_on_char '=' tenant_f, String.split_on_char '=' seed_f)
      with
      | [ "tenant"; tenant ], [ "seed"; seed ] ->
          Option.map (fun seed -> (tenant, seed)) (Int64.of_string_opt seed)
      | _ -> None)
  | _ -> None

let service_parse body =
  match service_recipe_fields body with
  | None -> Error (Printf.sprintf "unknown submission %S" body)
  | Some (tenant, seed) ->
      let campaign = service_campaign () in
      Ok
        {
          Propane_service.Service.tenant;
          weight = 1;
          name = campaign.Propane.Campaign.name;
          sut = "synthetic";
          total = Propane.Campaign.size campaign;
          recipe = body;
          config = Propane.Runner.Config.make ~seed ~jobs:1 ();
          live = None;
          plan = None;
        }

let service_worker_make (w : Cluster.Protocol.welcome) =
  match service_recipe_fields w.Cluster.Protocol.config with
  | None -> Error "unknown recipe"
  | Some (_tenant, _seed) ->
      let campaign = service_campaign () in
      if Propane.Campaign.size campaign <> w.Cluster.Protocol.total then
        Error "campaign size mismatch"
      else
        Ok
          (Propane.Runner.executor ~seed:w.Cluster.Protocol.seed
             (Dataflow.Builder.sut (Lazy.force service_system))
             campaign)

let service_bench () =
  section "service";
  let state_dir = Filename.temp_file "propane-bench" ".service" in
  Unix.unlink state_dir;
  Unix.mkdir state_dir 0o755;
  let listen =
    Cluster.Address.Unix_sock (Filename.concat state_dir "fleet.sock")
  in
  let http =
    Cluster.Address.Unix_sock (Filename.concat state_dir "http.sock")
  in
  let workers = 2 in
  let verdict = Atomic.make `Continue in
  let cfg =
    Propane_service.Service.config ~listen ~http ~state_dir
      ~parse:service_parse ()
  in
  let daemon =
    Domain.spawn (fun () ->
        Propane_service.Service.run
          ~stop:(fun () -> Atomic.get verdict)
          cfg)
  in
  let fleet =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            Cluster.Worker.join ~connect:listen ~make:service_worker_make ()))
  in
  let finish () =
    Atomic.set verdict `Drain;
    (match Domain.join daemon with
    | Ok () -> ()
    | Error msg -> Printf.eprintf "service bench: daemon: %s\n" msg);
    List.iter (fun d -> ignore (Domain.join d)) fleet
  in
  Fun.protect ~finally:finish (fun () ->
      let module J = Propane_service.Json in
      let get path =
        match
          Propane_service.Http.request ~addr:http ~meth:"GET" ~path ()
        with
        | Error msg -> failwith ("service bench: GET " ^ path ^ ": " ^ msg)
        | Ok (_, body) -> (
            match J.parse body with
            | Ok json -> json
            | Error msg -> failwith ("service bench: " ^ msg))
      in
      let submit ~tenant ~seed =
        let body = service_recipe ~tenant ~seed in
        match
          Propane_service.Http.request ~body ~addr:http ~meth:"POST"
            ~path:"/campaigns" ()
        with
        | Error msg -> failwith ("service bench: submit: " ^ msg)
        | Ok (201, resp) -> (
            match
              Result.to_option (J.parse resp) |> fun j ->
              Option.bind j (J.member "id") |> fun j -> Option.bind j J.str
            with
            | Some id -> id
            | None -> failwith "service bench: submit response carries no id")
        | Ok (status, resp) ->
            failwith
              (Printf.sprintf "service bench: submit rejected (%d): %s" status
                 resp)
      in
      let total = Propane.Campaign.size (service_campaign ()) in
      let t0 = Unix.gettimeofday () in
      let ids = [ submit ~tenant:"alice" ~seed:101L;
                  submit ~tenant:"bob" ~seed:202L ] in
      let first_result = Hashtbl.create 4 in
      let jint name json =
        Option.value ~default:0 (Option.bind (J.member name json) J.int)
      in
      let jstr name json =
        Option.value ~default:"" (Option.bind (J.member name json) J.str)
      in
      let rec poll () =
        let states =
          List.map
            (fun id ->
              let c = get ("/campaigns/" ^ id) in
              if jint "completed" c > 0 && not (Hashtbl.mem first_result id)
              then
                Hashtbl.add first_result id (Unix.gettimeofday () -. t0);
              jstr "state" c)
            ids
        in
        if List.exists (fun s -> s = "failed" || s = "cancelled") states then
          failwith "service bench: campaign did not complete"
        else if List.for_all (fun s -> s = "done") states then ()
        else begin
          Unix.sleepf 0.005;
          poll ()
        end
      in
      poll ();
      let seconds = Unix.gettimeofday () -. t0 in
      let first =
        Hashtbl.fold (fun _ t acc -> Float.max t acc) first_result 0.0
      in
      let runs = 2 * total in
      service_rows :=
        !service_rows
        @ [
            {
              s_campaigns = 2;
              s_workers = workers;
              s_modules = service_modules;
              s_runs = runs;
              s_seconds = seconds;
              s_first_result_s = first;
            };
          ];
      Printf.printf
        "2 campaigns x %d runs over %d fleet workers (synthetic, %d \
         modules)\n\
         submit-to-first-result (worst tenant): %.1f ms\n\
         aggregate: %.0f runs/sec (%.2f s wall)\n"
        total workers service_modules (first *. 1000.)
        (float_of_int runs /. seconds)
        seconds)

(* ------------------------------------------------------------------ *)

let targets =
  [
    ("fig345", fig345);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("observations", observations);
    ("ablation", ablation);
    ("models", models);
    ("severity", severity);
    ("uniformity", uniformity);
    ("latency", latency);
    ("sensitivity", sensitivity);
    ("workload", workload);
    ("prob", prob);
    ("perf", perf);
    ("scaling", scaling);
    ("reuse", reuse_bench);
    ("plan", plan_bench);
    ("service", service_bench);
    (* Backwards-compatible alias for the pre-matrix target name. *)
    ("cluster", scaling);
  ]

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [ flag; addr ] when String.equal flag worker_child_flag ->
      worker_child addr
  | args ->
      let requested = match args with [] -> List.map fst targets | l -> l in
      List.iter
        (fun name ->
          match List.assoc_opt name targets with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown target %S; available: %s\n" name
                (String.concat ", " (List.map fst targets));
              exit 2)
        requested;
      write_bench_json ()
