(* The cost-effectiveness argument of the paper's OB3 and OB4, made
   concrete:

   - an executable-assertion EDM on InValue detects errors in its signal
     very well, but InValue has (near) zero error exposure, so the
     detector almost never sees a propagating error;
   - mediocre detectors on the highly exposed SetValue and OutValue
     signals catch far more of the errors that actually reach the
     system output;
   - an ERM (recovery wrapper) on the OB5 cut signals SetValue/OutValue
     reduces system-output failures, while the same wrapper on InValue
     changes almost nothing.

   Run with: dune exec examples/edm_placement.exe *)

let testcases =
  Propane.Testcase.grid
    [
      Propane.Testcase.uniform_axis "mass" ~lo:8_000.0 ~hi:20_000.0 ~steps:2;
      Propane.Testcase.uniform_axis "velocity" ~lo:40.0 ~hi:80.0 ~steps:2;
    ]

let times = List.map Simkernel.Sim_time.of_ms [ 1_000; 3_000 ]

let campaign =
  Propane.Campaign.make ~name:"edm-study"
    ~targets:Arrestment.Model.injection_targets ~testcases ~times
    ~errors:(Propane.Error_model.bit_flips ~width:Arrestment.Signals.width)

let full = Arrestment.Params.pressure_full_scale

let detectors =
  [
    (* The [7]-style assertion on InValue: tight and accurate. *)
    Edm.Detector.make ~name:"EDM-InValue" ~signal:"InValue"
      [
        Edm.Assertion.Range { lo = 0; hi = full };
        Edm.Assertion.Max_rate { per_sample = 9_000 };
      ];
    (* Cruder checks at the high-exposure OB5 locations. *)
    Edm.Detector.make ~name:"EDM-SetValue" ~signal:"SetValue"
      [
        Edm.Assertion.Range { lo = 0; hi = full };
        Edm.Assertion.Max_rate { per_sample = 13_000 };
      ];
    Edm.Detector.make ~name:"EDM-OutValue" ~signal:"OutValue"
      [
        Edm.Assertion.Range { lo = 0; hi = full };
        Edm.Assertion.Max_rate { per_sample = 32_000 };
      ];
    Edm.Detector.make ~name:"EDM-pulscnt" ~signal:"pulscnt"
      [ Edm.Assertion.Non_decreasing; Edm.Assertion.Max_rate { per_sample = 3 } ];
  ]

let failure_rate ?guards () =
  let sut = Arrestment.System.sut ?guards () in
  let results = Propane.Runner.run
      ~config:(Propane.Runner.Config.make ~seed:11L ())
      sut campaign in
  let failures =
    List.length
      (List.filter
         (fun (o : Propane.Results.outcome) ->
           Propane.Results.divergence_of o "TOC2" <> None)
         (Propane.Results.outcomes results))
  in
  (failures, Propane.Results.count results)

let () =
  Format.printf "%a@.@." Propane.Campaign.pp campaign;

  print_endline "== EDM cost effectiveness (OB3) ==";
  let reports =
    Edm.Coverage.assess ~outputs:[ "TOC2" ] ~detectors
      (Arrestment.System.sut ())
      campaign
  in
  List.iter
    (fun r ->
      Format.printf "%a@.@." Edm.Coverage.pp_report r)
    reports;

  print_endline "== ERM placement (OB5 vs low-exposure location) ==";
  let clamp_guard signal =
    {
      Arrestment.System.signal;
      make_transform =
        Edm.Recovery.make_guard
          (Edm.Recovery.Clamp { lo = 0; hi = full });
    }
  in
  let rate_guard signal per_sample =
    {
      Arrestment.System.signal;
      make_transform =
        Edm.Recovery.make_guard
          (Edm.Recovery.Hold_last_if (Edm.Assertion.Max_rate { per_sample }));
    }
  in
  let baseline, total = failure_rate () in
  Printf.printf "no ERM:                      %3d/%d output failures\n"
    baseline total;
  let cut, _ =
    failure_rate
      ~guards:[ rate_guard "SetValue" 13_000; rate_guard "OutValue" 32_000 ]
      ()
  in
  Printf.printf "ERM on SetValue+OutValue:    %3d/%d output failures\n" cut
    total;
  let ob4, _ =
    failure_rate
      ~guards:
        [
          rate_guard "pulscnt" 3;
          rate_guard "SetValue" 13_000;
          rate_guard "OutValue" 32_000;
        ]
      ()
  in
  Printf.printf "ERM per OB4 (+pulscnt):      %3d/%d output failures\n" ob4
    total;
  let weak, _ = failure_rate ~guards:[ clamp_guard "InValue" ] () in
  Printf.printf "ERM on InValue (low X^S):    %3d/%d output failures\n" weak
    total
