(* The full Section 7 study, end to end:

   1. build the static model of the six-module arrestment controller;
   2. run a SWIFI campaign (bit-flips on all 13 module-input signals
      under a mass x velocity workload grid);
   3. estimate the 25 error-permeability values (Table 1);
   4. derive the module and signal measures (Tables 2-3) and the ranked
      propagation paths of TOC2 (Table 4);
   5. print the paper's values side by side.

   The default campaign is a reduced grid so the example finishes in
   about a minute; set STUDY_SCALE=full for the paper-scale campaign
   (25 test cases x 10 instants x 16 bits x 13 signals = 52,000 runs).

   Run with: dune exec examples/arrestment_study.exe *)

let full_scale =
  match Sys.getenv_opt "STUDY_SCALE" with
  | Some "full" -> true
  | Some _ | None -> false

let () =
  let testcases =
    if full_scale then Arrestment.System.paper_testcases
    else
      Propane.Testcase.grid
        [
          Propane.Testcase.uniform_axis "mass" ~lo:8_000.0 ~hi:20_000.0 ~steps:3;
          Propane.Testcase.uniform_axis "velocity" ~lo:40.0 ~hi:80.0 ~steps:3;
        ]
  in
  let times =
    if full_scale then Propane.Campaign.paper_times
    else List.map Simkernel.Sim_time.of_ms [ 500; 2000; 3500; 5000 ]
  in
  let campaign =
    Propane.Campaign.make
      ~name:(if full_scale then "paper-7.3" else "reduced-7.3")
      ~targets:Arrestment.Model.injection_targets ~testcases ~times
      ~errors:(Propane.Error_model.bit_flips ~width:Arrestment.Signals.width)
  in
  Format.printf "%a@." Propane.Campaign.pp campaign;
  let sut = Arrestment.System.sut () in
  let t0 = Sys.time () in
  let results =
    Propane.Runner.run
      ~config:(Propane.Runner.Config.make ~seed:42L ~truncate_after_ms:128 ())
      sut campaign
  in
  Format.printf "campaign done in %.1f s (cpu)@.@." (Sys.time () -. t0);

  match
    Propane.Estimator.estimate_all ~model:Arrestment.Model.system results
  with
  | Error msg -> prerr_endline ("estimation failed: " ^ msg)
  | Ok matrices ->
      let analysis = Propagation.Analysis.run_exn Arrestment.Model.system matrices in
      Report.Table.print
        (Report.Experiments.table1
           ~reference:(Arrestment.Model.paper_matrices ())
           analysis);
      print_newline ();
      Report.Table.print (Report.Experiments.table2 analysis);
      print_newline ();
      Report.Table.print (Report.Experiments.table3 analysis);
      print_newline ();
      Report.Table.print
        (Report.Experiments.table4 analysis Arrestment.Signals.toc2);
      print_newline ();
      (* Estimation detail with confidence intervals for one module. *)
      Report.Table.print
        (Report.Experiments.estimates_table
           (Propane.Estimator.estimate_pairs ~model:Arrestment.Model.system
              ~results "CALC"));
      print_newline ();
      Format.printf "%a@." Edm.Selector.pp
        (Edm.Selector.propose analysis.Propagation.Analysis.placement)
