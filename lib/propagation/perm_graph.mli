(** The permeability graph (Section 4.2, Fig. 3 / Fig. 9).

    Nodes are software modules; each input/output pair [(i, k)] of a
    module [M] contributes one arc per consumer of the signal bound to
    output [k], weighted with the error permeability {m P^M_(i,k)}.
    When output [k] is a system output, the pair contributes an arc to a
    virtual environment sink instead.  There may therefore be more arcs
    between two nodes than there are signals between the corresponding
    modules.

    Incoming arcs of a node feed the {!Exposure} measures; the graph as
    a whole feeds the {!Backtrack_tree} and {!Trace_tree} builders. *)

type pair = { module_name : string; input : int; output : int }
(** Identity of a permeability value: I/O pair [(input, output)] of
    module [module_name], ports 1-based.  This is the paper's
    {m P^M_(i,k)} label (e.g. [{module_name = "CALC"; input = 2; output
    = 1}] for {m P^CALC_(2,1)}). *)

type destination =
  | To_module of string * int  (** consumer module and its input port *)
  | To_environment  (** output [k] is a system output *)

type arc = {
  pair : pair;
  weight : float;  (** the permeability value of the pair *)
  estimate : Estimate.t;  (** the full estimate behind [weight] *)
  signal : Signal.t;  (** signal bound to output [k] of the source *)
  destination : destination;
}

type t

val build :
  System_model.t -> Perm_matrix.t String_map.t -> (t, string) result
(** Builds the graph.  Fails when a module lacks a matrix or a matrix
    has the wrong dimensions.  Zero-weight arcs are {e kept} (the paper
    allows omitting them from drawings; the analysis code filters where
    appropriate). *)

val build_exn : System_model.t -> Perm_matrix.t String_map.t -> t
(** @raise Invalid_argument on the errors {!build} reports. *)

val model : t -> System_model.t
val matrix : t -> string -> Perm_matrix.t
(** @raise Not_found for an unknown module. *)

val permeability : t -> pair -> float
(** Weight of a pair.  @raise Invalid_argument on unknown module/ports. *)

val permeability_estimate : t -> pair -> Estimate.t
(** The full estimate behind a pair's weight.
    @raise Invalid_argument on unknown module/ports. *)

val arcs : t -> arc list
val incoming_arcs : t -> string -> arc list
(** Arcs whose destination is the given module (module-local feedback
    arcs included). *)

val outgoing_arcs : t -> string -> arc list
(** Arcs originating at the given module (one per pair and consumer). *)

val arc_count : t -> int

val pair_equal : pair -> pair -> bool
val pp_pair : Format.formatter -> pair -> unit
(** Prints the paper's notation, e.g. ["P^CALC_{2,1}"]. *)

val pp_arc : Format.formatter -> arc -> unit
val pp : Format.formatter -> t -> unit

module Pair_set : Set.S with type elt = pair
