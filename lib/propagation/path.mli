(** Propagation paths and their weights (Section 4.2).

    A path runs from the root of a backtrack or trace tree to one of its
    leaves.  Its weight is the product of the error-permeability values
    along it: for a backtrack tree rooted at output [O] with leaf input
    [I], the weight is the conditional probability that an error in [O]
    that originated in [I] propagated along exactly this path.

    Given the probability {m Pr(I)} of an error appearing on the input,
    {!adjusted_weight} returns {m P' = Pr(I) * prod P} (the paper's
    adjusted measure). *)

type step = {
  pair : Perm_graph.pair;
  weight : float;
  estimate : Estimate.t;
  signal : Signal.t;
}
(** One arc of the path: the permeability value traversed (with the full
    estimate behind it) and the signal of the node the arc leads to. *)

type terminal =
  | At_system_input
  | At_system_output
  | At_feedback  (** a backtrack path cut at an unrolled feedback leaf *)
  | At_dead_end

type t = {
  source : Signal.t;  (** the tree root *)
  steps : step list;  (** arcs in root-to-leaf order *)
  terminal : terminal;
}

val leaf_signal : t -> Signal.t
(** Signal of the last step ([source] for an empty path). *)

val weight : t -> float
(** Product of the step weights; [1.0] for an empty path. *)

val weight_estimate : t -> Estimate.t
(** Product of the step estimates: the weight with interval bounds
    (product of lower bounds, product of upper bounds). *)

val weight_interval : t -> float * float
(** [Estimate.interval (weight_estimate t)]. *)

val adjusted_weight : input_error_probability:float -> t -> float
(** {m P' = Pr * prod P}.  @raise Invalid_argument unless the
    probability is in [0, 1]. *)

val length : t -> int

val of_backtrack_tree : Backtrack_tree.t -> t list
(** All root-to-leaf paths, in tree order.  22 paths for the paper's
    [TOC2] tree (Table 4 lists the 13 with non-zero weight). *)

val of_trace_tree : Trace_tree.t -> t list

val sort_by_weight : t list -> t list
(** Heaviest first; ties broken by path length (shorter first) then by
    textual rendering, so the order is total and reproducible. *)

val non_zero : t list -> t list
val to_string : t -> string

val pp : Format.formatter -> t -> unit
(** e.g. ["TOC2 <- OutValue <- SetValue <- pulscnt <- PACNT (w=0.123)"]
    for backtrack paths (rendered source-first in traversal order). *)
