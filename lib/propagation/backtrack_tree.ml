type leaf = System_input | Feedback

type node = { signal : Signal.t; kind : kind; children : child list }

and kind =
  | Expanded of { producer : string; output : int }
  | Leaf of leaf

and child = {
  weight : float;
  estimate : Estimate.t;
  pair : Perm_graph.pair;
  node : node;
}

type t = { root : node }

let build graph output =
  let model = Perm_graph.model graph in
  (* [ancestors] is the set of signals on the path from the root to the
     node being expanded (inclusive): repeating a signal would start the
     feedback recursion that step A3 forbids. *)
  let rec expand signal ancestors =
    match System_model.producer model signal with
    | None ->
        invalid_arg
          (Fmt.str "Backtrack_tree.build: signal %a has no producer"
             Signal.pp signal)
    | Some (m, k) ->
        let producer = Sw_module.name m in
        let matrix = Perm_graph.matrix graph producer in
        let child i =
          let child_signal = Sw_module.input_signal m i in
          let estimate = Perm_matrix.estimate matrix ~input:i ~output:k in
          let weight = Estimate.value estimate in
          let pair =
            { Perm_graph.module_name = producer; input = i; output = k }
          in
          let node =
            if System_model.is_system_input model child_signal then
              { signal = child_signal; kind = Leaf System_input; children = [] }
            else if Signal.Set.mem child_signal ancestors then
              { signal = child_signal; kind = Leaf Feedback; children = [] }
            else expand child_signal (Signal.Set.add child_signal ancestors)
          in
          { weight; estimate; pair; node }
        in
        {
          signal;
          kind = Expanded { producer; output = k };
          children =
            List.init (Sw_module.input_count m) (fun i0 -> child (i0 + 1));
        }
  in
  { root = expand output (Signal.Set.singleton output) }

let build_all graph =
  let model = Perm_graph.model graph in
  List.map (build graph) (System_model.system_outputs model)

let rec fold_node f acc node =
  List.fold_left (fun acc c -> fold_node f acc c.node) (f acc node) node.children

let fold f acc t = fold_node f acc t.root

let leaf_count t =
  fold (fun acc n -> if n.children = [] then acc + 1 else acc) 0 t

let node_count t = fold (fun acc _ -> acc + 1) 0 t

let depth t =
  let rec go node =
    match node.children with
    | [] -> 1
    | children ->
        1 + List.fold_left (fun d c -> max d (go c.node)) 0 children
  in
  go t.root

let nodes_of_signal t signal =
  List.rev
    (fold
       (fun acc n -> if Signal.equal n.signal signal then n :: acc else acc)
       [] t)

let pp ppf t =
  let rec pp_node ppf node =
    let pp_child ppf c =
      let marker =
        match c.node.kind with Leaf Feedback -> "==" | Leaf System_input | Expanded _ -> "--"
      in
      Fmt.pf ppf "@[<v 2>%s %a (%.3f) %a@]" marker Perm_graph.pp_pair c.pair
        c.weight pp_node c.node
    in
    match node.children with
    | [] ->
        let tag =
          match node.kind with
          | Leaf System_input -> " [system input]"
          | Leaf Feedback -> " [feedback]"
          | Expanded _ -> ""
        in
        Fmt.pf ppf "%a%s" Signal.pp node.signal tag
    | children ->
        Fmt.pf ppf "%a@,%a" Signal.pp node.signal
          Fmt.(list ~sep:cut pp_child)
          children
  in
  Fmt.pf ppf "@[<v>%a@]" pp_node t.root
