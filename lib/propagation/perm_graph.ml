type pair = { module_name : string; input : int; output : int }

type destination =
  | To_module of string * int
  | To_environment

type arc = {
  pair : pair;
  weight : float;
  estimate : Estimate.t;
  signal : Signal.t;
  destination : destination;
}

type t = {
  model : System_model.t;
  matrices : Perm_matrix.t String_map.t;
  arcs : arc list;
}

let pair_compare a b =
  match String.compare a.module_name b.module_name with
  | 0 -> (
      match Int.compare a.input b.input with
      | 0 -> Int.compare a.output b.output
      | c -> c)
  | c -> c

let pair_equal a b = pair_compare a b = 0

module Pair_set = Set.Make (struct
  type t = pair

  let compare = pair_compare
end)

let module_arcs model matrix m =
  let name = Sw_module.name m in
  let arcs_for_pair i k =
    let signal = Sw_module.output_signal m k in
    let estimate = Perm_matrix.estimate matrix ~input:i ~output:k in
    let weight = Estimate.value estimate in
    let pair = { module_name = name; input = i; output = k } in
    let to_consumers =
      List.map
        (fun (consumer, port) ->
          {
            pair;
            weight;
            estimate;
            signal;
            destination = To_module (Sw_module.name consumer, port);
          })
        (System_model.consumers model signal)
    in
    if System_model.is_system_output model signal then
      { pair; weight; estimate; signal; destination = To_environment }
      :: to_consumers
    else to_consumers
  in
  List.concat
    (List.concat_map
       (fun i ->
         List.init (Sw_module.output_count m) (fun k0 -> arcs_for_pair i (k0 + 1)))
       (List.init (Sw_module.input_count m) (fun i0 -> i0 + 1)))

let build model matrices =
  let check m =
    let name = Sw_module.name m in
    match String_map.find_opt name matrices with
    | None -> Error (Printf.sprintf "no permeability matrix for module %S" name)
    | Some matrix ->
        if
          Perm_matrix.input_count matrix <> Sw_module.input_count m
          || Perm_matrix.output_count matrix <> Sw_module.output_count m
        then
          Error
            (Printf.sprintf
               "matrix for module %S is %dx%d but the module has %d inputs \
                and %d outputs"
               name
               (Perm_matrix.input_count matrix)
               (Perm_matrix.output_count matrix)
               (Sw_module.input_count m) (Sw_module.output_count m))
        else Ok matrix
  in
  let rec go acc = function
    | [] ->
        let arcs =
          List.concat_map
            (fun m ->
              module_arcs model
                (String_map.find (Sw_module.name m) matrices)
                m)
            (System_model.modules model)
        in
        Ok { model; matrices = acc; arcs }
    | m :: rest -> (
        match check m with
        | Error _ as e -> e
        | Ok matrix -> go (String_map.add (Sw_module.name m) matrix acc) rest)
  in
  go String_map.empty (System_model.modules model)

let build_exn model matrices =
  match build model matrices with
  | Ok t -> t
  | Error msg -> invalid_arg ("Perm_graph.build_exn: " ^ msg)

let model t = t.model
let matrix t name = String_map.find name t.matrices

let permeability_estimate t pair =
  match String_map.find_opt pair.module_name t.matrices with
  | None ->
      invalid_arg
        (Printf.sprintf "Perm_graph.permeability: unknown module %S"
           pair.module_name)
  | Some m -> Perm_matrix.estimate m ~input:pair.input ~output:pair.output

let permeability t pair = Estimate.value (permeability_estimate t pair)

let arcs t = t.arcs

let incoming_arcs t name =
  List.filter
    (fun a ->
      match a.destination with
      | To_module (dst, _) -> String.equal dst name
      | To_environment -> false)
    t.arcs

let outgoing_arcs t name =
  List.filter (fun a -> String.equal a.pair.module_name name) t.arcs

let arc_count t = List.length t.arcs

let pp_pair ppf p =
  Fmt.pf ppf "P^%s_{%d,%d}" p.module_name p.input p.output

let pp_destination ppf = function
  | To_module (m, i) -> Fmt.pf ppf "%s.in%d" m i
  | To_environment -> Fmt.string ppf "environment"

let pp_arc ppf a =
  Fmt.pf ppf "@[<h>%a = %.3f : %s --%a--> %a@]" pp_pair a.pair a.weight
    a.pair.module_name Signal.pp a.signal pp_destination a.destination

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_arc) t.arcs
