type leaf = System_output | Dead_end

type node = { signal : Signal.t; kind : kind; children : child list }

and kind =
  | Root
  | Produced of { producer : string; output : int }
  | Leaf_of of leaf * string * int

and child = {
  weight : float;
  estimate : Estimate.t;
  pair : Perm_graph.pair;
  node : node;
}

type t = { root : node }

let build graph input =
  let model = Perm_graph.model graph in
  (* Children of a node carrying [signal]: for every consumer (M, i) of
     [signal] and every output k of M, one child weighted P^M_{i,k}.
     [ancestors] is the signal set on the root path; a child whose
     signal repeats an ancestor is omitted (feedback is followed once,
     its recursion never). *)
  let rec children_of signal ancestors =
    List.concat_map
      (fun (m, i) ->
        let name = Sw_module.name m in
        let matrix = Perm_graph.matrix graph name in
        List.filter_map
          (fun k0 ->
            let k = k0 + 1 in
            let child_signal = Sw_module.output_signal m k in
            if Signal.Set.mem child_signal ancestors then None
            else
              let estimate = Perm_matrix.estimate matrix ~input:i ~output:k in
              let weight = Estimate.value estimate in
              let pair =
                { Perm_graph.module_name = name; input = i; output = k }
              in
              let node =
                if System_model.is_system_output model child_signal then
                  {
                    signal = child_signal;
                    kind = Leaf_of (System_output, name, k);
                    children = [];
                  }
                else
                  let ancestors = Signal.Set.add child_signal ancestors in
                  match children_of child_signal ancestors with
                  | [] when System_model.consumers model child_signal = [] ->
                      {
                        signal = child_signal;
                        kind = Leaf_of (Dead_end, name, k);
                        children = [];
                      }
                  | children ->
                      {
                        signal = child_signal;
                        kind = Produced { producer = name; output = k };
                        children;
                      }
              in
              Some { weight; estimate; pair; node })
          (List.init (Sw_module.output_count m) Fun.id))
      (System_model.consumers model signal)
  in
  if System_model.consumers model input = [] then
    invalid_arg
      (Fmt.str "Trace_tree.build: signal %a has no consumer" Signal.pp input);
  {
    root =
      {
        signal = input;
        kind = Root;
        children = children_of input (Signal.Set.singleton input);
      };
  }

let build_all graph =
  let model = Perm_graph.model graph in
  List.map (build graph) (System_model.system_inputs model)

let rec fold_node f acc node =
  List.fold_left (fun acc c -> fold_node f acc c.node) (f acc node) node.children

let fold f acc t = fold_node f acc t.root

let leaf_count t =
  fold (fun acc n -> if n.children = [] then acc + 1 else acc) 0 t

let node_count t = fold (fun acc _ -> acc + 1) 0 t

let depth t =
  let rec go node =
    match node.children with
    | [] -> 1
    | children -> 1 + List.fold_left (fun d c -> max d (go c.node)) 0 children
  in
  go t.root

let pp ppf t =
  let rec pp_node ppf node =
    match node.children with
    | [] ->
        let tag =
          match node.kind with
          | Leaf_of (System_output, _, _) -> " [system output]"
          | Leaf_of (Dead_end, _, _) -> " [dead end]"
          | Root | Produced _ -> ""
        in
        Fmt.pf ppf "%a%s" Signal.pp node.signal tag
    | children ->
        let pp_child ppf c =
          Fmt.pf ppf "@[<v 2>-- %a (%.3f) %a@]" Perm_graph.pp_pair c.pair
            c.weight pp_node c.node
        in
        Fmt.pf ppf "%a@,%a" Signal.pp node.signal
          Fmt.(list ~sep:cut pp_child)
          children
  in
  Fmt.pf ppf "@[<v>%a@]" pp_node t.root
