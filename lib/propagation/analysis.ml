type t = {
  graph : Perm_graph.t;
  backtrack_trees : (Signal.t * Backtrack_tree.t) list;
  trace_trees : (Signal.t * Trace_tree.t) list;
  module_rows : Ranking.module_row list;
  signal_rows : Ranking.signal_row list;
  output_paths : (Signal.t * Ranking.path_row list) list;
  input_paths : (Signal.t * Ranking.path_row list) list;
  placement : Placement.t;
}

let run model matrices =
  match Perm_graph.build model matrices with
  | Error _ as e -> e
  | Ok graph ->
      let backtrack_trees =
        List.map
          (fun s -> (s, Backtrack_tree.build graph s))
          (System_model.system_outputs model)
      in
      let trace_trees =
        List.map
          (fun s -> (s, Trace_tree.build graph s))
          (System_model.system_inputs model)
      in
      Ok
        {
          graph;
          backtrack_trees;
          trace_trees;
          module_rows = Ranking.module_rows graph;
          signal_rows = Ranking.signal_rows graph;
          output_paths =
            List.map
              (fun (s, tree) -> (s, Ranking.path_rows tree))
              backtrack_trees;
          input_paths =
            List.map
              (fun (s, tree) -> (s, Ranking.trace_path_rows tree))
              trace_trees;
          placement = Placement.recommend graph;
        }

let run_exn model matrices =
  match run model matrices with
  | Ok t -> t
  | Error msg -> invalid_arg ("Analysis.run_exn: " ^ msg)

let pp_summary ppf t =
  let pp_tree_stats what count ppf (s, _tree) =
    Fmt.pf ppf "%s tree for %a: %d paths" what Signal.pp s count
  in
  let pp_bt ppf ((s, tree) as e) =
    pp_tree_stats "backtrack" (Backtrack_tree.leaf_count tree) ppf e;
    ignore s
  in
  let pp_tt ppf ((s, tree) as e) =
    pp_tree_stats "trace" (Trace_tree.leaf_count tree) ppf e;
    ignore s
  in
  Fmt.pf ppf
    "@[<v>modules:@,%a@,signals:@,%a@,%a@,%a@,placement:@,%a@]"
    Fmt.(list ~sep:cut Ranking.pp_module_row)
    t.module_rows
    Fmt.(list ~sep:cut Ranking.pp_signal_row)
    t.signal_rows
    Fmt.(list ~sep:cut pp_bt)
    t.backtrack_trees
    Fmt.(list ~sep:cut pp_tt)
    t.trace_trees Placement.pp t.placement

module Engine = struct
  module S = Set.Make (String)

  type analysis = t

  (* Every weight in a tree comes from a child arc's [pair]; the set of
     module names over those pairs is exactly the set of matrices the
     tree depends on (its shape depends only on the model).  A tree
     whose support is untouched by an update is reused as-is, which is
     what makes snapshots after a single-module update cheap — and,
     because the reused artifacts are the very values a fresh batch run
     would recompute from the same matrices, snapshots stay identical
     to [run] on the current matrices. *)
  let backtrack_support tree =
    Backtrack_tree.fold
      (fun acc (n : Backtrack_tree.node) ->
        List.fold_left
          (fun acc (c : Backtrack_tree.child) ->
            S.add c.pair.Perm_graph.module_name acc)
          acc n.children)
      S.empty tree

  let trace_support tree =
    Trace_tree.fold
      (fun acc (n : Trace_tree.node) ->
        List.fold_left
          (fun acc (c : Trace_tree.child) ->
            S.add c.pair.Perm_graph.module_name acc)
          acc n.children)
      S.empty tree

  type cached = {
    snapshot : analysis;
    backtrack_supports : (Signal.t * S.t) list;
    trace_supports : (Signal.t * S.t) list;
  }

  type engine = {
    model : System_model.t;
    mutable matrices : Perm_matrix.t String_map.t;
    mutable dirty : S.t;
    mutable cache : cached option;
  }

  let create model =
    { model; matrices = String_map.empty; dirty = S.empty; cache = None }

  let matrices e = e.matrices
  let dirty_count e = S.cardinal e.dirty

  let update e name matrix =
    match String_map.find_opt name e.matrices with
    | Some old when Perm_matrix.equal_estimates ~eps:0.0 old matrix -> ()
    | _ ->
        e.matrices <- String_map.add name matrix e.matrices;
        e.dirty <- S.add name e.dirty

  let assoc_signal s l =
    List.find_map (fun (s', v) -> if Signal.equal s s' then Some v else None) l

  let rebuild e (graph : Perm_graph.t) =
    (* [clean supports s] holds when the tree rooted at [s] only reads
       matrices that did not change since the cached snapshot — its
       tree and the path table derived from it can be reused. *)
    let clean supports s =
      match e.cache with
      | None -> false
      | Some c -> (
          match assoc_signal s (supports c) with
          | None -> false
          | Some support -> S.is_empty (S.inter support e.dirty))
    in
    let cached find s =
      match e.cache with
      | None -> None
      | Some c -> assoc_signal s (find c.snapshot)
    in
    let bt_clean = clean (fun c -> c.backtrack_supports) in
    let tt_clean = clean (fun c -> c.trace_supports) in
    let backtrack_trees =
      List.map
        (fun s ->
          match
            if bt_clean s then cached (fun snap -> snap.backtrack_trees) s
            else None
          with
          | Some tree -> (s, tree)
          | None -> (s, Backtrack_tree.build graph s))
        (System_model.system_outputs e.model)
    in
    let trace_trees =
      List.map
        (fun s ->
          match
            if tt_clean s then cached (fun snap -> snap.trace_trees) s
            else None
          with
          | Some tree -> (s, tree)
          | None -> (s, Trace_tree.build graph s))
        (System_model.system_inputs e.model)
    in
    let snapshot =
      {
        graph;
        backtrack_trees;
        trace_trees;
        module_rows = Ranking.module_rows graph;
        signal_rows = Ranking.signal_rows graph;
        output_paths =
          List.map
            (fun (s, tree) ->
              match
                if bt_clean s then cached (fun snap -> snap.output_paths) s
                else None
              with
              | Some rows -> (s, rows)
              | None -> (s, Ranking.path_rows tree))
            backtrack_trees;
        input_paths =
          List.map
            (fun (s, tree) ->
              match
                if tt_clean s then cached (fun snap -> snap.input_paths) s
                else None
              with
              | Some rows -> (s, rows)
              | None -> (s, Ranking.trace_path_rows tree))
            trace_trees;
        placement = Placement.recommend graph;
      }
    in
    e.cache <-
      Some
        {
          snapshot;
          backtrack_supports =
            List.map
              (fun (s, tree) -> (s, backtrack_support tree))
              backtrack_trees;
          trace_supports =
            List.map (fun (s, tree) -> (s, trace_support tree)) trace_trees;
        };
    e.dirty <- S.empty;
    snapshot

  let snapshot e =
    match e.cache with
    | Some c when S.is_empty e.dirty -> Ok c.snapshot
    | _ -> (
        match Perm_graph.build e.model e.matrices with
        | Error _ as err -> err
        | Ok graph -> Ok (rebuild e graph))

  let snapshot_exn e =
    match snapshot e with
    | Ok t -> t
    | Error msg -> invalid_arg ("Analysis.Engine.snapshot_exn: " ^ msg)
end
