let incoming t name = Perm_graph.incoming_arcs t name

let incoming_arc_count t name = List.length (incoming t name)

let module_exposure_nw t name =
  List.fold_left (fun acc (a : Perm_graph.arc) -> acc +. a.weight) 0.0
    (incoming t name)

let module_exposure t name =
  match incoming t name with
  | [] -> 0.0
  | arcs ->
      let m =
        System_model.find_module_exn (Perm_graph.model t) name
      in
      List.fold_left (fun acc (a : Perm_graph.arc) -> acc +. a.weight) 0.0 arcs
      /. float_of_int (Sw_module.pair_count m)

let module_exposure_nw_estimate t name =
  Estimate.sum (List.map (fun (a : Perm_graph.arc) -> a.estimate) (incoming t name))

let module_exposure_estimate t name =
  match incoming t name with
  | [] -> Estimate.zero
  | arcs ->
      let m = System_model.find_module_exn (Perm_graph.model t) name in
      Estimate.scale
        (1.0 /. float_of_int (Sw_module.pair_count m))
        (Estimate.sum (List.map (fun (a : Perm_graph.arc) -> a.estimate) arcs))

let signal_exposure t signal =
  let model = Perm_graph.model t in
  match System_model.producer model signal with
  | None -> 0.0
  | Some (m, k) ->
      Perm_matrix.column_sum (Perm_graph.matrix t (Sw_module.name m)) ~output:k

let signal_exposure_estimate t signal =
  let model = Perm_graph.model t in
  match System_model.producer model signal with
  | None -> Estimate.zero
  | Some (m, k) ->
      Perm_matrix.column_sum_estimate
        (Perm_graph.matrix t (Sw_module.name m))
        ~output:k

let signal_exposure_via_trees trees signal =
  let child_pairs (node : Backtrack_tree.node) =
    List.map (fun (c : Backtrack_tree.child) -> (c.pair, c.weight)) node.children
  in
  let pairs =
    List.concat_map
      (fun tree ->
        List.concat_map child_pairs (Backtrack_tree.nodes_of_signal tree signal))
      trees
  in
  (* Eq. (6): each arc counts once even when the signal generates
     several nodes across (or within) the trees. *)
  let _, total =
    List.fold_left
      (fun (seen, total) (pair, weight) ->
        if Perm_graph.Pair_set.mem pair seen then (seen, total)
        else (Perm_graph.Pair_set.add pair seen, total +. weight))
      (Perm_graph.Pair_set.empty, 0.0)
      pairs
  in
  total
