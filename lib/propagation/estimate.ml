type t = { value : float; n_err : int; n_inj : int; lo : float; hi : float }

(* Invariant: 0 <= lo <= value <= hi, no NaN; counts are non-negative
   with n_err <= n_inj, and both are 0 unless the estimate came from
   [of_counts]. *)

let wilson_interval ~errors ~trials =
  if errors < 0 || trials < 0 || errors > trials then
    invalid_arg "Estimate.wilson_interval: need 0 <= errors <= trials";
  if trials = 0 then (0.0, 1.0)
  else
    let z = 1.959963984540054 (* 97.5th percentile of N(0,1) *) in
    let n = float_of_int trials in
    let p = float_of_int errors /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = p +. (z2 /. (2.0 *. n)) in
    let spread = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
    (* In exact arithmetic the interval lies within [0, 1] and contains
       p, but at the boundaries (errors = 0 or errors = trials)
       floating-point rounding can push an endpoint a few ulps past
       either property; clamp so both always hold. *)
    ( Float.max 0.0 (Float.min p ((centre -. spread) /. denom)),
      Float.min 1.0 (Float.max p ((centre +. spread) /. denom)) )

let exact v =
  if Float.is_nan v || v < 0.0 || v > 1.0 then
    invalid_arg (Printf.sprintf "Estimate.exact: value %g not in [0,1]" v);
  { value = v; n_err = 0; n_inj = 0; lo = v; hi = v }

let of_counts ~errors ~trials =
  let lo, hi = wilson_interval ~errors ~trials in
  let value =
    if trials = 0 then 0.0 else float_of_int errors /. float_of_int trials
  in
  (* The Wilson interval always contains the point estimate, but keep
     the invariant robust against rounding at the boundaries. *)
  {
    value;
    n_err = errors;
    n_inj = trials;
    lo = Float.min lo value;
    hi = Float.max hi value;
  }

let value t = t.value
let interval t = (t.lo, t.hi)
let width t = t.hi -. t.lo
let is_measured t = t.n_inj > 0
let zero = exact 0.0
let one = exact 1.0

(* Derived estimates: values and bounds propagate, counts do not. *)
let derived ~value ~lo ~hi = { value; n_err = 0; n_inj = 0; lo; hi }

let mul a b =
  derived ~value:(a.value *. b.value) ~lo:(a.lo *. b.lo) ~hi:(a.hi *. b.hi)

let add a b =
  derived ~value:(a.value +. b.value) ~lo:(a.lo +. b.lo) ~hi:(a.hi +. b.hi)

let prod = List.fold_left mul one
let sum = List.fold_left add zero

let scale f t =
  if Float.is_nan f || f < 0.0 then
    invalid_arg "Estimate.scale: factor must be non-negative";
  derived ~value:(f *. t.value) ~lo:(f *. t.lo) ~hi:(f *. t.hi)

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi
let separated a b = not (overlaps a b)

let equal ?(eps = 1e-12) a b =
  a.n_err = b.n_err && a.n_inj = b.n_inj
  && Float.abs (a.value -. b.value) <= eps
  && Float.abs (a.lo -. b.lo) <= eps
  && Float.abs (a.hi -. b.hi) <= eps

let pp ppf t =
  if t.lo = t.hi then Fmt.pf ppf "%.3f" t.value
  else if is_measured t then
    Fmt.pf ppf "%.3f [%.3f, %.3f] (%d/%d)" t.value t.lo t.hi t.n_err t.n_inj
  else Fmt.pf ppf "%.3f [%.3f, %.3f]" t.value t.lo t.hi
