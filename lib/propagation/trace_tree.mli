(** Trace trees: input error tracing (Section 4.2, steps B1-B4).

    A trace tree is rooted at a system input signal.  Expanding a node
    carrying a signal consumed at input [i] of module [M] creates one
    child per output [k] of [M]; the child carries the signal bound to
    output [k] and the arc to it is weighted {m P^M_(i,k)}.  A signal
    consumed by several modules expands through each consumer (the
    paper's systems are single-consumer; this is a safe generalisation).

    Children become leaves when their signal is a system output.
    Module-local feedback is followed exactly once: a child whose signal
    already appears on the root path is omitted entirely (Fig. 12: "we
    do not have a child node from [i] that is [i] itself"), while the
    remaining outputs still generate sub-trees.  A signal that is neither
    consumed nor a system output becomes a {!Dead_end} leaf. *)

type leaf =
  | System_output
  | Dead_end  (** internal signal nobody consumes (not in the paper) *)

type node = {
  signal : Signal.t;
  kind : kind;
  children : child list;
}

and kind =
  | Root
  | Produced of { producer : string; output : int }
  | Leaf_of of leaf * string * int
      (** leaf signal together with the module/output that produced it *)

and child = {
  weight : float;
  estimate : Estimate.t;
  pair : Perm_graph.pair;
  node : node;
}

type t = { root : node }

val build : Perm_graph.t -> Signal.t -> t
(** [build graph input] builds the trace tree rooted at [input].
    @raise Invalid_argument if [input] has no consumer at all. *)

val build_all : Perm_graph.t -> t list
(** One tree per declared system input (step B4). *)

val leaf_count : t -> int
val node_count : t -> int
val depth : t -> int

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val pp : Format.formatter -> t -> unit
