type step = {
  pair : Perm_graph.pair;
  weight : float;
  estimate : Estimate.t;
  signal : Signal.t;
}

type terminal =
  | At_system_input
  | At_system_output
  | At_feedback
  | At_dead_end

type t = { source : Signal.t; steps : step list; terminal : terminal }

let leaf_signal t =
  match List.rev t.steps with [] -> t.source | last :: _ -> last.signal

let weight t = List.fold_left (fun acc s -> acc *. s.weight) 1.0 t.steps

let weight_estimate t = Estimate.prod (List.map (fun s -> s.estimate) t.steps)
let weight_interval t = Estimate.interval (weight_estimate t)

let adjusted_weight ~input_error_probability t =
  if
    Float.is_nan input_error_probability
    || input_error_probability < 0.0
    || input_error_probability > 1.0
  then invalid_arg "Path.adjusted_weight: probability not in [0,1]";
  input_error_probability *. weight t

let length t = List.length t.steps

let of_backtrack_tree (tree : Backtrack_tree.t) =
  let rec go rev_steps (node : Backtrack_tree.node) =
    match node.children with
    | [] ->
        let terminal =
          match node.kind with
          | Backtrack_tree.Leaf Backtrack_tree.System_input -> At_system_input
          | Backtrack_tree.Leaf Backtrack_tree.Feedback -> At_feedback
          | Backtrack_tree.Expanded _ -> At_dead_end
        in
        [
          {
            source = tree.Backtrack_tree.root.signal;
            steps = List.rev rev_steps;
            terminal;
          };
        ]
    | children ->
        List.concat_map
          (fun (c : Backtrack_tree.child) ->
            let step =
              {
                pair = c.pair;
                weight = c.weight;
                estimate = c.estimate;
                signal = c.node.signal;
              }
            in
            go (step :: rev_steps) c.node)
          children
  in
  go [] tree.Backtrack_tree.root

let of_trace_tree (tree : Trace_tree.t) =
  let rec go rev_steps (node : Trace_tree.node) =
    match node.children with
    | [] ->
        let terminal =
          match node.kind with
          | Trace_tree.Leaf_of (Trace_tree.System_output, _, _) ->
              At_system_output
          | Trace_tree.Leaf_of (Trace_tree.Dead_end, _, _)
          | Trace_tree.Root | Trace_tree.Produced _ ->
              At_dead_end
        in
        [
          {
            source = tree.Trace_tree.root.signal;
            steps = List.rev rev_steps;
            terminal;
          };
        ]
    | children ->
        List.concat_map
          (fun (c : Trace_tree.child) ->
            let step =
              {
                pair = c.pair;
                weight = c.weight;
                estimate = c.estimate;
                signal = c.node.signal;
              }
            in
            go (step :: rev_steps) c.node)
          children
  in
  go [] tree.Trace_tree.root

let pp ppf t =
  let pp_step ppf s = Fmt.pf ppf "%a" Signal.pp s.signal in
  let pp_terminal ppf = function
    | At_system_input -> Fmt.string ppf ""
    | At_system_output -> Fmt.string ppf ""
    | At_feedback -> Fmt.string ppf " [feedback]"
    | At_dead_end -> Fmt.string ppf " [dead end]"
  in
  Fmt.pf ppf "@[<h>%a -> %a%a (w=%.6f)@]" Signal.pp t.source
    Fmt.(list ~sep:(any " -> ") pp_step)
    t.steps pp_terminal t.terminal (weight t)

let to_string t = Fmt.str "%a" pp t

let sort_by_weight paths =
  let cmp a b =
    match Float.compare (weight b) (weight a) with
    | 0 -> (
        match Int.compare (length a) (length b) with
        | 0 -> String.compare (to_string a) (to_string b)
        | c -> c)
    | c -> c
  in
  List.stable_sort cmp paths

let non_zero paths = List.filter (fun p -> weight p > 0.0) paths
