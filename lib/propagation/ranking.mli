(** Tabulated measures with reproducible orderings.

    The functions here compute the rows behind the paper's Tables 2-4:
    per-module permeability/exposure (Table 2), per-signal exposure
    (Table 3) and weighted propagation paths (Table 4).  All sorts are
    total (ties broken by name) so repeated runs print identically.

    Every row also carries the {!Estimate.t} behind each measure and a
    [resolved] flag: a row is resolved when its confidence interval for
    the ordering measure does not overlap the next row's, i.e. the rank
    order of the two adjacent rows cannot be inverted by estimation
    noise at the 95% level.  Rows built from postulated (exact) matrices
    have zero-width intervals and are always resolved. *)

type module_row = {
  module_name : string;
  relative_permeability : float;  (** {m P^M}, Eq. (2) *)
  non_weighted_permeability : float;  (** {m Pbar^M}, Eq. (3) *)
  exposure : float;  (** {m X^M}, Eq. (4) *)
  non_weighted_exposure : float;  (** {m Xbar^M}, Eq. (5) *)
  relative_permeability_est : Estimate.t;
  non_weighted_permeability_est : Estimate.t;
  exposure_est : Estimate.t;
  non_weighted_exposure_est : Estimate.t;
  resolved : bool;
      (** rank vs. the next row is outside overlapping CIs (see above) *)
}

type signal_row = {
  signal : Signal.t;
  exposure : float;  (** {m X^S}, Eq. (6) *)
  exposure_est : Estimate.t;
  resolved : bool;
}

type path_row = {
  rank : int;  (** 1-based position after sorting by weight *)
  path : Path.t;
  weight : float;
  interval : float * float;  (** interval product bounds of the weight *)
  resolved : bool;
}

type module_key =
  | By_relative_permeability
  | By_non_weighted_permeability
  | By_exposure
  | By_non_weighted_exposure

val module_rows : Perm_graph.t -> module_row list
(** One row per module, in system declaration order.  [resolved] is
    judged against the neighbours in the {!By_relative_permeability}
    ranking (the primary ordering of Table 2). *)

val sort_module_rows : module_key -> module_row list -> module_row list
(** Descending by the chosen measure; ties broken by module name.
    [resolved] is recomputed for the chosen key. *)

val signal_rows : Perm_graph.t -> signal_row list
(** One row per internal signal (system inputs have exposure 0 and are
    omitted, matching Table 3), sorted descending by exposure. *)

val path_rows : ?include_zero:bool -> Backtrack_tree.t -> path_row list
(** Paths of a backtrack tree sorted heaviest-first and ranked.  By
    default zero-weight paths are dropped, as in Table 4 (13 of the 22
    paths survive for the paper's system); pass [~include_zero:true] to
    keep all. *)

val trace_path_rows : ?include_zero:bool -> Trace_tree.t -> path_row list
(** Same for the paths of a trace tree. *)

val pp_module_row : Format.formatter -> module_row -> unit
val pp_signal_row : Format.formatter -> signal_row -> unit
val pp_path_row : Format.formatter -> path_row -> unit
