(** Error-permeability matrices.

    For a module with [m] inputs and [n] outputs, the permeability matrix
    holds the [m * n] values {m P^M_(i,k) = Pr(error on output k | error
    on input i)} of Eq. (1).  All entries are probabilities in [0, 1].

    Every cell is an {!Estimate.t}: a matrix built from experimental
    counts ({!set_estimate}, {!of_estimates}) remembers [n_err]/[n_inj]
    and the 95% confidence interval of each cell, while the float-based
    constructors ({!of_rows}, {!set}) produce postulated values with
    zero-width intervals.  The float accessors below see only the point
    values, so code that does not care about uncertainty is unaffected.

    The two module-level measures of Section 4.1 are derived from the
    matrix: {!relative} is Eq. (2) and {!non_weighted} is Eq. (3). *)

type t

val create : inputs:int -> outputs:int -> t
(** All-zero matrix.  @raise Invalid_argument unless both dimensions are
    at least 1. *)

val of_rows : float array array -> t
(** [of_rows rows] builds a matrix where [rows.(i-1).(k-1)] is
    {m P_(i,k)}, every cell an exact (zero-width) estimate.
    @raise Invalid_argument if the array is empty, ragged, or contains a
    value outside [0, 1] (NaN included). *)

val of_estimates : Estimate.t array array -> t
(** Like {!of_rows} for full estimates.  @raise Invalid_argument if the
    array is empty, ragged, or an estimate's bounds leave [0, 1]. *)

val input_count : t -> int
val output_count : t -> int

val get : t -> input:int -> output:int -> float
(** 1-based ports.  @raise Invalid_argument when out of range. *)

val estimate : t -> input:int -> output:int -> Estimate.t
(** The full estimate behind a cell.  @raise Invalid_argument when out
    of range. *)

val set : t -> input:int -> output:int -> float -> t
(** Functional update to an exact value.  @raise Invalid_argument if the
    value is outside [0, 1] or the ports are out of range. *)

val set_estimate : t -> input:int -> output:int -> Estimate.t -> t
(** Functional update keeping counts and interval.
    @raise Invalid_argument if the estimate's bounds leave [0, 1] or the
    ports are out of range. *)

val relative : t -> float
(** Eq. (2): {m P^M = (1 / (m n)) * sum_i sum_k P_(i,k)}, in [0, 1]. *)

val non_weighted : t -> float
(** Eq. (3): {m Pbar^M = sum_i sum_k P_(i,k)}, in [0, m*n]. *)

val relative_estimate : t -> Estimate.t
(** Eq. (2) with interval bounds propagated cell-wise. *)

val non_weighted_estimate : t -> Estimate.t
(** Eq. (3) with interval bounds propagated cell-wise. *)

val row : t -> input:int -> float array
(** Copy of the permeabilities from one input to every output. *)

val column : t -> output:int -> float array
(** Copy of the permeabilities from every input to one output. *)

val row_sum : t -> input:int -> float
val column_sum : t -> output:int -> float
val row_sum_estimate : t -> input:int -> Estimate.t
val column_sum_estimate : t -> output:int -> Estimate.t

val fold : (input:int -> output:int -> float -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over all pairs in row-major order, ports 1-based. *)

val fold_estimates :
  (input:int -> output:int -> Estimate.t -> 'a -> 'a) -> t -> 'a -> 'a
(** {!fold} over the full estimates. *)

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise comparison of point values with tolerance [eps] (default
    [1e-12]); provenance is ignored. *)

val equal_estimates : ?eps:float -> t -> t -> bool
(** Entry-wise comparison including counts and interval bounds. *)

val pp : Format.formatter -> t -> unit
(** Point values only (unchanged by the estimate rebase). *)

val pp_estimates : Format.formatter -> t -> unit
(** Cells with counts and intervals where present. *)
