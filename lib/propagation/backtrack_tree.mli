(** Backtrack trees: output error tracing (Section 4.2, steps A1-A4).

    A backtrack tree is rooted at a system output signal.  Expanding a
    node carrying a signal produced as output [k] of module [M] creates
    one child per input [i] of [M]; the child carries the signal bound to
    input [i] and the arc to it is weighted {m P^M_(i,k)}.

    Children become leaves when their signal is a system input, or when
    the signal already occurs on the path from the root (a feedback: the
    paper unrolls module-local feedback exactly once and never follows
    the recursion, shown as the double line of Fig. 4 / Fig. 10).  The
    same ancestor rule also terminates cross-module cycles, a
    generalisation documented in DESIGN.md. *)

type leaf =
  | System_input  (** the signal enters the system from the environment *)
  | Feedback
      (** the signal already appears on the root path; the "special
          relation to its parent node" of step A3 *)

type node = {
  signal : Signal.t;
  kind : kind;
  children : child list;  (** empty for leaves *)
}

and kind =
  | Expanded of { producer : string; output : int }
      (** internal node: the signal is output [output] of [producer] *)
  | Leaf of leaf

and child = {
  weight : float;
  estimate : Estimate.t;
  pair : Perm_graph.pair;
  node : node;
}
(** The arc from the parent: [pair] identifies the permeability value
    {m P^M_(i,k)}, [weight] is its point value and [estimate] the full
    estimate behind it. *)

type t = { root : node }

val build : Perm_graph.t -> Signal.t -> t
(** [build graph output] builds the backtrack tree rooted at [output].

    @raise Invalid_argument if [output] is not produced by any module
    (the paper requires the root to be a system output; any internally
    produced signal is accepted, which is useful for signal-level
    analysis). *)

val build_all : Perm_graph.t -> t list
(** One tree per declared system output (step A4). *)

val leaf_count : t -> int
(** Number of root-to-leaf paths (22 for the paper's target system
    output [TOC2]). *)

val node_count : t -> int
val depth : t -> int

val nodes_of_signal : t -> Signal.t -> node list
(** All nodes (root included, leaves included) carrying the given
    signal; a signal may generate multiple nodes (see signal [B1] in
    Fig. 4).  Feeds the signal-exposure measure of Eq. (6). *)

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering; feedback leaves are marked with ["=="] (the
    paper's double line). *)
