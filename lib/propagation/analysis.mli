(** End-to-end propagation analysis.

    [run model matrices] performs the complete pipeline of Sections 4-5:
    build the permeability graph, grow the backtrack tree of every system
    output and the trace tree of every system input, tabulate the module
    and signal measures, enumerate and rank propagation paths, and derive
    placement recommendations.  This is the function a user of the
    library calls after estimating (or postulating) the permeability
    matrices. *)

type t = {
  graph : Perm_graph.t;
  backtrack_trees : (Signal.t * Backtrack_tree.t) list;
      (** one per system output, in declaration order *)
  trace_trees : (Signal.t * Trace_tree.t) list;
      (** one per system input, in declaration order *)
  module_rows : Ranking.module_row list;  (** Table 2 *)
  signal_rows : Ranking.signal_row list;  (** Table 3 *)
  output_paths : (Signal.t * Ranking.path_row list) list;
      (** Table 4: per system output, non-zero paths heaviest first *)
  input_paths : (Signal.t * Ranking.path_row list) list;
  placement : Placement.t;
}

val run :
  System_model.t -> Perm_matrix.t String_map.t -> (t, string) result
(** Fails with the message of {!Perm_graph.build} on inconsistent
    matrices. *)

val run_exn : System_model.t -> Perm_matrix.t String_map.t -> t
(** @raise Invalid_argument on the errors {!run} reports. *)

val pp_summary : Format.formatter -> t -> unit
(** Compact human-readable overview of every computed artifact. *)

(** Incremental analysis over streaming matrix updates.

    An engine holds the current per-module matrices and a dirty set of
    the modules whose matrix changed since the last snapshot.  Feeding
    it one {!Engine.update} per estimator refresh and calling
    {!Engine.snapshot} yields exactly what a batch {!run} over the
    current matrices would return — the equivalence is property-tested
    — but trees and path tables whose module support is untouched by
    the dirty set are reused from the previous snapshot instead of
    being rebuilt, so a snapshot after a single-module update costs a
    fraction of a full run.  This is the sink behind live campaign
    analysis ([Propane.Live]): estimator updates stream in run by run
    and the current rankings are always one (cheap) snapshot away. *)
module Engine : sig
  type engine

  val create : System_model.t -> engine
  (** An engine with no matrices: {!snapshot} fails until every module
      has received an {!update}. *)

  val update : engine -> string -> Perm_matrix.t -> unit
  (** [update e name matrix] replaces module [name]'s matrix.  The
      module is marked dirty only when the matrix actually differs
      (estimate-level comparison), so feeding identical matrices is
      free. *)

  val matrices : engine -> Perm_matrix.t String_map.t
  (** The matrices fed so far. *)

  val dirty_count : engine -> int
  (** Modules changed since the last snapshot (0 right after one). *)

  val snapshot : engine -> (t, string) result
  (** The analysis of the current matrices; identical to
      [run model matrices].  Recomputes only artifacts whose module
      support intersects the dirty set; with an empty dirty set the
      cached snapshot returns without any work.  Fails like {!run} when
      a module still lacks a matrix or dimensions mismatch. *)

  val snapshot_exn : engine -> t
  (** @raise Invalid_argument on the errors {!snapshot} reports. *)
end
