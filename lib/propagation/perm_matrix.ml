type t = { cells : Estimate.t array array }

(* Invariant: [cells] is rectangular and non-empty, every entry is a
   probability estimate (value and bounds in [0, 1]).  All construction
   goes through [check_value] / [check_estimate]. *)

let check_value ~ctx v =
  if Float.is_nan v || v < 0.0 || v > 1.0 then
    invalid_arg (Printf.sprintf "Perm_matrix.%s: value %g not in [0,1]" ctx v)

let check_estimate ~ctx (e : Estimate.t) =
  if e.Estimate.hi > 1.0 then
    invalid_arg
      (Printf.sprintf "Perm_matrix.%s: estimate bound %g not in [0,1]" ctx
         e.Estimate.hi)

let create ~inputs ~outputs =
  if inputs < 1 || outputs < 1 then
    invalid_arg "Perm_matrix.create: dimensions must be >= 1";
  { cells = Array.make_matrix inputs outputs Estimate.zero }

let of_estimates cells =
  if Array.length cells = 0 then invalid_arg "Perm_matrix.of_estimates: no rows";
  let cols = Array.length cells.(0) in
  if cols = 0 then invalid_arg "Perm_matrix.of_estimates: no columns";
  Array.iter
    (fun r ->
      if Array.length r <> cols then
        invalid_arg "Perm_matrix.of_estimates: ragged rows";
      Array.iter (check_estimate ~ctx:"of_estimates") r)
    cells;
  { cells = Array.map Array.copy cells }

let of_rows rows =
  if Array.length rows = 0 then invalid_arg "Perm_matrix.of_rows: no rows";
  let cols = Array.length rows.(0) in
  if cols = 0 then invalid_arg "Perm_matrix.of_rows: no columns";
  Array.iter
    (fun r ->
      if Array.length r <> cols then
        invalid_arg "Perm_matrix.of_rows: ragged rows";
      Array.iter (check_value ~ctx:"of_rows") r)
    rows;
  { cells = Array.map (Array.map Estimate.exact) rows }

let input_count t = Array.length t.cells
let output_count t = Array.length t.cells.(0)

let check_ports t ~ctx ~input ~output =
  if input < 1 || input > input_count t then
    invalid_arg (Printf.sprintf "Perm_matrix.%s: input %d out of range" ctx input);
  if output < 1 || output > output_count t then
    invalid_arg
      (Printf.sprintf "Perm_matrix.%s: output %d out of range" ctx output)

let estimate t ~input ~output =
  check_ports t ~ctx:"estimate" ~input ~output;
  t.cells.(input - 1).(output - 1)

let get t ~input ~output =
  check_ports t ~ctx:"get" ~input ~output;
  Estimate.value t.cells.(input - 1).(output - 1)

let set_estimate t ~input ~output e =
  check_ports t ~ctx:"set_estimate" ~input ~output;
  check_estimate ~ctx:"set_estimate" e;
  let cells = Array.map Array.copy t.cells in
  cells.(input - 1).(output - 1) <- e;
  { cells }

let set t ~input ~output v =
  check_ports t ~ctx:"set" ~input ~output;
  check_value ~ctx:"set" v;
  set_estimate t ~input ~output (Estimate.exact v)

let fold_estimates f t acc =
  let acc = ref acc in
  Array.iteri
    (fun i r ->
      Array.iteri (fun k e -> acc := f ~input:(i + 1) ~output:(k + 1) e !acc) r)
    t.cells;
  !acc

let fold f t acc =
  fold_estimates
    (fun ~input ~output e acc -> f ~input ~output (Estimate.value e) acc)
    t acc

let non_weighted t = fold (fun ~input:_ ~output:_ v acc -> acc +. v) t 0.0

let relative t =
  non_weighted t /. float_of_int (input_count t * output_count t)

let estimates t =
  fold_estimates (fun ~input:_ ~output:_ e acc -> e :: acc) t [] |> List.rev

let non_weighted_estimate t = Estimate.sum (estimates t)

let relative_estimate t =
  Estimate.scale
    (1.0 /. float_of_int (input_count t * output_count t))
    (non_weighted_estimate t)

let row t ~input =
  check_ports t ~ctx:"row" ~input ~output:1;
  Array.map Estimate.value t.cells.(input - 1)

let column t ~output =
  check_ports t ~ctx:"column" ~input:1 ~output;
  Array.map (fun r -> Estimate.value r.(output - 1)) t.cells

let row_sum t ~input = Array.fold_left ( +. ) 0.0 (row t ~input)
let column_sum t ~output = Array.fold_left ( +. ) 0.0 (column t ~output)

let row_sum_estimate t ~input =
  check_ports t ~ctx:"row_sum_estimate" ~input ~output:1;
  Estimate.sum (Array.to_list t.cells.(input - 1))

let column_sum_estimate t ~output =
  check_ports t ~ctx:"column_sum_estimate" ~input:1 ~output;
  Estimate.sum (List.map (fun r -> r.(output - 1)) (Array.to_list t.cells))

let equal ?(eps = 1e-12) a b =
  input_count a = input_count b
  && output_count a = output_count b
  && fold
       (fun ~input ~output v ok ->
         ok && Float.abs (v -. get b ~input ~output) <= eps)
       a true

let equal_estimates ?eps a b =
  input_count a = input_count b
  && output_count a = output_count b
  && fold_estimates
       (fun ~input ~output e ok ->
         ok && Estimate.equal ?eps e (estimate b ~input ~output))
       a true

let pp ppf t =
  let pp_row ppf r =
    Fmt.pf ppf "@[<h>%a@]"
      Fmt.(array ~sep:sp (using Estimate.value (fmt "%.3f")))
      r
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(array ~sep:cut pp_row) t.cells

let pp_estimates ppf t =
  let pp_row ppf r = Fmt.pf ppf "@[<h>%a@]" Fmt.(array ~sep:(any "  ") Estimate.pp) r in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(array ~sep:cut pp_row) t.cells
