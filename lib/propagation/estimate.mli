(** A permeability value together with its provenance.

    The paper estimates every permeability experimentally as
    {m P_(i,k) = n_err / n_inj} (Section 6); an analysis built on bare
    floats cannot tell a well-measured 0.5 from a single coin flip.  An
    estimate keeps the point value, the raw counts behind it and a 95%
    Wilson score interval, so every derived measure (exposure, path
    weights, rankings) can carry interval bounds and report whether an
    ordering is statistically resolved.

    Two provenances exist: {!of_counts} for measured values (interval
    from the counts) and {!exact} for postulated or analytically known
    values (zero-width interval, no counts).  Interval arithmetic here
    is deliberately simple — products and sums of bounds — which is
    conservative: it brackets the true propagation of uncertainty
    without modelling correlations between estimates. *)

type t = private {
  value : float;  (** the point value, {m n_err / n_inj} or postulated *)
  n_err : int;  (** observed errors; 0 for exact values *)
  n_inj : int;  (** injections behind the estimate; 0 for exact values *)
  lo : float;  (** lower 95% confidence bound, [lo <= value] *)
  hi : float;  (** upper 95% confidence bound, [value <= hi] *)
}

val wilson_interval : errors:int -> trials:int -> float * float
(** 95% Wilson score interval for a binomial proportion, clamped to
    [[0, 1]] and guaranteed to contain [errors/trials] (the closed form
    can drift a few ulps past either property at the boundaries);
    [(0., 1.)] when [trials = 0].
    @raise Invalid_argument if [errors] is outside [0, trials]. *)

val exact : float -> t
(** A postulated or analytically known probability: zero-width interval
    and no counts.  @raise Invalid_argument outside [0, 1] (NaN
    included). *)

val of_counts : errors:int -> trials:int -> t
(** A measured estimate: value [errors/trials] (0 when [trials = 0],
    the convention of an unmeasured pair) and the Wilson interval of
    the counts — the maximally uninformative [(0, 1)] when nothing was
    measured.  @raise Invalid_argument if [errors] is outside
    [0, trials]. *)

val value : t -> float
val interval : t -> float * float

val width : t -> float
(** [hi - lo]; 0 for exact values. *)

val is_measured : t -> bool
(** [true] iff the estimate came from {!of_counts} with at least one
    trial. *)

val zero : t
(** [exact 0.] *)

val one : t
(** [exact 1.] *)

(** {1 Interval arithmetic}

    Derived estimates carry no counts ([n_err = n_inj = 0]); only the
    value and the propagated bounds survive.  Sums may exceed 1 — the
    non-weighted measures of Eqs. (3) and (5) are not probabilities. *)

val mul : t -> t -> t
val prod : t list -> t
val add : t -> t -> t
val sum : t list -> t

val scale : float -> t -> t
(** Multiply value and both bounds by a non-negative factor.
    @raise Invalid_argument on a negative or NaN factor. *)

(** {1 Comparison} *)

val overlaps : t -> t -> bool
(** Do the confidence intervals intersect? *)

val separated : t -> t -> bool
(** [not (overlaps a b)]: the ordering of the two values is outside
    each other's confidence interval. *)

val equal : ?eps:float -> t -> t -> bool
(** Value and bounds within [eps] (default [1e-12]) {e and} identical
    counts. *)

val pp : Format.formatter -> t -> unit
(** ["0.500"] for exact values, ["0.500 [0.394, 0.606] (50/100)"] for
    measured ones, ["0.500 [0.300, 0.700]"] for derived ones. *)
