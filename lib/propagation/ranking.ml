type module_row = {
  module_name : string;
  relative_permeability : float;
  non_weighted_permeability : float;
  exposure : float;
  non_weighted_exposure : float;
  relative_permeability_est : Estimate.t;
  non_weighted_permeability_est : Estimate.t;
  exposure_est : Estimate.t;
  non_weighted_exposure_est : Estimate.t;
  resolved : bool;
}

type signal_row = {
  signal : Signal.t;
  exposure : float;
  exposure_est : Estimate.t;
  resolved : bool;
}

type path_row = {
  rank : int;
  path : Path.t;
  weight : float;
  interval : float * float;
  resolved : bool;
}

type module_key =
  | By_relative_permeability
  | By_non_weighted_permeability
  | By_exposure
  | By_non_weighted_exposure

let key_value key row =
  match key with
  | By_relative_permeability -> row.relative_permeability
  | By_non_weighted_permeability -> row.non_weighted_permeability
  | By_exposure -> row.exposure
  | By_non_weighted_exposure -> row.non_weighted_exposure

let key_estimate key row =
  match key with
  | By_relative_permeability -> row.relative_permeability_est
  | By_non_weighted_permeability -> row.non_weighted_permeability_est
  | By_exposure -> row.exposure_est
  | By_non_weighted_exposure -> row.non_weighted_exposure_est

(* A row is resolved when its confidence interval for the sort key does
   not overlap the next row's: the rank order of the two rows cannot be
   inverted by estimation noise at the interval's confidence level.  The
   last row has nothing below it and is trivially resolved.  [rows] must
   already be in descending key order. *)
let resolve_sorted key rows =
  let rec go : module_row list -> module_row list = function
    | [] -> []
    | [ last ] -> [ { last with resolved = true } ]
    | a :: (b :: _ as rest) ->
        {
          a with
          resolved =
            Estimate.separated (key_estimate key a) (key_estimate key b);
        }
        :: go rest
  in
  go rows

let sort_by_key key rows =
  let cmp a b =
    match Float.compare (key_value key b) (key_value key a) with
    | 0 -> String.compare a.module_name b.module_name
    | c -> c
  in
  List.stable_sort cmp rows

let sort_module_rows key rows = resolve_sorted key (sort_by_key key rows)

let module_rows graph =
  let model = Perm_graph.model graph in
  let rows =
    List.map
      (fun m ->
        let name = Sw_module.name m in
        let matrix = Perm_graph.matrix graph name in
        {
          module_name = name;
          relative_permeability = Perm_matrix.relative matrix;
          non_weighted_permeability = Perm_matrix.non_weighted matrix;
          exposure = Exposure.module_exposure graph name;
          non_weighted_exposure = Exposure.module_exposure_nw graph name;
          relative_permeability_est = Perm_matrix.relative_estimate matrix;
          non_weighted_permeability_est = Perm_matrix.non_weighted_estimate matrix;
          exposure_est = Exposure.module_exposure_estimate graph name;
          non_weighted_exposure_est = Exposure.module_exposure_nw_estimate graph name;
          resolved = true;
        })
      (System_model.modules model)
  in
  (* Rows are returned in declaration order (Table 2), so resolvedness
     is judged against the primary ranking of that table: relative
     permeability. *)
  let resolved_by_name =
    List.map
      (fun r -> (r.module_name, r.resolved))
      (sort_module_rows By_relative_permeability rows)
  in
  List.map
    (fun (r : module_row) ->
      { r with resolved = List.assoc r.module_name resolved_by_name })
    rows

let signal_rows graph =
  let model = Perm_graph.model graph in
  let rows =
    List.map
      (fun signal ->
        {
          signal;
          exposure = Exposure.signal_exposure graph signal;
          exposure_est = Exposure.signal_exposure_estimate graph signal;
          resolved = true;
        })
      (System_model.internal_signals model)
  in
  let cmp a b =
    match Float.compare b.exposure a.exposure with
    | 0 -> Signal.compare a.signal b.signal
    | c -> c
  in
  let sorted = List.stable_sort cmp rows in
  let rec resolve = function
    | [] -> []
    | [ last ] -> [ { last with resolved = true } ]
    | a :: (b : signal_row) :: rest ->
        { a with resolved = Estimate.separated a.exposure_est b.exposure_est }
        :: resolve (b :: rest)
  in
  resolve sorted

let rank_paths ?(include_zero = false) paths =
  let paths = if include_zero then paths else Path.non_zero paths in
  let ranked =
    List.mapi
      (fun idx path ->
        {
          rank = idx + 1;
          path;
          weight = Path.weight path;
          interval = Path.weight_interval path;
          resolved = true;
        })
      (Path.sort_by_weight paths)
  in
  let rec resolve = function
    | [] -> []
    | [ last ] -> [ { last with resolved = true } ]
    | a :: (b : path_row) :: rest ->
        {
          a with
          resolved =
            Estimate.separated
              (Path.weight_estimate a.path)
              (Path.weight_estimate b.path);
        }
        :: resolve (b :: rest)
  in
  resolve ranked

let path_rows ?include_zero tree =
  rank_paths ?include_zero (Path.of_backtrack_tree tree)

let trace_path_rows ?include_zero tree =
  rank_paths ?include_zero (Path.of_trace_tree tree)

let pp_module_row ppf r =
  Fmt.pf ppf "@[<h>%-10s P=%.3f Pnw=%.3f X=%.3f Xnw=%.3f@]" r.module_name
    r.relative_permeability r.non_weighted_permeability r.exposure
    r.non_weighted_exposure

let pp_signal_row ppf r =
  Fmt.pf ppf "@[<h>%-14s X=%.3f@]" (Signal.name r.signal) r.exposure

let pp_path_row ppf r =
  Fmt.pf ppf "@[<h>%2d. %a@]" r.rank Path.pp r.path
