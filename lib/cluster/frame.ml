let max_payload = 16 * 1024 * 1024

let encode payload =
  let n = String.length payload in
  if n > max_payload then
    invalid_arg
      (Printf.sprintf "Frame.encode: %d-byte payload exceeds %d" n max_payload);
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)

type decoder = {
  mutable pending : string;  (* received, not yet decoded *)
  mutable poisoned : string option;
}

let decoder () = { pending = ""; poisoned = None }

let feed d chunk =
  if String.length chunk > 0 && d.poisoned = None then
    d.pending <- d.pending ^ chunk

let buffered d = String.length d.pending

let next d =
  match d.poisoned with
  | Some msg -> Error msg
  | None ->
      if String.length d.pending < 4 then Ok None
      else
        let len = Int32.to_int (String.get_int32_be d.pending 0) in
        if len < 0 || len > max_payload then begin
          let msg =
            Printf.sprintf "Frame: violating length prefix %d (max %d)" len
              max_payload
          in
          d.poisoned <- Some msg;
          Error msg
        end
        else if String.length d.pending < 4 + len then Ok None
        else begin
          let payload = String.sub d.pending 4 len in
          d.pending <-
            String.sub d.pending (4 + len)
              (String.length d.pending - 4 - len);
          Ok (Some payload)
        end

(* ------------------------------------------------------------------ *)

let rec wait_writable fd =
  match Unix.select [] [ fd ] [] (-1.0) with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_writable fd

let write_all fd frame =
  let total = Bytes.length frame in
  let rec go off =
    if off < total then
      match Unix.write fd frame off (total - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          wait_writable fd;
          go off
  in
  go 0

let write fd payload = write_all fd (Bytes.of_string (encode payload))

(* Concatenated frames are themselves a valid frame stream, so batching
   is pure sender-side amortisation — one syscall for a whole batch of
   results — and needs no protocol change; any decoder peels the frames
   apart as if they had been written one by one. *)
let write_many fd payloads =
  match payloads with
  | [] -> ()
  | payloads ->
      write_all fd
        (Bytes.unsafe_of_string (String.concat "" (List.map encode payloads)))

type reader = { fd : Unix.file_descr; dec : decoder; buf : bytes }

let reader fd = { fd; dec = decoder (); buf = Bytes.create 65536 }

let rec read r =
  match next r.dec with
  | Error _ as e -> e
  | Ok (Some payload) -> Ok (Some payload)
  | Ok None -> (
      match Unix.read r.fd r.buf 0 (Bytes.length r.buf) with
      | 0 ->
          if buffered r.dec = 0 then Ok None
          else
            Error
              (Printf.sprintf "Frame: EOF inside a frame (%d bytes pending)"
                 (buffered r.dec))
      | n ->
          feed r.dec (Bytes.sub_string r.buf 0 n);
          read r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read r)
