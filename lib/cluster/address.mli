(** Coordinator endpoint addresses.

    Two transports: Unix-domain sockets ([unix:/path/to.sock]) for
    same-machine worker pools — no ports to allocate, kernel-enforced
    filesystem permissions — and TCP ([tcp:HOST:PORT]) to attach
    workers across machines. *)

type t =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

val of_string : string -> (t, string) result
(** Parses [unix:PATH] or [tcp:HOST:PORT]. *)

val to_string : t -> string
(** Round-trips with {!of_string}. *)

val pp : Format.formatter -> t -> unit

val listen : ?backlog:int -> t -> Unix.file_descr
(** Binds and listens (non-blocking, close-on-exec).  A stale Unix
    socket path is unlinked first; TCP sets [SO_REUSEADDR].
    @raise Unix.Unix_error when binding fails. *)

val connect :
  ?attempts:int -> ?delay_s:float -> t -> (Unix.file_descr, string) result
(** Connects, retrying [attempts] times (default 40) every [delay_s]
    (default 0.05) on [ECONNREFUSED]/[ENOENT] — a worker spawned
    alongside the coordinator may race its listener by a moment.  The
    returned descriptor is blocking with [TCP_NODELAY] set for TCP
    (messages are small and latency-sensitive). *)

val unlink : t -> unit
(** Removes a Unix socket path, ignoring errors; no-op for TCP.  Call
    after the listener closes. *)
