(** Per-campaign scheduling state, shared by every distributed mode.

    A session owns everything about {e one} campaign's execution that
    is independent of how workers are connected: the outcome table,
    the work queue, the strict-index-order journal cursor (resume,
    cell-reuse deselection, fail-fast out-of-order appends), the live
    analysis feed and the adaptive stop rule.  {!Coordinator.serve}
    drives exactly one session per process; a {!Propane_service}
    daemon multiplexes many sessions over one fleet.

    The determinism contract of [Runner.run] carries over unchanged:
    outcomes depend only on [(seed, index)], so however batches are
    interleaved across workers — or across concurrent sessions — the
    journal each session writes is byte-identical to a serial run of
    the same recipe. *)

type t

val create :
  ?label:string ->
  ?on_event:(Propane.Runner.event -> unit) ->
  ?recipe:string ->
  ?live:Propane.Live.t ->
  ?select:(int -> bool) ->
  ?cells:Propane.Journal.cell list ->
  ?plan:Propane.Plan.t ->
  config:Propane.Runner.Config.t ->
  sut:string ->
  campaign:string ->
  total:int ->
  unit ->
  t
(** Validates the config, opens (or resumes) the journal, replays
    journalled outcomes, primes the live analysis and emits
    [Started]/[Goldens_done].  [label] (default ["Session.create"])
    prefixes [Invalid_argument] messages so each caller keeps its
    historical error text.  [plan] attaches a freshly created budget
    scheduler ({!Propane.Plan}) as the session's work source — it is
    primed with the replayed outcomes, so a resumed planned campaign
    re-derives its round sequence instead of re-executing it; required
    when [config.budget] is set.  Raises [Invalid_argument] exactly
    where [Runner.run] would: invalid config, journal/recipe mismatch
    on resume, [stop_when] without [live], budget without plan. *)

val take : t -> batch_max:int -> workers:int -> int list
(** Pops the next batch off the work source — adaptively sized as
    [queue / (2 * workers)] clamped to [\[1, batch_max\]] — or [[]]
    when nothing is runnable now, the session is draining after a
    satisfied stop rule, or a fail-fast failure is pending.  Under a
    budget plan an empty take can also mean a round barrier is waiting
    on outstanding runs: recorded results refill the queue, so callers
    must keep polling until {!complete}. *)

val requeue : t -> int list -> unit
(** Returns a dead worker's outstanding indices to the {e head} of the
    queue (sorted): the journal's reorder buffer is stalled on exactly
    these indices. *)

val record : t -> index:int -> worker:int -> retries:int ->
  Propane.Results.outcome -> unit
(** Records one completed run: advances the journal cursor, emits
    [Run_done], feeds the live analysis, evaluates the stop rule and
    arms the fail-fast abort.  Duplicate results (a reassigned run
    finishing twice) are dropped — outcomes are index-deterministic so
    the first copy stands.  Raises [Invalid_argument] if [index] is
    outside [0 .. total-1]; callers should validate untrusted indices
    first. *)

val flush : t -> unit
(** Commits batched journal appends; call once per scheduler tick so
    records reach disk at most one tick after the cursor wrote them. *)

val finish : t -> Propane.Results.t
(** Completes the session: writes the out-of-order tail of an
    adaptively stopped campaign, emits [Finished], closes the journal
    and folds the outcome table into results.  Raises
    {!Propane.Runner.Failed_run} (after closing the journal) if
    fail-fast captured a failure. *)

val abort : t -> unit
(** Cancellation path: flushes every completed outcome to the journal
    (out of order past the cursor, so nothing finished is lost), then
    closes it.  No [Finished] event, no results.  Idempotent. *)

val close : t -> unit
(** Flushes and closes the journal without the tail write — the
    crash-consistent shutdown path ([abort] minus the tail).
    Idempotent; [finish]/[abort] call it themselves. *)

val sut : t -> string
val campaign : t -> string
val total : t -> int

val completed : t -> int
(** Runs completed so far, journal replays included. *)

val scheduled : t -> int
(** Replays plus every run the work source has enqueued so far —
    constant for unplanned campaigns, growing round by round under a
    budget plan. *)

val skipped : t -> int
(** Runs replayed from a resumed journal. *)

val pending : t -> int
(** Queue length: runs not yet handed to any worker. *)

val complete : t -> bool
(** The work source is exhausted: no further run will be handed out
    and every handed-out run has an outcome. *)

val planned : t -> bool
(** The session schedules through a budget plan (see {!create}). *)

val stopping : t -> bool
(** The stop rule fired: hand out nothing more, drain outstanding. *)

val failed : t -> (int * Propane.Results.outcome) option
(** The fail-fast failure, if one occurred. *)

val live : t -> Propane.Live.t option
(** The live analysis, for telemetry and ranking snapshots. *)
