(** The versioned cluster wire protocol.

    One {!Frame} payload carries one message.  Messages are encoded in
    a compact binary form — tag byte, big-endian fixed-width integers,
    length-prefixed strings — so every field round-trips byte for
    byte, including crash reasons containing colons, tabs or newlines
    that the line-based on-disk formats must sanitise away
    (property-tested; see [test_cluster.ml]).

    The conversation is strictly pull-based:
    {v
    worker                         coordinator
      Hello {version; host; pid} ->
                                <- Welcome {sut; campaign; seed; total; config}
      Request_batch             ->
                                <- Batch [i0; i1; ...]
      Result {index; outcome}   ->      (one per run, in batch order)
      ...
      Request_batch             ->
                                <- Batch [...] | Done
    v}
    [Heartbeat] may be sent at any time to prove liveness; every
    message counts as one.  The coordinator answers a [Request_batch]
    that arrives while other workers still hold outstanding runs with
    silence (the worker blocks reading) until either new work appears
    — a dead worker's batch being reassigned — or the campaign
    completes with [Done].  [Ping] asks a blocked worker to prove
    liveness with a [Heartbeat].

    A worker whose [Hello] carries the wrong protocol version, or a
    [config_digest] pin that does not match the coordinator's recipe,
    receives [Reject] naming the mismatched field and must exit.

    Fleet mode ({!Propane_service}-style daemons) replaces the opening
    [Hello]/[Welcome] pair with [Join]/[Assign]: a joining worker
    registers without binding to any campaign, and the service sends
    [Assign] — the same [welcome] payload — whenever it (re)targets the
    worker at a campaign, including between batches.  After an
    [Assign], the worker rebuilds its executor and resumes the
    [Request_batch] conversation above. *)

val version : int
(** Current protocol version (2).  Bump on any change to the message
    encodings below. *)

type welcome = {
  sut : string;  (** SUT name, for worker-side validation *)
  campaign : string;  (** campaign name, idem *)
  seed : int64;  (** campaign seed — workers derive per-run RNG from it *)
  total : int;  (** campaign size; indices are [0 .. total-1] *)
  config : string;
      (** opaque application recipe: the CLI encodes the campaign
          construction parameters here so worker processes rebuild the
          exact same campaign without their own flags *)
}

type to_coordinator =
  | Hello of { version : int; host : string; pid : int; config_digest : string }
      (** one-shot handshake; [config_digest = ""] means "any recipe",
          a non-empty digest pins the worker to a specific recipe
          ([Digest.to_hex] of the coordinator's [welcome.config]) *)
  | Join of { version : int; host : string; pid : int }
      (** fleet registration: no campaign binding; the service answers
          with [Assign] when work exists *)
  | Request_batch
  | Result of { index : int; retries : int; outcome : Propane.Results.outcome }
  | Heartbeat

type to_worker =
  | Welcome of welcome
  | Assign of welcome
      (** fleet (re)targeting: rebuild the executor for this campaign,
          then continue requesting batches *)
  | Batch of int list  (** experiment indices to execute, in order *)
  | Ping
  | Done
  | Reject of string

val encode_to_coordinator : to_coordinator -> string
val decode_to_coordinator : string -> (to_coordinator, string) result
val encode_to_worker : to_worker -> string
val decode_to_worker : string -> (to_worker, string) result
(** Decoders never raise: any byte string either decodes or yields a
    descriptive [Error]. *)

val pp_to_coordinator : Format.formatter -> to_coordinator -> unit
val pp_to_worker : Format.formatter -> to_worker -> unit
(** Compact debug rendering (no payload dumps). *)
