let src = Logs.Src.create "cluster.session" ~doc:"per-campaign scheduling"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  label : string;
  sut : string;
  campaign : string;
  total : int;
  fail_fast : bool;
  stop_when : Propane.Live.rule option;
  outcomes : Propane.Results.outcome option array;
  from_journal : bool array;
  deselected : bool array;
  writer : Propane.Journal.writer option;
  mutable next_to_write : int;
  source : Propane.Plan.t;
      (* the shared work source: static cursor or budget plan *)
  journal_had_rounds : bool;
      (* the resumed journal already carries plan-round records *)
  mutable completed : int;
  skipped : int;
  live : Propane.Live.t option;
  mutable stopping : bool;
  mutable failed : (int * Propane.Results.outcome) option;
  mutable closed : bool;
  emit : Propane.Runner.event -> unit;
}

let or_invalid = function Ok v -> v | Error msg -> invalid_arg msg

(* Journal replay for resume: identical validation to Runner.run, same
   error text, so operators can move between local, cluster and
   service modes without relearning failure messages. *)
let replay path ~label ~outcomes ~sut ~campaign ~seed ~total =
  match Propane.Journal.load path with
  | Error msg -> invalid_arg (Printf.sprintf "%s: %s" label msg)
  | Ok j -> (
      match Propane.Journal.validate j ~path ~sut ~campaign ~seed ~total with
      | Error msg -> invalid_arg (Printf.sprintf "%s: %s" label msg)
      | Ok () ->
          let table = Propane.Journal.completed j in
          Hashtbl.iter
            (fun index outcome -> outcomes.(index) <- Some outcome)
            table;
          (Hashtbl.length table, j.Propane.Journal.rounds <> []))

let flush_journal t =
  match t.writer with
  | None -> t.next_to_write <- t.total
  | Some w ->
      while
        t.next_to_write < t.total
        && (t.outcomes.(t.next_to_write) <> None
           || t.deselected.(t.next_to_write))
      do
        (match t.outcomes.(t.next_to_write) with
        | Some outcome when not t.from_journal.(t.next_to_write) ->
            or_invalid (Propane.Journal.append w ~index:t.next_to_write outcome)
        | _ -> ());
        t.next_to_write <- t.next_to_write + 1
      done

let check_stop t =
  match (t.live, t.stop_when) with
  | Some l, Some rule ->
      if (not t.stopping) && Propane.Live.satisfied l rule then begin
        Log.info (fun m ->
            m "%s: stop rule %a satisfied after %d runs; draining" t.campaign
              Propane.Live.pp_rule rule t.completed);
        t.stopping <- true
      end
  | _ -> ()

let create ?(label = "Session.create") ?on_event ?(recipe = "") ?live ?select
    ?cells ?plan ~config ~sut ~campaign ~total () =
  (match Propane.Runner.Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "%s: %s" label msg));
  let {
    Propane.Runner.Config.seed;
    fail_fast;
    jobs;
    journal;
    resume;
    journal_batch;
    stop_when;
    _;
  } =
    config
  in
  if total < 0 then invalid_arg (Printf.sprintf "%s: negative total" label);
  if stop_when <> None && live = None then
    invalid_arg (Printf.sprintf "%s: stop_when requires a live analysis" label);
  if config.Propane.Runner.Config.budget <> None && plan = None then
    invalid_arg (Printf.sprintf "%s: a budget requires a plan" label);
  let emit ev = match on_event with Some f -> f ev | None -> () in
  let outcomes = Array.make total None in
  let skipped, journal_had_rounds =
    match journal with
    | Some path when resume && Sys.file_exists path ->
        replay path ~label ~outcomes ~sut ~campaign ~seed ~total
    | _ -> (0, false)
  in
  let writer =
    match journal with
    | None -> None
    | Some path ->
        Some
          (or_invalid
             (if skipped > 0 then
                Propane.Journal.append_to ~batch:journal_batch path
              else
                (* Cell provenance right after the header, before any
                   outcome — mirroring Runner.run so reuse journals are
                   byte-identical across serial, --jobs, cluster and
                   service modes. *)
                let w =
                  (* The same recipe the workers receive in
                     Welcome/Assign is journalled for [propane replay];
                     serial runs store the identical string, keeping
                     journals byte-identical across modes. *)
                  Propane.Journal.create ~batch:journal_batch
                    ?recipe:
                      (if String.equal recipe "" then None else Some recipe)
                    ~path ~sut ~campaign ~seed ~total ()
                in
                match (w, cells) with
                | Ok w, Some cells ->
                    Result.map
                      (fun () -> w)
                      (Propane.Journal.append_cells w cells)
                | w, _ -> w))
  in
  (* In-order journal merge: [from_journal] marks indices already on
     disk from the resumed journal (never re-appended); [next_to_write]
     chases the first gap, so records hit the journal in strict index
     order whatever order workers complete them in. *)
  let from_journal = Array.map Option.is_some outcomes in
  (* Deselected indices (cell reuse) never produce a record; the
     in-order cursor steps over them so selected runs still stream to
     disk in strict index order. *)
  let deselected =
    match select with
    | None -> Array.make total false
    | Some f -> Array.init total (fun idx -> not (f idx))
  in
  (* The shared work source every distributed mode now pulls from: a
     static single-round cursor for unplanned campaigns (identical
     scheduling to the historical queue), or the budget plan, primed
     with the replayed outcomes so it re-derives its round sequence
     instead of re-executing them. *)
  let source =
    match plan with
    | Some p ->
        Array.iteri
          (fun index -> function
            | Some outcome -> Propane.Plan.prime p ~index outcome
            | None -> ())
          outcomes;
        p
    | None ->
        Propane.Plan.static ?select
          ~done_:(fun idx -> outcomes.(idx) <> None)
          ~total ()
  in
  let t =
    {
      label;
      sut;
      campaign;
      total;
      fail_fast;
      stop_when;
      outcomes;
      from_journal;
      deselected;
      writer;
      next_to_write = 0;
      source;
      journal_had_rounds;
      completed = skipped;
      skipped;
      live;
      stopping = false;
      failed = None;
      closed = false;
      emit;
    }
  in
  Log.info (fun m ->
      m "campaign %s on %s: %d runs (%d journalled)" campaign sut total skipped);
  emit (Propane.Runner.Started { total; skipped; jobs });
  (* Replayed outcomes prime the live analysis in index order, as in
     Runner.run, so a resumed adaptive campaign starts from the same
     evidence an uninterrupted one has at this point. *)
  (match live with
  | Some l when skipped > 0 ->
      Array.iter
        (function
          | Some o -> ignore (Propane.Live.observe l o) | None -> ())
        outcomes;
      emit (Propane.Runner.Analysis_tick (Propane.Live.digest l))
  | _ -> ());
  check_stop t;
  emit (Propane.Runner.Goldens_done { testcases = 0 });
  flush_journal t;
  t

let sut t = t.sut
let campaign t = t.campaign
let total t = t.total
let completed t = t.completed

(* Replays plus every index the source has enqueued so far — constant
   for static sources, growing round by round under a budget plan. *)
let scheduled t = t.skipped + Propane.Plan.fresh_scheduled t.source
let skipped t = t.skipped
let pending t = Propane.Plan.pending t.source
let stopping t = t.stopping
let failed t = t.failed
let live t = t.live
let complete t = Propane.Plan.exhausted t.source
let planned t = Propane.Plan.is_planned t.source

let batch_size t ~batch_max ~workers =
  max 1 (min batch_max (Propane.Plan.pending t.source / max 1 (2 * workers)))

let take t ~batch_max ~workers =
  if t.stopping || t.failed <> None then []
  else
    Propane.Plan.take t.source ~max:(batch_size t ~batch_max ~workers)

let requeue t lost =
  (* Back to the head of the queue: the journal's reorder buffer is
     stalled on exactly these indices. *)
  Propane.Plan.requeue t.source lost

(* Out-of-order safety valve: the reorder buffer may be stalled before
   [index], but the record must reach the disk now; journals tolerate
   out-of-order records, and [from_journal] keeps the cursor from
   appending it twice. *)
let append_out_of_order t index outcome =
  if index >= t.next_to_write && not t.from_journal.(index) then begin
    Option.iter
      (fun w -> or_invalid (Propane.Journal.append w ~index outcome))
      t.writer;
    t.from_journal.(index) <- true
  end

let record t ~index ~worker ~retries outcome =
  if index < 0 || index >= t.total then
    invalid_arg
      (Printf.sprintf "%s: result index %d out of range" t.label index);
  match t.outcomes.(index) with
  | Some _ ->
      (* A reassigned run finished twice; outcomes are
         index-deterministic, so both copies are identical and the
         first stands. *)
      Log.debug (fun m ->
          m "%s: duplicate result for run %d from worker %d" t.campaign index
            worker)
  | None ->
      t.outcomes.(index) <- Some outcome;
      t.completed <- t.completed + 1;
      (* The source sees every completion: a budget plan advances its
         round barrier here (and may refill the queue), a static source
         just ticks towards exhaustion. *)
      Propane.Plan.complete t.source ~index outcome;
      flush_journal t;
      t.emit
        (Propane.Runner.Run_done
           {
             index;
             worker;
             completed = t.completed;
             total = t.total;
             status = outcome.Propane.Results.status;
             retries;
           });
      (match t.live with
      | Some l ->
          t.emit (Propane.Runner.Analysis_tick (Propane.Live.observe l outcome));
          check_stop t
      | None -> ());
      if
        t.fail_fast
        && Propane.Results.is_failed outcome.Propane.Results.status
        && t.failed = None
      then begin
        t.failed <- Some (index, outcome);
        (* fail-fast abort must leave the failure on disk even while
           the cursor is stalled before it. *)
        append_out_of_order t index outcome
      end

let flush t = Option.iter Propane.Journal.flush t.writer

(* The in-order journal cursor stalls at the first never-run index of
   an adaptively stopped (or cancelled) campaign; append the completed
   outcomes beyond it out of order (journals tolerate that) so nothing
   finished is lost. *)
let write_tail t =
  Array.iteri
    (fun index o ->
      match o with Some outcome -> append_out_of_order t index outcome | _ -> ())
    t.outcomes

let close t =
  if not t.closed then begin
    t.closed <- true;
    Option.iter Propane.Journal.close t.writer
  end

let abort t =
  if not t.closed then begin
    write_tail t;
    close t
  end

let finish t =
  (match t.failed with
  | Some (index, outcome) ->
      Log.err (fun m ->
          m "%s: run %d failed and fail_fast is set; aborting" t.campaign index);
      close t;
      raise (Propane.Runner.Failed_run { index; outcome })
  | None -> ());
  let planned = Propane.Plan.is_planned t.source in
  (* A planned campaign leaves never-allocated gaps, so its parked
     records go out first; then the exhausted plan's round history
     lands in one batch — mirroring Runner.run so planned journals stay
     byte-identical across backends.  A rule-stopped plan journals no
     rounds (its resume re-derives them at the real finish), and a
     resumed already-finished journal never doubles them. *)
  if t.stopping || planned then write_tail t;
  (match t.writer with
  | Some w
    when planned
         && (not t.journal_had_rounds)
         && Propane.Plan.exhausted t.source ->
      or_invalid (Propane.Journal.append_rounds w (Propane.Plan.rounds t.source))
  | _ -> ());
  t.emit (Propane.Runner.Finished { completed = t.completed; total = t.total });
  let results = Propane.Results.create ~sut:t.sut ~campaign:t.campaign in
  Array.iter
    (function
      | Some outcome -> Propane.Results.add results outcome
      | None ->
          (* Only an adaptive stop, a cell-reuse selection or a budget
             plan may leave runs unexecuted. *)
          assert (
            t.stop_when <> None
            || Array.exists Fun.id t.deselected
            || t.stopping || planned))
    t.outcomes;
  close t;
  results
