let version = 2

type welcome = {
  sut : string;
  campaign : string;
  seed : int64;
  total : int;
  config : string;
}

type to_coordinator =
  | Hello of { version : int; host : string; pid : int; config_digest : string }
  | Join of { version : int; host : string; pid : int }
  | Request_batch
  | Result of { index : int; retries : int; outcome : Propane.Results.outcome }
  | Heartbeat

type to_worker =
  | Welcome of welcome
  | Assign of welcome
  | Batch of int list
  | Ping
  | Done
  | Reject of string

(* --------------------------- encoding ----------------------------- *)

let add_int b n =
  if n < 0 || n > 0x3FFFFFFF then
    invalid_arg (Printf.sprintf "Protocol: integer %d out of range" n);
  Buffer.add_int32_be b (Int32.of_int n)

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_outcome b (o : Propane.Results.outcome) =
  add_str b o.testcase;
  add_str b o.injection.Propane.Injection.target;
  add_int b (Simkernel.Sim_time.to_ms o.injection.Propane.Injection.at);
  add_str b
    (Propane.Storage.error_to_string o.injection.Propane.Injection.error);
  (match o.status with
  | Propane.Results.Completed -> Buffer.add_uint8 b 0
  | Propane.Results.Crashed { at_ms; reason } ->
      Buffer.add_uint8 b 1;
      add_int b at_ms;
      add_str b reason
  | Propane.Results.Hung { budget_ms } ->
      Buffer.add_uint8 b 2;
      add_int b budget_ms);
  add_int b (List.length o.divergences);
  List.iter
    (fun (d : Propane.Golden.divergence) ->
      add_str b d.signal;
      add_int b d.first_ms)
    o.divergences

let encode_to_coordinator msg =
  let b = Buffer.create 64 in
  (match msg with
  | Hello { version; host; pid; config_digest } ->
      Buffer.add_uint8 b 1;
      add_int b version;
      add_str b host;
      add_int b pid;
      add_str b config_digest
  | Request_batch -> Buffer.add_uint8 b 2
  | Result { index; retries; outcome } ->
      Buffer.add_uint8 b 3;
      add_int b index;
      add_int b retries;
      add_outcome b outcome
  | Heartbeat -> Buffer.add_uint8 b 4
  | Join { version; host; pid } ->
      Buffer.add_uint8 b 5;
      add_int b version;
      add_str b host;
      add_int b pid);
  Buffer.contents b

let add_welcome b { sut; campaign; seed; total; config } =
  add_str b sut;
  add_str b campaign;
  Buffer.add_int64_be b seed;
  add_int b total;
  add_str b config

let encode_to_worker msg =
  let b = Buffer.create 64 in
  (match msg with
  | Welcome w ->
      Buffer.add_uint8 b 1;
      add_welcome b w
  | Assign w ->
      Buffer.add_uint8 b 6;
      add_welcome b w
  | Batch indices ->
      Buffer.add_uint8 b 2;
      add_int b (List.length indices);
      List.iter (add_int b) indices
  | Ping -> Buffer.add_uint8 b 3
  | Done -> Buffer.add_uint8 b 4
  | Reject reason ->
      Buffer.add_uint8 b 5;
      add_str b reason);
  Buffer.contents b

(* --------------------------- decoding ----------------------------- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let need c n what =
  if c.pos + n > String.length c.s then
    raise (Bad (Printf.sprintf "truncated message: missing %s" what))

let get_u8 c what =
  need c 1 what;
  let v = String.get_uint8 c.s c.pos in
  c.pos <- c.pos + 1;
  v

let get_int c what =
  need c 4 what;
  let v = Int32.to_int (String.get_int32_be c.s c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Bad (Printf.sprintf "negative %s" what));
  v

let get_i64 c what =
  need c 8 what;
  let v = String.get_int64_be c.s c.pos in
  c.pos <- c.pos + 8;
  v

let get_str c what =
  let n = get_int c what in
  need c n what;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

(* [List.init] does not promise evaluation order; cursor reads must be
   strictly sequential. *)
let get_list n f =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f () :: acc) in
  go n []

let get_outcome c =
  let testcase = get_str c "testcase" in
  let target = get_str c "target" in
  let at_ms = get_int c "at_ms" in
  let error =
    match Propane.Storage.error_of_string (get_str c "error") with
    | Ok e -> e
    | Error msg -> raise (Bad msg)
  in
  let status =
    match get_u8 c "status tag" with
    | 0 -> Propane.Results.Completed
    | 1 ->
        let at_ms = get_int c "crash at_ms" in
        let reason = get_str c "crash reason" in
        Propane.Results.Crashed { at_ms; reason }
    | 2 -> Propane.Results.Hung { budget_ms = get_int c "hang budget" }
    | t -> raise (Bad (Printf.sprintf "unknown status tag %d" t))
  in
  let ndiv = get_int c "divergence count" in
  let divergences =
    get_list ndiv (fun () ->
        let signal = get_str c "divergence signal" in
        let first_ms = get_int c "divergence time" in
        { Propane.Golden.signal; first_ms })
  in
  {
    Propane.Results.testcase;
    injection =
      Propane.Injection.make ~target
        ~at:(Simkernel.Sim_time.of_ms at_ms)
        ~error;
    divergences;
    status;
  }

let finished c msg =
  if c.pos <> String.length c.s then
    raise
      (Bad
         (Printf.sprintf "%d trailing bytes after message"
            (String.length c.s - c.pos)));
  msg

let decode f s =
  let c = { s; pos = 0 } in
  match finished c (f c) with
  | msg -> Ok msg
  | exception Bad msg -> Error (Printf.sprintf "Protocol: %s" msg)
  | exception Invalid_argument msg -> Error (Printf.sprintf "Protocol: %s" msg)

let decode_to_coordinator =
  decode (fun c ->
      match get_u8 c "message tag" with
      | 1 ->
          let version = get_int c "version" in
          let host = get_str c "host" in
          let pid = get_int c "pid" in
          let config_digest = get_str c "config digest" in
          Hello { version; host; pid; config_digest }
      | 2 -> Request_batch
      | 3 ->
          let index = get_int c "index" in
          let retries = get_int c "retries" in
          let outcome = get_outcome c in
          Result { index; retries; outcome }
      | 4 -> Heartbeat
      | 5 ->
          let version = get_int c "version" in
          let host = get_str c "host" in
          let pid = get_int c "pid" in
          Join { version; host; pid }
      | t -> raise (Bad (Printf.sprintf "unknown message tag %d" t)))

let get_welcome c =
  let sut = get_str c "sut" in
  let campaign = get_str c "campaign" in
  let seed = get_i64 c "seed" in
  let total = get_int c "total" in
  let config = get_str c "config" in
  { sut; campaign; seed; total; config }

let decode_to_worker =
  decode (fun c ->
      match get_u8 c "message tag" with
      | 1 -> Welcome (get_welcome c)
      | 2 ->
          let n = get_int c "batch size" in
          Batch (get_list n (fun () -> get_int c "batch index"))
      | 3 -> Ping
      | 4 -> Done
      | 5 -> Reject (get_str c "reject reason")
      | 6 -> Assign (get_welcome c)
      | t -> raise (Bad (Printf.sprintf "unknown message tag %d" t)))

(* ---------------------------- debug ------------------------------- *)

let pp_to_coordinator ppf = function
  | Hello { version; host; pid; config_digest } ->
      if String.equal config_digest "" then
        Fmt.pf ppf "hello v%d %s/%d" version host pid
      else Fmt.pf ppf "hello v%d %s/%d (pinned %s)" version host pid config_digest
  | Join { version; host; pid } ->
      Fmt.pf ppf "join v%d %s/%d" version host pid
  | Request_batch -> Fmt.string ppf "request-batch"
  | Result { index; retries; outcome } ->
      Fmt.pf ppf "result #%d (%a, %d retries)" index Propane.Results.pp_status
        outcome.Propane.Results.status retries
  | Heartbeat -> Fmt.string ppf "heartbeat"

let pp_to_worker ppf = function
  | Welcome { sut; campaign; total; _ } ->
      Fmt.pf ppf "welcome %s/%s (%d runs)" sut campaign total
  | Assign { sut; campaign; total; _ } ->
      Fmt.pf ppf "assign %s/%s (%d runs)" sut campaign total
  | Batch indices -> Fmt.pf ppf "batch of %d" (List.length indices)
  | Ping -> Fmt.string ppf "ping"
  | Done -> Fmt.string ppf "done"
  | Reject reason -> Fmt.pf ppf "reject (%s)" reason
