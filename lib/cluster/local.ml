let src = Logs.Src.create "cluster.local" ~doc:"local worker pool"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  command : string array;
  mutable pids : int list;
  mutable budget : int;
  mutable stopped : bool;
}

let spawn_one command =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () ->
      Unix.create_process command.(0) command devnull Unix.stdout Unix.stderr)

let spawn ?respawn_budget ~command ~n () =
  if n < 1 then invalid_arg "Local.spawn: n must be >= 1";
  if Array.length command = 0 then invalid_arg "Local.spawn: empty command";
  let budget = match respawn_budget with Some b -> max 0 b | None -> 4 * n in
  let t = { command; pids = []; budget; stopped = false } in
  for _ = 1 to n do
    t.pids <- spawn_one command :: t.pids
  done;
  t

let reap t =
  let gone, alive =
    List.partition
      (fun pid ->
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> false
        | _, status ->
            Log.info (fun m ->
                m "worker process %d exited (%s)" pid
                  (match status with
                  | Unix.WEXITED c -> Printf.sprintf "code %d" c
                  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
            true
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true)
      t.pids
  in
  t.pids <- alive;
  List.length gone

let tend t =
  if not t.stopped then
    let gone = reap t in
    for _ = 1 to min gone t.budget do
      t.budget <- t.budget - 1;
      Log.warn (fun m ->
          m "respawning a worker (%d respawns left)" t.budget);
      t.pids <- spawn_one t.command :: t.pids
    done

let alive t = List.length t.pids

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    ignore (reap t);
    List.iter
      (fun pid ->
        try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
      t.pids;
    (* Grace period, then escalate: a worker blocked in [Unix.read] on
       the coordinator socket dies to SIGTERM immediately; SIGKILL only
       matters if one is wedged in uninterruptible state. *)
    let deadline = Unix.gettimeofday () +. 2.0 in
    while t.pids <> [] && Unix.gettimeofday () < deadline do
      if reap t = 0 then Unix.sleepf 0.02
    done;
    List.iter
      (fun pid ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid)
        with Unix.Unix_error _ -> ())
      t.pids;
    t.pids <- []
  end
