let src = Logs.Src.create "cluster.worker" ~doc:"campaign worker process"

module Log = (val Logs.src_log src : Logs.LOG)

let run ?host ?pid ?on_result ~connect ~make () =
  (* A dying coordinator must surface as EPIPE on our next send, not as
     a fatal SIGPIPE. *)
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  let host = match host with Some h -> h | None -> Unix.gethostname () in
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  match Address.connect connect with
  | Error msg -> Error msg
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let reader = Frame.reader fd in
          let send msg = Frame.write fd (Protocol.encode_to_coordinator msg) in
          let recv () =
            match Frame.read reader with
            | Error msg -> Error msg
            | Ok None -> Error "coordinator closed the connection"
            | Ok (Some payload) -> Protocol.decode_to_worker payload
          in
          let ( let* ) = Result.bind in
          try
            send (Protocol.Hello { version = Protocol.version; host; pid });
            let* welcome =
              match recv () with
              | Ok (Protocol.Welcome w) -> Ok w
              | Ok (Protocol.Reject reason) ->
                  Error (Printf.sprintf "coordinator rejected us: %s" reason)
              | Ok msg ->
                  Error
                    (Fmt.str "expected a welcome, got %a" Protocol.pp_to_worker
                       msg)
              | Error msg -> Error msg
            in
            let* execute = make welcome in
            Log.info (fun m ->
                m "serving %s/%s (%d runs) as %s/%d" welcome.Protocol.sut
                  welcome.Protocol.campaign welcome.Protocol.total host pid);
            let completed = ref 0 in
            let request_batch () =
              match send Protocol.Request_batch with
              | () -> recv ()
              | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> (
                  (* The coordinator may have completed the campaign and
                     closed our socket while this request was in flight;
                     the [Done] it broadcast first is still readable. *)
                  match recv () with
                  | Ok Protocol.Done -> Ok Protocol.Done
                  | Ok _ | Error _ ->
                      Error "connection to coordinator lost: EPIPE (write)")
            in
            let rec batches () =
              let* msg = request_batch () in
              match msg with
              | Protocol.Done -> Ok !completed
              | Protocol.Ping ->
                  send Protocol.Heartbeat;
                  batches ()
              | Protocol.Batch indices ->
                  (* Results are buffered and flushed in one write per
                     batch, halving the per-run syscalls on the hot
                     path; the per-run heartbeat still flows, covering
                     the watchdog.  A failed outcome flushes at once so
                     a fail-fast coordinator aborts promptly. *)
                  let buffered = ref [] in
                  let flush_results () =
                    Frame.write_many fd (List.rev !buffered);
                    buffered := []
                  in
                  List.iter
                    (fun index ->
                      (* The heartbeat covers the (possibly lazy golden
                         plus injection) run about to start. *)
                      send Protocol.Heartbeat;
                      let outcome, retries = execute index in
                      buffered :=
                        Protocol.encode_to_coordinator
                          (Protocol.Result { index; retries; outcome })
                        :: !buffered;
                      if
                        Propane.Results.is_failed
                          outcome.Propane.Results.status
                      then flush_results ();
                      incr completed;
                      match on_result with
                      | Some f -> f ~completed:!completed
                      | None -> ())
                    indices;
                  flush_results ();
                  batches ()
              | Protocol.Welcome _ | Protocol.Reject _ ->
                  Error
                    (Fmt.str "unexpected mid-campaign message %a"
                       Protocol.pp_to_worker msg)
            in
            batches ()
          with Unix.Unix_error (err, fn, _) ->
            Error
              (Printf.sprintf "connection to coordinator lost: %s (%s)"
                 (Unix.error_message err) fn))
