let src = Logs.Src.create "cluster.worker" ~doc:"campaign worker process"

module Log = (val Logs.src_log src : Logs.LOG)

let ignore_sigpipe () =
  (* A dying coordinator must surface as EPIPE on our next send, not as
     a fatal SIGPIPE. *)
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ()

let run ?host ?pid ?(config_digest = "") ?on_result ~connect ~make () =
  ignore_sigpipe ();
  let host = match host with Some h -> h | None -> Unix.gethostname () in
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  match Address.connect connect with
  | Error msg -> Error msg
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let reader = Frame.reader fd in
          let send msg = Frame.write fd (Protocol.encode_to_coordinator msg) in
          let recv () =
            match Frame.read reader with
            | Error msg -> Error msg
            | Ok None -> Error "coordinator closed the connection"
            | Ok (Some payload) -> Protocol.decode_to_worker payload
          in
          let ( let* ) = Result.bind in
          try
            send
              (Protocol.Hello
                 { version = Protocol.version; host; pid; config_digest });
            let* welcome =
              match recv () with
              | Ok (Protocol.Welcome w) -> Ok w
              | Ok (Protocol.Reject reason) ->
                  Error (Printf.sprintf "coordinator rejected us: %s" reason)
              | Ok msg ->
                  Error
                    (Fmt.str "expected a welcome, got %a" Protocol.pp_to_worker
                       msg)
              | Error msg -> Error msg
            in
            let* execute = make welcome in
            Log.info (fun m ->
                m "serving %s/%s (%d runs) as %s/%d" welcome.Protocol.sut
                  welcome.Protocol.campaign welcome.Protocol.total host pid);
            let completed = ref 0 in
            let request_batch () =
              match send Protocol.Request_batch with
              | () -> recv ()
              | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> (
                  (* The coordinator may have completed the campaign and
                     closed our socket while this request was in flight;
                     the [Done] it broadcast first is still readable. *)
                  match recv () with
                  | Ok Protocol.Done -> Ok Protocol.Done
                  | Ok _ | Error _ ->
                      Error "connection to coordinator lost: EPIPE (write)")
            in
            let rec batches () =
              let* msg = request_batch () in
              match msg with
              | Protocol.Done -> Ok !completed
              | Protocol.Ping ->
                  send Protocol.Heartbeat;
                  batches ()
              | Protocol.Batch indices ->
                  (* Results are buffered and flushed in one write per
                     batch, halving the per-run syscalls on the hot
                     path; the per-run heartbeat still flows, covering
                     the watchdog.  A failed outcome flushes at once so
                     a fail-fast coordinator aborts promptly. *)
                  let buffered = ref [] in
                  let flush_results () =
                    Frame.write_many fd (List.rev !buffered);
                    buffered := []
                  in
                  List.iter
                    (fun index ->
                      (* The heartbeat covers the (possibly lazy golden
                         plus injection) run about to start. *)
                      send Protocol.Heartbeat;
                      let outcome, retries = execute index in
                      buffered :=
                        Protocol.encode_to_coordinator
                          (Protocol.Result { index; retries; outcome })
                        :: !buffered;
                      if
                        Propane.Results.is_failed
                          outcome.Propane.Results.status
                      then flush_results ();
                      incr completed;
                      match on_result with
                      | Some f -> f ~completed:!completed
                      | None -> ())
                    indices;
                  flush_results ();
                  batches ()
              | Protocol.Welcome _ | Protocol.Assign _ | Protocol.Reject _ ->
                  Error
                    (Fmt.str "unexpected mid-campaign message %a"
                       Protocol.pp_to_worker msg)
            in
            batches ()
          with Unix.Unix_error (err, fn, _) ->
            Error
              (Printf.sprintf "connection to coordinator lost: %s (%s)"
                 (Unix.error_message err) fn))

let join ?host ?pid ?on_result ~connect ~make () =
  ignore_sigpipe ();
  let host = match host with Some h -> h | None -> Unix.gethostname () in
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  match Address.connect connect with
  | Error msg -> Error msg
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let reader = Frame.reader fd in
          let send msg = Frame.write fd (Protocol.encode_to_coordinator msg) in
          let recv () =
            match Frame.read reader with
            | Error msg -> Error msg
            | Ok None -> Error "service closed the connection"
            | Ok (Some payload) -> Protocol.decode_to_worker payload
          in
          let ( let* ) = Result.bind in
          let completed = ref 0 in
          let rebuild w =
            let* execute = make w in
            Log.info (fun m ->
                m "assigned %s/%s (%d runs) as %s/%d" w.Protocol.sut
                  w.Protocol.campaign w.Protocol.total host pid);
            Ok execute
          in
          (* Unlike the one-shot loop, an idle fleet worker blocks in
             [recv] with nothing outstanding; the service pings it to
             prove liveness and sends [Assign] when work (re)appears.
             Every [Assign] rebuilds the executor — a fresh campaign
             means fresh goldens. *)
          let rec serve_campaign execute =
            send Protocol.Request_batch;
            let* msg = recv () in
            match msg with
            | Protocol.Done -> Ok !completed
            | Protocol.Ping ->
                send Protocol.Heartbeat;
                serve_campaign execute
            | Protocol.Assign w ->
                let* execute = rebuild w in
                serve_campaign execute
            | Protocol.Batch indices ->
                let buffered = ref [] in
                let flush_results () =
                  Frame.write_many fd (List.rev !buffered);
                  buffered := []
                in
                List.iter
                  (fun index ->
                    send Protocol.Heartbeat;
                    let outcome, retries = execute index in
                    buffered :=
                      Protocol.encode_to_coordinator
                        (Protocol.Result { index; retries; outcome })
                      :: !buffered;
                    if Propane.Results.is_failed outcome.Propane.Results.status
                    then flush_results ();
                    incr completed;
                    match on_result with
                    | Some f -> f ~completed:!completed
                    | None -> ())
                  indices;
                flush_results ();
                serve_campaign execute
            | Protocol.Welcome _ | Protocol.Reject _ ->
                Error
                  (Fmt.str "unexpected fleet message %a" Protocol.pp_to_worker
                     msg)
          in
          let rec await_assignment () =
            let* msg = recv () in
            match msg with
            | Protocol.Done -> Ok !completed
            | Protocol.Ping ->
                send Protocol.Heartbeat;
                await_assignment ()
            | Protocol.Assign w ->
                (* From here on [serve_campaign] owns the conversation:
                   a drained campaign leaves the worker parked in its
                   Request_batch, and the service answers with the next
                   [Assign] or the final [Done]. *)
                let* execute = rebuild w in
                serve_campaign execute
            | Protocol.Reject reason ->
                Error (Printf.sprintf "service rejected us: %s" reason)
            | Protocol.Welcome _ | Protocol.Batch _ ->
                Error
                  (Fmt.str "unexpected fleet message %a" Protocol.pp_to_worker
                     msg)
          in
          try
            send (Protocol.Join { version = Protocol.version; host; pid });
            await_assignment ()
          with Unix.Unix_error (err, fn, _) ->
            Error
              (Printf.sprintf "connection to service lost: %s (%s)"
                 (Unix.error_message err) fn))
