type t = Unix_sock of string | Tcp of string * int

let of_string s =
  match String.index_opt s ':' with
  | Some i when String.equal (String.sub s 0 i) "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if String.equal path "" then Error "unix address needs a path"
      else Ok (Unix_sock path)
  | Some i when String.equal (String.sub s 0 i) "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p > 0 && p < 65536 ->
              Ok (Tcp ((if String.equal host "" then "127.0.0.1" else host), p))
          | _ -> Error (Printf.sprintf "bad TCP port %S" port))
      | None -> Error "tcp address needs HOST:PORT")
  | _ ->
      Error
        (Printf.sprintf "invalid address %S (expected unix:PATH or tcp:HOST:PORT)"
           s)

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let pp ppf a = Format.pp_print_string ppf (to_string a)

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host))
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (resolve host, port)

let socket_for = function
  | Unix_sock _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
  | Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0

let unlink = function
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let listen ?(backlog = 64) addr =
  let fd = socket_for addr in
  (try
     Unix.set_close_on_exec fd;
     (match addr with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_sock _ -> unlink addr);
     Unix.bind fd (sockaddr addr);
     Unix.listen fd backlog;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  fd

let connect ?(attempts = 40) ?(delay_s = 0.05) addr =
  let rec go n =
    let fd = socket_for addr in
    match
      Unix.set_close_on_exec fd;
      Unix.connect fd (sockaddr addr)
    with
    | () ->
        (match addr with
        | Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
        | Unix_sock _ -> ());
        Ok fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN) as err, _, _)
      when n > 1 ->
        Unix.close fd;
        ignore err;
        Unix.sleepf delay_s;
        go (n - 1)
    | exception Unix.Unix_error (err, _, _) ->
        Unix.close fd;
        Error
          (Printf.sprintf "cannot connect to %s: %s" (to_string addr)
             (Unix.error_message err))
  in
  go (max 1 attempts)
