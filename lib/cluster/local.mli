(** A pool of local worker processes.

    The [--workers n] convenience mode: the coordinator process spawns
    [n] copies of its own worker entrypoint, lets {!Coordinator.serve}
    schedule them like any remote worker, and reaps them afterwards.
    {!tend} is meant to be the coordinator's [on_tick]: it reaps
    children that died mid-campaign and respawns replacements while the
    respawn budget lasts, so a crashing worker (or one killed by the
    chaos flag in the test suite) degrades throughput instead of
    stranding the campaign.  The budget exists because a worker that
    dies instantly on startup would otherwise respawn forever while the
    coordinator waits for runs that never come. *)

type t

val spawn :
  ?respawn_budget:int ->
  command:string array ->
  n:int ->
  unit ->
  t
(** Starts [n] processes running [command] (argv, [command.(0)] is the
    executable), with stdin from [/dev/null] and stdout/stderr
    inherited.  [respawn_budget] (default [4 * n]) bounds how many
    replacement processes {!tend} may start over the pool's lifetime.
    @raise Unix.Unix_error if a process cannot be spawned. *)

val tend : t -> unit
(** Reaps exited children without blocking and spawns a replacement for
    each, while the budget lasts.  Call it from the coordinator's
    [on_tick]; it is a no-op after {!shutdown}. *)

val alive : t -> int
(** Children currently believed to be running. *)

val shutdown : t -> unit
(** Stops tending, sends SIGTERM to surviving children, and waits for
    them (escalating to SIGKILL after a short grace period).  Workers
    that already exited cleanly — the normal case, after the
    coordinator's [Done] — are just reaped.  Idempotent. *)
