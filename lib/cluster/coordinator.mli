(** The coordinator side of a distributed campaign.

    {!serve} owns everything the paper's brute-force estimation needs
    to survive scaling out to many processes: it hands out batches of
    experiment indices to whichever workers attach, watches per-worker
    heartbeat deadlines, reassigns a dead worker's outstanding runs to
    the survivors, and merges the results into a journal and
    {!Propane.Results.t} that are {e byte-identical} to what a serial
    {!Propane.Runner.run} over the same [(seed, campaign)] produces.

    {b Determinism argument.}  A run's outcome depends only on the
    campaign seed and its experiment index ({!Propane.Runner.executor}),
    so it does not matter which worker executes it, how batches are
    sized, or how many times a run is re-executed after reassignment —
    duplicated results are identical and the first one wins.  The
    journal is written in strict index order from a reorder buffer
    (completed runs beyond the first gap wait in memory), which makes
    the cluster journal byte-identical to the serial one rather than
    merely equivalent, at the price that a coordinator crash re-runs
    the buffered out-of-order tail on resume.

    {b Robustness rules.}  A worker is declared dead when its
    connection drops or when it holds outstanding runs and has not
    sent any message for [heartbeat_timeout_s] (workers heartbeat
    before every run, so the budget must only exceed the slowest
    single run, golden included).  Its outstanding indices return to
    the head of the queue — ahead of unstarted work, because the
    journal's reorder buffer is waiting on them — and the dead
    connection is excluded from further scheduling, mirroring the
    retry semantics of the local engine.  Batch sizes adapt:
    [queue / (2 * workers)] capped at [batch_max] and floored at 1, so
    the campaign tail degenerates to single-run batches and a straggler
    can strand at most one run. *)

val serve :
  ?batch_max:int ->
  ?heartbeat_timeout_s:float ->
  ?on_event:(Propane.Runner.event -> unit) ->
  ?on_tick:(unit -> unit) ->
  ?recipe:string ->
  ?live:Propane.Live.t ->
  ?select:(int -> bool) ->
  ?cells:Propane.Journal.cell list ->
  ?plan:Propane.Plan.t ->
  config:Propane.Runner.Config.t ->
  listen:Unix.file_descr ->
  sut:string ->
  campaign:string ->
  total:int ->
  unit ->
  Propane.Results.t
(** Runs the campaign to completion over whatever workers connect to
    [listen] (an already-listening socket from {!Address.listen} —
    callers bind before spawning workers, so no worker can race the
    listener) and returns the outcomes in campaign order.  The caller
    closes/unlinks the listener's address after {!serve} returns.

    [select] and [cells] mirror {!Propane.Runner.run}: [select]
    restricts scheduling to the experiment indices it accepts (cell
    reuse — workers still execute them under their full-campaign
    indices, so outcomes and journals stay byte-identical to a
    restricted serial run), and [cells] writes cell provenance records
    after the header of a freshly created journal.  [plan] attaches a
    budget scheduler as the session's work source ({!Session.create}):
    rounds allocate from completed results at deterministic barriers,
    so the cluster derives the same round sequence — and writes the
    same journal bytes — as a serial or [--jobs] run of the same
    planned campaign.  While a round barrier waits on outstanding
    runs, idle workers simply park in [Request_batch].

    [config] is the same {!Propane.Runner.Config.t} the local engine
    takes, so serial, domain and cluster modes cannot drift apart in
    accepted options.  Of its fields the coordinator itself uses
    [seed], [fail_fast], [journal], [resume], [journal_batch] (records
    commit at the latest one scheduler tick after the reorder cursor
    wrote them), [stop_when], and [jobs] — the number of workers
    expected to attach, used only for the [Started] event and sizing
    telemetry; more or fewer may actually serve.  Per-run execution
    fields ([max_ms], [truncate_after_ms], [run_timeout_ms],
    [retries]) apply worker-side: embed them in [recipe]
    ({!Propane.Runner.Config.encode}), which is handed verbatim to
    every worker in its {!Protocol.welcome}.  [journal], [resume] and
    [on_event] behave as in {!Propane.Runner.run}; [Goldens_done] is
    emitted immediately with [testcases = 0] (workers run goldens
    lazily in their own processes) and
    {!Propane.Runner.Worker_attached} fires per worker.

    [fail_fast] aborts like the local engine: the first failed outcome
    is journalled and reported, then {!Propane.Runner.Failed_run}
    raises (retries happen worker-side, so an arriving failure has
    already exhausted its budget).

    [on_tick] runs on every scheduler iteration (at least every 250 ms)
    — the hook a local worker pool uses to reap and respawn dead
    processes (see {!Local.tend}); raising from it aborts the campaign.

    [live] / [stop_when] attach live analysis and adaptive stopping as
    in {!Propane.Runner.run}: results feed the analysis as they arrive
    (arrival order, not index order — every order is valid evidence
    and per-run outcomes stay index-deterministic), and once the rule
    is satisfied no further batch is handed out; outstanding batches
    drain, their results are journalled (out of order past the first
    never-run index), and the campaign returns early.

    [SIGPIPE] is set to ignored for the process: a write racing a
    worker's death must fail with [EPIPE] (killing that connection
    only), not kill the coordinator.

    @raise Invalid_argument on bad parameters or a journal that does
    not match the campaign, {!Propane.Runner.Failed_run} under
    [fail_fast], [Sys_error] on journal I/O failure. *)
