(** The worker side of a distributed campaign.

    A worker connects to a coordinator, introduces itself, and then
    pulls batches of experiment indices until the coordinator says the
    campaign is complete.  Every run streams back as its own
    {!Protocol.Result} message, so the coordinator's journal loses at
    most the runs in flight when a worker dies — the same guarantee
    the local engine gives per domain.

    The worker never decides {e what} to run: the coordinator's
    {!Protocol.welcome} names the SUT, campaign, seed and size, plus an
    opaque [config] recipe, and the [make] callback turns that into an
    executor — typically {!Propane.Runner.executor} over a campaign
    rebuilt from the recipe.  Returning [Error] from [make] (an
    unknown SUT, a mismatched size) aborts before any run executes. *)

val run :
  ?host:string ->
  ?pid:int ->
  ?on_result:(completed:int -> unit) ->
  connect:Address.t ->
  make:(Protocol.welcome -> (int -> Propane.Results.outcome * int, string) result) ->
  unit ->
  (int, string) result
(** Serves one campaign; returns the number of runs this worker
    executed once the coordinator sends [Done], or an error if the
    connection, handshake or [make] failed.  [host] (default
    [Unix.gethostname]) and [pid] (default [Unix.getpid]) label this
    worker in the coordinator's telemetry.

    [on_result] is called after each run's result has been sent — a
    test harness hook ({!Propane.Fault}-style): raising from it
    abandons the connection mid-campaign exactly like a crashed worker
    process would, which is how the reassignment path is exercised
    in-process.  The socket is closed however [run] exits, and
    [SIGPIPE] is set to ignored so a dying coordinator surfaces as a
    connection error rather than killing the worker. *)
