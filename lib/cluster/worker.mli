(** The worker side of a distributed campaign.

    A worker connects to a coordinator, introduces itself, and then
    pulls batches of experiment indices until the coordinator says the
    campaign is complete.  Every run streams back as its own
    {!Protocol.Result} message, so the coordinator's journal loses at
    most the runs in flight when a worker dies — the same guarantee
    the local engine gives per domain.

    The worker never decides {e what} to run: the coordinator's
    {!Protocol.welcome} names the SUT, campaign, seed and size, plus an
    opaque [config] recipe, and the [make] callback turns that into an
    executor — typically {!Propane.Runner.executor} over a campaign
    rebuilt from the recipe.  Returning [Error] from [make] (an
    unknown SUT, a mismatched size) aborts before any run executes. *)

val run :
  ?host:string ->
  ?pid:int ->
  ?config_digest:string ->
  ?on_result:(completed:int -> unit) ->
  connect:Address.t ->
  make:(Protocol.welcome -> (int -> Propane.Results.outcome * int, string) result) ->
  unit ->
  (int, string) result
(** Serves one campaign; returns the number of runs this worker
    executed once the coordinator sends [Done], or an error if the
    connection, handshake or [make] failed.  [host] (default
    [Unix.gethostname]) and [pid] (default [Unix.getpid]) label this
    worker in the coordinator's telemetry.

    [config_digest] (default [""], meaning "any") pins this worker to
    one recipe: the coordinator rejects the handshake — naming the
    digest pair — unless [Digest.to_hex] of its recipe matches.  Use
    it when pointing long-lived worker hosts at rotating coordinators,
    so a stale coordinator cannot feed them the wrong campaign.

    [on_result] is called after each run's result has been sent — a
    test harness hook ({!Propane.Fault}-style): raising from it
    abandons the connection mid-campaign exactly like a crashed worker
    process would, which is how the reassignment path is exercised
    in-process.  The socket is closed however [run] exits, and
    [SIGPIPE] is set to ignored so a dying coordinator surfaces as a
    connection error rather than killing the worker. *)

val join :
  ?host:string ->
  ?pid:int ->
  ?on_result:(completed:int -> unit) ->
  connect:Address.t ->
  make:(Protocol.welcome -> (int -> Propane.Results.outcome * int, string) result) ->
  unit ->
  (int, string) result
(** Joins a fleet service for the long haul: registers with
    {!Protocol.Join}, then serves whatever campaigns the service
    {!Protocol.Assign}s — rebuilding the executor through [make] on
    every assignment, since a new campaign means new goldens.  Between
    assignments the worker parks in a blocking read and answers
    [Ping] with [Heartbeat].  Returns the total number of runs
    executed across all assignments once the service sends [Done]
    (shutdown), or an error on connection loss or a failed [make]. *)
