let src = Logs.Src.create "cluster.coordinator" ~doc:"campaign coordinator"

module Log = (val Logs.src_log src : Logs.LOG)

type conn = {
  id : int;
  fd : Unix.file_descr;
  dec : Frame.decoder;
  mutable ready : bool;  (* handshake done *)
  mutable wants_work : bool;  (* blocked in Request_batch *)
  mutable outstanding : int list;  (* handed out, not yet resulted *)
  mutable deadline : float;  (* armed only while outstanding <> [] *)
}

let or_invalid = function Ok v -> v | Error msg -> invalid_arg msg

(* Journal replay for resume: identical validation to Runner.run, same
   error text, so operators can move between local and cluster modes
   without relearning failure messages. *)
let replay path ~outcomes ~sut ~campaign ~seed ~total =
  match Propane.Journal.load path with
  | Error msg -> invalid_arg (Printf.sprintf "Coordinator.serve: %s" msg)
  | Ok j -> (
      match Propane.Journal.validate j ~path ~sut ~campaign ~seed ~total with
      | Error msg -> invalid_arg (Printf.sprintf "Coordinator.serve: %s" msg)
      | Ok () ->
          let table = Propane.Journal.completed j in
          Hashtbl.iter
            (fun index outcome -> outcomes.(index) <- Some outcome)
            table;
          Hashtbl.length table)

let serve ?(batch_max = 16) ?(heartbeat_timeout_s = 30.) ?on_event ?on_tick
    ?(recipe = "") ?live ?select ?cells ~config ~listen ~sut ~campaign ~total
    () =
  (match Propane.Runner.Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Coordinator.serve: %s" msg));
  let {
    Propane.Runner.Config.seed;
    fail_fast;
    jobs;
    journal;
    resume;
    journal_batch;
    stop_when;
    _;
  } =
    config
  in
  if batch_max < 1 then
    invalid_arg "Coordinator.serve: batch_max must be >= 1";
  if heartbeat_timeout_s <= 0.0 then
    invalid_arg "Coordinator.serve: heartbeat_timeout_s must be positive";
  if total < 0 then invalid_arg "Coordinator.serve: negative total";
  if stop_when <> None && live = None then
    invalid_arg "Coordinator.serve: stop_when requires a live analysis";
  (* A write can race the peer's death; it must fail with EPIPE (and
     kill that connection), not deliver a fatal SIGPIPE. *)
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> (* no signals on this platform *) ());
  let emit ev = match on_event with Some f -> f ev | None -> () in
  let tick () = match on_tick with Some f -> f () | None -> () in
  let outcomes = Array.make total None in
  let skipped =
    match journal with
    | Some path when resume && Sys.file_exists path ->
        replay path ~outcomes ~sut ~campaign ~seed ~total
    | _ -> 0
  in
  let writer =
    match journal with
    | None -> None
    | Some path ->
        Some
          (or_invalid
             (if skipped > 0 then
                Propane.Journal.append_to ~batch:journal_batch path
              else
                (* Cell provenance right after the header, before any
                   outcome — mirroring Runner.run so reuse journals are
                   byte-identical across serial, --jobs and cluster. *)
                let w =
                  (* The same recipe the workers receive in Welcome is
                     journalled for [propane replay]; serial runs store
                     the identical string, keeping journals
                     byte-identical across modes. *)
                  Propane.Journal.create ~batch:journal_batch
                    ?recipe:
                      (if String.equal recipe "" then None else Some recipe)
                    ~path ~sut ~campaign ~seed ~total ()
                in
                match (w, cells) with
                | Ok w, Some cells ->
                    Result.map
                      (fun () -> w)
                      (Propane.Journal.append_cells w cells)
                | w, _ -> w))
  in
  (* In-order journal merge: [from_journal] marks indices already on
     disk from the resumed journal (never re-appended); [next_to_write]
     chases the first gap, so records hit the journal in strict index
     order whatever order workers complete them in. *)
  let from_journal = Array.map Option.is_some outcomes in
  (* Deselected indices (cell reuse) never produce a record; the
     in-order cursor steps over them so selected runs still stream to
     disk in strict index order. *)
  let deselected =
    match select with
    | None -> Array.make total false
    | Some f -> Array.init total (fun idx -> not (f idx))
  in
  let next_to_write = ref 0 in
  let flush_journal () =
    match writer with
    | None -> next_to_write := total
    | Some w ->
        while
          !next_to_write < total
          && (outcomes.(!next_to_write) <> None
             || deselected.(!next_to_write))
        do
          (match outcomes.(!next_to_write) with
          | Some outcome when not from_journal.(!next_to_write) ->
              or_invalid
                (Propane.Journal.append w ~index:!next_to_write outcome)
          | _ -> ());
          incr next_to_write
        done
  in
  let completed = ref skipped in
  let queue =
    ref
      (List.filter
         (fun idx -> outcomes.(idx) = None && not deselected.(idx))
         (List.init total Fun.id))
  in
  (* The loop below drains until every *scheduled* run completed:
     journal replays plus the queue — under a selection that is fewer
     than the campaign total. *)
  let scheduled = skipped + List.length !queue in
  let queue_len = ref (List.length !queue) in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 8 in
  let next_id = ref 0 in
  let failed : (int * Propane.Results.outcome) option ref = ref None in
  Log.info (fun m ->
      m "campaign %s on %s: %d runs (%d journalled), serving workers"
        campaign sut total skipped);
  emit (Propane.Runner.Started { total; skipped; jobs });
  (* Replayed outcomes prime the live analysis in index order, as in
     Runner.run, so a resumed adaptive campaign starts from the same
     evidence an uninterrupted one has at this point. *)
  (match live with
  | Some l when skipped > 0 ->
      Array.iter
        (function
          | Some o -> ignore (Propane.Live.observe l o)
          | None -> ())
        outcomes;
      emit (Propane.Runner.Analysis_tick (Propane.Live.digest l))
  | _ -> ());
  let stopping = ref false in
  let check_stop () =
    match (live, stop_when) with
    | Some l, Some rule ->
        if (not !stopping) && Propane.Live.satisfied l rule then begin
          Log.info (fun m ->
              m "stop rule %a satisfied after %d runs; draining workers"
                Propane.Live.pp_rule rule !completed);
          stopping := true
        end
    | _ -> ()
  in
  check_stop ();
  emit (Propane.Runner.Goldens_done { testcases = 0 });
  flush_journal ();
  let send c msg = Frame.write c.fd (Protocol.encode_to_worker msg) in
  let kill ~reason c =
    Hashtbl.remove conns c.id;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    (match c.outstanding with
    | [] -> Log.info (fun m -> m "worker %d left (%s)" c.id reason)
    | lost ->
        Log.warn (fun m ->
            m "worker %d died (%s); reassigning %d outstanding runs" c.id
              reason (List.length lost));
        (* Back to the head of the queue: the journal's reorder buffer
           is stalled on exactly these indices. *)
        queue := List.sort compare lost @ !queue;
        queue_len := !queue_len + List.length lost);
    c.outstanding <- []
  in
  let live_workers () =
    Hashtbl.fold (fun _ c n -> if c.ready then n + 1 else n) conns 0
  in
  let batch_size () =
    max 1 (min batch_max (!queue_len / max 1 (2 * live_workers ())))
  in
  let take n =
    let rec go n acc q =
      if n = 0 then (List.rev acc, q)
      else match q with [] -> (List.rev acc, []) | x :: q -> go (n - 1) (x :: acc) q
    in
    let batch, rest = go n [] !queue in
    queue := rest;
    queue_len := !queue_len - List.length batch;
    batch
  in
  let give_work c =
    (* A draining coordinator hands out nothing more; the worker stays
       parked in Request_batch until Done. *)
    if !stopping then c.wants_work <- true
    else
      match take (batch_size ()) with
      | [] -> c.wants_work <- true
      | batch ->
          c.wants_work <- false;
          c.outstanding <- batch;
          c.deadline <- Unix.gettimeofday () +. heartbeat_timeout_s;
          send c (Protocol.Batch batch)
  in
  let distribute () =
    if !queue_len > 0 && not !stopping then
      Hashtbl.iter
        (fun _ c ->
          if c.ready && c.wants_work && !queue_len > 0 then
            match give_work c with
            | () -> ()
            | exception Unix.Unix_error (err, _, _) ->
                kill ~reason:(Unix.error_message err) c)
        (Hashtbl.copy conns)
  in
  let handle c msg =
    c.deadline <- Unix.gettimeofday () +. heartbeat_timeout_s;
    match msg with
    | Protocol.Hello { version; host; pid } ->
        if version <> Protocol.version then begin
          (try
             send c
               (Protocol.Reject
                  (Printf.sprintf "protocol version %d, coordinator speaks %d"
                     version Protocol.version))
           with Unix.Unix_error _ -> ());
          kill ~reason:"version mismatch" c
        end
        else begin
          c.ready <- true;
          send c (Protocol.Welcome { sut; campaign; seed; total; config = recipe });
          Log.info (fun m -> m "worker %d is %s/%d" c.id host pid);
          emit (Propane.Runner.Worker_attached { worker = c.id; host; pid })
        end
    | Protocol.Heartbeat -> ()
    | Protocol.Request_batch -> give_work c
    | Protocol.Result { index; retries; outcome } ->
        if index < 0 || index >= total then
          kill ~reason:(Printf.sprintf "result index %d out of range" index) c
        else begin
          c.outstanding <- List.filter (fun i -> i <> index) c.outstanding;
          match outcomes.(index) with
          | Some _ ->
              (* A reassigned run finished twice; outcomes are
                 index-deterministic, so both copies are identical and
                 the first stands. *)
              Log.debug (fun m ->
                  m "duplicate result for run %d from worker %d" index c.id)
          | None ->
              outcomes.(index) <- Some outcome;
              incr completed;
              flush_journal ();
              emit
                (Propane.Runner.Run_done
                   {
                     index;
                     worker = c.id;
                     completed = !completed;
                     total;
                     status = outcome.Propane.Results.status;
                     retries;
                   });
              (match live with
              | Some l ->
                  emit
                    (Propane.Runner.Analysis_tick (Propane.Live.observe l outcome));
                  check_stop ()
              | None -> ());
              if
                fail_fast
                && Propane.Results.is_failed outcome.Propane.Results.status
                && !failed = None
              then begin
                failed := Some (index, outcome);
                (* The reorder buffer may be stalled before [index], but
                   the abort must leave the failure on disk; journals
                   tolerate out-of-order records, and [from_journal]
                   keeps the cursor from appending it twice. *)
                if index >= !next_to_write then begin
                  Option.iter
                    (fun w ->
                      or_invalid (Propane.Journal.append w ~index outcome))
                    writer;
                  from_journal.(index) <- true
                end
              end
        end
  in
  let drain c =
    let rec frames () =
      match Frame.next c.dec with
      | Error msg -> kill ~reason:msg c
      | Ok None -> ()
      | Ok (Some payload) -> (
          match Protocol.decode_to_coordinator payload with
          | Error msg -> kill ~reason:msg c
          | Ok msg -> (
              match handle c msg with
              | () -> if Hashtbl.mem conns c.id then frames ()
              | exception Unix.Unix_error (err, _, _) ->
                  kill ~reason:(Unix.error_message err) c))
    in
    frames ()
  in
  let buf = Bytes.create 65536 in
  let read_from c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 ->
        if c.outstanding = [] && Frame.buffered c.dec = 0 then
          kill ~reason:"disconnected" c
        else kill ~reason:"connection lost" c
    | n ->
        Frame.feed c.dec (Bytes.sub_string buf 0 n);
        drain c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (err, _, _) ->
        kill ~reason:(Unix.error_message err) c
  in
  let accept_pending () =
    let rec go () =
      match Unix.accept ~cloexec:true listen with
      | fd, _ ->
          Unix.clear_nonblock fd;
          (match Unix.getsockname fd with
          | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
          | Unix.ADDR_UNIX _ | (exception Unix.Unix_error _) -> ());
          let c =
            {
              id = !next_id;
              fd;
              dec = Frame.decoder ();
              ready = false;
              wants_work = false;
              outstanding = [];
              deadline = Unix.gettimeofday () +. heartbeat_timeout_s;
            }
          in
          incr next_id;
          Hashtbl.add conns c.id c;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  let check_deadlines () =
    let now = Unix.gettimeofday () in
    Hashtbl.iter
      (fun _ c ->
        if c.outstanding <> [] && now > c.deadline then
          kill
            ~reason:
              (Printf.sprintf "no heartbeat for %.1f s" heartbeat_timeout_s)
            c)
      (Hashtbl.copy conns)
  in
  let broadcast msg =
    Hashtbl.iter
      (fun _ c ->
        if c.ready then try send c msg with Unix.Unix_error _ -> ())
      conns
  in
  let close_all () =
    Hashtbl.iter
      (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      conns;
    Hashtbl.reset conns
  in
  Fun.protect
    ~finally:(fun () ->
      close_all ();
      Option.iter Propane.Journal.close writer)
    (fun () ->
      let outstanding_total () =
        Hashtbl.fold (fun _ c n -> n + List.length c.outstanding) conns 0
      in
      while
        !failed = None
        && (if !stopping then outstanding_total () > 0
            else !completed < scheduled)
      do
        let fds =
          listen :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) conns []
        in
        let timeout =
          Hashtbl.fold
            (fun _ c acc ->
              if c.outstanding = [] then acc
              else Float.min acc (c.deadline -. Unix.gettimeofday ()))
            conns 0.25
          |> Float.max 0.01
        in
        (match Unix.select fds [] [] timeout with
        | readable, _, _ ->
            if List.mem listen readable then accept_pending ();
            List.iter
              (fun fd ->
                if fd != listen then
                  match
                    Hashtbl.fold
                      (fun _ c acc -> if c.fd == fd then Some c else acc)
                      conns None
                  with
                  | Some c -> read_from c
                  | None -> ())
              readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        check_deadlines ();
        distribute ();
        (* Batched appends commit at most one select cycle (~250 ms)
           after the cursor wrote them: one flush amortises every
           record drained this iteration. *)
        Option.iter Propane.Journal.flush writer;
        tick ()
      done;
      broadcast Protocol.Done;
      (match !failed with
      | Some (index, outcome) ->
          Log.err (fun m ->
              m "run %d failed and fail_fast is set; aborting" index);
          raise (Propane.Runner.Failed_run { index; outcome })
      | None -> ());
      (* The in-order journal cursor stalls at the first never-run
         index of an adaptively stopped campaign; append the completed
         outcomes beyond it out of order (journals tolerate that, see
         the fail-fast path above) so nothing finished is lost. *)
      if !stopping then
        Array.iteri
          (fun index o ->
            match o with
            | Some outcome
              when index >= !next_to_write && not from_journal.(index) ->
                Option.iter
                  (fun w ->
                    or_invalid (Propane.Journal.append w ~index outcome))
                  writer;
                from_journal.(index) <- true
            | _ -> ())
          outcomes;
      emit (Propane.Runner.Finished { completed = !completed; total });
      let results = Propane.Results.create ~sut ~campaign in
      Array.iter
        (function
          | Some outcome -> Propane.Results.add results outcome
          | None ->
              (* Only an adaptive stop or a cell-reuse selection may
                 leave runs unexecuted. *)
              assert (stop_when <> None || select <> None))
        outcomes;
      results)
