let src = Logs.Src.create "cluster.coordinator" ~doc:"campaign coordinator"

module Log = (val Logs.src_log src : Logs.LOG)

type conn = {
  id : int;
  fd : Unix.file_descr;
  dec : Frame.decoder;
  mutable ready : bool;  (* handshake done *)
  mutable wants_work : bool;  (* blocked in Request_batch *)
  mutable outstanding : int list;  (* handed out, not yet resulted *)
  mutable deadline : float;  (* armed only while outstanding <> [] *)
}

let serve ?(batch_max = 16) ?(heartbeat_timeout_s = 30.) ?on_event ?on_tick
    ?(recipe = "") ?live ?select ?cells ?plan ~config ~listen ~sut ~campaign
    ~total () =
  if batch_max < 1 then
    invalid_arg "Coordinator.serve: batch_max must be >= 1";
  if heartbeat_timeout_s <= 0.0 then
    invalid_arg "Coordinator.serve: heartbeat_timeout_s must be positive";
  (* A write can race the peer's death; it must fail with EPIPE (and
     kill that connection), not deliver a fatal SIGPIPE. *)
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> (* no signals on this platform *) ());
  let session =
    Session.create ~label:"Coordinator.serve" ?on_event ~recipe ?live ?select
      ?cells ?plan ~config ~sut ~campaign ~total ()
  in
  let recipe_digest = Digest.to_hex (Digest.string recipe) in
  let seed = config.Propane.Runner.Config.seed in
  let emit ev =
    match on_event with Some f -> f ev | None -> ()
  in
  let tick () = match on_tick with Some f -> f () | None -> () in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 8 in
  let next_id = ref 0 in
  Log.info (fun m ->
      m "campaign %s on %s: %d runs, serving workers" campaign sut total);
  let send c msg = Frame.write c.fd (Protocol.encode_to_worker msg) in
  let kill ~reason c =
    Hashtbl.remove conns c.id;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    (match c.outstanding with
    | [] -> Log.info (fun m -> m "worker %d left (%s)" c.id reason)
    | lost ->
        Log.warn (fun m ->
            m "worker %d died (%s); reassigning %d outstanding runs" c.id
              reason (List.length lost));
        Session.requeue session lost);
    c.outstanding <- []
  in
  let live_workers () =
    Hashtbl.fold (fun _ c n -> if c.ready then n + 1 else n) conns 0
  in
  let give_work c =
    (* A draining coordinator hands out nothing more; the worker stays
       parked in Request_batch until Done. *)
    match Session.take session ~batch_max ~workers:(live_workers ()) with
    | [] -> c.wants_work <- true
    | batch ->
        c.wants_work <- false;
        c.outstanding <- batch;
        c.deadline <- Unix.gettimeofday () +. heartbeat_timeout_s;
        send c (Protocol.Batch batch)
  in
  let distribute () =
    if Session.pending session > 0 && not (Session.stopping session) then
      Hashtbl.iter
        (fun _ c ->
          if c.ready && c.wants_work && Session.pending session > 0 then
            match give_work c with
            | () -> ()
            | exception Unix.Unix_error (err, _, _) ->
                kill ~reason:(Unix.error_message err) c)
        (Hashtbl.copy conns)
  in
  (* The reject reason names the exact field that differed — an
     operator staring at a fleet of workers needs to know whether to
     rebuild the binary (version skew) or re-point the pin (recipe
     skew), and "handshake failed" distinguishes neither. *)
  let vet ~version ~config_digest =
    if version <> Protocol.version then
      Some
        (Printf.sprintf
           "protocol version: worker speaks %d, coordinator speaks %d" version
           Protocol.version)
    else if
      (not (String.equal config_digest ""))
      && not (String.equal config_digest recipe_digest)
    then
      Some
        (Printf.sprintf
           "config digest: worker pinned %s, coordinator offers %s"
           config_digest recipe_digest)
    else None
  in
  let handle c msg =
    c.deadline <- Unix.gettimeofday () +. heartbeat_timeout_s;
    match msg with
    | Protocol.Hello { version; host; pid; config_digest } -> (
        match vet ~version ~config_digest with
        | Some reason ->
            (try send c (Protocol.Reject reason)
             with Unix.Unix_error _ -> ());
            kill ~reason c
        | None ->
            c.ready <- true;
            send c
              (Protocol.Welcome { sut; campaign; seed; total; config = recipe });
            Log.info (fun m -> m "worker %d is %s/%d" c.id host pid);
            emit (Propane.Runner.Worker_attached { worker = c.id; host; pid }))
    | Protocol.Join _ ->
        (* Fleet registration belongs to a service daemon; this
           coordinator serves exactly one campaign. *)
        (try
           send c
             (Protocol.Reject
                "fleet join: this coordinator serves a single campaign; \
                 connect with a one-shot handshake (drop --fleet)")
         with Unix.Unix_error _ -> ());
        kill ~reason:"fleet join on a one-shot coordinator" c
    | Protocol.Heartbeat -> ()
    | Protocol.Request_batch -> give_work c
    | Protocol.Result { index; retries; outcome } ->
        if index < 0 || index >= total then
          kill ~reason:(Printf.sprintf "result index %d out of range" index) c
        else begin
          c.outstanding <- List.filter (fun i -> i <> index) c.outstanding;
          Session.record session ~index ~worker:c.id ~retries outcome
        end
  in
  let drain c =
    let rec frames () =
      match Frame.next c.dec with
      | Error msg -> kill ~reason:msg c
      | Ok None -> ()
      | Ok (Some payload) -> (
          match Protocol.decode_to_coordinator payload with
          | Error msg -> kill ~reason:msg c
          | Ok msg -> (
              match handle c msg with
              | () -> if Hashtbl.mem conns c.id then frames ()
              | exception Unix.Unix_error (err, _, _) ->
                  kill ~reason:(Unix.error_message err) c))
    in
    frames ()
  in
  let buf = Bytes.create 65536 in
  let read_from c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 ->
        if c.outstanding = [] && Frame.buffered c.dec = 0 then
          kill ~reason:"disconnected" c
        else kill ~reason:"connection lost" c
    | n ->
        Frame.feed c.dec (Bytes.sub_string buf 0 n);
        drain c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (err, _, _) ->
        kill ~reason:(Unix.error_message err) c
  in
  let accept_pending () =
    let rec go () =
      match Unix.accept ~cloexec:true listen with
      | fd, _ ->
          Unix.clear_nonblock fd;
          (match Unix.getsockname fd with
          | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
          | Unix.ADDR_UNIX _ | (exception Unix.Unix_error _) -> ());
          let c =
            {
              id = !next_id;
              fd;
              dec = Frame.decoder ();
              ready = false;
              wants_work = false;
              outstanding = [];
              deadline = Unix.gettimeofday () +. heartbeat_timeout_s;
            }
          in
          incr next_id;
          Hashtbl.add conns c.id c;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  let check_deadlines () =
    let now = Unix.gettimeofday () in
    Hashtbl.iter
      (fun _ c ->
        if c.outstanding <> [] && now > c.deadline then
          kill
            ~reason:
              (Printf.sprintf "no heartbeat for %.1f s" heartbeat_timeout_s)
            c)
      (Hashtbl.copy conns)
  in
  let broadcast msg =
    Hashtbl.iter
      (fun _ c ->
        if c.ready then try send c msg with Unix.Unix_error _ -> ())
      conns
  in
  let close_all () =
    Hashtbl.iter
      (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      conns;
    Hashtbl.reset conns
  in
  Fun.protect
    ~finally:(fun () ->
      close_all ();
      Session.close session)
    (fun () ->
      let outstanding_total () =
        Hashtbl.fold (fun _ c n -> n + List.length c.outstanding) conns 0
      in
      while
        Session.failed session = None
        && (if Session.stopping session then outstanding_total () > 0
            else not (Session.complete session))
      do
        let fds =
          listen :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) conns []
        in
        let timeout =
          Hashtbl.fold
            (fun _ c acc ->
              if c.outstanding = [] then acc
              else Float.min acc (c.deadline -. Unix.gettimeofday ()))
            conns 0.25
          |> Float.max 0.01
        in
        (match Unix.select fds [] [] timeout with
        | readable, _, _ ->
            if List.mem listen readable then accept_pending ();
            List.iter
              (fun fd ->
                if fd != listen then
                  match
                    Hashtbl.fold
                      (fun _ c acc -> if c.fd == fd then Some c else acc)
                      conns None
                  with
                  | Some c -> read_from c
                  | None -> ())
              readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        check_deadlines ();
        distribute ();
        (* Batched appends commit at most one select cycle (~250 ms)
           after the cursor wrote them: one flush amortises every
           record drained this iteration. *)
        Session.flush session;
        tick ()
      done;
      broadcast Protocol.Done;
      Session.finish session)
