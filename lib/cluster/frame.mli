(** Length-prefixed framing.

    The cluster wire protocol is a stream of {e frames}: a 4-byte
    big-endian payload length followed by the payload bytes.  Framing
    is the only thing this module knows — payloads are opaque (see
    {!Protocol} for their meaning), may be empty, and may contain any
    byte value, so crash reasons with newlines, tabs or colons travel
    unharmed where the line-based {!Propane.Journal} format would have
    to reject them.

    Both a pure incremental {!decoder} (the coordinator feeds it
    whatever [read] returned, frames pop out as they complete) and
    blocking per-frame I/O for the worker side are provided. *)

val max_payload : int
(** 16 MiB.  A length prefix beyond this is a protocol violation — the
    peer is talking something else, or garbage — and decoding fails
    instead of allocating an absurd buffer. *)

val encode : string -> string
(** [encode payload] is the frame as raw bytes.
    @raise Invalid_argument if the payload exceeds {!max_payload}. *)

(** {1 Incremental decoding} *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> string -> unit
(** Append received bytes; any chunking is fine, including frames
    split at arbitrary byte boundaries or many frames in one chunk. *)

val next : decoder -> (string option, string) result
(** The next complete frame's payload, [Ok None] if more bytes are
    needed, or [Error] on a violating length prefix.  A decoder that
    returned [Error] is poisoned and keeps failing. *)

val buffered : decoder -> int
(** Bytes fed but not yet returned — non-zero at connection close
    means the peer died mid-frame. *)

(** {1 Blocking I/O} *)

val write : Unix.file_descr -> string -> unit
(** Frames the payload and writes it entirely, retrying on partial
    writes and [EINTR]/[EAGAIN] (waiting for writability on the
    latter).  @raise Unix.Unix_error when the peer is gone. *)

val write_many : Unix.file_descr -> string list -> unit
(** Frames every payload and writes the concatenation in one go —
    concatenated frames are a valid frame stream, so receivers need no
    change; this just amortises the per-message syscall when a worker
    flushes a whole batch of results.  No-op on [[]].
    @raise Unix.Unix_error as {!write};  @raise Invalid_argument if any
    payload exceeds {!max_payload}. *)

type reader

val reader : Unix.file_descr -> reader

val read : reader -> (string option, string) result
(** Blocks until one whole frame arrives.  [Ok None] is a clean EOF at
    a frame boundary; an EOF mid-frame or a violating prefix is
    [Error]. *)
