let magic = "propane-service-manifest 1"

type state = Queued | Running | Done | Cancelled | Failed

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Cancelled -> "cancelled"
  | Failed -> "failed"

let state_of_string = function
  | "queued" -> Ok Queued
  | "running" -> Ok Running
  | "done" -> Ok Done
  | "cancelled" -> Ok Cancelled
  | "failed" -> Ok Failed
  | s -> Error (Printf.sprintf "unknown campaign state %S" s)

let terminal = function
  | Done | Cancelled | Failed -> true
  | Queued | Running -> false

type entry = { id : string; body : string; state : state; reason : string }

type t = { oc : out_channel }

(* Bodies are JSON and reasons are free text: both may contain tabs
   and newlines, which the line format forbids.  [String.escaped] /
   [Scanf.unescaped] round-trip every byte. *)
let enc = String.escaped

let dec s = try Ok (Scanf.unescaped s) with _ -> Error "bad escape sequence"

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let ( let* ) = Result.bind in
        let* () =
          match In_channel.input_line ic with
          | Some line when String.equal line magic -> Ok ()
          | Some line ->
              Error (Printf.sprintf "%s: not a service manifest (%S)" path line)
          | None -> Error (Printf.sprintf "%s: empty manifest" path)
        in
        (* Submissions in order; the latest state line per id wins.  A
           torn trailing line (crash mid-append) is ignored, exactly
           like the journal's torn-fragment rule — every complete line
           before it is intact. *)
        let entries : (string, entry) Hashtbl.t = Hashtbl.create 16 in
        let order = ref [] in
        let rec go lineno =
          match In_channel.input_line ic with
          | None -> Ok ()
          | Some line -> (
              let fail msg =
                Error (Printf.sprintf "%s:%d: %s" path lineno msg)
              in
              match String.split_on_char '\t' line with
              | [ "campaign"; id; body ] -> (
                  match dec body with
                  | Error msg -> fail msg
                  | Ok body ->
                      if Hashtbl.mem entries id then
                        fail (Printf.sprintf "duplicate campaign %s" id)
                      else begin
                        Hashtbl.replace entries id
                          { id; body; state = Queued; reason = "" };
                        order := id :: !order;
                        go (lineno + 1)
                      end)
              | [ "state"; id; state; reason ] -> (
                  match (state_of_string state, dec reason) with
                  | Error msg, _ | _, Error msg -> fail msg
                  | Ok state, Ok reason -> (
                      match Hashtbl.find_opt entries id with
                      | None ->
                          fail
                            (Printf.sprintf "state for unknown campaign %s" id)
                      | Some e ->
                          Hashtbl.replace entries id { e with state; reason };
                          go (lineno + 1)))
              | _ ->
                  (* A torn last line is a crash artifact, not
                     corruption; anything torn mid-file is. *)
                  if In_channel.input_line ic = None then Ok ()
                  else fail (Printf.sprintf "malformed line %S" line))
        in
        let* () = go 2 in
        Ok (List.rev_map (Hashtbl.find entries) !order))
  end

let append path =
  let existed = Sys.file_exists path in
  match
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  with
  | oc ->
      if not existed then begin
        output_string oc (magic ^ "\n");
        flush oc
      end;
      Ok { oc }
  | exception Sys_error msg -> Error msg

let submit t ~id ~body =
  Printf.fprintf t.oc "campaign\t%s\t%s\n" id (enc body);
  flush t.oc

let transition t ~id state ~reason =
  Printf.fprintf t.oc "state\t%s\t%s\t%s\n" id (state_to_string state)
    (enc reason);
  flush t.oc

let close t = close_out_noerr t.oc
