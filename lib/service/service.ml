let src = Logs.Src.create "service" ~doc:"campaign-as-a-service daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type spec = {
  tenant : string;
  weight : int;
  name : string;
  sut : string;
  total : int;
  recipe : string;
  config : Propane.Runner.Config.t;
  live : Propane.Live.t option;
  plan : Propane.Plan.t option;
}

type config = {
  listen : Cluster.Address.t;
  http : Cluster.Address.t;
  state_dir : string;
  queue_max : int;
  tenant_quota : int;
  batch_max : int;
  heartbeat_timeout_s : float;
  exit_when_idle : bool;
  parse : string -> (spec, string) result;
}

let config ?(queue_max = 16) ?(tenant_quota = 4) ?(batch_max = 16)
    ?(heartbeat_timeout_s = 30.) ?(exit_when_idle = false) ~listen ~http
    ~state_dir ~parse () =
  {
    listen;
    http;
    state_dir;
    queue_max;
    tenant_quota;
    batch_max;
    heartbeat_timeout_s;
    exit_when_idle;
    parse;
  }

(* ------------------------- internal state ------------------------- *)

type phase =
  | Active
  | Draining of Manifest.state * string
      (** no new batches; finalize to the target state once the last
          in-flight run lands *)
  | Final of Manifest.state * string

type campaign = {
  cid : string;
  spec : spec;
  session : Cluster.Session.t;
  telemetry : Propane.Telemetry.t;
  mutable phase : phase;
  mutable started : bool;  (* manifest flipped to Running *)
}

type wconn = {
  wid : int;
  wfd : Unix.file_descr;
  wdec : Cluster.Frame.decoder;
  mutable joined : bool;
  mutable host : string;
  mutable pid : int;
  mutable assigned : string option;  (* campaign id *)
  mutable wants_work : bool;  (* parked, waiting for an assignment/batch *)
  mutable outstanding : int list;
  mutable deadline : float;  (* armed only while outstanding <> [] *)
  mutable last_seen : float;
  mutable last_ping : float;
  mutable done_runs : int;
}

type hconn = { hid : int; hfd : Unix.file_descr; hc : Http.conn }

type t = {
  cfg : config;
  manifest : Manifest.t;
  campaigns : (string, campaign) Hashtbl.t;
  mutable order : string list;  (* submission order, oldest first *)
  mutable next_id : int;
  workers : (int, wconn) Hashtbl.t;
  mutable next_wid : int;
  https : (int, hconn) Hashtbl.t;
  mutable next_hid : int;
  worker_listen : Unix.file_descr;
  http_listen : Unix.file_descr;
}

let journal_path t cid = Filename.concat t.cfg.state_dir (cid ^ ".journal")
let results_path t cid = Filename.concat t.cfg.state_dir (cid ^ ".results")
let manifest_path state_dir = Filename.concat state_dir "manifest"

let campaigns_in_order t =
  List.filter_map (Hashtbl.find_opt t.campaigns) t.order

let active c = match c.phase with Active -> true | _ -> false

let phase_state c =
  match c.phase with
  | Active ->
      if Cluster.Session.completed c.session > 0 || c.started then
        Manifest.Running
      else Manifest.Queued
  | Draining (s, _) | Final (s, _) -> s

let phase_reason c =
  match c.phase with Active -> "" | Draining (_, r) | Final (_, r) -> r

(* A campaign occupies a queue slot until it reaches a terminal
   state — draining ones still do, their runs are still in flight. *)
let occupied c = match c.phase with Final _ -> false | _ -> true

let outstanding_of t cid =
  Hashtbl.fold
    (fun _ w n ->
      if w.assigned = Some cid then n + List.length w.outstanding else n)
    t.workers 0

(* ------------------------- campaign lifecycle --------------------- *)

let mark_running t c =
  if not c.started then begin
    c.started <- true;
    Manifest.transition t.manifest ~id:c.cid Manifest.Running ~reason:""
  end

let finalize t c state reason =
  (match c.phase with
  | Final _ -> ()
  | _ ->
      c.phase <- Final (state, reason);
      Manifest.transition t.manifest ~id:c.cid state ~reason;
      Log.info (fun m ->
          m "campaign %s (%s): %s%s" c.cid c.spec.name
            (Manifest.state_to_string state)
            (if reason = "" then "" else ": " ^ reason)))

(* Runs [Session.finish]: the one place Failed_run surfaces. *)
let finish_session t c =
  match Cluster.Session.finish c.session with
  | results ->
      (* The campaign's deliverable outlives its session: save the
         results next to the journal so GET /campaigns/:id/results can
         stream them after the daemon restarts.  A failed write is
         logged, not fatal — the journal still holds every outcome. *)
      (match Propane.Storage.save_results (results_path t c.cid) results with
      | Ok () -> ()
      | Error msg | (exception Sys_error msg) ->
          Log.warn (fun m ->
              m "campaign %s: results not saved: %s" c.cid msg));
      finalize t c Manifest.Done ""
  | exception Propane.Runner.Failed_run { index; outcome } ->
      finalize t c Manifest.Failed
        (Fmt.str "run %d failed (%a)" index Propane.Results.pp_status
           outcome.Propane.Results.status)
  | exception Invalid_argument msg -> finalize t c Manifest.Failed msg

let create_campaign t ~cid spec =
  let path = journal_path t cid in
  let config =
    {
      spec.config with
      Propane.Runner.Config.journal = Some path;
      resume = Sys.file_exists path;
    }
  in
  let telemetry = Propane.Telemetry.create () in
  let session =
    Cluster.Session.create ~label:"Service"
      ~on_event:(Propane.Telemetry.observe telemetry)
      ~recipe:spec.recipe ?live:spec.live ?plan:spec.plan ~config
      ~sut:spec.sut ~campaign:spec.name ~total:spec.total ()
  in
  { cid; spec; session; telemetry; phase = Active; started = false }

let submit t body =
  match t.cfg.parse body with
  | Error msg -> Error (400, Printf.sprintf "invalid submission: %s" msg)
  | Ok spec ->
      let open_campaigns = List.filter occupied (campaigns_in_order t) in
      if List.length open_campaigns >= t.cfg.queue_max then
        Error
          ( 429,
            Printf.sprintf
              "queue full: %d campaigns queued or running (max %d)"
              (List.length open_campaigns) t.cfg.queue_max )
      else begin
        let of_tenant =
          List.filter (fun c -> c.spec.tenant = spec.tenant) open_campaigns
        in
        if List.length of_tenant >= t.cfg.tenant_quota then
          Error
            ( 429,
              Printf.sprintf
                "tenant %s has %d campaigns queued or running (quota %d)"
                spec.tenant (List.length of_tenant) t.cfg.tenant_quota )
        else begin
          let cid = Printf.sprintf "c%04d" t.next_id in
          t.next_id <- t.next_id + 1;
          Manifest.submit t.manifest ~id:cid ~body;
          match create_campaign t ~cid spec with
          | c ->
              Hashtbl.replace t.campaigns cid c;
              t.order <- t.order @ [ cid ];
              Log.info (fun m ->
                  m "campaign %s: %s/%s, %d runs, tenant %s (weight %d)" cid
                    spec.sut spec.name spec.total spec.tenant spec.weight);
              Ok c
          | exception Invalid_argument msg ->
              Manifest.transition t.manifest ~id:cid Manifest.Failed
                ~reason:msg;
              Error (400, msg)
        end
      end

let cancel t c =
  match c.phase with
  | Final _ -> ()
  | Draining _ -> ()
  | Active ->
      c.phase <- Draining (Manifest.Cancelled, "cancelled by operator");
      Log.info (fun m ->
          m "campaign %s (%s): cancelling, draining %d in-flight runs" c.cid
            c.spec.name (outstanding_of t c.cid))

(* Restart recovery: every non-terminal manifest entry is re-parsed
   and its session recreated with resume semantics — the journal
   already holds everything that ran, so the service picks up exactly
   where the dead one stopped, byte-identically. *)
let recover t =
  match Manifest.load (manifest_path t.cfg.state_dir) with
  | Error msg -> invalid_arg (Printf.sprintf "Service.run: %s" msg)
  | Ok entries ->
      List.iter
        (fun (e : Manifest.entry) ->
          (match
             int_of_string_opt
               (String.sub e.id 1 (String.length e.id - 1))
           with
          | Some n when n >= t.next_id -> t.next_id <- n + 1
          | _ -> ());
          if not (Manifest.terminal e.state) then begin
            match t.cfg.parse e.body with
            | Error msg ->
                Manifest.transition t.manifest ~id:e.id Manifest.Failed
                  ~reason:(Printf.sprintf "unparseable on recovery: %s" msg)
            | Ok spec -> (
                match create_campaign t ~cid:e.id spec with
                | c ->
                    c.started <- e.state = Manifest.Running;
                    Hashtbl.replace t.campaigns e.id c;
                    t.order <- t.order @ [ e.id ];
                    Log.info (fun m ->
                        m "recovered campaign %s (%s): %d of %d runs \
                           journalled"
                          e.id spec.name
                          (Cluster.Session.completed c.session)
                          spec.total)
                | exception Invalid_argument msg ->
                    Manifest.transition t.manifest ~id:e.id Manifest.Failed
                      ~reason:msg)
          end)
        entries

(* --------------------------- scheduling --------------------------- *)

let runnable c =
  active c
  && (not (Cluster.Session.stopping c.session))
  && Cluster.Session.failed c.session = None
  && Cluster.Session.pending c.session > 0

(* Weighted fair share of the fleet: apportion the joined workers over
   the runnable campaigns proportionally to their weights (largest
   remainder, ties to the earliest submission).  Workers stick to
   their campaign while its allocation is not exceeded — switching
   costs a golden-run rebuild — so the fleet partitions itself and
   only rebalances when the campaign mix changes. *)
let allocation_targets ~nworkers runnables =
  let total_w =
    List.fold_left (fun acc c -> acc + max 1 c.spec.weight) 0 runnables
  in
  if total_w = 0 then []
  else begin
    let exact =
      List.map
        (fun c ->
          ( c.cid,
            float_of_int (nworkers * max 1 c.spec.weight)
            /. float_of_int total_w ))
        runnables
    in
    let floors = List.map (fun (cid, x) -> (cid, int_of_float x)) exact in
    let used = List.fold_left (fun acc (_, n) -> acc + n) 0 floors in
    let remainders =
      (* Stable sort: ties stay in submission order. *)
      List.stable_sort
        (fun (_, a) (_, b) -> Float.compare b a)
        (List.map (fun (cid, x) -> (cid, x -. Float.of_int (int_of_float x)))
           exact)
    in
    let bonus = ref (nworkers - used) in
    let extra =
      List.filter_map
        (fun (cid, _) ->
          if !bonus > 0 then begin
            decr bonus;
            Some cid
          end
          else None)
        remainders
    in
    List.map
      (fun (cid, n) ->
        (cid, n + if List.mem cid extra then 1 else 0))
      floors
  end

let assigned_count t cid =
  Hashtbl.fold
    (fun _ w n -> if w.joined && w.assigned = Some cid then n + 1 else n)
    t.workers 0

let joined_count t =
  Hashtbl.fold (fun _ w n -> if w.joined then n + 1 else n) t.workers 0

let welcome_of (c : campaign) =
  {
    Cluster.Protocol.sut = c.spec.sut;
    campaign = c.spec.name;
    seed = c.spec.config.Propane.Runner.Config.seed;
    total = c.spec.total;
    config = c.spec.recipe;
  }

let send_to w msg = Cluster.Frame.write w.wfd (Cluster.Protocol.encode_to_worker msg)

let kill_worker t ~reason w =
  Hashtbl.remove t.workers w.wid;
  (try Unix.close w.wfd with Unix.Unix_error _ -> ());
  (match (w.outstanding, w.assigned) with
  | [], _ | _, None ->
      Log.info (fun m -> m "worker %d left (%s)" w.wid reason)
  | lost, Some cid ->
      Log.warn (fun m ->
          m "worker %d died (%s); reassigning %d outstanding runs of %s"
            w.wid reason (List.length lost) cid);
      (match Hashtbl.find_opt t.campaigns cid with
      | Some c when active c -> Cluster.Session.requeue c.session lost
      | Some _ | None ->
          (* A draining or finalized campaign no longer wants them. *)
          ()));
  w.outstanding <- []

(* The scheduling decision for one work-hungry worker. *)
let give_work t w =
  let runnables = List.filter runnable (campaigns_in_order t) in
  match runnables with
  | [] -> w.wants_work <- true
  | _ -> (
      let targets =
        allocation_targets ~nworkers:(max 1 (joined_count t)) runnables
      in
      let target cid =
        match List.assoc_opt cid targets with Some n -> n | None -> 0
      in
      let current =
        match w.assigned with
        | Some cid when List.exists (fun c -> c.cid = cid) runnables ->
            Some cid
        | _ -> None
      in
      let choice =
        match current with
        | Some cid when assigned_count t cid <= target cid -> Some cid
        | _ ->
            (* Most under-allocated runnable campaign; earliest
               submission wins ties (runnables are in order). *)
            let best =
              List.fold_left
                (fun acc c ->
                  let deficit = target c.cid - assigned_count t c.cid in
                  match acc with
                  | Some (_, d) when d >= deficit -> acc
                  | _ -> Some (c.cid, deficit))
                None runnables
            in
            (match (best, current) with
            | Some (cid, deficit), _ when deficit > 0 -> Some cid
            | _, Some cid -> Some cid  (* everyone is full; stay put *)
            | Some (cid, _), None -> Some cid
            | None, None -> None)
      in
      match choice with
      | None -> w.wants_work <- true
      | Some cid -> (
          let c = Hashtbl.find t.campaigns cid in
          if w.assigned <> Some cid then begin
            (* Retarget: the worker rebuilds its executor and comes
               back with a Request_batch. *)
            w.assigned <- Some cid;
            w.wants_work <- false;
            mark_running t c;
            Propane.Telemetry.observe c.telemetry
              (Propane.Runner.Worker_attached
                 { worker = w.wid; host = w.host; pid = w.pid });
            send_to w (Cluster.Protocol.Assign (welcome_of c))
          end
          else begin
            match
              Cluster.Session.take c.session ~batch_max:t.cfg.batch_max
                ~workers:(max 1 (assigned_count t cid))
            with
            | [] -> w.wants_work <- true
            | batch ->
                w.wants_work <- false;
                w.outstanding <- batch;
                w.deadline <- Unix.gettimeofday () +. t.cfg.heartbeat_timeout_s;
                mark_running t c;
                send_to w (Cluster.Protocol.Batch batch)
          end))

let distribute t =
  if List.exists runnable (campaigns_in_order t) then
    Hashtbl.iter
      (fun _ w ->
        if w.joined && w.wants_work then
          match give_work t w with
          | () -> ()
          | exception Unix.Unix_error (err, _, _) ->
              kill_worker t ~reason:(Unix.error_message err) w)
      (Hashtbl.copy t.workers)

(* ------------------------ worker messages ------------------------- *)

let handle_worker t w msg =
  w.deadline <- Unix.gettimeofday () +. t.cfg.heartbeat_timeout_s;
  w.last_seen <- Unix.gettimeofday ();
  match msg with
  | Cluster.Protocol.Join { version; host; pid } ->
      if version <> Cluster.Protocol.version then begin
        let reason =
          Printf.sprintf
            "protocol version: worker speaks %d, service speaks %d" version
            Cluster.Protocol.version
        in
        (try send_to w (Cluster.Protocol.Reject reason)
         with Unix.Unix_error _ -> ());
        kill_worker t ~reason w
      end
      else begin
        w.joined <- true;
        w.host <- host;
        w.pid <- pid;
        w.wants_work <- true;
        Log.info (fun m -> m "worker %d joined: %s/%d" w.wid host pid);
        give_work t w
      end
  | Cluster.Protocol.Hello _ ->
      (try
         send_to w
           (Cluster.Protocol.Reject
              "one-shot handshake: this is a fleet service; reconnect with a \
               fleet registration (propane worker --fleet)")
       with Unix.Unix_error _ -> ());
      kill_worker t ~reason:"one-shot hello on a fleet service" w
  | Cluster.Protocol.Heartbeat -> ()
  | Cluster.Protocol.Request_batch -> give_work t w
  | Cluster.Protocol.Result { index; retries; outcome } -> (
      match w.assigned with
      | None -> kill_worker t ~reason:"result without an assignment" w
      | Some cid -> (
          match Hashtbl.find_opt t.campaigns cid with
          | None -> kill_worker t ~reason:"result for unknown campaign" w
          | Some c ->
              if index < 0 || index >= c.spec.total then
                kill_worker t
                  ~reason:
                    (Printf.sprintf "result index %d out of range" index)
                  w
              else begin
                w.outstanding <- List.filter (fun i -> i <> index) w.outstanding;
                w.done_runs <- w.done_runs + 1;
                match c.phase with
                | Final _ ->
                    (* A straggler for a finalized campaign: the journal
                       is closed, the run's outcome already recorded (or
                       deliberately dropped by a cancel). *)
                    ()
                | Active | Draining _ ->
                    Cluster.Session.record c.session ~index ~worker:w.wid
                      ~retries outcome
              end))

(* ----------------------------- HTTP ------------------------------- *)

let estimate_json (e : Propagation.Estimate.t) =
  Json.Obj
    [
      ("value", Json.Num e.Propagation.Estimate.value);
      ("lo", Json.Num e.Propagation.Estimate.lo);
      ("hi", Json.Num e.Propagation.Estimate.hi);
    ]

let rankings_json c =
  match Cluster.Session.live c.session with
  | None -> Json.Null
  | Some live -> (
      match Propane.Live.snapshot live with
      | Error _ -> Json.Null
      | Ok analysis ->
          let rows =
            Propagation.Ranking.sort_module_rows
              Propagation.Ranking.By_relative_permeability
              (Propagation.Ranking.module_rows
                 analysis.Propagation.Analysis.graph)
          in
          Json.List
            (List.map
               (fun (r : Propagation.Ranking.module_row) ->
                 Json.Obj
                   [
                     ("module", Json.Str r.Propagation.Ranking.module_name);
                     ( "relative_permeability",
                       estimate_json
                         r.Propagation.Ranking.relative_permeability_est );
                     ( "exposure",
                       estimate_json r.Propagation.Ranking.exposure_est );
                     ("resolved", Json.Bool r.Propagation.Ranking.resolved);
                   ])
               rows))

let digest_json c =
  match Cluster.Session.live c.session with
  | None -> Json.Null
  | Some live ->
      let d = Propane.Live.digest live in
      Json.Obj
        [
          ("runs_observed", Json.Num (float_of_int d.Propane.Live.runs_observed));
          ("max_ci_width", Json.Num d.Propane.Live.max_ci_width);
          ("stable_for", Json.Num (float_of_int d.Propane.Live.stable_for));
          ( "resolved_modules",
            Json.Num (float_of_int d.Propane.Live.resolved_modules) );
          ("module_count", Json.Num (float_of_int d.Propane.Live.module_count));
        ]

let campaign_json ?(verbose = false) t c =
  let base =
    [
      ("id", Json.Str c.cid);
      ("tenant", Json.Str c.spec.tenant);
      ("weight", Json.Num (float_of_int c.spec.weight));
      ("name", Json.Str c.spec.name);
      ("sut", Json.Str c.spec.sut);
      ("state", Json.Str (Manifest.state_to_string (phase_state c)));
      ("reason", Json.Str (phase_reason c));
      ("total", Json.Num (float_of_int c.spec.total));
      ( "scheduled",
        Json.Num (float_of_int (Cluster.Session.scheduled c.session)) );
      ( "completed",
        Json.Num (float_of_int (Cluster.Session.completed c.session)) );
      ("pending", Json.Num (float_of_int (Cluster.Session.pending c.session)));
      ( "outstanding",
        Json.Num (float_of_int (outstanding_of t c.cid)) );
      ( "workers",
        Json.Num (float_of_int (assigned_count t c.cid)) );
    ]
  in
  if not verbose then Json.Obj base
  else begin
    let telemetry =
      match
        Json.parse
          (Propane.Telemetry.to_json (Propane.Telemetry.snapshot c.telemetry))
      with
      | Ok j -> j
      | Error _ -> Json.Null
    in
    Json.Obj
      (base
      @ [
          ("telemetry", telemetry);
          ("analysis", digest_json c);
          ("rankings", rankings_json c);
        ])
  end

let fleet_json t =
  let now = Unix.gettimeofday () in
  let workers =
    List.filter_map
      (fun w ->
        if not w.joined then None
        else
          Some
            (Json.Obj
               [
                 ("id", Json.Num (float_of_int w.wid));
                 ("host", Json.Str w.host);
                 ("pid", Json.Num (float_of_int w.pid));
                 ( "campaign",
                   match w.assigned with
                   | Some cid -> Json.Str cid
                   | None -> Json.Null );
                 ( "outstanding",
                   Json.Num (float_of_int (List.length w.outstanding)) );
                 ("completed", Json.Num (float_of_int w.done_runs));
                 ( "idle",
                   Json.Bool (w.wants_work && w.outstanding = []) );
                 ( "last_seen_s",
                   Json.Num (Float.max 0.0 (now -. w.last_seen)) );
               ]))
      (Hashtbl.fold (fun _ w acc -> w :: acc) t.workers []
      |> List.sort (fun a b -> compare a.wid b.wid))
  in
  (* Bottleneck diagnosis: queued runs with no idle worker means the
     fleet is the constraint; each extra worker could immediately take
     a full batch, so that is the unit the sizing hint speaks in. *)
  let queue_depth =
    List.fold_left
      (fun acc c -> acc + Cluster.Session.pending c.session)
      0
      (List.filter runnable (campaigns_in_order t))
  in
  let idle =
    Hashtbl.fold
      (fun _ w n ->
        if w.joined && w.wants_work && w.outstanding = [] then n + 1 else n)
      t.workers 0
  in
  let bottleneck, hint =
    if queue_depth > 0 && idle = 0 then begin
      let wanted = (queue_depth + t.cfg.batch_max - 1) / t.cfg.batch_max in
      ( "workers",
        Printf.sprintf
          "%d more worker%s would help: %d runs queued and every worker busy"
          wanted
          (if wanted = 1 then "" else "s")
          queue_depth )
    end
    else if queue_depth = 0 && idle > 0 then
      ( "work",
        Printf.sprintf
          "%d worker%s idle: the fleet is waiting on submissions (or a \
           plan-round barrier)"
          idle
          (if idle = 1 then "" else "s") )
    else ("none", "")
  in
  Json.Obj
    [
      ("count", Json.Num (float_of_int (List.length workers)));
      ("idle", Json.Num (float_of_int idle));
      ("queue_depth", Json.Num (float_of_int queue_depth));
      ("bottleneck", Json.Str bottleneck);
      ("hint", Json.Str hint);
      ("workers", Json.List workers);
    ]

let error_json msg = Json.to_string (Json.Obj [ ("error", Json.Str msg) ])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Streams the saved results file ({!Propane.Storage}) of a finished
   campaign.  The file outlives the session — and the daemon — so this
   also serves campaigns that finished before a restart and are no
   longer in the live table. *)
let serve_results t cid =
  let path = results_path t cid in
  if Sys.file_exists path then
    match read_file path with
    | body -> (200, Some "text/plain", body)
    | exception Sys_error msg -> (500, None, error_json msg)
  else
    match Hashtbl.find_opt t.campaigns cid with
    | Some c when occupied c ->
        ( 409,
          None,
          error_json
            (Printf.sprintf "campaign %s has no results yet (%s)" cid
               (Manifest.state_to_string (phase_state c))) )
    | Some _ ->
        ( 404,
          None,
          error_json
            (Printf.sprintf "campaign %s finished without results" cid) )
    | None -> (404, None, error_json (Printf.sprintf "no campaign %s" cid))

let route t (req : Http.request) =
  let campaign_id path =
    let prefix = "/campaigns/" in
    let pl = String.length prefix in
    if
      String.length path > pl
      && String.equal (String.sub path 0 pl) prefix
    then Some (String.sub path pl (String.length path - pl))
    else None
  in
  (* [/campaigns/:id/results] arrives as ["<id>/results"] after the
     prefix strip. *)
  let results_of sub =
    let suffix = "/results" in
    let sl = String.length suffix and cl = String.length sub in
    if cl > sl && String.equal (String.sub sub (cl - sl) sl) suffix then
      Some (String.sub sub 0 (cl - sl))
    else None
  in
  let json (status, body) = (status, None, body) in
  match (req.Http.meth, req.Http.path) with
  | "POST", "/campaigns" -> (
      match submit t req.Http.body with
      | Ok c ->
          json
            ( 201,
              Json.to_string
                (Json.Obj
                   [
                     ("id", Json.Str c.cid);
                     ( "state",
                       Json.Str (Manifest.state_to_string (phase_state c)) );
                   ]) )
      | Error (status, msg) -> json (status, error_json msg))
  | "GET", "/campaigns" ->
      json
        ( 200,
          Json.to_string
            (Json.Obj
               [
                 ( "campaigns",
                   Json.List
                     (List.map (campaign_json t) (campaigns_in_order t)) );
               ]) )
  | "GET", "/fleet" -> json (200, Json.to_string (fleet_json t))
  | meth, path -> (
      match (meth, campaign_id path) with
      | "GET", Some sub -> (
          match results_of sub with
          | Some cid -> serve_results t cid
          | None -> (
              match Hashtbl.find_opt t.campaigns sub with
              | Some c ->
                  json (200, Json.to_string (campaign_json ~verbose:true t c))
              | None ->
                  json (404, error_json (Printf.sprintf "no campaign %s" sub))
              ))
      | "DELETE", Some cid -> (
          match Hashtbl.find_opt t.campaigns cid with
          | Some c ->
              cancel t c;
              json
                ( 202,
                  Json.to_string
                    (Json.Obj
                       [
                         ("id", Json.Str c.cid);
                         ( "state",
                           Json.Str
                             (Manifest.state_to_string (phase_state c)) );
                       ]) )
          | None ->
              json (404, error_json (Printf.sprintf "no campaign %s" cid)))
      | _ ->
          json
            ( 404,
              error_json
                (Printf.sprintf "no resource %s %s" req.Http.meth
                   req.Http.path) ))

let handle_http t h =
  let respond ?content_type status body =
    (try Http.write_all h.hfd (Http.response ~status ?content_type body)
     with Unix.Unix_error _ -> ());
    Hashtbl.remove t.https h.hid;
    try Unix.close h.hfd with Unix.Unix_error _ -> ()
  in
  match Http.next h.hc with
  | Error msg -> respond 400 (error_json msg)
  | Ok None -> ()
  | Ok (Some req) ->
      let status, content_type, body =
        try route t req
        with exn ->
          ( 500,
            None,
            error_json
              (Printf.sprintf "internal error: %s" (Printexc.to_string exn))
          )
      in
      respond ?content_type status body

(* --------------------------- main loop ---------------------------- *)

let accept_loop listen ~on_fd =
  let rec go () =
    match Unix.accept ~cloexec:true listen with
    | fd, _ ->
        Unix.clear_nonblock fd;
        (match Unix.getsockname fd with
        | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
        | Unix.ADDR_UNIX _ | (exception Unix.Unix_error _) -> ());
        on_fd fd;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_worker t w =
  let buf = Bytes.create 65536 in
  let drain () =
    let rec frames () =
      match Cluster.Frame.next w.wdec with
      | Error msg -> kill_worker t ~reason:msg w
      | Ok None -> ()
      | Ok (Some payload) -> (
          match Cluster.Protocol.decode_to_coordinator payload with
          | Error msg -> kill_worker t ~reason:msg w
          | Ok msg -> (
              match handle_worker t w msg with
              | () -> if Hashtbl.mem t.workers w.wid then frames ()
              | exception Unix.Unix_error (err, _, _) ->
                  kill_worker t ~reason:(Unix.error_message err) w))
    in
    frames ()
  in
  match Unix.read w.wfd buf 0 (Bytes.length buf) with
  | 0 -> kill_worker t ~reason:"disconnected" w
  | n ->
      Cluster.Frame.feed w.wdec (Bytes.sub_string buf 0 n);
      drain ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (err, _, _) ->
      kill_worker t ~reason:(Unix.error_message err) w

let read_http t h =
  let buf = Bytes.create 16384 in
  match Unix.read h.hfd buf 0 (Bytes.length buf) with
  | 0 ->
      Hashtbl.remove t.https h.hid;
      (try Unix.close h.hfd with Unix.Unix_error _ -> ())
  | n ->
      Http.feed h.hc (Bytes.sub_string buf 0 n);
      handle_http t h
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) ->
      Hashtbl.remove t.https h.hid;
      (try Unix.close h.hfd with Unix.Unix_error _ -> ())

let check_deadlines t =
  let now = Unix.gettimeofday () in
  Hashtbl.iter
    (fun _ w ->
      if w.outstanding <> [] && now > w.deadline then
        kill_worker t
          ~reason:
            (Printf.sprintf "no heartbeat for %.1f s" t.cfg.heartbeat_timeout_s)
          w
      else if
        w.joined && w.outstanding = []
        && now -. w.last_seen > t.cfg.heartbeat_timeout_s /. 2.
        && now -. w.last_ping > t.cfg.heartbeat_timeout_s /. 2.
      then begin
        (* Parked workers are blocked in a read with nothing
           outstanding; ping so GET /fleet's liveness ages stay honest
           and half-dead connections get noticed. *)
        w.last_ping <- now;
        match send_to w Cluster.Protocol.Ping with
        | () -> ()
        | exception Unix.Unix_error (err, _, _) ->
            kill_worker t ~reason:(Unix.error_message err) w
      end)
    (Hashtbl.copy t.workers)

let advance_campaigns t =
  List.iter
    (fun c ->
      match c.phase with
      | Final _ -> ()
      | Draining (target, reason) ->
          if outstanding_of t c.cid = 0 then begin
            Cluster.Session.abort c.session;
            finalize t c target reason
          end
      | Active ->
          if Cluster.Session.failed c.session <> None then finish_session t c
          else if Cluster.Session.complete c.session then begin
            if Cluster.Session.stopping c.session then begin
              (* Adaptive stop: drain in-flight runs first so their
                 outcomes reach the journal tail. *)
              if outstanding_of t c.cid = 0 then finish_session t c
            end
            else finish_session t c
          end
          else if
            Cluster.Session.stopping c.session && outstanding_of t c.cid = 0
          then finish_session t c)
    (campaigns_in_order t)

let broadcast_done t =
  Hashtbl.iter
    (fun _ w ->
      if w.joined then
        try send_to w Cluster.Protocol.Done with Unix.Unix_error _ -> ())
    t.workers

let close_everything t =
  Hashtbl.iter
    (fun _ w -> try Unix.close w.wfd with Unix.Unix_error _ -> ())
    t.workers;
  Hashtbl.reset t.workers;
  Hashtbl.iter
    (fun _ h -> try Unix.close h.hfd with Unix.Unix_error _ -> ())
    t.https;
  Hashtbl.reset t.https;
  (try Unix.close t.worker_listen with Unix.Unix_error _ -> ());
  (try Unix.close t.http_listen with Unix.Unix_error _ -> ());
  Cluster.Address.unlink t.cfg.listen;
  Cluster.Address.unlink t.cfg.http

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let run ?on_tick ?(stop = fun () -> `Continue) cfg =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  if cfg.queue_max < 1 then invalid_arg "Service.run: queue_max must be >= 1";
  if cfg.tenant_quota < 1 then
    invalid_arg "Service.run: tenant_quota must be >= 1";
  if cfg.batch_max < 1 then invalid_arg "Service.run: batch_max must be >= 1";
  if cfg.heartbeat_timeout_s <= 0.0 then
    invalid_arg "Service.run: heartbeat_timeout_s must be positive";
  mkdir_p cfg.state_dir;
  let manifest =
    match Manifest.append (manifest_path cfg.state_dir) with
    | Ok m -> m
    | Error msg -> invalid_arg (Printf.sprintf "Service.run: %s" msg)
  in
  let worker_listen = Cluster.Address.listen cfg.listen in
  let http_listen = Cluster.Address.listen cfg.http in
  let t =
    {
      cfg;
      manifest;
      campaigns = Hashtbl.create 16;
      order = [];
      next_id = 1;
      workers = Hashtbl.create 16;
      next_wid = 0;
      https = Hashtbl.create 8;
      next_hid = 0;
      worker_listen;
      http_listen;
    }
  in
  recover t;
  Log.info (fun m ->
      m "service up: fleet on %s, control on %s, state in %s (%d campaigns \
         recovered)"
        (Cluster.Address.to_string cfg.listen)
        (Cluster.Address.to_string cfg.http)
        cfg.state_dir
        (Hashtbl.length t.campaigns));
  let tick () = match on_tick with Some f -> f () | None -> () in
  let finished = ref None in
  while !finished = None do
    let fds =
      t.worker_listen :: t.http_listen
      :: Hashtbl.fold (fun _ w acc -> w.wfd :: acc) t.workers
           (Hashtbl.fold (fun _ h acc -> h.hfd :: acc) t.https [])
    in
    let timeout =
      Hashtbl.fold
        (fun _ w acc ->
          if w.outstanding = [] then acc
          else Float.min acc (w.deadline -. Unix.gettimeofday ()))
        t.workers 0.25
      |> Float.max 0.01
    in
    (match Unix.select fds [] [] timeout with
    | readable, _, _ ->
        if List.mem t.worker_listen readable then
          accept_loop t.worker_listen ~on_fd:(fun fd ->
              let w =
                {
                  wid = t.next_wid;
                  wfd = fd;
                  wdec = Cluster.Frame.decoder ();
                  joined = false;
                  host = "";
                  pid = 0;
                  assigned = None;
                  wants_work = false;
                  outstanding = [];
                  deadline = Unix.gettimeofday () +. cfg.heartbeat_timeout_s;
                  last_seen = Unix.gettimeofday ();
                  last_ping = 0.0;
                  done_runs = 0;
                }
              in
              t.next_wid <- t.next_wid + 1;
              Hashtbl.add t.workers w.wid w);
        if List.mem t.http_listen readable then
          accept_loop t.http_listen ~on_fd:(fun fd ->
              let h = { hid = t.next_hid; hfd = fd; hc = Http.conn () } in
              t.next_hid <- t.next_hid + 1;
              Hashtbl.add t.https h.hid h);
        List.iter
          (fun fd ->
            if fd != t.worker_listen && fd != t.http_listen then begin
              (match
                 Hashtbl.fold
                   (fun _ w acc -> if w.wfd == fd then Some w else acc)
                   t.workers None
               with
              | Some w -> read_worker t w
              | None -> (
                  match
                    Hashtbl.fold
                      (fun _ h acc -> if h.hfd == fd then Some h else acc)
                      t.https None
                  with
                  | Some h -> read_http t h
                  | None -> ()))
            end)
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    check_deadlines t;
    advance_campaigns t;
    distribute t;
    List.iter
      (fun c -> if occupied c then Cluster.Session.flush c.session)
      (campaigns_in_order t);
    tick ();
    (match stop () with
    | `Continue ->
        if
          cfg.exit_when_idle
          && t.order <> []
          && List.for_all
               (fun c -> not (occupied c))
               (campaigns_in_order t)
        then finished := Some `Drain
    | (`Drain | `Abort) as f -> finished := Some f)
  done;
  match !finished with
  | Some `Abort ->
      (* Crash simulation for tests: drop everything on the floor —
         no journal flush, no manifest transition, no Done — exactly
         the state a SIGKILL leaves behind (modulo OS buffers).  Only
         the fds close, so in-process workers see EOF and exit. *)
      close_everything t;
      Error "aborted"
  | _ ->
      (* Graceful drain: dismiss the fleet, flush what ran, leave
         every open campaign in the manifest for the next start. *)
      broadcast_done t;
      List.iter
        (fun c -> if occupied c then Cluster.Session.close c.session)
        (campaigns_in_order t);
      Manifest.close t.manifest;
      close_everything t;
      Log.info (fun m -> m "service drained and stopped");
      Ok ()
