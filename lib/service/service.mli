(** Campaign-as-a-service: a persistent, multi-tenant injection fleet.

    One long-lived daemon owns a fleet of {!Cluster.Worker.join}
    workers and a crash-safe queue of named campaigns, multiplexing
    many {!Cluster.Session}s over the shared fleet:

    - {b Fleet}: workers register once ({!Cluster.Protocol.Join}) and
      are retargeted across campaigns with
      {!Cluster.Protocol.Assign} — no reconnect between campaigns.
    - {b Persistence}: each campaign writes the same journal a serial
      [propane campaign --journal] run would ({e byte-identical} — the
      determinism contract of {!Propane.Runner}); a service-level
      {!Manifest} records what was submitted.  Restarting the daemon
      on the same [state_dir] resumes every queued or running campaign
      from its journal.
    - {b Fairness}: joined workers are apportioned over runnable
      campaigns by tenant-assigned weights (largest-remainder method),
      with sticky assignment so the fleet only rebalances when the
      campaign mix changes.
    - {b Backpressure}: a bounded queue ([queue_max]) and a per-tenant
      cap ([tenant_quota]); overflowing submissions are rejected with
      a reason naming the exhausted limit.
    - {b Control surface}: a thin HTTP/1.1 + JSON API ({!Http},
      {!Json} — no third-party dependencies), normally on a Unix
      socket:
      {ul
      {- [POST /campaigns] — submit (body is handed to [parse]);
         [201] with the fresh id, [400] on a parse error, [429] on
         backpressure.}
      {- [GET /campaigns] — every campaign ever submitted, in order.}
      {- [GET /campaigns/:id] — status, counters, live telemetry and
         the current module rankings with Wilson 95% CIs.}
      {- [DELETE /campaigns/:id] — cancel: stop handing out batches,
         drain in-flight runs into the journal, mark [cancelled].}
      {- [GET /campaigns/:id/results] — the finished campaign's saved
         {!Propane.Storage} results file, streamed as [text/plain];
         [409] while it is still queued or running, and still served
         after a restart (the file outlives the daemon).}
      {- [GET /fleet] — the worker roster, plus a bottleneck diagnosis:
         [queue_depth] (runs queued across runnable campaigns), [idle]
         (parked workers) and a sizing [hint] — when runs are queued
         and no worker is idle, how many more workers could each take a
         full batch right now.}} *)

type spec = {
  tenant : string;  (** accounting identity for quotas and weights *)
  weight : int;  (** fleet share relative to other campaigns; >= 1 *)
  name : string;  (** campaign name, as in a recipe *)
  sut : string;  (** system under test name *)
  total : int;  (** campaign size *)
  recipe : string;  (** serialised recipe, pinned into the journal
                        header and offered to workers *)
  config : Propane.Runner.Config.t;
      (** the run configuration; [journal] and [resume] are overridden
          by the service (each campaign journals under [state_dir]) *)
  live : Propane.Live.t option;
      (** fresh live analysis for ranking snapshots and [stop_when];
          [parse] must build a new one per call *)
  plan : Propane.Plan.t option;
      (** fresh budget scheduler ({!Propane.Plan}) used as the
          session's work source; required when [config.budget] is set,
          and — like [live] — [parse] must build a new one per call
          (plans are single-use) *)
}
(** Everything the service needs to run one submitted campaign.
    Produced by the [parse] callback from a submission body. *)

type config = {
  listen : Cluster.Address.t;  (** fleet (worker protocol) endpoint *)
  http : Cluster.Address.t;  (** control (HTTP) endpoint *)
  state_dir : string;  (** manifest + per-campaign journals *)
  queue_max : int;  (** max queued-or-running campaigns *)
  tenant_quota : int;  (** max queued-or-running per tenant *)
  batch_max : int;  (** per-worker batch cap, as [--batch] *)
  heartbeat_timeout_s : float;  (** reassign a worker's runs after this *)
  exit_when_idle : bool;
      (** drain and return once at least one campaign was accepted and
          all campaigns are terminal — for tests and batch drivers *)
  parse : string -> (spec, string) result;
      (** turns a submission body into a runnable spec; called on
          [POST /campaigns] and again for each non-terminal manifest
          entry on restart *)
}

val config :
  ?queue_max:int ->
  ?tenant_quota:int ->
  ?batch_max:int ->
  ?heartbeat_timeout_s:float ->
  ?exit_when_idle:bool ->
  listen:Cluster.Address.t ->
  http:Cluster.Address.t ->
  state_dir:string ->
  parse:(string -> (spec, string) result) ->
  unit ->
  config
(** Defaults: [queue_max = 16], [tenant_quota = 4], [batch_max = 16],
    [heartbeat_timeout_s = 30.], [exit_when_idle = false]. *)

val run :
  ?on_tick:(unit -> unit) ->
  ?stop:(unit -> [ `Continue | `Drain | `Abort ]) ->
  config ->
  (unit, string) result
(** Runs the daemon: binds both endpoints, recovers every non-terminal
    manifest entry from [state_dir] (resuming its journal), then
    serves until [stop] asks otherwise.  [stop] is polled once per
    scheduler tick (~4 Hz):

    - [`Drain] — graceful shutdown: dismiss the fleet, flush and close
      every open journal, leave non-terminal campaigns in the manifest
      so the next start resumes them.  Returns [Ok ()].
    - [`Abort] — simulated crash (for tests): close every descriptor
      and return {e without} flushing journals or touching the
      manifest, leaving exactly the on-disk state a [SIGKILL] would.
      Returns [Error "aborted"].

    [on_tick] runs after each tick (telemetry printing, test hooks).

    @raise Invalid_argument on a bad [config] or corrupt manifest. *)
