(** A hand-rolled sliver of HTTP/1.1 over [Unix] sockets.

    Enough protocol for a local control surface and no more: requests
    with [Content-Length] bodies (no chunked encoding), one response
    per connection ([Connection: close] always), CRLF with bare-LF
    tolerance.  The server side is an incremental parser to drop into
    a [select] loop; the client side is blocking and used by the CLI's
    [submit]/[status]/[cancel] and by tests.  Both ends cap header
    blocks at 16 KiB and bodies at 4 MiB — a control plane, not a file
    server. *)

type request = {
  meth : string;  (** verbatim, e.g. ["POST"] *)
  path : string;  (** verbatim, e.g. ["/campaigns/c0001"] *)
  headers : (string * string) list;  (** keys lowercased *)
  body : string;
}

(** {1 Server side} *)

type conn
(** Incremental parser state for one client connection. *)

val conn : unit -> conn

val feed : conn -> string -> unit
(** Append freshly read bytes. *)

val next : conn -> (request option, string) result
(** [Ok None] = need more bytes; [Ok (Some r)] = one complete request
    (pipelined followers stay buffered); [Error] poisons the
    connection — close it. *)

val response : status:int -> ?content_type:string -> string -> string
(** Serialises a full response, [Content-Length] and
    [Connection: close] included.  [content_type] defaults to
    [application/json]. *)

val write_all : Unix.file_descr -> string -> unit
(** Blocking full write, retrying on [EINTR].
    @raise Unix.Unix_error on any other error. *)

(** {1 Client side} *)

val request :
  ?body:string ->
  addr:Cluster.Address.t ->
  meth:string ->
  path:string ->
  unit ->
  (int * string, string) result
(** One blocking round-trip: connect (with {!Cluster.Address.connect}
    retries, so a just-started daemon wins the race), send, read to
    EOF.  Returns status code and body. *)
