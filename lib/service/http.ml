let max_head = 16_384
let max_body = 4 * 1024 * 1024

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

(* ------------------------- server parsing ------------------------- *)

type state =
  | Head  (** accumulating until the blank line *)
  | Body of { meth : string; path : string;
              headers : (string * string) list; need : int }
  | Failed of string

type conn = { buf : Buffer.t; mutable state : state }

let conn () = { buf = Buffer.create 512; state = Head }

let feed c s = Buffer.add_string c.buf s

let take c n =
  let all = Buffer.contents c.buf in
  let head = String.sub all 0 n in
  Buffer.clear c.buf;
  Buffer.add_substring c.buf all n (String.length all - n);
  head

(* The header block ends at the first CRLFCRLF (or LFLF — be liberal
   in what we accept). Returns (block length, body offset). *)
let head_end s =
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else if i + 3 < n && String.sub s i 4 = "\r\n\r\n" then Some (i, i + 4)
    else if i + 1 < n && String.sub s i 2 = "\n\n" then Some (i, i + 2)
    else go (i + 1)
  in
  go 0

let trim_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let parse_head block =
  match List.map trim_cr (String.split_on_char '\n' block) with
  | [] -> Error "empty request"
  | request_line :: header_lines -> (
      match String.split_on_char ' ' request_line with
      | meth :: path :: _protocol :: _ ->
          let headers =
            List.filter_map
              (fun line ->
                match String.index_opt line ':' with
                | None -> None
                | Some i ->
                    let k = String.lowercase_ascii (String.sub line 0 i) in
                    let v =
                      String.trim
                        (String.sub line (i + 1)
                           (String.length line - i - 1))
                    in
                    Some (k, v))
              header_lines
          in
          Ok (meth, path, headers)
      | _ -> Error (Printf.sprintf "malformed request line %S" request_line))

let rec next c =
  match c.state with
  | Failed msg -> Error msg
  | Head ->
      let data = Buffer.contents c.buf in
      if Buffer.length c.buf > max_head then begin
        c.state <- Failed "header block too large";
        Error "header block too large"
      end
      else begin
        match head_end data with
        | None -> Ok None
        | Some (head_len, body_off) -> (
            let block = String.sub data 0 head_len in
            ignore (take c body_off);
            match parse_head block with
            | Error msg ->
                c.state <- Failed msg;
                Error msg
            | Ok (meth, path, headers) ->
                let need =
                  match List.assoc_opt "content-length" headers with
                  | None -> 0
                  | Some v -> ( try int_of_string (String.trim v)
                                with Failure _ -> -1)
                in
                if need < 0 || need > max_body then begin
                  c.state <- Failed "bad content-length";
                  Error "bad content-length"
                end
                else begin
                  c.state <- Body { meth; path; headers; need };
                  next c
                end)
      end
  | Body { meth; path; headers; need } ->
      if Buffer.length c.buf < need then Ok None
      else begin
        let body = take c need in
        c.state <- Head;
        Ok (Some { meth; path; headers; body })
      end

(* -------------------------- responses ----------------------------- *)

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let response ~status ?(content_type = "application/json") body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    status (status_text status) content_type (String.length body) body

(* --------------------------- client ------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_all fd =
  let b = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents b

let parse_response raw =
  match head_end raw with
  | None -> Error "truncated HTTP response"
  | Some (head_len, body_off) -> (
      let block = String.sub raw 0 head_len in
      let body = String.sub raw body_off (String.length raw - body_off) in
      match List.map trim_cr (String.split_on_char '\n' block) with
      | status_line :: _ -> (
          match String.split_on_char ' ' status_line with
          | _http :: code :: _ -> (
              match int_of_string_opt code with
              | Some status -> Ok (status, body)
              | None -> Error (Printf.sprintf "bad status line %S" status_line))
          | _ -> Error (Printf.sprintf "bad status line %S" status_line))
      | [] -> Error "empty HTTP response")

let request ?(body = "") ~addr ~meth ~path () =
  match Cluster.Address.connect addr with
  | Error msg -> Error msg
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match
            write_all fd
              (Printf.sprintf
                 "%s %s HTTP/1.1\r\nHost: propane\r\nContent-Length: %d\r\n\
                  Connection: close\r\n\r\n%s"
                 meth path (String.length body) body);
            read_all fd
          with
          | raw -> parse_response raw
          | exception Unix.Unix_error (err, fn, _) ->
              Error
                (Printf.sprintf "%s failed: %s (%s)" meth
                   (Unix.error_message err) fn))
