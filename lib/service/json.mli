(** A minimal JSON tree, parser and printer.

    The control surface speaks JSON without adding a dependency: this
    is a small recursive-descent parser (objects, arrays, strings with
    escapes, numbers as [float], [true]/[false]/[null]) and a printer
    whose escaping round-trips through the parser.  It is not a
    validating standards lawyer — e.g. [\uXXXX] surrogate pairs are
    decoded as two code points — but every value it prints it also
    parses back, and every RFC 8259 document of the shapes the service
    exchanges parses correctly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Never raises; errors carry the byte offset. Rejects trailing
    bytes after the value. *)

val to_string : t -> string
(** Compact (no whitespace).  Integral floats print without a decimal
    point; NaN/infinity (which JSON cannot express) print as [null]. *)

val member : string -> t -> t option
(** First binding of the key, [None] on non-objects too. *)

val str : t -> string option
val num : t -> float option

val int : t -> int option
(** [Some] only for integral numbers. *)

val bool : t -> bool option
val list : t -> t list option
