(** The service-level campaign ledger.

    An append-only, line-based file (like {!Propane.Journal}) naming
    every campaign ever submitted and its latest state, so a restarted
    service rebuilds its queue without touching any journal:
    {v
    propane-service-manifest 1
    campaign <TAB> c0001 <TAB> <escaped submission body>
    state    <TAB> c0001 <TAB> running <TAB>
    state    <TAB> c0001 <TAB> done    <TAB>
    v}
    The submission body is stored verbatim ([String.escaped]-encoded,
    so tabs and newlines round-trip) and re-parsed on restart: the
    manifest records {e what was asked}, the per-campaign journal
    records {e what already ran} — together they resume byte-identically.
    Every append is flushed; a torn trailing line from a crash is
    ignored on load, exactly like the journal's torn-fragment rule. *)

type state = Queued | Running | Done | Cancelled | Failed

val state_to_string : state -> string
val state_of_string : string -> (state, string) result

val terminal : state -> bool
(** [Done], [Cancelled] and [Failed] are terminal: they never leave
    the manifest's history, but they occupy no queue slot. *)

type entry = { id : string; body : string; state : state; reason : string }
(** The latest state per campaign; [reason] explains [Failed] (and is
    [""] otherwise). *)

val load : string -> (entry list, string) result
(** Entries in submission order; a missing file is an empty ledger. *)

type t
(** An open, append-mode ledger. *)

val append : string -> (t, string) result
(** Opens for appending, writing the header if the file is new. *)

val submit : t -> id:string -> body:string -> unit
(** Records a new campaign (implicitly [Queued]); flushed. *)

val transition : t -> id:string -> state -> reason:string -> unit
(** Records a state change; flushed. *)

val close : t -> unit
