type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------- printing ---------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest decimal spelling that parses back to exactly [f]. *)
    let exact p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match exact 12 with
    | Some s -> s
    | None -> (
        match exact 15 with
        | Some s -> s
        | None -> (
            match exact 16 with
            | Some s -> s
            | None -> Printf.sprintf "%.17g" f))

let to_string t =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f ->
        if not (Float.is_finite f) then
          (* JSON has no NaN/inf; null is the least-surprising spelling *)
          Buffer.add_string b "null"
        else Buffer.add_string b (number f)
    | Str s -> escape b s
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape b k;
            Buffer.add_char b ':';
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go t;
  Buffer.contents b

(* ---------------------------- parsing ----------------------------- *)

exception Bad of string * int

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Bad (msg, c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected %c, found %c" ch x)
  | None -> fail c (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.equal (String.sub c.s c.pos n) word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.s then
                  fail c "truncated \\u escape";
                let hex = String.sub c.s c.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with Failure _ -> fail c "bad \\u escape"
                in
                c.pos <- c.pos + 4;
                (* Encode the code point as UTF-8; surrogate pairs are
                   passed through as-is (campaign names are ASCII in
                   practice; correctness over completeness). *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | e -> fail c (Printf.sprintf "bad escape \\%c" e));
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    let rec go () =
      match peek c with
      | Some ch when pred ch ->
          advance c;
          go ()
      | _ -> ()
    in
    go ()
  in
  (match peek c with Some '-' -> advance c | _ -> ());
  (* JSON integer part: a lone 0, or a nonzero digit then digits — no
     leading zeros. *)
  (match peek c with
  | Some '0' -> (
      advance c;
      match peek c with
      | Some '0' .. '9' -> fail c "leading zero in number"
      | _ -> ())
  | Some '1' .. '9' -> consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> fail c "missing digits in number");
  (match peek c with
  | Some '.' ->
      advance c;
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
      advance c;
      (match peek c with Some ('+' | '-') -> advance c | _ -> ());
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail c (Printf.sprintf "bad number %S" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected , or ] in array"
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let member () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> fail c "expected , or } in object"
        in
        Obj (members [])
      end
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c (Printf.sprintf "unexpected character %C" ch)

let parse s =
  let c = { s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then fail c "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Bad (msg, pos) ->
      Error (Printf.sprintf "invalid JSON at offset %d: %s" pos msg)

(* ---------------------------- accessors --------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let str = function Str s -> Some s | _ -> None

let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None

let list = function List l -> Some l | _ -> None
