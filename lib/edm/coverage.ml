type report = {
  detector : Detector.t;
  golden_false_alarm : bool;
  runs : int;
  effective : int;
  output_failures : int;
  fired : int;
  detections : int;
  false_alarms : int;
  timely_output_detections : int;
  mean_latency_ms : float option;
}

type accumulator = {
  det : Detector.t;
  mutable golden_false_alarm : bool;
  golden_verdicts : (string * Detector.verdict) list;
      (* per test case: how the detector behaves on the reference run *)
  mutable fired : int;
  mutable detections : int;
  mutable false_alarms : int;
  mutable timely : int;
  mutable latency_total : int;
  mutable latency_count : int;
}

let detection_coverage r =
  if r.effective = 0 then 0.0
  else float_of_int r.detections /. float_of_int r.effective

let usefulness r =
  if r.output_failures = 0 then 0.0
  else float_of_int r.timely_output_detections /. float_of_int r.output_failures

let assess ?(max_ms = Propane.Runner.default_max_ms) ?(seed = 42L) ~outputs
    ~detectors (sut : Propane.Sut.t) campaign =
  let master = Simkernel.Rng.create seed in
  let goldens =
    List.map
      (fun tc -> (Propane.Testcase.id tc, Propane.Runner.golden_run ~max_ms sut tc))
      campaign.Propane.Campaign.testcases
  in
  let golden_for tc = List.assoc (Propane.Testcase.id tc) goldens in
  let accs =
    List.map
      (fun det ->
        let golden_verdicts =
          List.map
            (fun (id, golden) ->
              ( id,
                Detector.evaluate det
                  (Propane.Trace_set.trace golden det.Detector.signal) ))
            goldens
        in
        {
          det;
          golden_false_alarm =
            List.exists (fun (_, v) -> v.Detector.fired) golden_verdicts;
          golden_verdicts;
          fired = 0;
          detections = 0;
          false_alarms = 0;
          timely = 0;
          latency_total = 0;
          latency_count = 0;
        })
      detectors
  in
  let runs = ref 0 and effective = ref 0 and output_failures = ref 0 in
  List.iter
    (fun (testcase, injection) ->
      let rng = Simkernel.Rng.split master in
      let golden = golden_for testcase in
      let run =
        Propane.Runner.injection_run ~rng sut
          ~duration_ms:(Propane.Trace_set.duration_ms golden)
          testcase injection
      in
      let divergences = Propane.Golden.compare_runs ~golden ~run () in
      let run_effective = divergences <> [] in
      let output_failure =
        List.find_map
          (fun (d : Propane.Golden.divergence) ->
            if List.exists (String.equal d.signal) outputs then
              Some d.first_ms
            else None)
          divergences
      in
      incr runs;
      if run_effective then incr effective;
      if output_failure <> None then incr output_failures;
      (* Detection latency counts from the first actual corruption (a
         delayed model arms at [at] but fires later). *)
      let injected_at = Propane.Injection.first_fire_ms injection in
      List.iter
        (fun acc ->
          let verdict =
            Detector.evaluate acc.det
              (Propane.Trace_set.trace run acc.det.Detector.signal)
          in
          (* A firing only signals an error when it deviates from the
             detector's behaviour on this test case's golden run: a
             mis-calibrated assertion that fires identically on the
             reference carries no information. *)
          let golden_verdict =
            List.assoc (Propane.Testcase.id testcase) acc.golden_verdicts
          in
          let deviates =
            verdict.Detector.fired
            && verdict.Detector.first_ms <> golden_verdict.Detector.first_ms
          in
          if deviates then begin
            acc.fired <- acc.fired + 1;
            if run_effective then begin
              acc.detections <- acc.detections + 1;
              match verdict.Detector.first_ms with
              | Some at when at >= injected_at ->
                  acc.latency_total <- acc.latency_total + (at - injected_at);
                  acc.latency_count <- acc.latency_count + 1
              | Some _ | None -> ()
            end
            else acc.false_alarms <- acc.false_alarms + 1;
            match (output_failure, verdict.Detector.first_ms) with
            | Some failed_at, Some fired_at when fired_at <= failed_at ->
                acc.timely <- acc.timely + 1
            | (Some _ | None), (Some _ | None) -> ()
          end)
        accs)
    (Propane.Campaign.experiments campaign);
  List.map
    (fun acc ->
      {
        detector = acc.det;
        golden_false_alarm = acc.golden_false_alarm;
        runs = !runs;
        effective = !effective;
        output_failures = !output_failures;
        fired = acc.fired;
        detections = acc.detections;
        false_alarms = acc.false_alarms;
        timely_output_detections = acc.timely;
        mean_latency_ms =
          (if acc.latency_count = 0 then None
           else
             Some
               (float_of_int acc.latency_total /. float_of_int acc.latency_count));
      })
    accs

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>%a@,\
     fired %d/%d runs (%d detections, %d false alarms%s)@,\
     coverage %.3f; usefulness %.3f (%d of %d output failures caught in \
     time)%a@]"
    Detector.pp r.detector r.fired r.runs r.detections r.false_alarms
    (if r.golden_false_alarm then "; FIRES ON GOLDEN RUN" else "")
    (detection_coverage r) (usefulness r) r.timely_output_detections
    r.output_failures
    Fmt.(
      option (fun ppf l -> Fmt.pf ppf "@,mean detection latency %.1f ms" l))
    r.mean_latency_ms
