let descriptors =
  [
    Clock_mod.descriptor;
    Dist_s.descriptor;
    Pres_s.descriptor;
    Calc.descriptor;
    V_reg.descriptor;
    Pres_a.descriptor;
  ]

let system =
  Propagation.System_model.make_exn ~modules:descriptors
    ~system_inputs:Signals.system_inputs
    ~system_outputs:Signals.system_outputs

let module_names = List.map Propagation.Sw_module.name descriptors

(* Developer-maintained version tags standing in for a hash of each
   module's implementation (an OCaml closure cannot be hashed).  Bump
   a tag when the module's behaviour changes: its content digest
   below moves, and cell-level campaign reuse ({!Propane.Cell})
   re-injects exactly the cached cells that observed the module. *)
let module_versions =
  [
    ("CLOCK", "clock-v1");
    ("DIST_S", "dist_s-v1");
    ("PRES_S", "pres_s-v1");
    ("CALC", "calc-v1");
    ("V_REG", "v_reg-v1");
    ("PRES_A", "pres_a-v1");
  ]

let module_digests =
  List.map
    (fun d ->
      let name = Propagation.Sw_module.name d in
      let version =
        match List.assoc_opt name module_versions with
        | Some v -> v
        | None -> "v0"
      in
      let signals l = List.map Propagation.Signal.name l in
      let digest =
        Digest.to_hex
          (Digest.string
             (String.concat "\x1f"
                (("arrestment" :: name :: version
                 :: signals (Propagation.Sw_module.input_signals d))
                @ ("->" :: signals (Propagation.Sw_module.output_signals d)))))
      in
      (name, digest))
    descriptors

let injection_targets =
  let inputs =
    List.concat_map Propagation.Sw_module.input_signals descriptors
  in
  List.sort_uniq String.compare (List.map Propagation.Signal.name inputs)

(* Reconstruction of the paper's Table 1.  The OCR of our source is
   partially illegible; these values reproduce every solidly legible
   aggregate (see EXPERIMENTS.md): CLOCK row (0.500 / 1.000), V_REG
   pairs 0.884 and 0.920, PRES_A 0.860, PRES_S 0.000, DIST_S non-
   weighted permeability 0.715, CALC relative permeability 0.523 and
   exposure 0.313 / 3.130, and the signal exposures X(SetValue) = 2.814,
   X(slow_speed) = 0.223, X(OutValue) = 1.804, X(TOC2) = 0.860,
   X(stopped) = X(mscnt) = 0.  They also yield exactly 22 propagation
   paths for TOC2 of which 13 have non-zero weight (Table 4). *)
let paper_permeabilities =
  [
    (* rows = inputs, columns = outputs, both in descriptor order *)
    ("CLOCK", [| [| 0.000; 1.000 |] |]);
    ( "DIST_S",
      [|
        [| 0.403; 0.044; 0.000 |];
        [| 0.058; 0.125; 0.000 |];
        [| 0.031; 0.054; 0.000 |];
      |] );
    ("PRES_S", [| [| 0.000 |] |]);
    ( "CALC",
      [|
        [| 0.477; 0.457 |];
        [| 0.336; 0.209 |];
        [| 0.231; 0.666 |];
        [| 0.371; 0.844 |];
        [| 1.000; 0.638 |];
      |] );
    ("V_REG", [| [| 0.884 |]; [| 0.920 |] |]);
    ("PRES_A", [| [| 0.860 |] |]);
  ]

let paper_matrices () =
  List.fold_left
    (fun acc (name, rows) ->
      Propagation.String_map.add name (Propagation.Perm_matrix.of_rows rows) acc)
    Propagation.String_map.empty paper_permeabilities
