module Store = Propane.Signal_store

type guard = { signal : string; make_transform : unit -> int -> int }

let testcase ~mass_kg ~velocity_mps =
  Propane.Testcase.make
    ~id:(Printf.sprintf "m%.0f-v%.0f" mass_kg velocity_mps)
    ~params:[ ("mass", mass_kg); ("velocity", velocity_mps) ]

let paper_testcases =
  let mass =
    Propane.Testcase.uniform_axis "mass" ~lo:8_000.0 ~hi:20_000.0 ~steps:5
  in
  let velocity =
    Propane.Testcase.uniform_axis "velocity" ~lo:40.0 ~hi:80.0 ~steps:5
  in
  Propane.Testcase.grid [ mass; velocity ]

let hardware_registers =
  [ Signals.pacnt; Signals.tic1; Signals.tcnt; Signals.adc; Signals.toc2 ]

let instantiate guards tc =
  let mass_kg = Propane.Testcase.param_exn tc "mass" in
  let velocity_mps = Propane.Testcase.param_exn tc "velocity" in
  let store =
    Store.create
      ~modes:
        (List.map
           (fun s -> (Propagation.Signal.name s, Store.Immediate))
           hardware_registers)
      ~signals:Signals.store_layout ()
  in
  List.iter
    (fun g -> Store.add_write_guard store g.signal (g.make_transform ()))
    guards;
  let env = Environment.create store ~mass_kg ~velocity_mps in
  let clock = Clock_mod.create store in
  let dist_s = Dist_s.create store in
  let pres_s =
    Pres_s.create store ~start_conversion:(fun () ->
        Environment.convert_adc env)
  in
  let calc = Calc.create store in
  let v_reg = V_reg.create store in
  let pres_a = Pres_a.create store in
  let slot_handle =
    Store.handle store (Propagation.Signal.name Signals.ms_slot_nbr)
  in
  let scheduler =
    Simkernel.Slot_scheduler.create ~slots:7
      ~slot_source:(fun () -> Store.read_handle slot_handle)
      ()
  in
  Simkernel.Slot_scheduler.add_every_slot scheduler ~name:"CLOCK" (fun () ->
      Clock_mod.step clock);
  Simkernel.Slot_scheduler.add_every_slot scheduler ~name:"DIST_S" (fun () ->
      Dist_s.step dist_s);
  Simkernel.Slot_scheduler.add_task scheduler ~slot:1 ~name:"PRES_S" (fun () ->
      Pres_s.step pres_s);
  Simkernel.Slot_scheduler.add_task scheduler ~slot:3 ~name:"V_REG" (fun () ->
      V_reg.step v_reg);
  Simkernel.Slot_scheduler.add_task scheduler ~slot:5 ~name:"PRES_A" (fun () ->
      Pres_a.step pres_a);
  Simkernel.Slot_scheduler.set_background scheduler ~name:"CALC" (fun () ->
      Calc.step calc);
  let peek_handles =
    Array.of_list
      (List.map (fun (name, _) -> Store.handle store name) Signals.store_layout)
  in
  {
    Propane.Sut.read = Store.peek store;
    write = Store.poke store;
    inject = Store.inject store;
    step =
      (fun () ->
        Environment.pre_step env;
        Simkernel.Slot_scheduler.tick scheduler;
        Environment.post_step env);
    finished = (fun () -> Environment.finished env);
    snapshot =
      Some
        (fun buf ->
          Array.iteri (fun i h -> buf.(i) <- Store.peek_handle h) peek_handles);
  }

let sut ?(guards = []) ?fault () =
  let sut =
    {
      Propane.Sut.name = "arrestment";
      signals = Signals.store_layout;
      digests = Model.module_digests;
      instantiate = instantiate guards;
    }
  in
  match fault with None -> sut | Some spec -> Propane.Fault.apply spec sut

let mission_failed ~golden ~run =
  let final traces signal =
    Propane.Trace.get
      (Propane.Trace_set.trace traces signal)
      (Propane.Trace_set.duration_ms traces - 1)
  in
  let run_pulscnt = final run "pulscnt" in
  let overrun =
    float_of_int run_pulscnt /. Params.pulses_per_metre
    >= Params.runway_length_m
  in
  let still_rolling =
    final run "stopped" = 0 && run_pulscnt > final golden "pulscnt" + 50
  in
  overrun || still_rolling

let paper_campaign ?(name = "paper-7.3") ?(testcases = paper_testcases) () =
  Propane.Campaign.paper_plan ~name ~targets:Model.injection_targets
    ~testcases ~width:Signals.width ()
