(** Static propagation model of the target system (paper Figs. 8-9).

    Six modules, fourteen signals, twenty-five input/output pairs.
    System inputs [PACNT], [TIC1], [TCNT], [ADC]; system output
    [TOC2]. *)

val system : Propagation.System_model.t

val injection_targets : string list
(** The thirteen distinct module-input signals, i.e. the campaign
    targets of Section 7.3 (every signal except [TOC2]). *)

val module_names : string list
(** [CLOCK; DIST_S; PRES_S; CALC; V_REG; PRES_A]. *)

val module_digests : (string * string) list
(** Per-module content digests for cell-level campaign reuse
    ({!Propane.Cell}): a hash of a developer-maintained version tag
    plus the module's signal interface.  Editing a module (bumping its
    tag) invalidates exactly the cached cells that observed it. *)

val paper_permeabilities : (string * float array array) list
(** The permeability matrices as estimated by the paper, for the
    entries that are legible in our source of Table 1/Table 2; values
    we could not recover are interpolated and marked in EXPERIMENTS.md.
    Useful for exercising the analysis pipeline against the paper's
    numbers without re-running the fault-injection campaign. *)

val paper_matrices : unit -> Propagation.Perm_matrix.t Propagation.String_map.t
