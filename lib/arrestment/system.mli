(** The complete target system as a PROPANE system under test.

    Wires the six modules, the slot scheduler and the environment
    simulator around a trap-instrumented signal store:

    - the hardware registers [PACNT], [TIC1], [TCNT], [ADC] and [TOC2]
      use {!Propane.Signal_store.Immediate} injection semantics, all
      software signals use [At_read] traps;
    - each millisecond runs: environment pre-step (sensor registers),
      one scheduler tick (slot tasks, then the CALC background task),
      environment post-step (valve command and physics);
    - the scheduler's slot source reads [ms_slot_nbr] through its trap,
      so slot-number errors genuinely disturb dispatching.

    Slot layout (7 x 1 ms, Section 7.1): CLOCK and DIST_S every slot;
    PRES_S in slot 1, V_REG in slot 3, PRES_A in slot 5 (7 ms periods);
    CALC as the background task. *)

type guard = {
  signal : string;  (** signal whose writes are wrapped *)
  make_transform : unit -> int -> int;
      (** factory producing a fresh (possibly stateful) transformer for
          each run — the EDM/ERM hook; called once per instance so
          detector state never leaks between runs *)
}

val testcase : mass_kg:float -> velocity_mps:float -> Propane.Testcase.t
(** Test case with parameters ["mass"] and ["velocity"]. *)

val paper_testcases : Propane.Testcase.t list
(** The paper's 25-case workload: 5 masses uniformly in 8,000-20,000 kg
    x 5 velocities uniformly in 40-80 m/s (Section 7.3). *)

val sut : ?guards:guard list -> ?fault:Propane.Fault.spec -> unit -> Propane.Sut.t
(** Fresh SUT description.  [guards] are installed on every instance
    (and therefore present in golden and injection runs alike).
    [fault] wraps the SUT in a {!Propane.Fault} chaos harness, making
    injected runs crash or hang on schedule — the vehicle for
    exercising the runner's failure handling against the real system.
    Test cases must provide ["mass"] (kg) and ["velocity"] (m/s). *)

val mission_failed :
  golden:Propane.Trace_set.t -> run:Propane.Trace_set.t -> bool
(** Service judgement for {!Propane.Severity}: the arrestment failed
    when the aircraft ran past the available cable, or was still rolling
    at the reference stop time (no [stopped] flag while the pulse count
    kept growing past the golden run's final count). *)

val paper_campaign :
  ?name:string -> ?testcases:Propane.Testcase.t list -> unit -> Propane.Campaign.t
(** The full Section 7.3 campaign: bit-flips in all 16 bit positions at
    10 instants (0.5-5.0 s) under the 25 test cases, for each of the 13
    module-input signals — 4,000 injections per signal, 52,000 runs.
    Pass a smaller [testcases] list to scale the workload down. *)
