(** Graphviz DOT rendering of the analysis artifacts (paper Figs. 3-5
    and 9-12 as machine-readable graphs). *)

val of_system_model : Propagation.System_model.t -> string
(** Module/signal wiring diagram (the paper's Fig. 8): one box per
    module, one labelled edge per signal from its producer to each
    consumer, with environment source/sink nodes for system inputs and
    outputs.  Port numbers are printed on the edge labels. *)

val of_perm_graph :
  ?include_zero:bool -> ?ci:bool -> Propagation.Perm_graph.t -> string
(** Permeability graph: one node per module plus environment
    source/sink nodes; one labelled edge per arc.  Zero-weight arcs are
    omitted by default, as the paper permits.  [ci] (default false)
    appends each arc's 95% interval to its label; zero-width (exact)
    estimates stay unannotated. *)

val of_backtrack_tree : ?ci:bool -> Propagation.Backtrack_tree.t -> string
(** Backtrack tree; feedback leaves are drawn with a double edge
    (paper's double-line notation).  [ci] as in {!of_perm_graph}. *)

val of_trace_tree : ?ci:bool -> Propagation.Trace_tree.t -> string
