let f3 v = Printf.sprintf "%.3f" v
let ci_cell (lo, hi) = Printf.sprintf "[%.3f, %.3f]" lo hi
let est_ci e = ci_cell (Propagation.Estimate.interval e)
let resolved_cell r = if r then "yes" else "no"

let table1 ?reference ?(ci = false) (analysis : Propagation.Analysis.t) =
  let model = Propagation.Perm_graph.model analysis.graph in
  let rows =
    List.concat_map
      (fun m ->
        let name = Propagation.Sw_module.name m in
        let matrix = Propagation.Perm_graph.matrix analysis.graph name in
        List.concat_map
          (fun i0 ->
            let i = i0 + 1 in
            List.map
              (fun k0 ->
                let k = k0 + 1 in
                let base =
                  [
                    Fmt.str "%a -> %a" Propagation.Signal.pp
                      (Propagation.Sw_module.input_signal m i)
                      Propagation.Signal.pp
                      (Propagation.Sw_module.output_signal m k);
                    Printf.sprintf "P^%s_{%d,%d}" name i k;
                    f3 (Propagation.Perm_matrix.get matrix ~input:i ~output:k);
                  ]
                  @ (if not ci then []
                     else
                       let e =
                         Propagation.Perm_matrix.estimate matrix ~input:i
                           ~output:k
                       in
                       [
                         string_of_int e.Propagation.Estimate.n_err;
                         string_of_int e.Propagation.Estimate.n_inj;
                         est_ci e;
                       ])
                in
                match reference with
                | None -> base
                | Some ref_matrices ->
                    let ref_value =
                      match
                        Propagation.String_map.find_opt name ref_matrices
                      with
                      | Some rm ->
                          f3 (Propagation.Perm_matrix.get rm ~input:i ~output:k)
                      | None -> "-"
                    in
                    base @ [ ref_value ])
              (List.init (Propagation.Sw_module.output_count m) Fun.id))
          (List.init (Propagation.Sw_module.input_count m) Fun.id))
      (Propagation.System_model.modules model)
  in
  let columns =
    [
      ("Input -> Output", Table.Left);
      ("Name", Table.Left);
      ("Value", Table.Right);
    ]
    @ (if not ci then []
       else
         [
           ("n_err", Table.Right);
           ("n_inj", Table.Right);
           ("95% CI", Table.Left);
         ])
    @ match reference with None -> [] | Some _ -> [ ("Paper", Table.Right) ]
  in
  Table.make ~title:"Table 1. Estimated error permeability values" ~columns
    rows

let table2 ?(ci = false) (analysis : Propagation.Analysis.t) =
  Table.make ~title:"Table 2. Relative permeability and error exposure"
    ~columns:
      ([
         ("Module", Table.Left);
         ("P^M", Table.Right);
         ("Pnw^M", Table.Right);
         ("X^M", Table.Right);
         ("Xnw^M", Table.Right);
       ]
      @
      if not ci then []
      else
        [
          ("P^M CI", Table.Left);
          ("X^M CI", Table.Left);
          ("Resolved", Table.Left);
        ])
    (List.map
       (fun (r : Propagation.Ranking.module_row) ->
         [
           r.module_name;
           f3 r.relative_permeability;
           f3 r.non_weighted_permeability;
           f3 r.exposure;
           f3 r.non_weighted_exposure;
         ]
         @
         if not ci then []
         else
           [
             est_ci r.relative_permeability_est;
             est_ci r.exposure_est;
             resolved_cell r.resolved;
           ])
       analysis.module_rows)

let table3 ?(ci = false) (analysis : Propagation.Analysis.t) =
  Table.make ~title:"Table 3. Estimated signal error exposures"
    ~columns:
      ([ ("Signal", Table.Left); ("X^S", Table.Right) ]
      @
      if not ci then []
      else [ ("95% CI", Table.Left); ("Resolved", Table.Left) ])
    (List.map
       (fun (r : Propagation.Ranking.signal_row) ->
         [ Propagation.Signal.name r.signal; f3 r.exposure ]
         @
         if not ci then []
         else [ est_ci r.exposure_est; resolved_cell r.resolved ])
       analysis.signal_rows)

let path_cells ~ci (r : Propagation.Ranking.path_row) =
  let signals =
    Propagation.Signal.name r.path.Propagation.Path.source
    :: List.map
         (fun (s : Propagation.Path.step) -> Propagation.Signal.name s.signal)
         r.path.Propagation.Path.steps
  in
  [
    string_of_int r.rank;
    String.concat " <- " signals;
    Printf.sprintf "%.6f" r.weight;
  ]
  @
  if not ci then []
  else
    let lo, hi = r.interval in
    [
      Printf.sprintf "[%.6f, %.6f]" lo hi;
      resolved_cell r.resolved;
    ]

let path_columns ci =
  [ ("#", Table.Right); ("Path", Table.Left); ("Weight", Table.Right) ]
  @
  if not ci then []
  else [ ("Weight CI", Table.Left); ("Resolved", Table.Left) ]

let find_paths what paths signal =
  match
    List.find_opt (fun (s, _) -> Propagation.Signal.equal s signal) paths
  with
  | Some (_, rows) -> rows
  | None ->
      invalid_arg
        (Fmt.str "Experiments.%s: no tree for signal %a" what
           Propagation.Signal.pp signal)

let table4 ?(ci = false) (analysis : Propagation.Analysis.t) output =
  let rows = find_paths "table4" analysis.output_paths output in
  Table.make
    ~title:
      (Fmt.str
         "Table 4. Propagation paths of backtrack tree for %a (non-zero, by \
          weight)"
         Propagation.Signal.pp output)
    ~columns:(path_columns ci)
    (List.map (path_cells ~ci) rows)

let input_paths_table ?(ci = false) (analysis : Propagation.Analysis.t) input =
  let rows = find_paths "input_paths_table" analysis.input_paths input in
  Table.make
    ~title:
      (Fmt.str "Propagation paths of trace tree for %a (non-zero, by weight)"
         Propagation.Signal.pp input)
    ~columns:(path_columns ci)
    (List.map (path_cells ~ci) rows)

let estimates_table estimates =
  Table.make ~title:"Permeability estimates with campaign detail"
    ~columns:
      [
        ("Pair", Table.Left);
        ("n_err", Table.Right);
        ("n_inj", Table.Right);
        ("P", Table.Right);
        ("95% CI", Table.Left);
      ]
    (List.map
       (fun (e : Propane.Estimator.estimate) ->
         let lo, hi = e.interval in
         [
           Fmt.str "%a" Propagation.Perm_graph.pp_pair e.pair;
           string_of_int e.errors;
           string_of_int e.injections;
           f3 e.value;
           Printf.sprintf "[%.3f, %.3f]" lo hi;
         ])
       estimates)
