(** Regeneration of the paper's result tables from an analysis.

    Each function produces the rows of the corresponding table of
    Section 8, given a completed {!Propagation.Analysis.t}.  The bench
    harness prints two instances of each: one from the paper's (partly
    reconstructed) Table 1 values and one from the permeabilities
    measured by this reproduction's fault-injection campaign. *)

val table1 :
  ?reference:Propagation.Perm_matrix.t Propagation.String_map.t ->
  ?ci:bool ->
  Propagation.Analysis.t ->
  Table.t
(** Table 1 — one row per input/output pair of every module: the pair
    in the paper's {m P^M_(i,k)} notation, the signal names, and the
    estimated permeability.  [reference] adds a side-by-side column
    (e.g. the paper's values).  [ci] (default false) adds the counts
    and 95% interval behind each value; postulated matrices show
    [0/0] counts and a zero-width interval. *)

val table2 : ?ci:bool -> Propagation.Analysis.t -> Table.t
(** Table 2 — per module: relative and non-weighted permeability
    (Eqs. 2-3), error exposure and non-weighted exposure (Eqs. 4-5).
    [ci] adds the intervals of {m P^M} and {m X^M} and the row's
    resolvedness (see {!Propagation.Ranking.module_row}). *)

val table3 : ?ci:bool -> Propagation.Analysis.t -> Table.t
(** Table 3 — signal error exposures (Eq. 6), highest first.  [ci]
    adds the exposure interval and resolvedness. *)

val table4 :
  ?ci:bool -> Propagation.Analysis.t -> Propagation.Signal.t -> Table.t
(** Table 4 — the non-zero propagation paths of the backtrack tree of
    the given system output, ordered by weight.  [ci] adds the
    interval-product bounds of each weight and resolvedness.
    @raise Invalid_argument if the output has no tree in the analysis. *)

val input_paths_table :
  ?ci:bool -> Propagation.Analysis.t -> Propagation.Signal.t -> Table.t
(** Companion to Table 4 for a trace tree: the non-zero propagation
    paths from a system input (used for OB4's [pulscnt] argument). *)

val estimates_table : Propane.Estimator.estimate list -> Table.t
(** Raw estimation detail: n_err / n_inj and the 95% confidence
    interval of every pair (an extension beyond the paper). *)
