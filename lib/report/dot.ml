let buf_printf = Printf.bprintf

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let of_system_model model =
  let b = Buffer.create 1024 in
  buf_printf b "digraph system {\n  rankdir=LR;\n";
  List.iter
    (fun m ->
      buf_printf b "  \"%s\" [shape=box];\n"
        (escape (Propagation.Sw_module.name m)))
    (Propagation.System_model.modules model);
  buf_printf b "  \"ENV_IN\" [shape=plaintext, label=\"environment\"];\n";
  buf_printf b "  \"ENV_OUT\" [shape=plaintext, label=\"environment\"];\n";
  let edge src dst label =
    buf_printf b "  \"%s\" -> \"%s\" [label=\"%s\"];\n" (escape src)
      (escape dst) (escape label)
  in
  List.iter
    (fun signal ->
      let signal_name = Propagation.Signal.name signal in
      let src, out_port =
        match Propagation.System_model.producer model signal with
        | Some (m, k) ->
            (Propagation.Sw_module.name m, Printf.sprintf " (out %d)" k)
        | None -> ("ENV_IN", "")
      in
      let consumers = Propagation.System_model.consumers model signal in
      List.iter
        (fun (m, i) ->
          edge src
            (Propagation.Sw_module.name m)
            (Printf.sprintf "%s%s (in %d)" signal_name out_port i))
        consumers;
      if Propagation.System_model.is_system_output model signal then
        edge src "ENV_OUT" (signal_name ^ out_port))
    (Propagation.System_model.signals model);
  buf_printf b "}\n";
  Buffer.contents b

let ci_suffix estimate =
  if Propagation.Estimate.width estimate = 0.0 then ""
  else
    let lo, hi = Propagation.Estimate.interval estimate in
    Printf.sprintf " [%.3f, %.3f]" lo hi

let of_perm_graph ?(include_zero = false) ?(ci = false) graph =
  let b = Buffer.create 1024 in
  buf_printf b "digraph permeability {\n  rankdir=LR;\n";
  let model = Propagation.Perm_graph.model graph in
  List.iter
    (fun m ->
      buf_printf b "  \"%s\" [shape=box];\n"
        (escape (Propagation.Sw_module.name m)))
    (Propagation.System_model.modules model);
  buf_printf b "  \"ENV_IN\" [shape=plaintext, label=\"environment\"];\n";
  buf_printf b "  \"ENV_OUT\" [shape=plaintext, label=\"environment\"];\n";
  List.iter
    (fun s ->
      List.iter
        (fun (m, i) ->
          buf_printf b
            "  \"ENV_IN\" -> \"%s\" [label=\"%s (in %d)\", style=dashed];\n"
            (escape (Propagation.Sw_module.name m))
            (escape (Propagation.Signal.name s))
            i)
        (Propagation.System_model.consumers model s))
    (Propagation.System_model.system_inputs model);
  List.iter
    (fun (arc : Propagation.Perm_graph.arc) ->
      if include_zero || arc.weight > 0.0 then begin
        let dst =
          match arc.destination with
          | Propagation.Perm_graph.To_module (m, _) -> m
          | Propagation.Perm_graph.To_environment -> "ENV_OUT"
        in
        buf_printf b
          "  \"%s\" -> \"%s\" [label=\"P^%s_{%d,%d}=%.3f%s (%s)\"];\n"
          (escape arc.pair.module_name)
          (escape dst)
          (escape arc.pair.module_name)
          arc.pair.input arc.pair.output arc.weight
          (if ci then ci_suffix arc.estimate else "")
          (escape (Propagation.Signal.name arc.signal))
      end)
    (Propagation.Perm_graph.arcs graph);
  buf_printf b "}\n";
  Buffer.contents b

let node_id prefix counter =
  incr counter;
  Printf.sprintf "%s%d" prefix !counter

let of_backtrack_tree ?(ci = false) (tree : Propagation.Backtrack_tree.t) =
  let b = Buffer.create 1024 in
  let counter = ref 0 in
  buf_printf b "digraph backtrack {\n";
  let rec emit (node : Propagation.Backtrack_tree.node) =
    let id = node_id "n" counter in
    let shape =
      match node.kind with
      | Propagation.Backtrack_tree.Leaf _ -> "ellipse"
      | Propagation.Backtrack_tree.Expanded _ -> "box"
    in
    buf_printf b "  %s [label=\"%s\", shape=%s];\n" id
      (escape (Propagation.Signal.name node.signal))
      shape;
    List.iter
      (fun (c : Propagation.Backtrack_tree.child) ->
        let child_id = emit c.node in
        let style =
          match c.node.kind with
          | Propagation.Backtrack_tree.Leaf Propagation.Backtrack_tree.Feedback
            ->
              ", color=\"black:black\""
          | Propagation.Backtrack_tree.Leaf
              Propagation.Backtrack_tree.System_input
          | Propagation.Backtrack_tree.Expanded _ ->
              ""
        in
        buf_printf b "  %s -> %s [label=\"%.3f%s\"%s];\n" id child_id c.weight
          (if ci then ci_suffix c.estimate else "")
          style)
      node.children;
    id
  in
  ignore (emit tree.Propagation.Backtrack_tree.root);
  buf_printf b "}\n";
  Buffer.contents b

let of_trace_tree ?(ci = false) (tree : Propagation.Trace_tree.t) =
  let b = Buffer.create 1024 in
  let counter = ref 0 in
  buf_printf b "digraph trace {\n";
  let rec emit (node : Propagation.Trace_tree.node) =
    let id = node_id "n" counter in
    let shape =
      match node.kind with
      | Propagation.Trace_tree.Leaf_of _ -> "ellipse"
      | Propagation.Trace_tree.Root | Propagation.Trace_tree.Produced _ ->
          "box"
    in
    buf_printf b "  %s [label=\"%s\", shape=%s];\n" id
      (escape (Propagation.Signal.name node.signal))
      shape;
    List.iter
      (fun (c : Propagation.Trace_tree.child) ->
        let child_id = emit c.node in
        buf_printf b "  %s -> %s [label=\"%.3f%s\"];\n" id child_id c.weight
          (if ci then ci_suffix c.estimate else ""))
      node.children;
    id
  in
  ignore (emit tree.Propagation.Trace_tree.root);
  buf_printf b "}\n";
  Buffer.contents b
