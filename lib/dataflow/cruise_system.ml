module Sig = Propagation.Signal

let speed_adc = Sig.make "speed_adc"
let target_knob = Sig.make "target_knob"
let speed_flt = Sig.make "speed_flt"
let setpoint = Sig.make "setpoint"
let throttle = Sig.make "throttle"

let speed_s =
  (* Exponential low-pass: one corrupted sample decays over ~4 ms. *)
  Builder.block ~name:"SPEED_S" ~inputs:[ speed_adc ]
    ~outputs:[ speed_flt ]
    (fun () ->
      let flt = ref 0 in
      fun inputs ->
        flt := ((3 * !flt) + inputs.(0)) / 4;
        [| !flt |])

let setpoint_block =
  (* Rate limiter: the demand moves at most 5 cm/s per ms, so a knob
     spike is chased only briefly — a containment wrapper in the
     paper's sense. *)
  Builder.block ~name:"SETPOINT" ~inputs:[ target_knob ]
    ~outputs:[ setpoint ]
    (fun () ->
      let current = ref 0 in
      fun inputs ->
        let demand = inputs.(0) in
        let step = max (-5) (min 5 (demand - !current)) in
        current := !current + step;
        [| !current |])

let regulator =
  Builder.block ~name:"REG" ~period_ms:5
    ~inputs:[ setpoint; speed_flt ]
    ~outputs:[ throttle ]
    (fun () ->
      let integ = ref 0 in
      fun inputs ->
        let err = inputs.(0) - inputs.(1) in
        integ := max (-200_000) (min 200_000 (!integ + err));
        let out = (err / 2) + (!integ / 64) in
        [| max 0 (min 4_095 out) |])

let vehicle =
  (* Longitudinal dynamics: thrust proportional to throttle, quadratic
     drag; speeds in cm/s, 1 ms steps. *)
  Builder.plant ~name:"VEHICLE" ~reads:[ throttle ]
    ~writes:[ speed_adc ]
    (fun () ->
      let v = ref 0.0 in
      fun reads ->
        let thrust = float_of_int reads.(0) *. 2.4 in
        let drag = 0.0008 *. !v *. Float.abs !v /. 100.0 in
        let accel_cms2 = thrust -. drag in
        v := Float.max 0.0 (!v +. (accel_cms2 *. 0.001));
        [| int_of_float (Float.round !v) |])

let knob_profile () ms = if ms < 1_000 then 2_000 else 3_000

let system =
  Builder.create_exn ~name:"cruise" ~duration_ms:3_000
    ~plants:[ vehicle ]
    ~blocks:[ speed_s; setpoint_block; regulator ]
    ~stimuli:[ Builder.stimulus target_knob knob_profile ]
    ()

let sut = Builder.sut system

let default_times =
  List.init 5 (fun j -> Simkernel.Sim_time.of_ms (500 * (j + 1)))

let campaign ?(times = default_times) () =
  Propane.Campaign.make ~name:"cruise"
    ~targets:(Builder.injection_targets system)
    ~testcases:[ Propane.Testcase.make ~id:"step" ~params:[] ]
    ~times
    ~errors:(Propane.Error_model.bit_flips ~width:16)

let measure ?(seed = 42L) () =
  let results = Propane.Runner.run ~config:(Propane.Runner.Config.make ~seed ()) sut (campaign ()) in
  match
    Propane.Estimator.estimate_all
      ~model:(Builder.model system)
      results
  with
  | Ok matrices -> matrices
  | Error msg -> failwith ("Cruise_system.measure: " ^ msg)

let mission_failed ~golden ~run =
  let final traces =
    Propane.Trace.get
      (Propane.Trace_set.trace traces "speed_adc")
      (Propane.Trace_set.duration_ms traces - 1)
  in
  abs (final golden - final run) > 200
