type block = {
  descriptor : Propagation.Sw_module.t;
  period_ms : int;
  offset_ms : int;
  tag : string;
  factory : unit -> int array -> int array;
}

let block ~name ?(period_ms = 1) ?(offset_ms = 0) ?(tag = "") ~inputs ~outputs
    factory =
  if period_ms < 1 then invalid_arg "Builder.block: period must be >= 1";
  if offset_ms < 0 then invalid_arg "Builder.block: offset must be >= 0";
  {
    descriptor = Propagation.Sw_module.make ~name ~inputs ~outputs;
    period_ms;
    offset_ms;
    tag;
    factory;
  }

(* Content digest of a block: everything the builder knows about it —
   wiring, schedule, and the tag standing in for the transfer function
   (closures cannot be hashed; change the transfer, change the tag). *)
let block_digest b =
  let name = Propagation.Sw_module.name b.descriptor in
  let signals l = List.map Propagation.Signal.name l in
  ( name,
    Digest.to_hex
      (Digest.string
         (String.concat "\x1f"
            ([ "dataflow-block"; name;
               string_of_int b.period_ms; string_of_int b.offset_ms; b.tag ]
            @ signals (Propagation.Sw_module.input_signals b.descriptor)
            @ ("->" ::
               signals (Propagation.Sw_module.output_signals b.descriptor))))) )

type stimulus = {
  signal : Propagation.Signal.t;
  drive : unit -> int -> int;
}

let stimulus signal drive = { signal; drive }

let ramp ?(slope = 1) signal =
  { signal; drive = (fun () ms -> slope * ms) }

let constant value signal = { signal; drive = (fun () _ -> value) }

type plant = {
  plant_name : string;
  reads : Propagation.Signal.t list;
  writes : Propagation.Signal.t list;
  plant_factory : unit -> int array -> int array;
}

let plant ~name ~reads ~writes factory =
  if String.length name = 0 then invalid_arg "Builder.plant: empty name";
  if writes = [] then
    invalid_arg (Printf.sprintf "Builder.plant: plant %S writes nothing" name);
  { plant_name = name; reads; writes; plant_factory = factory }

type t = {
  name : string;
  width : int;
  duration_ms : int;
  blocks : block list;
  stimuli : stimulus list;
  plants : plant list;
  model : Propagation.System_model.t;
}

let ( let* ) = Result.bind

let derive_model blocks stimuli plants =
  let descriptors = List.map (fun b -> b.descriptor) blocks in
  let produced =
    List.fold_left
      (fun acc d ->
        List.fold_left
          (fun acc s -> Propagation.Signal.Set.add s acc)
          acc
          (Propagation.Sw_module.output_signals d))
      Propagation.Signal.Set.empty descriptors
  in
  let consumed =
    List.fold_left
      (fun acc d ->
        List.fold_left
          (fun acc s -> Propagation.Signal.Set.add s acc)
          acc
          (Propagation.Sw_module.input_signals d))
      Propagation.Signal.Set.empty descriptors
  in
  let stimulus_signals = List.map (fun s -> s.signal) stimuli in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        if Propagation.Signal.Set.mem s produced then
          Error
            (Fmt.str "stimulus %a drives an internally produced signal"
               Propagation.Signal.pp s)
        else if not (Propagation.Signal.Set.mem s consumed) then
          Error
            (Fmt.str "stimulus %a drives a signal no block reads"
               Propagation.Signal.pp s)
        else Ok ())
      (Ok ()) stimulus_signals
  in
  let plant_writes = List.concat_map (fun p -> p.writes) plants in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        if Propagation.Signal.Set.mem s produced then
          Error
            (Fmt.str "plant-written signal %a is also produced by a block"
               Propagation.Signal.pp s)
        else if not (Propagation.Signal.Set.mem s consumed) then
          Error
            (Fmt.str "plant-written signal %a is read by no block"
               Propagation.Signal.pp s)
        else Ok ())
      (Ok ()) plant_writes
  in
  let plant_reads = List.concat_map (fun p -> p.reads) plants in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        if Propagation.Signal.Set.mem s produced then Ok ()
        else
          Error
            (Fmt.str "plant-read signal %a is produced by no block"
               Propagation.Signal.pp s))
      (Ok ()) plant_reads
  in
  let system_inputs = stimulus_signals @ plant_writes in
  let* () =
    let rec dup seen = function
      | [] -> Ok ()
      | s :: rest ->
          if Propagation.Signal.Set.mem s seen then
            Error
              (Fmt.str "signal %a is driven more than once"
                 Propagation.Signal.pp s)
          else dup (Propagation.Signal.Set.add s seen) rest
    in
    dup Propagation.Signal.Set.empty system_inputs
  in
  let system_outputs =
    Propagation.Signal.Set.elements
      (Propagation.Signal.Set.union
         (Propagation.Signal.Set.diff produced consumed)
         (Propagation.Signal.Set.of_list plant_reads))
  in
  let* () =
    if system_outputs = [] then
      Error "the system has no outputs (every produced signal is consumed)"
    else Ok ()
  in
  Result.map_error Propagation.System_model.error_to_string
    (Propagation.System_model.make ~modules:descriptors ~system_inputs
       ~system_outputs)

let create ?(name = "dataflow") ?(width = 16) ?(duration_ms = 1_000)
    ?(plants = []) ~blocks ~stimuli () =
  let* () = if blocks = [] then Error "no blocks" else Ok () in
  let* () =
    if duration_ms < 1 then Error "duration must be >= 1 ms" else Ok ()
  in
  let* model = derive_model blocks stimuli plants in
  Ok { name; width; duration_ms; blocks; stimuli; plants; model }

let create_exn ?name ?width ?duration_ms ?plants ~blocks ~stimuli () =
  match create ?name ?width ?duration_ms ?plants ~blocks ~stimuli () with
  | Ok t -> t
  | Error msg -> invalid_arg ("Builder.create_exn: " ^ msg)

let model t = t.model
let duration_ms t = t.duration_ms

let injection_targets t =
  List.sort_uniq String.compare
    (List.concat_map
       (fun b ->
         List.map Propagation.Signal.name
           (Propagation.Sw_module.input_signals b.descriptor))
       t.blocks)

let signal_layout t =
  List.map
    (fun s -> (Propagation.Signal.name s, t.width))
    (Propagation.System_model.signals t.model)

let instantiate t _testcase =
  let store =
    (* Plant-written signals are hardware registers: injections corrupt
       the cell immediately and the next refresh clobbers them. *)
    Propane.Signal_store.create
      ~modes:
        (List.concat_map
           (fun p ->
             List.map
               (fun s ->
                 (Propagation.Signal.name s, Propane.Signal_store.Immediate))
               p.writes)
           t.plants)
      ~signals:(signal_layout t) ()
  in
  let drives =
    List.map
      (fun s -> (Propagation.Signal.name s.signal, s.drive ()))
      t.stimuli
  in
  let plant_steps =
    List.map
      (fun p ->
        let f = p.plant_factory () in
        let reads = Array.of_list (List.map Propagation.Signal.name p.reads) in
        let writes =
          Array.of_list (List.map Propagation.Signal.name p.writes)
        in
        fun () ->
          let values =
            Array.map (fun s -> Propane.Signal_store.read store s) reads
          in
          let results = f values in
          if Array.length results <> Array.length writes then
            invalid_arg
              (Printf.sprintf
                 "Builder: plant %S produced %d outputs, expected %d"
                 p.plant_name (Array.length results) (Array.length writes));
          Array.iteri
            (fun k v -> Propane.Signal_store.poke store writes.(k) v)
            results)
      t.plants
  in
  let steps =
    List.map
      (fun b ->
        let f = b.factory () in
        let inputs =
          Array.of_list
            (List.map Propagation.Signal.name
               (Propagation.Sw_module.input_signals b.descriptor))
        in
        let outputs =
          Array.of_list
            (List.map Propagation.Signal.name
               (Propagation.Sw_module.output_signals b.descriptor))
        in
        let name = Propagation.Sw_module.name b.descriptor in
        fun ms ->
          if ms >= b.offset_ms && (ms - b.offset_ms) mod b.period_ms = 0 then begin
            let values =
              Array.map (fun s -> Propane.Signal_store.read store s) inputs
            in
            let results = f values in
            if Array.length results <> Array.length outputs then
              invalid_arg
                (Printf.sprintf
                   "Builder: block %S produced %d outputs, expected %d" name
                   (Array.length results) (Array.length outputs));
            Array.iteri
              (fun k v -> Propane.Signal_store.write store outputs.(k) v)
              results
          end)
      t.blocks
  in
  let ms = ref 0 in
  let peek_handles =
    Array.of_list
      (List.map
         (fun (name, _) -> Propane.Signal_store.handle store name)
         (signal_layout t))
  in
  {
    Propane.Sut.read = Propane.Signal_store.peek store;
    write = Propane.Signal_store.poke store;
    inject = Propane.Signal_store.inject store;
    step =
      (fun () ->
        List.iter (fun plant_step -> plant_step ()) plant_steps;
        List.iter
          (fun (signal, drive) ->
            Propane.Signal_store.write store signal (drive !ms))
          drives;
        List.iter (fun step -> step !ms) steps;
        incr ms);
    finished = (fun () -> !ms >= t.duration_ms);
    snapshot =
      Some
        (fun buf ->
          Array.iteri
            (fun i h -> buf.(i) <- Propane.Signal_store.peek_handle h)
            peek_handles);
  }

let sut ?fault t =
  let sut =
    {
      Propane.Sut.name = t.name;
      signals = signal_layout t;
      digests = List.map block_digest t.blocks;
      instantiate = instantiate t;
    }
  in
  match fault with None -> sut | Some spec -> Propane.Fault.apply spec sut

(* ----------------------- synthetic systems ------------------------ *)

(* A layered random SUT for scale studies and service benchmarks: big
   enough to make scheduling and analysis work honest, deterministic
   enough (SplitMix64 all the way down) that two services, or a service
   and a serial run, build bit-identical systems from the same seed. *)
let synthetic ?(width = 16) ?(duration_ms = 200) ~modules ~fan_in ~fan_out
    ~feedback ~seed () =
  if modules < 1 then invalid_arg "Builder.synthetic: modules must be >= 1";
  if fan_in < 1 then invalid_arg "Builder.synthetic: fan_in must be >= 1";
  if fan_out < 1 then invalid_arg "Builder.synthetic: fan_out must be >= 1";
  if feedback < 0 then invalid_arg "Builder.synthetic: feedback must be >= 0";
  let rng = Simkernel.Rng.create seed in
  let wiring_rng = Simkernel.Rng.split rng in
  let mask = (1 lsl width) - 1 in
  let stim_signals =
    List.init fan_in (fun i -> Propagation.Signal.make (Printf.sprintf "stim%d" i))
  in
  let stimuli =
    List.map
      (fun s ->
        let slope = 1 + Simkernel.Rng.int rng 7 in
        let phase = Simkernel.Rng.int rng mask in
        stimulus s (fun () ms -> (phase + (slope * ms)) land mask))
      stim_signals
  in
  (* Wiring plan first, blocks second: feedback edges splice extra
     inputs into earlier blocks, so input lists are only final once the
     whole plan exists. *)
  let outputs =
    Array.init modules (fun i ->
        List.init fan_out (fun j ->
            Propagation.Signal.make (Printf.sprintf "m%d_o%d" i j)))
  in
  let inputs =
    Array.init modules (fun i ->
        let pool =
          stim_signals @ List.concat (List.init i (fun k -> outputs.(k)))
        in
        (* [fan_in] distinct draws — or the whole pool if it is smaller. *)
        let rec draw chosen n =
          if n = 0 || List.length chosen >= List.length pool then
            List.rev chosen
          else begin
            let s = Simkernel.Rng.pick wiring_rng pool in
            if List.exists (Propagation.Signal.equal s) chosen then
              draw chosen n
            else draw (s :: chosen) (n - 1)
          end
        in
        draw [] fan_in)
  in
  (* Feedback: an earlier block also consumes a later block's output.
     The final block never feeds back — its outputs must stay
     unconsumed so the derived model keeps its system outputs. *)
  if feedback > 0 && modules >= 3 then
    for _ = 1 to feedback do
      let consumer = Simkernel.Rng.int wiring_rng (modules - 2) in
      let producer =
        consumer + 1 + Simkernel.Rng.int wiring_rng (modules - 2 - consumer)
      in
      let s = Simkernel.Rng.pick wiring_rng outputs.(producer) in
      if
        not
          (List.exists (Propagation.Signal.equal s) inputs.(consumer))
      then inputs.(consumer) <- inputs.(consumer) @ [ s ]
    done;
  let blocks =
    List.init modules (fun i ->
        let block_rng = Simkernel.Rng.split rng in
        let n_in = List.length inputs.(i) in
        let shifts =
          Array.init (fan_out * n_in) (fun _ ->
              Simkernel.Rng.int block_rng (max 1 (width - 1)))
        in
        let salts =
          Array.init fan_out (fun _ -> Simkernel.Rng.int block_rng mask)
        in
        let period_ms = Simkernel.Rng.pick block_rng [ 1; 2; 4 ] in
        let offset_ms = Simkernel.Rng.int block_rng period_ms in
        block
          ~name:(Printf.sprintf "M%d" i)
          ~period_ms ~offset_ms
          ~tag:(Printf.sprintf "synthetic:%Ld:%d" seed i)
          ~inputs:inputs.(i) ~outputs:outputs.(i)
          (fun () ->
            let acc = ref 0 in
            fun ins ->
              (* Decaying accumulator so corruption lingers a few
                 periods, then washes out — gives the analysis
                 non-trivial temporal structure. *)
              acc :=
                (!acc / 2)
                + Array.fold_left ( + ) 0 ins
                  land mask;
              Array.init fan_out (fun j ->
                  let v =
                    Array.to_list ins
                    |> List.mapi (fun k x ->
                           x lsl shifts.((j * n_in) + k) land mask)
                    |> List.fold_left ( lxor ) salts.(j)
                  in
                  (v + (!acc lsr 3)) land mask)))
  in
  create_exn
    ~name:(Printf.sprintf "synthetic-%d" modules)
    ~width ~duration_ms ~blocks ~stimuli ()
