module Sig = Propagation.Signal

let ext_a = Sig.make "ext_a"
let ext_c = Sig.make "ext_c"
let ext_e = Sig.make "ext_e"
let a1 = Sig.make "a1"
let a2 = Sig.make "a2"
let b_fb = Sig.make "b_fb"
let b2 = Sig.make "b2"
let c1 = Sig.make "c1"
let c2 = Sig.make "c2"
let d1 = Sig.make "d1"
let e_out = Sig.make "e_out"

let mask16 = 0xFFFF
let clamp v = max 0 (min mask16 v)

(* Each block masks information differently so the measured
   permeabilities spread over (0, 1): shifts hide low bits, saturation
   hides high ones, sums mix everything. *)

let block_a =
  Builder.block ~name:"A" ~inputs:[ ext_a ] ~outputs:[ a1; a2 ] (fun () ->
      fun inputs -> [| inputs.(0) lxor 0x5A5A; inputs.(0) lsr 6 |])

let block_b =
  Builder.block ~name:"B" ~period_ms:2
    ~inputs:[ a1; b_fb; c1 ]
    ~outputs:[ b_fb; b2 ]
    (fun () ->
      let acc = ref 0 in
      fun inputs ->
        (* The feedback value accumulates the inputs with decay. *)
        acc := ((!acc / 2) + inputs.(0) + inputs.(2)) land mask16;
        let fb = (!acc + inputs.(1)) land mask16 in
        [| fb; (inputs.(0) + (fb lsr 4)) land mask16 |])

let block_c =
  Builder.block ~name:"C" ~period_ms:2 ~offset_ms:1
    ~inputs:[ ext_c; a2 ]
    ~outputs:[ c1; c2 ]
    (fun () ->
      fun inputs ->
        [| clamp (inputs.(0) + inputs.(1)); inputs.(0) lsr 8 |])

let block_d =
  Builder.block ~name:"D" ~period_ms:4 ~inputs:[ c2 ] ~outputs:[ d1 ]
    (fun () ->
      let last = ref 0 in
      fun inputs ->
        (* Sticky maximum: only upward movement propagates. *)
        last := max !last inputs.(0);
        [| !last |])

let block_e =
  Builder.block ~name:"E" ~period_ms:2
    ~inputs:[ b2; ext_e; d1 ]
    ~outputs:[ e_out ]
    (fun () ->
      fun inputs ->
        [| (inputs.(0) + (inputs.(1) lsr 10) + (inputs.(2) lsl 2)) land mask16 |])

let system =
  Builder.create_exn ~name:"fig2" ~duration_ms:600
    ~blocks:[ block_a; block_b; block_c; block_d; block_e ]
    ~stimuli:
      [
        Builder.ramp ~slope:13 ext_a;
        Builder.ramp ~slope:5 ext_c;
        Builder.constant 20_000 ext_e;
      ]
    ()

let sut = Builder.sut system

let default_times =
  List.init 5 (fun j -> Simkernel.Sim_time.of_ms (100 * (j + 1)))

let campaign ?(times = default_times) () =
  Propane.Campaign.make ~name:"fig2"
    ~targets:(Builder.injection_targets system)
    ~testcases:[ Propane.Testcase.make ~id:"ramp" ~params:[] ]
    ~times
    ~errors:(Propane.Error_model.bit_flips ~width:16)

let measure ?(seed = 42L) () =
  let results = Propane.Runner.run ~config:(Propane.Runner.Config.make ~seed ()) sut (campaign ()) in
  match
    Propane.Estimator.estimate_all ~model:(Builder.model system) results
  with
  | Ok matrices -> matrices
  | Error msg -> failwith ("Fig2_system.measure: " ^ msg)
