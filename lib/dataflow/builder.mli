(** Executable dataflow systems as PROPANE targets.

    The paper's system model (Section 3) is a network of black boxes
    exchanging signals.  This library turns such a description directly
    into a runnable {!Propane.Sut.t}: give each block a transfer
    function, a period and a phase, wire blocks by naming signals, and
    the library derives the {!Propagation.System_model}, builds the
    trap-instrumented signal store, schedules the blocks, and drives
    system inputs from stimulus functions.

    Use it to prototype propagation studies of systems that do not have
    (or need) a physical environment — the executable twin of the
    five-module example of Figs. 2-5 lives in {!Fig2_system} and is
    built entirely from this module. *)

type block

val block :
  name:string ->
  ?period_ms:int ->
  ?offset_ms:int ->
  ?tag:string ->
  inputs:Propagation.Signal.t list ->
  outputs:Propagation.Signal.t list ->
  (unit -> int array -> int array) ->
  block
(** [block ~name ~inputs ~outputs factory] describes a software module.
    The block executes every [period_ms] (default 1) starting at
    [offset_ms] (default 0).  [factory] is invoked once per run and
    must return a transfer function mapping the current input values
    (in port order) to the output values (in port order) — keep any
    block state inside the closure so runs stay independent.  A
    transfer function returning the wrong number of outputs fails the
    run with [Invalid_argument].

    [tag] (default [""]) feeds the block's content digest
    ({!Propane.Sut.digests}) alongside the wiring and schedule: the
    digest is what cell-level campaign reuse ({!Propane.Cell}) keys
    cached estimates on, and the transfer closure itself cannot be
    hashed — so change the tag whenever the transfer function's
    behaviour changes, and cached cells that observed the block are
    invalidated exactly then.

    @raise Invalid_argument on an empty name, no inputs/outputs, or a
    non-positive period. *)

type stimulus = {
  signal : Propagation.Signal.t;
  drive : unit -> int -> int;
      (** per-run factory; the resulting function maps the millisecond
          index to the system-input value written at the {e start} of
          that millisecond *)
}

val stimulus :
  Propagation.Signal.t -> (unit -> int -> int) -> stimulus

val ramp : ?slope:int -> Propagation.Signal.t -> stimulus
(** [value(ms) = slope * ms], truncated to the signal width. *)

val constant : int -> Propagation.Signal.t -> stimulus

type plant
(** A stateful environment model closing the loop: every millisecond,
    {e before} the blocks execute, the plant reads the values its
    [reads] signals held at the end of the previous millisecond (the
    actuator commands) and produces fresh values for its [writes]
    signals (the sensor readings).  The [writes] become system inputs
    of the derived model; the [reads] must be produced by blocks and
    are marked system outputs.

    Reads go through the trap layer (a corrupted actuator command is
    what the physical plant acts on) and writes are raw register
    refreshes (clobbering injected sensor corruption, like the
    arrestment system's A/D conversion). *)

val plant :
  name:string ->
  reads:Propagation.Signal.t list ->
  writes:Propagation.Signal.t list ->
  (unit -> int array -> int array) ->
  plant
(** [plant ~name ~reads ~writes factory]: the per-run transfer function
    maps the read values to the written values, keeping physics state
    in its closure.  @raise Invalid_argument on an empty name or no
    writes. *)

type t

val create :
  ?name:string ->
  ?width:int ->
  ?duration_ms:int ->
  ?plants:plant list ->
  blocks:block list ->
  stimuli:stimulus list ->
  unit ->
  (t, string) result
(** Assembles the system.  All signals share one [width] (default 16).
    The derived model takes the stimulus and plant-written signals as
    system inputs, and as system outputs every signal no block consumes
    plus every plant-read signal.  Validation errors (unknown stimulus
    signals, unwired inputs, duplicate producers, plant reads nobody
    produces, ...) are reported as [Error].  [duration_ms] (default
    1000) is the natural run length reported through
    {!Propane.Sut.instance.finished}. *)

val create_exn :
  ?name:string ->
  ?width:int ->
  ?duration_ms:int ->
  ?plants:plant list ->
  blocks:block list ->
  stimuli:stimulus list ->
  unit ->
  t

val model : t -> Propagation.System_model.t
val sut : ?fault:Propane.Fault.spec -> t -> Propane.Sut.t
(** [fault] wraps the SUT in a {!Propane.Fault} chaos harness (crash /
    hang after injection); omitted, the SUT is returned as built. *)

val duration_ms : t -> int

val injection_targets : t -> string list
(** All distinct block-input signals, the natural campaign targets. *)

val synthetic :
  ?width:int ->
  ?duration_ms:int ->
  modules:int ->
  fan_in:int ->
  fan_out:int ->
  feedback:int ->
  seed:int64 ->
  unit ->
  t
(** A deterministic, randomly wired, layered system for scale studies
    and service benchmarks.  [modules] blocks are generated in layers:
    block [i] consumes [fan_in] distinct signals drawn from the
    stimuli and the outputs of blocks [0..i-1], and produces [fan_out]
    fresh signals; [feedback] extra edges make earlier blocks also
    consume later blocks' outputs (the final block excepted, so the
    system keeps outputs).  Stimuli are [fan_in] ramps with
    seed-drawn slopes and phases.  All wiring, schedules (periods
    drawn from 1/2/4 ms) and transfer constants derive from [seed]
    via {!Simkernel.Rng} (SplitMix64), and block tags embed the seed —
    the same seed always yields a bit-identical system, and different
    seeds yield differently tagged cells.  [duration_ms] defaults to
    200 (synthetic systems are for throughput, not physics).

    @raise Invalid_argument unless [modules >= 1], [fan_in >= 1],
    [fan_out >= 1] and [feedback >= 0]. *)
