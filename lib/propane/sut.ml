type instance = {
  read : string -> int;
  write : string -> int -> unit;
  inject : string -> (int -> int) -> unit;
  step : unit -> unit;
  finished : unit -> bool;
  snapshot : (int array -> unit) option;
}

type t = {
  name : string;
  signals : (string * int) list;
  digests : (string * string) list;
  instantiate : Testcase.t -> instance;
}

let signal_names t = List.map fst t.signals

let digest_of t m = List.assoc_opt m t.digests

let signal_width t s =
  match List.assoc_opt s t.signals with
  | Some w -> w
  | None ->
      invalid_arg
        (Printf.sprintf "Sut.signal_width: %S has no signal %S" t.name s)

let has_signal t s = List.mem_assoc s t.signals
