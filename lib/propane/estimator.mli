(** Experimental estimation of error permeability (Section 6).

    "Suppose, for module M, we inject [n_inj] distinct errors in input
    [i], and at output [k] observe [n_err] differences compared to the
    GR's, then we can directly estimate the error permeability
    [P_{i,k}] to be [n_err / n_inj]."

    {b Attribution.}  Section 7.3: "We only took into account the
    direct errors on the outputs.  We did not count errors originating
    from errors that propagated via one of the other outputs and then
    came back ...".  In a closed control loop {e every} effective
    injection eventually perturbs the physics, shifts the end of the
    arrestment and thereby re-diverges every signal — without the rule,
    all permeabilities saturate towards 1.  We implement it as a direct
    window: a divergence of output [k] counts only when it appears
    within [window_ms] of the injection instant.  Direct data flow
    through a module takes at most one activation period plus its
    filter horizons (here < 40 ms), while the loop back through valve,
    airframe and sensors takes hundreds; the default 64 ms window
    separates the two regimes cleanly.  {!Any_divergence} counts
    everything (used by the ablation bench). *)

type attribution =
  | Direct of { window_ms : int }
  | Any_divergence

val default_attribution : attribution
(** [Direct {window_ms = 64}]. *)

type estimate = {
  pair : Propagation.Perm_graph.pair;
  injections : int;  (** [n_inj] *)
  errors : int;  (** [n_err] after attribution *)
  value : float;  (** [n_err / n_inj] *)
  interval : float * float;
      (** 95% Wilson score interval (extension beyond the paper) *)
}

val wilson_interval : errors:int -> trials:int -> float * float
(** 95% Wilson score interval for a binomial proportion, clamped to
    [[0, 1]] (the closed form can drift a few ulps outside at the
    boundaries); [(0., 1.)] when [trials = 0].
    @raise Invalid_argument if [errors] is outside [0, trials]. *)

val estimate_pairs :
  ?attribution:attribution ->
  ?on_failure:[ `Count | `Exclude ] ->
  model:Propagation.System_model.t ->
  results:Results.t ->
  string ->
  estimate list
(** All [m * n] estimates of one module, in row-major pair order.
    Pairs whose input signal was never injected get [injections = 0]
    and [value = 0.].

    [on_failure] decides how {!Results.Crashed} / {!Results.Hung} runs
    enter the estimate.  [`Count] (default): a failed run never
    produced the output at all, which under the paper's failure-class
    reading is an error on {e every} output pair of its input — it
    adds one to both [injections] and [errors] regardless of the
    attribution window.  [`Exclude]: failed runs are dropped from
    numerator and denominator, estimating permeability over clean runs
    only.  @raise Invalid_argument for an unknown module. *)

val estimate_matrix :
  ?attribution:attribution ->
  ?on_failure:[ `Count | `Exclude ] ->
  model:Propagation.System_model.t ->
  results:Results.t ->
  string ->
  Propagation.Perm_matrix.t
(** The estimates packed as a permeability matrix. *)

val estimate_all :
  ?attribution:attribution ->
  ?on_failure:[ `Count | `Exclude ] ->
  model:Propagation.System_model.t ->
  Results.t ->
  (Propagation.Perm_matrix.t Propagation.String_map.t, string) result
(** Matrices for every module of the model.  [Error] lists the module
    input signals the campaign never injected into (an incomplete
    campaign would silently bias every downstream measure to zero). *)

val pp_estimate : Format.formatter -> estimate -> unit

(** Streaming (one outcome at a time) permeability estimation.

    A [Stream.t] accumulates the same [n_err]/[n_inj] counters that
    {!estimate_pairs} derives from a finished campaign, but updates
    them run by run as outcomes arrive.  Counting is commutative, so a
    stream fed the outcomes of a campaign in {e any} order holds
    matrices identical (counts included) to {!estimate_all} over the
    same results — the equivalence is property-tested.  This is what
    lets live analysis ([Live]) and adaptive stopping reuse the exact
    batch semantics without re-scanning all results after every run. *)
module Stream : sig
  type t

  val create :
    ?attribution:attribution ->
    ?on_failure:[ `Count | `Exclude ] ->
    model:Propagation.System_model.t ->
    unit ->
    t

  val observe : t -> Results.outcome -> unit
  (** Fold one run outcome into the counters of every (module, input)
      pair consuming the injected signal.  Outcomes targeting signals
      no module consumes are counted as runs but update nothing. *)

  val matrices : t -> Propagation.Perm_matrix.t Propagation.String_map.t
  (** Current matrices for every module (zero-trial cells where nothing
      was injected yet), cells carrying their counts via
      {!Propagation.Estimate.of_counts}. *)

  val drain_dirty : t -> (string * Propagation.Perm_matrix.t) list
  (** Matrices of the modules touched since the previous drain, in
      model declaration order, and reset the dirty set.  Feeding these
      to {!Propagation.Analysis.Engine.update} keeps an engine in sync
      at minimal cost. *)

  val counts_row : t -> module_name:string -> target:string -> (int * int) array option
  (** Current [(n_err, n_inj)] counters of the (module, input) pair, in
      module-output declaration order — the raw material a {!Cache}
      entry persists.  [None] when the module does not consume the
      target. *)

  val seed_row : t -> module_name:string -> target:string -> (int * int) array -> unit
  (** Fold a previously exported row ({!counts_row}, or a {!Cache}
      entry) into the pair's counters, as if the runs that produced it
      had been observed.  Counting is commutative, so seeding before,
      between or after live {!observe} calls yields identical matrices.
      @raise Invalid_argument on an unknown pair, an output-count
      mismatch, or counters with [n_err > n_inj]. *)

  val runs_observed : t -> int

  val max_width : targets:string list -> t -> float
  (** Width of the widest 95% interval over all pairs fed by the given
      injection targets; 0 when the targets reach no pair.  Pairs
      outside the campaign's target set never narrow and are excluded,
      otherwise a [`Ci_width] stop rule could never trigger. *)

  val target_width : t -> target:string -> float
  (** {!max_width} scoped to the pairs one injection target feeds; 0
      when no module consumes the target.  This is the per-target
      uncertainty score the injection-budget planner ({!Plan})
      allocates rounds by. *)
end
