(** Append-only campaign journal.

    Paper-scale campaigns are 52,000 injection runs (Section 7.3); a
    crash at run 51,999 must not lose the 51,998 before it.  A journal
    streams every outcome to disk the moment it completes, one record
    per line, so an interrupted campaign can be resumed from exactly
    where it stopped (see {!Runner.run}).

    The format follows the {!Storage} convention — versioned magic,
    line-based, tab-separated:
    {v
    propane-journal 1
    sut <tab> NAME
    campaign <tab> NAME
    seed <tab> SEED
    total <tab> RUNS
    recipe <tab> RECIPE          (optional)
    run <tab> INDEX <tab> TESTCASE <tab> TARGET <tab> AT_MS <tab> ERROR
        <tab> NDIV { <tab> SIGNAL <tab> FIRST_MS } * NDIV
    run2 <tab> INDEX <tab> TESTCASE <tab> TARGET <tab> AT_MS <tab> ERROR
        <tab> STATUS <tab> NDIV { <tab> SIGNAL <tab> FIRST_MS } * NDIV
    cell <tab> TARGET <tab> MODULE <tab> KEY <tab> reused|fresh
    plan <tab> ROUND <tab> TARGET <tab> RUNS
    v}

    [cell] records are provenance written by cache-reusing campaigns
    ({!Cell}, {!Cache}): one per (module, injected input) cell of the
    plan, tying the journal's outcomes to the content-addressed keys
    that were reused or re-measured.  Campaigns without a cache write
    none, so their journals stay byte-identical to the original
    format.

    [plan] records are the budget scheduler's round allocations
    ({!Plan}): one per (round, target), in round order, appended in one
    batch when a planned campaign finishes.  Rounds are a deterministic
    function of the completed outcomes, so a killed-and-resumed
    campaign re-derives and records identical rounds; unplanned
    campaigns write none.

    A run that completed normally is written as a v1 [run] record, so
    journals of failure-free campaigns are byte-identical to the
    original format; a {!Results.Crashed} or {!Results.Hung} run is
    written as [run2] with its status (serialised as in {!Storage})
    between ERROR and NDIV.  v1 journals load with every status
    defaulting to {!Results.Completed}.

    A record is committed by its trailing newline: {!load} silently
    drops an unterminated final line, which is exactly the state a
    killed writer leaves behind.  Records carry the experiment index of
    {!Campaign.experiments}, so out-of-order appends (parallel runs)
    and duplicates are harmless. *)

(** {1 Writing} *)

type writer

val create :
  ?sync:bool ->
  ?batch:int ->
  ?recipe:string ->
  path:string ->
  sut:string ->
  campaign:string ->
  seed:int64 ->
  total:int ->
  unit ->
  (writer, string) result
(** Truncates [path] and writes the header.  [recipe] (optional)
    records an opaque campaign-reconstruction string — the CLI stores
    its encoded recipe so [propane replay] can rebuild the exact SUT,
    campaign and runner configuration; journals created without it
    keep their previous bytes.  With [sync] (default
    [false]) every commit is additionally [fsync]ed, making records
    durable against power loss, not just process death.  [batch]
    (default [1]) amortises the per-record flush: records are committed
    to disk every [batch] {!append}s and on {!flush}/{!close}, so a
    killed writer loses at most the last [batch - 1] records plus a
    truncated fragment — both recovered by re-running those indices on
    resume.  Fails if a name contains a separator character or [batch
    < 1].
    @raise Sys_error on I/O failure. *)

val append_to : ?sync:bool -> ?batch:int -> string -> (writer, string) result
(** Opens an existing journal for appending (the resume path).  The
    header is checked but not rewritten; an uncommitted trailing
    fragment is truncated away.  [sync] and [batch] as in {!create}.
    @raise Sys_error on I/O failure. *)

val append : writer -> index:int -> Results.outcome -> (unit, string) result
(** Writes one newline-terminated record, committing (flushing) when
    [batch] records have accumulated.  Fails if a field contains a
    separator character or [index] is negative. *)

val record_string : index:int -> Results.outcome -> (string, string) result
(** The exact record line {!append} would write, without the trailing
    newline — there is exactly one encoding, shared by both.  This is
    the unit of [propane replay]'s byte-identity check: re-execute a
    journalled run, render both outcomes through [record_string],
    compare strings. *)

type cell = {
  target : string;
  module_name : string;
  key : string;
  reused : bool;
}

val append_cell : writer -> cell -> (unit, string) result
(** Writes one cell provenance record.  Fails if a field contains a
    separator character. *)

val append_cells : writer -> cell list -> (unit, string) result
(** {!append_cell} for every element, then commits: a reuse plan is
    durable in full before the first outcome lands. *)

type round = { round : int; target : string; runs : int }
(** One plan-round allocation: [runs] injection runs granted to
    [target] in round [round] (0-based; round 0 is the pilot). *)

val append_round : writer -> round -> (unit, string) result
(** Writes one plan-round record.  Fails if the target contains a
    separator character or a count is negative. *)

val append_rounds : writer -> round list -> (unit, string) result
(** {!append_round} for every element, then commits — called once when
    a planned campaign finishes, so the full allocation history lands
    in one batch. *)

val flush : writer -> unit
(** Commits any buffered records now.  A no-op when nothing is
    pending. *)

val close : writer -> unit
(** Flushes buffered records and closes the file. *)

(** {1 Reading} *)

type t = {
  sut : string;
  campaign : string;
  seed : int64;
  total : int;  (** size of the campaign the journal belongs to *)
  recipe : string option;
      (** the campaign-reconstruction string recorded at {!create}
          time; [None] for journals written without one *)
  cells : cell list;
      (** cell provenance records in journal order; [[]] for journals
          written without a cache *)
  rounds : round list;
      (** plan-round records in journal order; [[]] for journals of
          unplanned (or killed-before-finish) campaigns *)
  entries : (int * Results.outcome) list;
      (** committed records in journal order; indices refer to
          {!Campaign.experiments} *)
}

val load : string -> (t, string) result
(** Replays a journal, tolerating a truncated final record.  Fails
    with a line-numbered message on any other malformation.
    @raise Sys_error on I/O failure. *)

val validate :
  t ->
  path:string ->
  sut:string ->
  campaign:string ->
  seed:int64 ->
  total:int ->
  (unit, string) result
(** Checks that a loaded journal belongs to the given campaign —
    matching SUT, campaign name, seed, size, and every entry index in
    range.  Mismatched metadata means the journal records a different
    campaign; refusing loudly beats silently corrupting a resume.  Both
    the local {!Runner.run} resume path and the cluster coordinator use
    this before trusting a journal's entries. *)

val completed : t -> (int, Results.outcome) Hashtbl.t
(** The entries as an index-keyed table, last occurrence winning — a
    re-executed run's record supersedes the failed attempt it retried. *)
