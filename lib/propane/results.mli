(** Raw campaign outcomes.

    One {!outcome} per injection run: which injection was performed
    under which test case, and the first divergence (against the test
    case's golden run) of every signal that diverged at all.  The
    estimator consumes this database; keeping first-divergence times
    rather than whole traces keeps paper-scale campaigns (52,000 runs)
    small in memory. *)

(** How an injection run terminated.  Real SWIFI campaigns against an
    embedded target do not always end cleanly: the injected error can
    crash the target software or drive it into a livelock.  PROPANE-style
    tools record those as first-class experiment outcomes rather than
    aborting the campaign. *)
type status =
  | Completed  (** the run executed to its scheduled end *)
  | Crashed of { at_ms : int; reason : string }
      (** the target raised at simulated millisecond [at_ms]; [reason]
          is the (sanitised, separator-free) exception description *)
  | Hung of { budget_ms : int }
      (** the run exceeded its wall-clock watchdog budget
          ({!Runner.run}[ ~run_timeout_ms]) and was cut off *)

val is_failed : status -> bool
(** [true] for {!Crashed} and {!Hung}. *)

val pp_status : Format.formatter -> status -> unit

type outcome = {
  testcase : string;  (** test case id *)
  injection : Injection.t;
  divergences : Golden.divergence list;
      (** signals whose trace diverged from the golden run, with the
          millisecond of first divergence; signals that never diverged
          are absent.  For a {!Crashed} run these cover the samples up
          to the crash (every remaining signal diverges at the crash
          instant via the length-mismatch rule); a {!Hung} run carries
          none — how far its observer got is wall-clock dependent, so
          partial divergences are discarded for determinism *)
  status : status;
}

type t

val create : sut:string -> campaign:string -> t
val sut : t -> string
val campaign : t -> string

val add : t -> outcome -> unit
val count : t -> int

val crashed_count : t -> int
val hung_count : t -> int

val failed_count : t -> int
(** [crashed_count + hung_count]. *)

val outcomes : t -> outcome list
(** In insertion (i.e. deterministic campaign) order. *)

val by_target : t -> string -> outcome list
(** Outcomes whose injection targeted the given signal. *)

val injections_into : t -> string -> int
(** [List.length (by_target t s)], computed without building the list. *)

val divergence_of : outcome -> string -> int option
(** First divergence of a signal within one outcome. *)

val merge : t -> t -> t
(** Concatenates two result sets from the same SUT and campaign (for
    sharded runs).  @raise Invalid_argument on mismatched names. *)

val pp_summary : Format.formatter -> t -> unit
