(** Plan-driven campaigns: analytical priors and an injection-budget
    scheduler shared by every execution backend.

    The paper runs a {e fixed} plan — 4,000 injections per target
    signal (Section 7.3) — and only afterwards checks which rankings
    the data actually resolves.  A [Plan.t] inverts that: given a total
    injection budget, it decides {e which} experiments of a
    {!Campaign.t} to execute and {e when to stop}, allocating runs
    round by round to the targets whose permeability cells are still
    wide and whose modules' rankings are still unresolved
    ({!Propagation.Ranking.module_row.resolved}).

    {b Priors.}  Before any run executes, the analytical side of the
    paper already knows something: the permeability graph
    ({!Propagation.Perm_graph}) fixes which modules a target feeds, and
    a prior matrix (flat 0.5 in the absence of measurements) gives
    each target an expected binomial variance mass and a downstream
    reach — the noisy-or arrival bound of {!Propagation.Compose}, or
    the {!Propagation.Monte_carlo} estimate when the target is a
    system input.  The pilot round splits the budget proportionally to
    these priors, so measurement starts where the analysis predicts
    the most information.

    {b Rounds and determinism.}  Allocation is a barrier process:
    round [k+1] is computed only from the multiset of outcomes of
    rounds [0..k], fed to an internal {!Live} analysis in experiment
    index order.  Streamed counters are commutative
    ({!Estimator.Stream}), so the allocation sequence is a pure
    function of the completed outcome set — independent of executor
    interleaving.  Serial, [--jobs] domains, the cluster coordinator
    and the campaign service therefore derive {e identical} rounds,
    and a killed-and-resumed campaign re-derives them from the
    journal.  Rounds are journalled ({!Journal.append_rounds}) when
    the campaign finishes.

    {b Work source.}  A [Plan.t] doubles as the single work-source
    abstraction all backends pull from: {!take} hands out runnable
    experiment indices, {!complete} banks outcomes and advances the
    barrier, {!requeue} returns indices lost to a dead worker.
    {!static} builds a degenerate single-round source over a fixed
    index set, which is exactly the historical "cursor over the
    campaign" behaviour of unplanned campaigns.  All operations are
    serialised by an internal mutex, so domains may share a source. *)

(** {1 Budget modes} *)

type mode =
  | Uniform  (** one round: the budget split evenly across targets *)
  | Adaptive
      (** pilot round by analytical prior, then width x impact
          refinement rounds until every ranking resolves or the budget
          is spent *)

val mode_to_string : mode -> string
(** ["uniform"] / ["adaptive"] — the [--plan] CLI values, also used by
    {!Runner.Config.encode}. *)

val mode_of_string : string -> (mode, string) result

(** {1 Analytical priors} *)

type prior = {
  target : string;
  cells : int;  (** (module, input, output) cells the target feeds *)
  spread : float;
      (** expected binomial variance mass, Sum p(1-p) over fed cells *)
  reach : float;
      (** probability an error on the target reaches any system
          output, under the prior matrices *)
  weight : float;  (** pilot allocation weight, [spread * (0.5 + reach)] *)
}

val priors :
  ?matrices:Propagation.Perm_matrix.t Propagation.String_map.t ->
  model:Propagation.System_model.t ->
  targets:string list ->
  unit ->
  prior list
(** One prior per target, in the given order.  [matrices] default to
    flat 0.5 permeabilities (maximum-entropy prior).  [reach] is
    computed analytically: a noisy-or fixpoint over the permeability
    graph's arcs for internal targets, the {!Propagation.Monte_carlo}
    arrival estimate (deterministic seed) for system inputs.  Targets
    no module consumes get [cells = 0] and a floor weight, so they
    still receive pilot coverage (estimation needs every campaign
    target injected at least once).
    @raise Invalid_argument if the model and matrices disagree. *)

val pp_prior : Format.formatter -> prior -> unit

(** {1 Construction} *)

type t

val create :
  ?mode:mode ->
  ?priors:prior list ->
  ?select:(int -> bool) ->
  ?attribution:Estimator.attribution ->
  ?on_failure:[ `Count | `Exclude ] ->
  ?round_budget:int ->
  budget:int ->
  model:Propagation.System_model.t ->
  campaign:Campaign.t ->
  unit ->
  t
(** A budgeted plan over the campaign's experiment indices.  [mode]
    defaults to [Adaptive].  [select] restricts the schedulable
    indices (the cache-reuse filter of {!Reuse.select}: cells already
    measured get {e zero} fresh allocation).  [priors] defaults to
    {!priors} over the campaign's targets.  [attribution] /
    [on_failure] configure the internal {!Live} analysis and must
    match the campaign's estimation settings.  [round_budget] caps the
    runs granted per refinement round (default [max targets (budget /
    8)]); the pilot additionally guarantees one run per target.
    @raise Invalid_argument if [budget < 1] or smaller than the number
    of targets with selectable runs. *)

val static :
  ?select:(int -> bool) -> done_:(int -> bool) -> total:int -> unit -> t
(** The unplanned work source: every selected, not-yet-done index in
    one round, in index order — byte-identical journals and identical
    scheduling to the historical cursor implementations it replaces.
    [done_] marks indices whose outcome a resumed journal already
    holds. *)

val is_planned : t -> bool
(** [false] for {!static} sources.  Planned sources may leave
    campaign indices permanently unexecuted (budgeting is the point);
    backends use this to relax their "every gap is explained by a stop
    rule" assertions and to journal rounds on finish. *)

val budget : t -> int option
(** The total budget; [None] for static sources. *)

val plan_mode : t -> mode option

(** {1 The work-source protocol} *)

val prime : t -> index:int -> Results.outcome -> unit
(** Bank a replayed outcome before scheduling starts (the resume
    path).  Primed indices are never handed out by {!take}; when a
    round allocates one, its banked outcome feeds the barrier as if
    just executed, which is how resume re-derives the round sequence.
    @raise Invalid_argument after the first {!take}. *)

val take : t -> max:int -> int list
(** Up to [max] runnable indices, ascending, removed from the queue.
    [[]] means "nothing runnable {e now}": either {!exhausted}, or a
    round barrier is waiting on in-flight runs — parallel executors
    must block on completions, not exit, until {!exhausted}. *)

val requeue : t -> int list -> unit
(** Return taken-but-unfinished indices (dead worker) to the head of
    the queue, keeping ascending order. *)

val complete : t -> index:int -> Results.outcome -> unit
(** Record one finished run.  When the last in-flight run of a round
    lands, the barrier advances: outcomes feed the internal analysis
    in index order and the next round is allocated (or the plan
    finishes).  Duplicate completions are ignored. *)

val exhausted : t -> bool
(** No further index will ever be handed out and none is in flight —
    the executor's termination condition. *)

val pending : t -> int
(** Indices runnable right now (queue length). *)

val candidates : t -> int list
(** Every index the source could ever schedule, ascending — what a
    backend must prepare goldens for.  Excludes primed indices. *)

val fresh_scheduled : t -> int
(** Cumulative count of indices enqueued for execution so far (primed
    indices excluded) — the "scheduled" figure backends report. *)

val executed : t -> int
(** Completions received for allocated indices, primed ones included
    once their round allocates them. *)

val allocated : t -> int
(** Total runs granted across all rounds so far. *)

val rounds : t -> Journal.round list
(** The allocation history, in (round, target) order — what
    {!Journal.append_rounds} persists.  Empty for static sources. *)
