(** Golden Run Comparison (GRC, Section 6).

    "A Golden Run is a trace of the system executing without any
    injections being made ... All traces obtained from the injection
    runs are compared to the GR, and any difference indicates that an
    error has occurred."  Comparison stops at the first difference
    (Section 7.3), which is valid because the platform runs real
    software in simulated time — identical runs are bit-identical. *)

type divergence = {
  signal : string;
  first_ms : int;  (** millisecond of the first differing sample *)
}

val compare_runs :
  ?until_ms:int -> golden:Trace_set.t -> run:Trace_set.t -> unit -> divergence list
(** First divergence per signal, omitting signals that never diverge.
    Signals are compared in the golden run's order.  [until_ms] bounds
    the comparison window (used for deliberately truncated injection
    runs); differences at or beyond it — including the run simply being
    shorter — are ignored.
    @raise Invalid_argument if the runs trace different signal sets. *)

val diverged :
  ?until_ms:int -> golden:Trace_set.t -> run:Trace_set.t -> string -> int option
(** First divergence of one signal. *)

(** {1 Tolerance-based comparison}

    Section 7.3 notes that exact first-difference comparison is only
    valid because the whole platform runs in simulated time; "for
    continuous signals ... fluctuations between similar runs in a real
    environment may be normal".  For campaigns against real targets a
    comparison must ignore such fluctuations.  A {!tolerance} declares,
    per signal, how far and for how long a sample may stray before it
    counts as a divergence. *)

type tolerance = {
  epsilon : int;
      (** absolute sample difference that is still considered equal *)
  hold_ms : int;
      (** the difference must exceed [epsilon] for this many
          {e consecutive} milliseconds before it is reported (0 =
          immediately) *)
}

val exact : tolerance
(** [{epsilon = 0; hold_ms = 0}] — the simulated-time semantics. *)

val first_tolerant_difference :
  ?from_ms:int -> ?until_ms:int -> tolerance -> Trace.t -> Trace.t -> int option
(** Tolerance-based analogue of {!Trace.first_difference}, with the
    same [[from_ms, until_ms)] window and the same length-mismatch tail
    rule: a length mismatch inside the window counts as an immediate
    divergence at the end of the shorter trace.  The first argument is
    the golden trace.  With {!exact} this coincides with
    {!Trace.first_difference} (property-tested).
    @raise Invalid_argument if the traces cover different signals. *)

val compare_runs_tolerant :
  ?from_ms:int ->
  ?until_ms:int ->
  tolerance_for:(string -> tolerance) ->
  golden:Trace_set.t ->
  run:Trace_set.t ->
  unit ->
  divergence list
(** Like {!compare_runs}, but a signal only diverges at the first
    millisecond starting a window of [hold_ms + 1] consecutive samples
    that each differ by more than [epsilon].  A length mismatch inside
    the window still counts as an immediate divergence.  With
    [tolerance_for = fun _ -> exact] this coincides with
    {!compare_runs} (property-tested). *)

(** {1 Frozen goldens}

    After recording, a golden run is {e frozen} into a compact
    immutable flat-array form.  Frozen goldens are never mutated, so
    they are safe to share read-only across worker domains, and the
    streaming divergence observers ({!Observer}) compare each incoming
    sample against them in O(1). *)

type frozen = private {
  frozen_signals : string array;  (** signal names in trace-set order *)
  frozen_duration : int;  (** recorded duration in ms *)
  samples : int array;
      (** signal-major samples: value of signal [s] at millisecond [ms]
          is [samples.(s * frozen_duration + ms)].  Read-only. *)
}

val freeze : Trace_set.t -> frozen
(** Copies a recorded golden run into its frozen form. *)

val frozen_signals : frozen -> string list
val frozen_signal_count : frozen -> int
val frozen_duration_ms : frozen -> int

val frozen_value : frozen -> signal:int -> ms:int -> int
(** Sample of the [signal]-th signal (trace-set order) at millisecond
    [ms].  @raise Invalid_argument when out of range. *)

val pp_divergence : Format.formatter -> divergence -> unit
