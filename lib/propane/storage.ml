let results_magic = "propane-results 1"
let matrices_magic = "propane-matrices 1"

(* Temporal wrappers encode their payload as the rest-of-string tail
   (the payload encoding may itself contain ':'); [Error_model.validate]
   forbids nesting, so one tail is always the whole payload. *)
let rec error_to_string = function
  | Error_model.Bit_flip b -> Printf.sprintf "bitflip:%d" b
  | Error_model.Multi_bit bs ->
      Printf.sprintf "multibit:%s"
        (String.concat "." (List.map string_of_int bs))
  | Error_model.Burst { first; len } -> Printf.sprintf "burst:%d:%d" first len
  | Error_model.Stuck_at v -> Printf.sprintf "stuck:%d" v
  | Error_model.Offset d -> Printf.sprintf "offset:%d" d
  | Error_model.Noise amp -> Printf.sprintf "noise:%d" amp
  | Error_model.Replace_uniform -> "uniform"
  | Error_model.Intermittent { model; period_ms; window_ms } ->
      Printf.sprintf "intermittent:%d:%d:%s" period_ms window_ms
        (error_to_string model)
  | Error_model.Delayed { model; delay_ms } ->
      Printf.sprintf "delayed:%d:%s" delay_ms (error_to_string model)

(* Status serialisation shared with the journal.  The crash reason is
   free text (sanitised of separators by the runner); it may contain
   ':', so it is always the final, rest-of-string field. *)
let status_to_string = function
  | Results.Completed -> "completed"
  | Results.Crashed { at_ms; reason } ->
      Printf.sprintf "crashed:%d:%s" at_ms reason
  | Results.Hung { budget_ms } -> Printf.sprintf "hung:%d" budget_ms

let status_of_string s =
  match String.split_on_char ':' s with
  | [ "completed" ] -> Ok Results.Completed
  | "crashed" :: at_ms :: rest -> (
      match int_of_string_opt at_ms with
      | Some at_ms when at_ms >= 0 ->
          Ok (Results.Crashed { at_ms; reason = String.concat ":" rest })
      | _ -> Error (Printf.sprintf "bad crash time %S" at_ms))
  | [ "hung"; budget_ms ] -> (
      match int_of_string_opt budget_ms with
      | Some budget_ms when budget_ms >= 0 -> Ok (Results.Hung { budget_ms })
      | _ -> Error (Printf.sprintf "bad hang budget %S" budget_ms))
  | _ -> Error (Printf.sprintf "unknown run status %S" s)

let rec error_of_fields fields =
  let ( let* ) = Result.bind in
  let int_field name s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad %s %S" name s)
  in
  match fields with
  | [ "uniform" ] -> Ok Error_model.Replace_uniform
  | [ "bitflip"; b ] ->
      let* b = int_field "bit position" b in
      Ok (Error_model.Bit_flip b)
  | [ "multibit"; bs ] ->
      let* bs =
        List.fold_left
          (fun acc b ->
            let* acc = acc in
            let* b = int_field "multi-bit position" b in
            Ok (b :: acc))
          (Ok [])
          (String.split_on_char '.' bs)
      in
      Ok (Error_model.Multi_bit (List.rev bs))
  | [ "burst"; first; len ] ->
      let* first = int_field "burst start" first in
      let* len = int_field "burst length" len in
      Ok (Error_model.Burst { first; len })
  | [ "stuck"; v ] ->
      let* v = int_field "stuck-at value" v in
      Ok (Error_model.Stuck_at v)
  | [ "offset"; d ] ->
      let* d = int_field "offset" d in
      Ok (Error_model.Offset d)
  | [ "noise"; amp ] ->
      let* amp = int_field "noise amplitude" amp in
      Ok (Error_model.Noise amp)
  | "intermittent" :: period_ms :: window_ms :: (_ :: _ as rest) ->
      let* period_ms = int_field "intermittent period" period_ms in
      let* window_ms = int_field "intermittent window" window_ms in
      let* model = error_of_fields rest in
      if Error_model.is_temporal model then
        Error "nested temporal error model"
      else Ok (Error_model.Intermittent { model; period_ms; window_ms })
  | "delayed" :: delay_ms :: (_ :: _ as rest) ->
      let* delay_ms = int_field "delay" delay_ms in
      let* model = error_of_fields rest in
      if Error_model.is_temporal model then
        Error "nested temporal error model"
      else Ok (Error_model.Delayed { model; delay_ms })
  | _ ->
      Error
        (Printf.sprintf "unknown error model %S" (String.concat ":" fields))

let error_of_string s = error_of_fields (String.split_on_char ':' s)

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

(* A CR is rejected alongside the separators: it would survive into the
   record and corrupt round-tripping of CRLF-touched files. *)
let check_field name value =
  if
    String.contains value '\t' || String.contains value '\n'
    || String.contains value '\r'
  then
    Error
      (Printf.sprintf "Storage: %s %S contains a separator character" name
         value)
  else Ok ()

let check_fields checks =
  List.fold_left
    (fun acc (name, value) -> Result.bind acc (fun () -> check_field name value))
    (Ok ()) checks

let save_results path results =
  let ( let* ) = Result.bind in
  (* Validate every field before opening the file, so a bad name never
     leaves a half-written file behind. *)
  let* () =
    check_fields
      [
        ("sut", Results.sut results); ("campaign", Results.campaign results);
      ]
  in
  let* () =
    List.fold_left
      (fun acc (o : Results.outcome) ->
        let* () = acc in
        check_fields
          (("testcase", o.testcase)
          :: ("target", o.injection.Injection.target)
          :: ("status", status_to_string o.status)
          :: List.map
               (fun (d : Golden.divergence) -> ("signal", d.signal))
               o.divergences))
      (Ok ()) (Results.outcomes results)
  in
  with_out path (fun oc ->
      let line fmt = Printf.fprintf oc (fmt ^^ "\n") in
      line "%s" results_magic;
      line "sut\t%s" (Results.sut results);
      line "campaign\t%s" (Results.campaign results);
      List.iter
        (fun (o : Results.outcome) ->
          line "outcome\t%s\t%s\t%d\t%s" o.testcase
            o.injection.Injection.target
            (Simkernel.Sim_time.to_ms o.injection.Injection.at)
            (error_to_string o.injection.Injection.error);
          (* Clean runs keep the v1 format byte for byte; only failed
             runs grow a status line. *)
          (match o.status with
          | Results.Completed -> ()
          | status -> line "status\t%s" (status_to_string status));
          List.iter
            (fun (d : Golden.divergence) ->
              line "div\t%s\t%d" d.signal d.first_ms)
            o.divergences)
        (Results.outcomes results);
      Ok ())

type parse_state = {
  mutable sut : string option;
  mutable campaign : string option;
  mutable results : Results.t option;
  (* current outcome under construction, divergences reversed *)
  mutable current :
    (string * Injection.t * Results.status * Golden.divergence list) option;
}

let load_results path =
  let ( let* ) = Result.bind in
  let fail lineno msg = Error (Printf.sprintf "%s:%d: %s" path lineno msg) in
  with_in path (fun ic ->
      let state = { sut = None; campaign = None; results = None; current = None } in
      let flush_current () =
        match (state.results, state.current) with
        | Some results, Some (testcase, injection, status, rev_divs) ->
            Results.add results
              {
                Results.testcase;
                injection;
                divergences = List.rev rev_divs;
                status;
              };
            state.current <- None
        | _, None -> ()
        | None, Some _ -> assert false
      in
      let ensure_header lineno =
        match (state.sut, state.campaign) with
        | Some sut, Some campaign ->
            (match state.results with
            | None -> state.results <- Some (Results.create ~sut ~campaign)
            | Some _ -> ());
            Ok ()
        | _ -> fail lineno "outcome before sut/campaign header"
      in
      let parse_line lineno line =
        match String.split_on_char '\t' line with
        | [ "sut"; name ] ->
            state.sut <- Some name;
            Ok ()
        | [ "campaign"; name ] ->
            state.campaign <- Some name;
            Ok ()
        | [ "outcome"; testcase; target; at_ms; error ] -> (
            let* () = ensure_header lineno in
            flush_current ();
            match (int_of_string_opt at_ms, error_of_string error) with
            | Some at_ms, Ok error when at_ms >= 0 ->
                state.current <-
                  Some
                    ( testcase,
                      Injection.make ~target
                        ~at:(Simkernel.Sim_time.of_ms at_ms)
                        ~error,
                      Results.Completed,
                      [] );
                Ok ()
            | None, _ -> fail lineno (Printf.sprintf "bad time %S" at_ms)
            | Some t, _ when t < 0 ->
                fail lineno (Printf.sprintf "negative time %S" at_ms)
            | _, Error msg -> fail lineno msg
            | _, Ok _ -> fail lineno "bad outcome line")
        | [ "div"; signal; first_ms ] -> (
            match (state.current, int_of_string_opt first_ms) with
            | Some (tc, inj, status, divs), Some first_ms ->
                state.current <-
                  Some (tc, inj, status, { Golden.signal; first_ms } :: divs);
                Ok ()
            | None, _ -> fail lineno "divergence before any outcome"
            | _, None -> fail lineno (Printf.sprintf "bad time %S" first_ms))
        | "status" :: rest -> (
            (* The status value itself may contain ':' but never '\t';
               rejoin in case a crash reason ever grows tabs upstream. *)
            match (state.current, status_of_string (String.concat "\t" rest)) with
            | Some (tc, inj, _, divs), Ok status ->
                state.current <- Some (tc, inj, status, divs);
                Ok ()
            | None, _ -> fail lineno "status before any outcome"
            | _, Error msg -> fail lineno msg)
        | [ "" ] -> Ok ()
        | _ -> fail lineno (Printf.sprintf "unrecognised line %S" line)
      in
      let* () =
        match In_channel.input_line ic with
        | Some magic when String.equal magic results_magic -> Ok ()
        | Some magic -> fail 1 (Printf.sprintf "bad magic %S" magic)
        | None -> fail 1 "empty file"
      in
      let rec loop lineno =
        match In_channel.input_line ic with
        | None ->
            let* () = ensure_header lineno in
            flush_current ();
            Ok (Option.get state.results)
        | Some line ->
            let* () = parse_line lineno line in
            loop (lineno + 1)
      in
      loop 2)

let save_matrices path matrices =
  let ( let* ) = Result.bind in
  let* () =
    Propagation.String_map.fold
      (fun name _ acc -> Result.bind acc (fun () -> check_field "module" name))
      matrices (Ok ())
  in
  with_out path (fun oc ->
      let line fmt = Printf.fprintf oc (fmt ^^ "\n") in
      line "%s" matrices_magic;
      Propagation.String_map.iter
        (fun name matrix ->
          line "module\t%s\t%d\t%d" name
            (Propagation.Perm_matrix.input_count matrix)
            (Propagation.Perm_matrix.output_count matrix);
          for i = 1 to Propagation.Perm_matrix.input_count matrix do
            let row = Propagation.Perm_matrix.row matrix ~input:i in
            line "row\t%s"
              (String.concat "\t"
                 (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
          done)
        matrices;
      Ok ())

let load_matrices path =
  let ( let* ) = Result.bind in
  let fail lineno msg = Error (Printf.sprintf "%s:%d: %s" path lineno msg) in
  with_in path (fun ic ->
      let* () =
        match In_channel.input_line ic with
        | Some magic when String.equal magic matrices_magic -> Ok ()
        | Some magic -> fail 1 (Printf.sprintf "bad magic %S" magic)
        | None -> fail 1 "empty file"
      in
      (* [pending]: module currently being read, with rows still
         expected. *)
      let rec loop lineno acc pending =
        match In_channel.input_line ic with
        | None -> (
            match pending with
            | None -> Ok acc
            | Some (name, _, _, _) ->
                fail lineno (Printf.sprintf "missing rows for module %S" name))
        | Some line -> (
            match (String.split_on_char '\t' line, pending) with
            | "module" :: name :: m :: n :: [], None -> (
                match (int_of_string_opt m, int_of_string_opt n) with
                | Some m, Some n when m > 0 && n > 0 ->
                    loop (lineno + 1) acc (Some (name, m, n, []))
                | _ -> fail lineno "bad module dimensions")
            | "row" :: cells, Some (name, m, n, rows) -> (
                let values =
                  List.filter_map float_of_string_opt cells
                in
                if List.length values <> n || List.length cells <> n then
                  fail lineno
                    (Printf.sprintf "expected %d values for module %S" n name)
                else
                  let rows = Array.of_list values :: rows in
                  if List.length rows = m then
                    match
                      Propagation.Perm_matrix.of_rows
                        (Array.of_list (List.rev rows))
                    with
                    | matrix ->
                        loop (lineno + 1)
                          (Propagation.String_map.add name matrix acc)
                          None
                    | exception Invalid_argument msg -> fail lineno msg
                  else loop (lineno + 1) acc (Some (name, m, n, rows)))
            | [ "" ], _ -> loop (lineno + 1) acc pending
            | "module" :: _, Some (name, _, _, _) ->
                fail lineno (Printf.sprintf "missing rows for module %S" name)
            | _ -> fail lineno (Printf.sprintf "unrecognised line %S" line))
      in
      loop 2 Propagation.String_map.empty None)
