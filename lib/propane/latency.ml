type stats = {
  pair : Propagation.Perm_graph.pair;
  samples : int;
  min_ms : int;
  max_ms : int;
  mean_ms : float;
  median_ms : int;
}

let window_of = function
  | Estimator.Direct { window_ms } -> Some window_ms
  | Estimator.Any_divergence -> None

(* Streaming latency observer: wraps the divergence observer and
   captures the injection instant, so per-signal latencies fall out of
   the run without any stored traces. *)
let observer ?window_ms frozen =
  let div, divergences = Observer.divergence frozen in
  let injected = ref (-1) in
  let obs = { div with Observer.on_injection = (fun ~ms -> injected := ms) } in
  let latencies () =
    match !injected with
    | -1 -> []
    | at ->
        List.filter_map
          (fun (d : Golden.divergence) ->
            let latency = d.first_ms - at in
            if latency < 0 then None
            else
              match window_ms with
              | Some w when latency > w -> None
              | _ -> Some (d.signal, latency))
          (divergences ())
  in
  (obs, latencies)

let pair_stats ?(attribution = Estimator.default_attribution) ~model ~results
    module_name =
  let m = Propagation.System_model.find_module_exn model module_name in
  let window = window_of attribution in
  let stats_for i k =
    let input_name =
      Propagation.Signal.name (Propagation.Sw_module.input_signal m i)
    in
    let output_name =
      Propagation.Signal.name (Propagation.Sw_module.output_signal m k)
    in
    let latencies =
      List.filter_map
        (fun (o : Results.outcome) ->
          (* A crashed run's tail-rule divergences mark the crash, not
             a propagation; failed runs carry no latency signal. *)
          if Results.is_failed o.status then None
          else
          match Results.divergence_of o output_name with
          | None -> None
          | Some at ->
              (* Latency counts from the first actual corruption, not
                 the arming time of a delayed model. *)
              let injected = Injection.first_fire_ms o.injection in
              let latency = at - injected in
              if latency < 0 then None
              else
                let inside =
                  match window with
                  | None -> true
                  | Some w -> latency <= w
                in
                if inside then Some latency else None)
        (Results.by_target results input_name)
    in
    match List.sort Int.compare latencies with
    | [] -> None
    | sorted ->
        let n = List.length sorted in
        Some
          {
            pair =
              { Propagation.Perm_graph.module_name; input = i; output = k };
            samples = n;
            min_ms = List.hd sorted;
            max_ms = List.nth sorted (n - 1);
            mean_ms =
              float_of_int (List.fold_left ( + ) 0 sorted) /. float_of_int n;
            median_ms = List.nth sorted (n / 2);
          }
  in
  List.concat_map
    (fun i0 ->
      List.init (Propagation.Sw_module.output_count m) (fun k0 ->
          stats_for (i0 + 1) (k0 + 1)))
    (List.init (Propagation.Sw_module.input_count m) Fun.id)

let all_stats ?attribution ~model results =
  List.concat_map
    (fun m ->
      List.filter_map Fun.id
        (pair_stats ?attribution ~model ~results (Propagation.Sw_module.name m)))
    (Propagation.System_model.modules model)

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<h>%a: n=%d latency min=%d max=%d mean=%.1f median=%d ms@]"
    Propagation.Perm_graph.pp_pair s.pair s.samples s.min_ms s.max_ms s.mean_ms
    s.median_ms
