type t = {
  now : unit -> float;
  mutable total : int;
  mutable skipped : int;
  mutable jobs : int;
  mutable completed : int;
  mutable crashed : int;
  mutable hung : int;
  mutable retried : int;
  mutable started : float option;
  mutable finished : float option;
  mutable per_worker : int array;
}

let create ?(now = Unix.gettimeofday) () =
  {
    now;
    total = 0;
    skipped = 0;
    jobs = 0;
    completed = 0;
    crashed = 0;
    hung = 0;
    retried = 0;
    started = None;
    finished = None;
    per_worker = [||];
  }

let observe t = function
  | Runner.Started { total; skipped; jobs } ->
      t.total <- total;
      t.skipped <- skipped;
      t.jobs <- jobs;
      t.completed <- skipped;
      t.crashed <- 0;
      t.hung <- 0;
      t.retried <- 0;
      t.per_worker <- Array.make jobs 0;
      t.started <- Some (t.now ());
      t.finished <- None
  | Runner.Goldens_done _ ->
      (* Rate and ETA describe the injection-run phase. *)
      t.started <- Some (t.now ())
  | Runner.Run_done { worker; completed; status; retries; _ } ->
      t.completed <- completed;
      (match status with
      | Results.Completed -> ()
      | Results.Crashed _ -> t.crashed <- t.crashed + 1
      | Results.Hung _ -> t.hung <- t.hung + 1);
      t.retried <- t.retried + retries;
      if worker >= 0 && worker < Array.length t.per_worker then
        t.per_worker.(worker) <- t.per_worker.(worker) + 1
  | Runner.Finished _ -> t.finished <- Some (t.now ())

type snapshot = {
  total : int;
  completed : int;
  skipped : int;
  jobs : int;
  elapsed_s : float;
  runs_per_sec : float;
  eta_s : float option;
  per_worker : int array;
  crashed : int;
  hung : int;
  retried : int;
}

let snapshot t =
  let elapsed_s =
    match (t.started, t.finished) with
    | Some t0, Some t1 -> t1 -. t0
    | Some t0, None -> t.now () -. t0
    | None, _ -> 0.0
  in
  let fresh = t.completed - t.skipped in
  let runs_per_sec =
    if elapsed_s > 0.0 && fresh > 0 then float_of_int fresh /. elapsed_s
    else 0.0
  in
  let eta_s =
    if t.completed >= t.total && t.total > 0 then Some 0.0
    else if runs_per_sec > 0.0 then
      Some (float_of_int (t.total - t.completed) /. runs_per_sec)
    else None
  in
  {
    total = t.total;
    completed = t.completed;
    skipped = t.skipped;
    jobs = t.jobs;
    elapsed_s;
    runs_per_sec;
    eta_s;
    per_worker = Array.copy t.per_worker;
    crashed = t.crashed;
    hung = t.hung;
    retried = t.retried;
  }

(* New fields go after the original ones: downstream log scrapers match
   on the stable prefix. *)
let to_json s =
  Printf.sprintf
    {|{"total":%d,"completed":%d,"skipped":%d,"jobs":%d,"elapsed_s":%.3f,"runs_per_sec":%.1f,"eta_s":%s,"per_worker":[%s],"crashed":%d,"hung":%d,"retried":%d}|}
    s.total s.completed s.skipped s.jobs s.elapsed_s s.runs_per_sec
    (match s.eta_s with
    | None -> "null"
    | Some eta -> Printf.sprintf "%.1f" eta)
    (String.concat ","
       (Array.to_list (Array.map string_of_int s.per_worker)))
    s.crashed s.hung s.retried

let pp_live ppf s =
  Fmt.pf ppf "%d/%d runs  %.0f runs/s%a%a" s.completed s.total s.runs_per_sec
    (fun ppf -> function
      | Some eta when s.completed < s.total -> Fmt.pf ppf "  eta %.1fs" eta
      | Some _ | None -> ())
    s.eta_s
    (fun ppf () ->
      if s.crashed + s.hung > 0 then
        Fmt.pf ppf "  (%d crashed, %d hung)" s.crashed s.hung)
    ()
