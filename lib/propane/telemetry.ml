type t = {
  now : unit -> float;
  mutable last_now : float;
  mutable total : int;
  mutable skipped : int;
  mutable jobs : int;
  mutable completed : int;
  mutable crashed : int;
  mutable hung : int;
  mutable retried : int;
  mutable started : float option;
  mutable finished : float option;
  mutable per_worker : int array;
  mutable worker_labels : string array;
  mutable analysis : Live.digest option;
}

let create ?(now = Unix.gettimeofday) () =
  {
    now;
    last_now = neg_infinity;
    total = 0;
    skipped = 0;
    jobs = 0;
    completed = 0;
    crashed = 0;
    hung = 0;
    retried = 0;
    started = None;
    finished = None;
    per_worker = [||];
    worker_labels = [||];
    analysis = None;
  }

(* Wall clocks step backwards under NTP slews and VM migrations; a
   telemetry clock that does would report negative elapsed times and
   nonsense rates.  Clamp to monotonically non-decreasing. *)
let clock t =
  let v = t.now () in
  if v > t.last_now then t.last_now <- v;
  t.last_now

let domain_label i = Printf.sprintf "domain-%d" i

(* Cluster campaigns attach workers as they connect, possibly more than
   the [jobs] announced at [Started]; grow the rows to fit. *)
let ensure_worker t worker =
  let n = Array.length t.per_worker in
  if worker >= n then begin
    let grown = Array.make (worker + 1) 0 in
    Array.blit t.per_worker 0 grown 0 n;
    t.per_worker <- grown;
    let labels = Array.init (worker + 1) domain_label in
    Array.blit t.worker_labels 0 labels 0 n;
    t.worker_labels <- labels
  end

let observe t = function
  | Runner.Started { total; skipped; jobs } ->
      t.total <- total;
      t.skipped <- skipped;
      t.jobs <- jobs;
      t.completed <- skipped;
      t.crashed <- 0;
      t.hung <- 0;
      t.retried <- 0;
      t.per_worker <- Array.make jobs 0;
      t.worker_labels <- Array.init jobs domain_label;
      t.started <- Some (clock t);
      t.finished <- None;
      t.analysis <- None
  | Runner.Goldens_done _ ->
      (* Rate and ETA describe the injection-run phase. *)
      t.started <- Some (clock t)
  | Runner.Worker_attached { worker; host; pid } ->
      if worker >= 0 then begin
        ensure_worker t worker;
        t.worker_labels.(worker) <- Printf.sprintf "%s/%d" host pid
      end
  | Runner.Run_done { worker; completed; status; retries; _ } ->
      t.completed <- completed;
      (match status with
      | Results.Completed -> ()
      | Results.Crashed _ -> t.crashed <- t.crashed + 1
      | Results.Hung _ -> t.hung <- t.hung + 1);
      t.retried <- t.retried + retries;
      if worker >= 0 && worker < Array.length t.per_worker then
        t.per_worker.(worker) <- t.per_worker.(worker) + 1
  | Runner.Analysis_tick digest -> t.analysis <- Some digest
  | Runner.Finished _ -> t.finished <- Some (clock t)

type snapshot = {
  total : int;
  completed : int;
  skipped : int;
  jobs : int;
  elapsed_s : float;
  runs_per_sec : float;
  eta_s : float option;
  per_worker : int array;
  crashed : int;
  hung : int;
  retried : int;
  worker_labels : string array;
  analysis : Live.digest option;
}

let snapshot t =
  let elapsed_s =
    (* [clock] never steps backwards, so this is non-negative; the
       [max] guards a [now] injected for tests that jumps around. *)
    match (t.started, t.finished) with
    | Some t0, Some t1 -> Float.max 0.0 (t1 -. t0)
    | Some t0, None -> Float.max 0.0 (clock t -. t0)
    | None, _ -> 0.0
  in
  let fresh = t.completed - t.skipped in
  let runs_per_sec =
    if elapsed_s > 0.0 && fresh > 0 then float_of_int fresh /. elapsed_s
    else 0.0
  in
  let eta_s =
    if t.completed >= t.total && t.total > 0 then Some 0.0
    else if runs_per_sec > 0.0 then
      Some (Float.max 0.0 (float_of_int (t.total - t.completed) /. runs_per_sec))
    else None
  in
  {
    total = t.total;
    completed = t.completed;
    skipped = t.skipped;
    jobs = t.jobs;
    elapsed_s;
    runs_per_sec;
    eta_s;
    per_worker = Array.copy t.per_worker;
    crashed = t.crashed;
    hung = t.hung;
    retried = t.retried;
    worker_labels = Array.copy t.worker_labels;
    analysis = t.analysis;
  }

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* New fields go after the original ones: downstream log scrapers match
   on the stable prefix. *)
let to_json s =
  Printf.sprintf
    {|{"total":%d,"completed":%d,"skipped":%d,"jobs":%d,"elapsed_s":%.3f,"runs_per_sec":%.1f,"eta_s":%s,"per_worker":[%s],"crashed":%d,"hung":%d,"retried":%d,"workers":[%s],"analysis":%s}|}
    s.total s.completed s.skipped s.jobs s.elapsed_s s.runs_per_sec
    (match s.eta_s with
    | None -> "null"
    | Some eta -> Printf.sprintf "%.1f" eta)
    (String.concat ","
       (Array.to_list (Array.map string_of_int s.per_worker)))
    s.crashed s.hung s.retried
    (String.concat ","
       (Array.to_list
          (Array.map
             (fun l -> Printf.sprintf "\"%s\"" (json_escape l))
             s.worker_labels)))
    (match s.analysis with
    | None -> "null"
    | Some a ->
        Printf.sprintf
          {|{"runs_observed":%d,"max_ci_width":%.4f,"stable_for":%d,"resolved_modules":%d,"module_count":%d}|}
          a.Live.runs_observed a.Live.max_ci_width a.Live.stable_for
          a.Live.resolved_modules a.Live.module_count)

let pp_live ppf s =
  Fmt.pf ppf "%d/%d runs  %.0f runs/s%a%a%a" s.completed s.total s.runs_per_sec
    (fun ppf -> function
      | Some eta when s.completed < s.total -> Fmt.pf ppf "  eta %.1fs" eta
      | Some _ | None -> ())
    s.eta_s
    (fun ppf () ->
      if s.crashed + s.hung > 0 then
        Fmt.pf ppf "  (%d crashed, %d hung)" s.crashed s.hung)
    ()
    (fun ppf () ->
      match s.analysis with
      | Some a ->
          Fmt.pf ppf "  ci %.3f  stable %d  resolved %d/%d" a.Live.max_ci_width
            a.Live.stable_for a.Live.resolved_modules a.Live.module_count
      | None -> ())
    ()
