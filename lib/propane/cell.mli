(** Cell identity for content-addressed campaign reuse.

    The paper estimates each permeability {m P_{i,k} = n_err / n_inj}
    per (module input, module output) pair, yet a naive campaign is one
    opaque run list: edit one module and everything is re-injected.
    The unit of reuse is finer — a {e cell}: one (module, injected
    input) pair under a fixed error model, workload grid and runner
    recipe.  A cell's counters are derived exclusively from the runs
    that inject into its input signal, so cells are independent across
    targets and can be cached and recombined ({!Cache}, {!Reuse}).

    A cell's {e key} is a content-addressed digest over everything its
    counters depend on by construction: the SUT and module names, the
    module's declared content digest ({!Sut.digests}), the injected
    target, the module's output signal list, the campaign shape
    (test cases, injection times, error models) and the caller's
    recipe string (seed, attribution window, runner options — see
    {!Runner.Config.encode}).  Two campaigns computing the same key
    promise the same counters, which is what makes a cache hit sound.

    Deliberate approximation: the key covers the module's {e own}
    digest, not the digests of its upstream producer cone.  An edit to
    an upstream module can change the values flowing into an unedited
    module without touching its key.  This mirrors the issue's
    FastFlip-style contract (a stale {e module} hash forces
    re-injection); for feed-forward systems edited at or below the
    observed module it is exact, and {!Reuse} documents the caveat for
    everything else. *)

type t = {
  module_name : string;  (** consumer module observing the injections *)
  target : string;  (** injected input signal *)
  outputs : string array;  (** the module's outputs, declaration order *)
  key : string;  (** content-addressed cache key (hex) *)
  digest : string option;
      (** the module's content digest; [None] makes the cell
          uncacheable (always dirty, never stored) *)
}

val key_of :
  sut_name:string ->
  module_name:string ->
  module_digest:string ->
  target:string ->
  outputs:string list ->
  shape:string ->
  errors:string list ->
  recipe:string ->
  string
(** The raw key constructor; exposed for tests.  Any single differing
    component yields a different key. *)

val shape_of : Campaign.t -> string
(** Canonical description of the width-independent campaign dimensions
    every cell of the campaign shares: test-case ids and parameters and
    injection times (targets excluded — each cell names its own; error
    models enter separately via {!errors_of}, canonicalized at the
    target's width). *)

val errors_of : width:int -> Campaign.t -> string list
(** The campaign's error models as width-aware canonical descriptions
    ({!Error_model.canonicalize}): behaviourally identical spellings
    (e.g. [Stuck_at 5] vs [Stuck_at (5 + 65536)] at width 16) digest
    identically, so [--reuse] never misses spuriously. *)

type plan = {
  cells : t list;  (** every cell of the campaign, target-major *)
  by_target : (string * t list) list;
      (** campaign-target order; a target consumed by no module of the
          model maps to [[]] *)
}

val plan :
  sut:Sut.t ->
  model:Propagation.System_model.t ->
  recipe:string ->
  Campaign.t ->
  plan
(** Enumerate the cells of [campaign]: one per (module, target) pair
    where the module consumes the target.  [recipe] is an opaque
    string folded into every key; callers pass the encoded runner
    configuration plus whatever else estimation depends on (attribution
    window, failure accounting). *)
