type divergence = { signal : string; first_ms : int }

let check_signal_sets ~golden ~run =
  let gs = Trace_set.signals golden and rs = Trace_set.signals run in
  if not (List.equal String.equal gs rs) then
    invalid_arg "Golden.compare_runs: trace sets cover different signals"

let compare_runs ?until_ms ~golden ~run () =
  check_signal_sets ~golden ~run;
  List.filter_map
    (fun signal ->
      match
        Trace.first_difference ?until_ms
          (Trace_set.trace golden signal)
          (Trace_set.trace run signal)
      with
      | None -> None
      | Some first_ms -> Some { signal; first_ms })
    (Trace_set.signals golden)

let diverged ?until_ms ~golden ~run signal =
  Trace.first_difference ?until_ms
    (Trace_set.trace golden signal)
    (Trace_set.trace run signal)

type tolerance = { epsilon : int; hold_ms : int }

let exact = { epsilon = 0; hold_ms = 0 }

let first_tolerant_difference ?(from_ms = 0) ?(until_ms = max_int) tolerance
    golden run =
  if not (String.equal (Trace.signal golden) (Trace.signal run)) then
    invalid_arg
      (Printf.sprintf "Golden.first_tolerant_difference: comparing %S with %S"
         (Trace.signal golden) (Trace.signal run));
  let common = min (Trace.length golden) (Trace.length run) in
  let stop = min common until_ms in
  (* [streak] counts consecutive out-of-band samples ending just before
     position [j]. *)
  let rec go j streak =
    if j >= stop then
      if
        Trace.length golden <> Trace.length run
        && common >= from_ms && common < until_ms
      then Some common
      else None
    else if abs (Trace.get golden j - Trace.get run j) > tolerance.epsilon
    then
      let streak = streak + 1 in
      if streak > tolerance.hold_ms then Some (j - tolerance.hold_ms)
      else go (j + 1) streak
    else go (j + 1) 0
  in
  go (max from_ms 0) 0

let compare_runs_tolerant ?from_ms ?until_ms ~tolerance_for ~golden ~run () =
  check_signal_sets ~golden ~run;
  List.filter_map
    (fun signal ->
      match
        first_tolerant_difference ?from_ms ?until_ms (tolerance_for signal)
          (Trace_set.trace golden signal)
          (Trace_set.trace run signal)
      with
      | None -> None
      | Some first_ms -> Some { signal; first_ms })
    (Trace_set.signals golden)

(** {1 Frozen goldens} *)

type frozen = {
  frozen_signals : string array;  (* creation order of the trace set *)
  frozen_duration : int;
  samples : int array;  (* signal-major: [samples.(s * duration + ms)] *)
}

let freeze set =
  let order = Trace_set.signals set in
  let signals = Array.of_list order in
  let duration = Trace_set.duration_ms set in
  let samples = Array.make (max 1 (Array.length signals * duration)) 0 in
  Array.iteri
    (fun s name ->
      Trace.blit_into (Trace_set.trace set name) samples ~pos:(s * duration))
    signals;
  { frozen_signals = signals; frozen_duration = duration; samples }

let frozen_signals f = Array.to_list f.frozen_signals
let frozen_signal_count f = Array.length f.frozen_signals
let frozen_duration_ms f = f.frozen_duration

let frozen_value f ~signal ~ms =
  if signal < 0 || signal >= Array.length f.frozen_signals then
    invalid_arg (Printf.sprintf "Golden.frozen_value: signal %d" signal)
  else if ms < 0 || ms >= f.frozen_duration then
    invalid_arg (Printf.sprintf "Golden.frozen_value: ms %d" ms)
  else f.samples.((signal * f.frozen_duration) + ms)

let pp_divergence ppf d = Fmt.pf ppf "%s@%dms" d.signal d.first_ms
