(** The traces of one run, keyed by signal name.

    A trace set is created with a fixed signal list; {!sample} appends
    one synchronized sample per signal each millisecond, so all traces
    always have equal length. *)

type t

val create : signals:string list -> unit -> t
(** @raise Invalid_argument on duplicate or empty signal lists. *)

val signals : t -> string list
(** In creation order. *)

val sample : t -> (string -> int) -> unit
(** [sample t read] appends [read s] to the trace of each signal [s].
    Called once per simulated millisecond by the runner. *)

val sample_array : t -> int array -> unit
(** [sample_array t values] appends [values.(i)] to the trace of the
    [i]-th signal (creation order).  @raise Invalid_argument if the
    array length differs from the signal count. *)

val duration_ms : t -> int
val trace : t -> string -> Trace.t
(** @raise Not_found for an unknown signal. *)

val find_trace : t -> string -> Trace.t option
val pp : Format.formatter -> t -> unit
