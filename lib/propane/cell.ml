type t = {
  module_name : string;
  target : string;
  outputs : string array;
  key : string;
  digest : string option;
}

(* The key digests a field-separated record; \x1f (unit separator)
   cannot appear in signal/module names (they are journal fields, which
   reject control separators) so components never collide. *)
let sep = '\x1f'

let key_of ~sut_name ~module_name ~module_digest ~target ~outputs ~shape
    ~errors ~recipe =
  let buf = Buffer.create 256 in
  List.iter
    (fun field ->
      Buffer.add_string buf field;
      Buffer.add_char buf sep)
    ([ "propane-cell 2"; sut_name; module_name; module_digest; target ]
    @ outputs
    @ [ shape ] @ errors @ [ recipe ]);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let shape_of (campaign : Campaign.t) =
  let buf = Buffer.create 256 in
  let field s =
    Buffer.add_string buf s;
    Buffer.add_char buf sep
  in
  List.iter
    (fun tc ->
      field (Testcase.id tc);
      List.iter
        (fun (name, v) -> field (Printf.sprintf "%s=%h" name v))
        tc.Testcase.params)
    campaign.Campaign.testcases;
  List.iter
    (fun at -> field (string_of_int (Simkernel.Sim_time.to_ms at)))
    campaign.Campaign.times;
  Buffer.contents buf

(* Error models digest in width-aware canonical form, per target: the
   injected signal's width fixes which spellings collapse (Stuck_at 5
   and Stuck_at 65541 at width 16), so behaviourally identical models
   share a cache cell instead of missing spuriously. *)
let errors_of ~width (campaign : Campaign.t) =
  List.map
    (fun e -> Error_model.describe (Error_model.canonicalize ~width e))
    campaign.Campaign.errors

type plan = { cells : t list; by_target : (string * t list) list }

let plan ~(sut : Sut.t) ~model ~recipe (campaign : Campaign.t) =
  let shape = shape_of campaign in
  let consumers = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun input ->
          let key = Propagation.Signal.name input in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt consumers key)
          in
          Hashtbl.replace consumers key (prev @ [ m ]))
        (Propagation.Sw_module.input_signals m))
    (Propagation.System_model.modules model);
  let by_target =
    List.map
      (fun target ->
        let errors =
          errors_of ~width:(Sut.signal_width sut target) campaign
        in
        let cells =
          List.map
            (fun m ->
              let module_name = Propagation.Sw_module.name m in
              let outputs =
                List.map Propagation.Signal.name
                  (Propagation.Sw_module.output_signals m)
              in
              let digest = Sut.digest_of sut module_name in
              {
                module_name;
                target;
                outputs = Array.of_list outputs;
                key =
                  key_of ~sut_name:sut.Sut.name ~module_name
                    ~module_digest:(Option.value ~default:"" digest)
                    ~target ~outputs ~shape ~errors ~recipe;
                digest;
              })
            (Option.value ~default:[] (Hashtbl.find_opt consumers target))
        in
        (target, cells))
      campaign.Campaign.targets
  in
  { cells = List.concat_map snd by_target; by_target }
