let magic = "propane-journal 1"

(* A CR is rejected alongside tab and newline: a CR in a testcase or
   target id would survive into the record and corrupt round-tripping
   of CRLF-touched journals. *)
let check_field name value =
  if
    String.contains value '\t' || String.contains value '\n'
    || String.contains value '\r'
  then
    Error
      (Printf.sprintf "Journal: %s %S contains a separator character" name
         value)
  else Ok ()

(* ------------------------------------------------------------------ *)

type writer = {
  oc : out_channel;
  sync : bool;
  batch : int;
  mutable pending : int;  (* appended records not yet committed *)
}

let commit w =
  w.pending <- 0;
  flush w.oc;
  if w.sync then Unix.fsync (Unix.descr_of_out_channel w.oc)

let flush w = if w.pending > 0 then commit w

let check_batch batch =
  if batch < 1 then Error "Journal: batch must be >= 1" else Ok ()

let create ?(sync = false) ?(batch = 1) ?recipe ~path ~sut ~campaign ~seed
    ~total () =
  let ( let* ) = Result.bind in
  let* () = check_field "sut" sut in
  let* () = check_field "campaign" campaign in
  let* () =
    match recipe with None -> Ok () | Some r -> check_field "recipe" r
  in
  let* () = check_batch batch in
  if total < 0 then Error "Journal: negative total"
  else begin
    let oc = open_out path in
    Printf.fprintf oc "%s\nsut\t%s\ncampaign\t%s\nseed\t%Ld\ntotal\t%d\n" magic
      sut campaign seed total;
    (* The optional recipe line records how to rebuild the exact
       campaign and runner configuration — what [propane replay] needs
       to re-execute one run deterministically.  Journals without it
       keep their pre-recipe bytes. *)
    (match recipe with
    | None -> ()
    | Some r -> Printf.fprintf oc "recipe\t%s\n" r);
    let w = { oc; sync; batch; pending = 0 } in
    commit w;
    Ok w
  end

let append_to ?(sync = false) ?(batch = 1) path =
  let ( let* ) = Result.bind in
  let* () = check_batch batch in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> In_channel.input_all ic)
  in
  match String.index_opt contents '\n' with
  | Some i when String.equal (String.sub contents 0 i) magic ->
      (* Drop an uncommitted trailing fragment (a killed writer's
         half-record) before appending, or the next record would merge
         with it. *)
      let committed = 1 + String.rindex contents '\n' in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd committed;
      let _ = Unix.lseek fd committed Unix.SEEK_SET in
      Ok { oc = Unix.out_channel_of_descr fd; sync; batch; pending = 0 }
  | Some i -> Error (Printf.sprintf "%s:1: bad magic %S" path (String.sub contents 0 i))
  | None -> Error (Printf.sprintf "%s:1: empty file" path)

(* The exact committed record line (no trailing newline) for one
   outcome — the unit [propane replay] compares byte-for-byte against
   the journalled original.  Shared with [append] so there is exactly
   one encoding. *)
let record_string ~index (o : Results.outcome) =
  let ( let* ) = Result.bind in
  if index < 0 then Error "Journal.append: negative index"
  else
    let* () = check_field "testcase" o.testcase in
    let* () = check_field "target" o.injection.Injection.target in
    let* () = check_field "status" (Storage.status_to_string o.status) in
    let* () =
      List.fold_left
        (fun acc (d : Golden.divergence) ->
          let* () = acc in
          check_field "signal" d.signal)
        (Ok ()) o.divergences
    in
    let buf = Buffer.create 128 in
    (* Completed runs keep the v1 [run] record byte for byte; a failed
       run writes the v2 [run2] record, which carries its status. *)
    (match o.status with
    | Results.Completed ->
        Printf.bprintf buf "run\t%d\t%s\t%s\t%d\t%s\t%d" index o.testcase
          o.injection.Injection.target
          (Simkernel.Sim_time.to_ms o.injection.Injection.at)
          (Storage.error_to_string o.injection.Injection.error)
          (List.length o.divergences)
    | status ->
        Printf.bprintf buf "run2\t%d\t%s\t%s\t%d\t%s\t%s\t%d" index o.testcase
          o.injection.Injection.target
          (Simkernel.Sim_time.to_ms o.injection.Injection.at)
          (Storage.error_to_string o.injection.Injection.error)
          (Storage.status_to_string status)
          (List.length o.divergences));
    List.iter
      (fun (d : Golden.divergence) ->
        Printf.bprintf buf "\t%s\t%d" d.signal d.first_ms)
      o.divergences;
    Ok (Buffer.contents buf)

let append w ~index (o : Results.outcome) =
  let ( let* ) = Result.bind in
  let* record = record_string ~index o in
  output_string w.oc record;
  output_char w.oc '\n';
  w.pending <- w.pending + 1;
  if w.pending >= w.batch then commit w;
  Ok ()

type cell = {
  target : string;
  module_name : string;
  key : string;
  reused : bool;
}

(* Cell provenance ties the journal to the reuse plan that produced it:
   which (module, target) cells the campaign covers, under which cache
   keys, and whether each was served from the cache or re-injected.
   Non-reuse campaigns write none, keeping their journals byte-for-byte
   what they were before cells existed. *)
let append_cell w { target; module_name; key; reused } =
  let ( let* ) = Result.bind in
  let* () = check_field "target" target in
  let* () = check_field "module" module_name in
  let* () = check_field "key" key in
  Printf.fprintf w.oc "cell\t%s\t%s\t%s\t%s\n" target module_name key
    (if reused then "reused" else "fresh");
  w.pending <- w.pending + 1;
  if w.pending >= w.batch then commit w;
  Ok ()

let append_cells w cells =
  let ( let* ) = Result.bind in
  let* () =
    List.fold_left
      (fun acc cell ->
        let* () = acc in
        append_cell w cell)
      (Ok ()) cells
  in
  commit w;
  Ok ()

type round = { round : int; target : string; runs : int }

(* Plan rounds tie the journal to the budget scheduler that produced
   it: which round granted which target how many runs.  They are
   appended in one batch when a planned campaign finishes — round
   decisions are a deterministic function of the completed outcomes, so
   a killed-and-resumed campaign re-derives and records the identical
   rounds, keeping final journals byte-identical to uninterrupted ones.
   Unplanned campaigns write none, preserving their exact bytes. *)
let append_round w { round; target; runs } =
  let ( let* ) = Result.bind in
  let* () = check_field "target" target in
  if round < 0 || runs < 0 then Error "Journal: negative plan round fields"
  else begin
    Printf.fprintf w.oc "plan\t%d\t%s\t%d\n" round target runs;
    w.pending <- w.pending + 1;
    if w.pending >= w.batch then commit w;
    Ok ()
  end

let append_rounds w rounds =
  let ( let* ) = Result.bind in
  let* () =
    List.fold_left
      (fun acc r ->
        let* () = acc in
        append_round w r)
      (Ok ()) rounds
  in
  commit w;
  Ok ()

let close w =
  flush w;
  close_out w.oc

(* ------------------------------------------------------------------ *)

type t = {
  sut : string;
  campaign : string;
  seed : int64;
  total : int;
  recipe : string option;
  cells : cell list;
  rounds : round list;
  entries : (int * Results.outcome) list;
}

(* Only newline-terminated lines are committed records: a writer killed
   mid-append leaves a trailing fragment, which is dropped here. *)
let committed_lines path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> In_channel.input_all ic)
  in
  match String.rindex_opt contents '\n' with
  | None -> []
  | Some last -> String.split_on_char '\n' (String.sub contents 0 last)

let parse_run ?(versioned = false) lineno fields =
  let ( let* ) = Result.bind in
  let fail msg = Error (Printf.sprintf "%d: %s" lineno msg) in
  (* [run2] records carry a STATUS field between ERROR and NDIV; v1
     [run] records have none and default to [Completed]. *)
  let* status, fields =
    if not versioned then Ok (Results.Completed, fields)
    else
      match fields with
      | index :: testcase :: target :: at_ms :: error :: status :: rest -> (
          match Storage.status_of_string status with
          | Ok status ->
              Ok (status, index :: testcase :: target :: at_ms :: error :: rest)
          | Error msg -> fail msg)
      | _ -> fail "short run2 record"
  in
  match fields with
  | index :: testcase :: target :: at_ms :: error :: ndiv :: rest -> (
      match
        ( int_of_string_opt index,
          int_of_string_opt at_ms,
          Storage.error_of_string error,
          int_of_string_opt ndiv )
      with
      | _ when String.equal target "" -> fail "empty target"
      | Some index, Some at_ms, Ok error, Some ndiv
        when index >= 0 && at_ms >= 0 && ndiv >= 0 ->
          if List.length rest <> 2 * ndiv then
            fail (Printf.sprintf "expected %d divergence fields" (2 * ndiv))
          else
            let rec divs acc = function
              | [] -> Ok (List.rev acc)
              | signal :: first_ms :: rest -> (
                  match int_of_string_opt first_ms with
                  | Some first_ms ->
                      divs ({ Golden.signal; first_ms } :: acc) rest
                  | None ->
                      fail (Printf.sprintf "bad divergence time %S" first_ms))
              | [ _ ] -> fail "odd divergence fields"
            in
            Result.map
              (fun divergences ->
                ( index,
                  {
                    Results.testcase;
                    injection =
                      Injection.make ~target
                        ~at:(Simkernel.Sim_time.of_ms at_ms)
                        ~error;
                    divergences;
                    status;
                  } ))
              (divs [] rest)
      | None, _, _, _ -> fail (Printf.sprintf "bad index %S" index)
      | _, None, _, _ -> fail (Printf.sprintf "bad time %S" at_ms)
      | _, _, Error msg, _ -> fail msg
      | _ -> fail "bad run record")
  | _ -> fail "short run record"

let load path =
  let ( let* ) = Result.bind in
  let fail lineno msg = Error (Printf.sprintf "%s:%d: %s" path lineno msg) in
  let located = Result.map_error (Printf.sprintf "%s:%s" path) in
  match committed_lines path with
  | [] -> fail 1 "empty file"
  | m :: _ when not (String.equal m magic) ->
      fail 1 (Printf.sprintf "bad magic %S" m)
  | _ :: body ->
      let header = Hashtbl.create 4 in
      let rev_cells = ref [] in
      let rev_rounds = ref [] in
      let rec loop lineno rev_entries = function
        | [] -> Ok (List.rev rev_entries)
        | "" :: rest -> loop (lineno + 1) rev_entries rest
        | line :: rest -> (
            match String.split_on_char '\t' line with
            | [ (("sut" | "campaign" | "seed" | "total" | "recipe") as key);
                value;
              ] ->
                Hashtbl.replace header key value;
                loop (lineno + 1) rev_entries rest
            | [ "cell"; target; module_name; key; status ] -> (
                match status with
                | "reused" | "fresh" ->
                    rev_cells :=
                      { target; module_name; key; reused = status = "reused" }
                      :: !rev_cells;
                    loop (lineno + 1) rev_entries rest
                | _ ->
                    fail lineno (Printf.sprintf "bad cell status %S" status))
            | [ "plan"; round; target; runs ] -> (
                match (int_of_string_opt round, int_of_string_opt runs) with
                | Some round, Some runs when round >= 0 && runs >= 0 ->
                    rev_rounds := { round; target; runs } :: !rev_rounds;
                    loop (lineno + 1) rev_entries rest
                | _ ->
                    fail lineno (Printf.sprintf "bad plan record %S" line))
            | "run" :: fields ->
                let* entry = located (parse_run lineno fields) in
                loop (lineno + 1) (entry :: rev_entries) rest
            | "run2" :: fields ->
                let* entry = located (parse_run ~versioned:true lineno fields) in
                loop (lineno + 1) (entry :: rev_entries) rest
            | _ -> fail lineno (Printf.sprintf "unrecognised line %S" line))
      in
      let* entries = loop 2 [] body in
      let cells = List.rev !rev_cells in
      let rounds = List.rev !rev_rounds in
      let field key =
        match Hashtbl.find_opt header key with
        | Some v -> Ok v
        | None -> fail 1 (Printf.sprintf "missing %s header" key)
      in
      let* sut = field "sut" in
      let* campaign = field "campaign" in
      let* seed = field "seed" in
      let* total = field "total" in
      let* seed =
        match Int64.of_string_opt seed with
        | Some s -> Ok s
        | None -> fail 1 (Printf.sprintf "bad seed %S" seed)
      in
      let* total =
        match int_of_string_opt total with
        | Some t when t >= 0 -> Ok t
        | _ -> fail 1 (Printf.sprintf "bad total %S" total)
      in
      let recipe = Hashtbl.find_opt header "recipe" in
      Ok { sut; campaign; seed; total; recipe; cells; rounds; entries }

let validate t ~path ~sut ~campaign ~seed ~total =
  let ( let* ) = Result.bind in
  let check cond msg = if cond then Ok () else Error msg in
  let* () =
    check
      (String.equal t.sut sut)
      (Printf.sprintf "journal %s is for SUT %S, not %S" path t.sut sut)
  in
  let* () =
    check
      (String.equal t.campaign campaign)
      (Printf.sprintf "journal %s is for campaign %S, not %S" path t.campaign
         campaign)
  in
  let* () =
    check
      (Int64.equal t.seed seed)
      (Printf.sprintf "journal %s was recorded with seed %Ld, not %Ld" path
         t.seed seed)
  in
  let* () =
    check (t.total = total)
      (Printf.sprintf "journal %s expects %d runs, campaign has %d" path
         t.total total)
  in
  List.fold_left
    (fun acc (index, _) ->
      let* () = acc in
      check
        (index < total)
        (Printf.sprintf "journal %s: index %d out of range" path index))
    (Ok ()) t.entries

(* Last-wins: a crashed worker's record can be superseded by a retry
   appended later in the same journal, and the retry is the outcome the
   resumed campaign must trust. *)
let completed t =
  let table = Hashtbl.create (List.length t.entries) in
  List.iter
    (fun (index, outcome) -> Hashtbl.replace table index outcome)
    t.entries;
  table
