(** Fault-configurable SUT wrapper: a chaos harness for the campaign
    engine's failure handling.

    Real SWIFI targets do not always survive an injected error — the
    corrupted value can take down the target software or spin it into
    a livelock.  [Fault] turns any {!Sut.t} into one that misbehaves
    that way on demand, deterministically: the wrapped instance runs
    exactly like the original until {e its injection} arms the
    countdown, then crashes (raises) or hangs (burns wall-clock per
    step) a configured number of simulated milliseconds later.

    Golden runs are never injected, so they are never perturbed; the
    runner's watchdog and crash handling (see {!Runner.run}) convert
    the misbehaviour into {!Results.Crashed} / {!Results.Hung}
    outcomes.  Used by the test suite and the CLI's [--chaos-*]
    flags. *)

exception Simulated_crash of int
(** Raised by a wrapped instance's [step] that many simulated
    milliseconds after its injection. *)

type spec = {
  crash_after_ms : int option;
      (** raise {!Simulated_crash} this many simulated ms after the
          injection ([Some 0] = crash on the injection's own step) *)
  hang_after_ms : int option;
      (** from this many simulated ms after the injection on, every
          step sleeps [hang_step_wall_ms] of wall-clock *)
  hang_step_wall_ms : int;  (** sleep per hanging step, wall-clock ms *)
  only_testcase : string option;
      (** restrict the misbehaviour to one test case id *)
}

val spec :
  ?crash_after_ms:int ->
  ?hang_after_ms:int ->
  ?hang_step_wall_ms:int ->
  ?only_testcase:string ->
  unit ->
  spec
(** [hang_step_wall_ms] defaults to 25.  With both [crash_after_ms]
    and [hang_after_ms] unset the spec is a no-op.
    @raise Invalid_argument on a negative countdown or a sleep < 1. *)

val apply : spec -> Sut.t -> Sut.t
(** The wrapped SUT keeps its name and signals; only [instantiate] is
    intercepted.  A hanging run without a runner watchdog is still
    bounded: it merely takes [hang_step_wall_ms] of wall-clock per
    remaining simulated millisecond. *)

val wrap :
  ?crash_after_ms:int ->
  ?hang_after_ms:int ->
  ?hang_step_wall_ms:int ->
  ?only_testcase:string ->
  Sut.t ->
  Sut.t
(** [apply] of a freshly built {!spec}. *)
