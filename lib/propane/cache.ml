let magic = "propane-cache 1"

type entry = {
  module_name : string;
  target : string;
  outputs : string array;
  counts : (int * int) array;
}

let check_field name value =
  if
    String.contains value '\t' || String.contains value '\n'
    || String.contains value '\r'
  then
    Error
      (Printf.sprintf "Cache: %s %S contains a separator character" name value)
  else Ok ()

(* Keys name files directly; reject anything that could escape [dir]. *)
let check_key key =
  if
    key = ""
    || String.exists
         (fun c ->
           not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
              || (c >= 'A' && c <= 'F')))
         key
  then Error (Printf.sprintf "Cache: malformed key %S" key)
  else Ok ()

let path ~dir ~key = Filename.concat dir key
let stats_path ~dir = Filename.concat dir "stats.json"

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try
      Unix.mkdir dir 0o755;
      Ok ()
    with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
    | Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "Cache: cannot create %s: %s" dir
             (Unix.error_message e))
  else if Sys.is_directory dir then Ok ()
  else Error (Printf.sprintf "Cache: %s exists and is not a directory" dir)

(* Temp-file-plus-rename: concurrent writers of the same key race to a
   whole entry each, never to interleaved lines. *)
let atomic_write ~dir ~file contents =
  let ( let* ) = Result.bind in
  let* () = ensure_dir dir in
  try
    let tmp =
      Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename file) ".tmp"
    in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc contents);
        Sys.rename tmp (Filename.concat dir file));
    Ok ()
  with Sys_error msg | Unix.Unix_error (_, msg, _) ->
    Error (Printf.sprintf "Cache: %s" msg)

let store ~dir ~key entry =
  let ( let* ) = Result.bind in
  let* () = check_key key in
  let* () = check_field "module" entry.module_name in
  let* () = check_field "target" entry.target in
  let* () =
    Array.fold_left
      (fun acc o ->
        let* () = acc in
        check_field "output" o)
      (Ok ()) entry.outputs
  in
  if Array.length entry.outputs <> Array.length entry.counts then
    Error "Cache: outputs/counts length mismatch"
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf magic;
    Buffer.add_char buf '\n';
    Printf.bprintf buf "module\t%s\n" entry.module_name;
    Printf.bprintf buf "target\t%s\n" entry.target;
    Array.iteri
      (fun k output ->
        let n_err, n_inj = entry.counts.(k) in
        Printf.bprintf buf "cell\t%s\t%d\t%d\n" output n_err n_inj)
      entry.outputs;
    atomic_write ~dir ~file:key (Buffer.contents buf)
  end

let load ~dir ~key =
  match check_key key with
  | Error _ -> None
  | Ok () -> (
      let file = path ~dir ~key in
      match
        if Sys.file_exists file && not (Sys.is_directory file) then
          let ic = open_in_bin file in
          Some
            (Fun.protect
               ~finally:(fun () -> close_in ic)
               (fun () -> In_channel.input_all ic))
        else None
      with
      | None -> None
      | Some contents -> (
          (* Any deviation from the format is a miss: the entry will be
             re-measured and overwritten, never trusted. *)
          let lines = String.split_on_char '\n' contents in
          let parse () =
            match lines with
            | m :: rest when String.equal m magic -> (
                let module_name = ref None
                and target = ref None
                and cells = ref [] in
                let ok =
                  List.for_all
                    (fun line ->
                      match String.split_on_char '\t' line with
                      | [ "" ] -> true
                      | [ "module"; v ] ->
                          !module_name = None
                          &&
                          (module_name := Some v;
                           true)
                      | [ "target"; v ] ->
                          !target = None
                          &&
                          (target := Some v;
                           true)
                      | [ "cell"; output; n_err; n_inj ] -> (
                          match
                            (int_of_string_opt n_err, int_of_string_opt n_inj)
                          with
                          | Some e, Some i when 0 <= e && e <= i ->
                              cells := (output, (e, i)) :: !cells;
                              true
                          | _ -> false)
                      | _ -> false)
                    rest
                in
                match (ok, !module_name, !target) with
                | true, Some module_name, Some target ->
                    let cells = List.rev !cells in
                    Some
                      {
                        module_name;
                        target;
                        outputs = Array.of_list (List.map fst cells);
                        counts = Array.of_list (List.map snd cells);
                      }
                | _ -> None)
            | _ -> None
          in
          match parse () with
          | Some e when Array.length e.outputs > 0 -> Some e
          | _ -> None))

let mem ~dir ~key =
  match check_key key with
  | Error _ -> false
  | Ok () ->
      let file = path ~dir ~key in
      Sys.file_exists file && not (Sys.is_directory file)

type stats = {
  cells : int;
  reused : int;
  fresh : int;
  runs_total : int;
  runs_selected : int;
}

let write_stats ~dir stats =
  let json =
    Printf.sprintf
      "{\n\
      \  \"cells\": %d,\n\
      \  \"reused\": %d,\n\
      \  \"fresh\": %d,\n\
      \  \"hit_rate\": %.4f,\n\
      \  \"runs_total\": %d,\n\
      \  \"runs_selected\": %d,\n\
      \  \"runs_skipped\": %d\n\
       }\n"
      stats.cells stats.reused stats.fresh
      (if stats.cells = 0 then 0.0
       else float_of_int stats.reused /. float_of_int stats.cells)
      stats.runs_total stats.runs_selected
      (stats.runs_total - stats.runs_selected)
  in
  atomic_write ~dir ~file:"stats.json" json
