module String_map = Map.Make (String)

type t = {
  order : string list;
  ordered_traces : Trace.t array;  (* creation order, for fast sampling *)
  traces : Trace.t String_map.t;
  mutable duration : int;
}

let create ~signals () =
  if signals = [] then invalid_arg "Trace_set.create: no signals";
  let traces =
    List.fold_left
      (fun acc s ->
        if String.length s = 0 then
          invalid_arg "Trace_set.create: empty signal name"
        else if String_map.mem s acc then
          invalid_arg
            (Printf.sprintf "Trace_set.create: duplicate signal %S" s)
        else String_map.add s (Trace.create ~signal:s ()) acc)
      String_map.empty signals
  in
  let ordered_traces =
    Array.of_list (List.map (fun s -> String_map.find s traces) signals)
  in
  { order = signals; ordered_traces; traces; duration = 0 }

let signals t = t.order

let sample t read =
  Array.iter (fun tr -> Trace.push tr (read (Trace.signal tr))) t.ordered_traces;
  t.duration <- t.duration + 1

let sample_array t values =
  if Array.length values <> Array.length t.ordered_traces then
    invalid_arg
      (Printf.sprintf "Trace_set.sample_array: %d values for %d signals"
         (Array.length values)
         (Array.length t.ordered_traces));
  Array.iteri (fun i tr -> Trace.push tr values.(i)) t.ordered_traces;
  t.duration <- t.duration + 1

let duration_ms t = t.duration
let trace t s = String_map.find s t.traces
let find_trace t s = String_map.find_opt s t.traces

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut Trace.pp)
    (List.map (trace t) t.order)
