type attribution =
  | Direct of { window_ms : int }
  | Any_divergence

let default_attribution = Direct { window_ms = 64 }

type estimate = {
  pair : Propagation.Perm_graph.pair;
  injections : int;
  errors : int;
  value : float;
  interval : float * float;
}

let wilson_interval ~errors ~trials =
  if errors < 0 || trials < 0 || errors > trials then
    invalid_arg "Estimator.wilson_interval: need 0 <= errors <= trials";
  if trials = 0 then (0.0, 1.0)
  else
    let z = 1.959963984540054 (* 97.5th percentile of N(0,1) *) in
    let n = float_of_int trials in
    let p = float_of_int errors /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = p +. (z2 /. (2.0 *. n)) in
    let spread = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
    (* The closed form is within [0, 1] in exact arithmetic, but at the
       boundaries (errors = 0 or errors = trials) floating-point
       rounding can push an endpoint a few ulps outside; clamp so the
       interval is always a probability range. *)
    ( Float.max 0.0 ((centre -. spread) /. denom),
      Float.min 1.0 ((centre +. spread) /. denom) )

let counts attribution (outcome : Results.outcome) output_name =
  match Results.divergence_of outcome output_name with
  | None -> false
  | Some diverged_at -> (
      let injected_at =
        Simkernel.Sim_time.to_ms outcome.injection.Injection.at
      in
      match attribution with
      | Any_divergence -> diverged_at >= injected_at
      | Direct { window_ms } ->
          diverged_at >= injected_at && diverged_at <= injected_at + window_ms)

let estimate_pairs ?(attribution = default_attribution) ?(on_failure = `Count)
    ~model ~results module_name =
  let m = Propagation.System_model.find_module_exn model module_name in
  let pair_estimate i k =
    let input_signal = Propagation.Sw_module.input_signal m i in
    let output_signal = Propagation.Sw_module.output_signal m k in
    let input_name = Propagation.Signal.name input_signal in
    let output_name = Propagation.Signal.name output_signal in
    let outcomes = Results.by_target results input_name in
    (* A crashed or hung run never produced the output at all — under
       the paper's failure-class reading that is an error on every
       output of the module ([`Count]), not a divergence to be found
       inside the attribution window.  [`Exclude] drops such runs from
       numerator and denominator instead. *)
    let failed, clean =
      List.partition
        (fun (o : Results.outcome) -> Results.is_failed o.status)
        outcomes
    in
    let counted_failed =
      match on_failure with `Count -> List.length failed | `Exclude -> 0
    in
    let injections = List.length clean + counted_failed in
    let errors =
      counted_failed
      + List.length
          (List.filter (fun o -> counts attribution o output_name) clean)
    in
    {
      pair = { Propagation.Perm_graph.module_name; input = i; output = k };
      injections;
      errors;
      value =
        (if injections = 0 then 0.0
         else float_of_int errors /. float_of_int injections);
      interval = wilson_interval ~errors ~trials:injections;
    }
  in
  List.concat_map
    (fun i0 ->
      List.init (Propagation.Sw_module.output_count m) (fun k0 ->
          pair_estimate (i0 + 1) (k0 + 1)))
    (List.init (Propagation.Sw_module.input_count m) Fun.id)

let estimate_matrix ?attribution ?on_failure ~model ~results module_name =
  let m = Propagation.System_model.find_module_exn model module_name in
  let estimates =
    estimate_pairs ?attribution ?on_failure ~model ~results module_name
  in
  List.fold_left
    (fun matrix e ->
      Propagation.Perm_matrix.set matrix
        ~input:e.pair.Propagation.Perm_graph.input
        ~output:e.pair.Propagation.Perm_graph.output e.value)
    (Propagation.Perm_matrix.create
       ~inputs:(Propagation.Sw_module.input_count m)
       ~outputs:(Propagation.Sw_module.output_count m))
    estimates

let estimate_all ?attribution ?on_failure ~model results =
  let missing =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun s ->
            let name = Propagation.Signal.name s in
            if Results.injections_into results name = 0 then Some name
            else None)
          (Propagation.Sw_module.input_signals m))
      (Propagation.System_model.modules model)
  in
  match List.sort_uniq String.compare missing with
  | [] ->
      Ok
        (List.fold_left
           (fun acc m ->
             let module_name = Propagation.Sw_module.name m in
             Propagation.String_map.add module_name
               (estimate_matrix ?attribution ?on_failure ~model ~results
                  module_name)
               acc)
           Propagation.String_map.empty
           (Propagation.System_model.modules model))
  | missing ->
      Error
        (Printf.sprintf "campaign never injected into: %s"
           (String.concat ", " missing))

let pp_estimate ppf e =
  let lo, hi = e.interval in
  Fmt.pf ppf "@[<h>%a = %.3f (%d/%d, 95%% CI [%.3f, %.3f])@]"
    Propagation.Perm_graph.pp_pair e.pair e.value e.errors e.injections lo hi
