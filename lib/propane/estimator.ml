type attribution =
  | Direct of { window_ms : int }
  | Any_divergence

let default_attribution = Direct { window_ms = 64 }

type estimate = {
  pair : Propagation.Perm_graph.pair;
  injections : int;
  errors : int;
  value : float;
  interval : float * float;
}

let wilson_interval ~errors ~trials =
  (* The closed form lives with the estimate type since the analysis
     layer carries intervals itself now; re-exported here because the
     counts enter through this module. *)
  Propagation.Estimate.wilson_interval ~errors ~trials

let counts attribution (outcome : Results.outcome) output_name =
  match Results.divergence_of outcome output_name with
  | None -> false
  | Some diverged_at -> (
      (* Attribution brackets the error model's firing window: from the
         first corruption (identical to the injection time for
         single-shot models) to [window_ms] past the last one, so
         delayed and intermittent injections are not blamed for — or
         robbed of — divergences outside their lifetime. *)
      let first_fire = Injection.first_fire_ms outcome.injection in
      match attribution with
      | Any_divergence -> diverged_at >= first_fire
      | Direct { window_ms } ->
          diverged_at >= first_fire
          && diverged_at
             <= Injection.last_fire_ms outcome.injection + window_ms)

let estimate_pairs ?(attribution = default_attribution) ?(on_failure = `Count)
    ~model ~results module_name =
  let m = Propagation.System_model.find_module_exn model module_name in
  let pair_estimate i k =
    let input_signal = Propagation.Sw_module.input_signal m i in
    let output_signal = Propagation.Sw_module.output_signal m k in
    let input_name = Propagation.Signal.name input_signal in
    let output_name = Propagation.Signal.name output_signal in
    let outcomes = Results.by_target results input_name in
    (* A crashed or hung run never produced the output at all — under
       the paper's failure-class reading that is an error on every
       output of the module ([`Count]), not a divergence to be found
       inside the attribution window.  [`Exclude] drops such runs from
       numerator and denominator instead. *)
    let failed, clean =
      List.partition
        (fun (o : Results.outcome) -> Results.is_failed o.status)
        outcomes
    in
    let counted_failed =
      match on_failure with `Count -> List.length failed | `Exclude -> 0
    in
    let injections = List.length clean + counted_failed in
    let errors =
      counted_failed
      + List.length
          (List.filter (fun o -> counts attribution o output_name) clean)
    in
    {
      pair = { Propagation.Perm_graph.module_name; input = i; output = k };
      injections;
      errors;
      value =
        (if injections = 0 then 0.0
         else float_of_int errors /. float_of_int injections);
      interval = wilson_interval ~errors ~trials:injections;
    }
  in
  List.concat_map
    (fun i0 ->
      List.init (Propagation.Sw_module.output_count m) (fun k0 ->
          pair_estimate (i0 + 1) (k0 + 1)))
    (List.init (Propagation.Sw_module.input_count m) Fun.id)

let estimate_matrix ?attribution ?on_failure ~model ~results module_name =
  let m = Propagation.System_model.find_module_exn model module_name in
  let estimates =
    estimate_pairs ?attribution ?on_failure ~model ~results module_name
  in
  List.fold_left
    (fun matrix e ->
      Propagation.Perm_matrix.set_estimate matrix
        ~input:e.pair.Propagation.Perm_graph.input
        ~output:e.pair.Propagation.Perm_graph.output
        (Propagation.Estimate.of_counts ~errors:e.errors ~trials:e.injections))
    (Propagation.Perm_matrix.create
       ~inputs:(Propagation.Sw_module.input_count m)
       ~outputs:(Propagation.Sw_module.output_count m))
    estimates

let estimate_all ?attribution ?on_failure ~model results =
  let missing =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun s ->
            let name = Propagation.Signal.name s in
            if Results.injections_into results name = 0 then Some name
            else None)
          (Propagation.Sw_module.input_signals m))
      (Propagation.System_model.modules model)
  in
  match List.sort_uniq String.compare missing with
  | [] ->
      Ok
        (List.fold_left
           (fun acc m ->
             let module_name = Propagation.Sw_module.name m in
             Propagation.String_map.add module_name
               (estimate_matrix ?attribution ?on_failure ~model ~results
                  module_name)
               acc)
           Propagation.String_map.empty
           (Propagation.System_model.modules model))
  | missing ->
      Error
        (Printf.sprintf "campaign never injected into: %s"
           (String.concat ", " missing))

let pp_estimate ppf e =
  let lo, hi = e.interval in
  Fmt.pf ppf "@[<h>%a = %.3f (%d/%d, 95%% CI [%.3f, %.3f])@]"
    Propagation.Perm_graph.pp_pair e.pair e.value e.errors e.injections lo hi

module Stream = struct
  module SS = Set.Make (String)

  type cell = { mutable n_err : int; mutable n_inj : int }

  type module_state = {
    name : string;
    output_names : string array;
    cells : cell array array;  (* inputs (i-1) x outputs (k-1) *)
    mutable cached : Propagation.Perm_matrix.t option;
  }

  type t = {
    attribution : attribution;
    on_failure : [ `Count | `Exclude ];
    states : module_state list;  (* model declaration order *)
    by_target : (string, (module_state * int) list) Hashtbl.t;
    mutable dirty : SS.t;
    mutable runs : int;
  }

  let create ?(attribution = default_attribution) ?(on_failure = `Count)
      ~model () =
    let states =
      List.map
        (fun m ->
          let inputs = Propagation.Sw_module.input_count m in
          let outputs = Propagation.Sw_module.output_count m in
          {
            name = Propagation.Sw_module.name m;
            output_names =
              Array.init outputs (fun k0 ->
                  Propagation.Signal.name
                    (Propagation.Sw_module.output_signal m (k0 + 1)));
            cells =
              Array.init inputs (fun _ ->
                  Array.init outputs (fun _ -> { n_err = 0; n_inj = 0 }));
            cached = None;
          })
        (Propagation.System_model.modules model)
    in
    let by_target = Hashtbl.create 16 in
    List.iter2
      (fun m state ->
        List.iteri
          (fun i0 input ->
            let key = Propagation.Signal.name input in
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_target key) in
            Hashtbl.replace by_target key (prev @ [ (state, i0 + 1) ]))
          (Propagation.Sw_module.input_signals m))
      (Propagation.System_model.modules model)
      states;
    { attribution; on_failure; states; by_target; dirty = SS.empty; runs = 0 }

  let observe t (outcome : Results.outcome) =
    t.runs <- t.runs + 1;
    let target = outcome.Results.injection.Injection.target in
    match Hashtbl.find_opt t.by_target target with
    | None -> ()
    | Some consumers ->
        let failed = Results.is_failed outcome.Results.status in
        if failed && t.on_failure = `Exclude then ()
        else
          List.iter
            (fun (st, i) ->
              st.cached <- None;
              t.dirty <- SS.add st.name t.dirty;
              Array.iteri
                (fun k0 cell ->
                  cell.n_inj <- cell.n_inj + 1;
                  if
                    failed
                    || counts t.attribution outcome st.output_names.(k0)
                  then cell.n_err <- cell.n_err + 1)
                st.cells.(i - 1))
            consumers

  let matrix_of st =
    match st.cached with
    | Some m -> m
    | None ->
        let m =
          Propagation.Perm_matrix.of_estimates
            (Array.map
               (Array.map (fun c ->
                    Propagation.Estimate.of_counts ~errors:c.n_err
                      ~trials:c.n_inj))
               st.cells)
        in
        st.cached <- Some m;
        m

  let matrices t =
    List.fold_left
      (fun acc st -> Propagation.String_map.add st.name (matrix_of st) acc)
      Propagation.String_map.empty t.states

  let drain_dirty t =
    let dirty =
      List.filter_map
        (fun st ->
          if SS.mem st.name t.dirty then Some (st.name, matrix_of st) else None)
        t.states
    in
    t.dirty <- SS.empty;
    dirty

  let find_row t ~module_name ~target =
    match Hashtbl.find_opt t.by_target target with
    | None -> None
    | Some consumers ->
        List.find_map
          (fun (st, i) ->
            if String.equal st.name module_name then Some (st, st.cells.(i - 1))
            else None)
          consumers

  let counts_row t ~module_name ~target =
    Option.map
      (fun (_, row) -> Array.map (fun c -> (c.n_err, c.n_inj)) row)
      (find_row t ~module_name ~target)

  (* Counters are commutative, so folding a cached row in before (or
     after) live outcomes is equivalent to having observed the runs
     that produced it. *)
  let seed_row t ~module_name ~target counts =
    match find_row t ~module_name ~target with
    | None ->
        invalid_arg
          (Printf.sprintf "Stream.seed_row: module %S has no input %S"
             module_name target)
    | Some (st, row) ->
        if Array.length counts <> Array.length row then
          invalid_arg
            (Printf.sprintf
               "Stream.seed_row: %S/%S expects %d outputs, got %d" module_name
               target (Array.length row) (Array.length counts));
        Array.iteri
          (fun k (n_err, n_inj) ->
            if n_err < 0 || n_err > n_inj then
              invalid_arg "Stream.seed_row: counts must satisfy 0 <= err <= inj";
            row.(k).n_err <- row.(k).n_err + n_err;
            row.(k).n_inj <- row.(k).n_inj + n_inj)
          counts;
        st.cached <- None;
        t.dirty <- SS.add st.name t.dirty

  let runs_observed t = t.runs

  (* Width of the widest Wilson interval over the pairs a campaign's
     targets actually exercise: the cells of every (consumer, input)
     the target feeds.  Pairs no target reaches stay at the zero-trial
     width of 1 forever and would make [`Ci_width] unreachable, so they
     are deliberately out of scope. *)
  let max_width ~targets t =
    let target_set = SS.of_list targets in
    Hashtbl.fold
      (fun name consumers acc ->
        if not (SS.mem name target_set) then acc
        else
          List.fold_left
            (fun acc (st, i) ->
              Array.fold_left
                (fun acc cell ->
                  let lo, hi =
                    Propagation.Estimate.wilson_interval ~errors:cell.n_err
                      ~trials:cell.n_inj
                  in
                  Float.max acc (hi -. lo))
                acc
                st.cells.(i - 1))
            acc consumers)
      t.by_target 0.0

  (* Per-target flavour of [max_width]: the widest interval over the
     cells this one target feeds — the budget planner's uncertainty
     score for the target.  0 when no module consumes it (more runs
     there cannot narrow anything). *)
  let target_width t ~target =
    match Hashtbl.find_opt t.by_target target with
    | None -> 0.0
    | Some consumers ->
        List.fold_left
          (fun acc (st, i) ->
            Array.fold_left
              (fun acc cell ->
                let lo, hi =
                  Propagation.Estimate.wilson_interval ~errors:cell.n_err
                    ~trials:cell.n_inj
                in
                Float.max acc (hi -. lo))
              acc
              st.cells.(i - 1))
          0.0 consumers
end
