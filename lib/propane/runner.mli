(** Campaign execution: golden runs, injection runs, golden-run
    comparison (Sections 6 and 7.3).

    The runner steps a {!Sut.instance} millisecond by millisecond and,
    after each step, reads every observable signal once into a flat
    sample that it hands to a streaming {!Observer}.  A golden run
    executes until the SUT reports completion (or [max_ms] as a safety
    net) and is then {e frozen} ({!Golden.freeze}) into a compact
    immutable form; each injection run executes for {e exactly} the
    duration of its test case's golden run — or less, when every
    monitored signal has already diverged and the divergence observer
    saturates — so divergence timestamps compare sample by sample
    without any per-run trace materialization. *)

val default_max_ms : int
(** 20,000 simulated ms. *)

val golden_run : ?max_ms:int -> Sut.t -> Testcase.t -> Trace_set.t
(** Runs without injections and returns the reference traces. *)

val observed_run :
  ?rng:Simkernel.Rng.t ->
  ?run_timeout_ms:int ->
  Sut.t ->
  duration_ms:int ->
  Testcase.t ->
  Injection.t ->
  Observer.t ->
  int * Results.status
(** One injection run driven through an observer: the injection is
    registered as a one-shot trap corruption at the start of its
    millisecond (announced via {!Observer.t.on_injection}), every
    millisecond's signal values are pushed through
    {!Observer.t.on_sample}, and the run stops early once the observer
    reports saturation at or after the injection instant (a
    deterministic SUT cannot diverge before it).  The run also stops
    the millisecond the SUT first reports [finished] — an injected run
    may reach its end state before (or after) the golden duration, and
    the observer's length-mismatch rule needs the true length.

    The run is fault-tolerant: an exception escaping the SUT
    (instantiation, injection, stepping or sampling) becomes
    [Crashed { at_ms; reason }] — [at_ms] the simulated millisecond it
    escaped, [reason] the exception rendered with separators
    sanitised — instead of propagating.  [run_timeout_ms] arms a
    wall-clock watchdog, checked between simulated milliseconds; a run
    over budget stops with [Hung { budget_ms }].  Without it (the
    default) a run may take unbounded wall time.

    Returns the number of simulated milliseconds actually run — which
    is also passed to {!Observer.t.finish}, so on a crash every signal
    yet to diverge is marked diverged at the crash instant — together
    with the run's {!Results.status}.  [rng] feeds non-deterministic
    error models and defaults to a fixed seed.  An injection time
    beyond the duration leaves the run golden.
    @raise Invalid_argument if the target signal is unknown to the SUT
    or [run_timeout_ms < 1]. *)

val injection_run :
  ?rng:Simkernel.Rng.t ->
  ?truncate_after_ms:int ->
  Sut.t ->
  duration_ms:int ->
  Testcase.t ->
  Injection.t ->
  Trace_set.t
(** {!observed_run} with a {!Observer.recorder}: runs for [duration_ms]
    and returns the full traces (no early exit — a recorder never
    saturates).

    [truncate_after_ms] stops the run that many milliseconds after the
    injection instant — a large speed-up for permeability estimation,
    which only inspects a direct window after the injection (see
    {!Estimator.attribution}); pick a truncation comfortably larger
    than the attribution window.  @raise Invalid_argument if the target
    signal is unknown to the SUT. *)

val run_experiment :
  ?rng:Simkernel.Rng.t ->
  ?truncate_after_ms:int ->
  ?run_timeout_ms:int ->
  ?observers:Observer.t list ->
  Sut.t ->
  golden:Golden.frozen ->
  Testcase.t ->
  Injection.t ->
  Results.outcome
(** One injection run with streaming golden-run comparison against the
    frozen golden: divergences are detected per sample in O(1), and the
    run early-exits once every signal has diverged.  The outcome is
    exactly what post-hoc {!Golden.compare_runs} over recorded traces
    would report (property-tested).  With [truncate_after_ms] the
    comparison window is bounded by the truncated run's duration.
    [observers] ride along on the same run (e.g. a latency observer or
    an opt-in {!Observer.recorder}); early exit then additionally waits
    for {e their} saturation, so adding a recorder restores the full
    fixed-duration run.

    The outcome carries the run's {!Results.status} (see
    {!observed_run} for crash and [run_timeout_ms] watchdog
    semantics).  A [Crashed] outcome keeps its divergences — every
    signal diverges by the crash instant at the latest; a [Hung]
    outcome's divergences are discarded (how far the run got is
    wall-clock dependent, and outcomes must stay deterministic). *)

(** {1 Campaign configuration}

    Every knob a campaign accepts, in one plain record — the single
    source of options shared by {!run}, {!executor}, the cluster
    coordinator ({!Cluster.Coordinator.serve}) and the CLI, so the
    execution modes cannot drift apart in what they accept. *)

module Config : sig
  type t = {
    max_ms : int;  (** golden-run safety net, {!default_max_ms} *)
    seed : int64;  (** campaign seed; every run's RNG derives from it *)
    truncate_after_ms : int option;
        (** stop each run this long after its injection *)
    run_timeout_ms : int option;  (** wall-clock watchdog per run *)
    retries : int;  (** re-executions of a crashed/hung run *)
    fail_fast : bool;  (** abort the campaign on a failed run *)
    jobs : int;  (** worker domains; 1 = everything in the caller *)
    journal : string option;  (** stream outcomes to this path *)
    resume : bool;  (** replay an existing journal first *)
    journal_batch : int;
        (** commit journal records to disk every this many appends
            (see {!Journal.create}); contents are unaffected, only the
            crash-loss window — at most [journal_batch - 1] records,
            re-run on resume *)
    keep_traces : bool;  (** record full per-run traces *)
    stop_when : Live.rule option;
        (** adaptive stop rule; needs [?live] at {!run} *)
    budget : int option;
        (** total injection budget; needs [?plan] at {!run} — the CLI
            and coordinator build the {!Plan.t} from this field *)
    plan : Plan.mode;
        (** how a budget is allocated (default {!Plan.Adaptive});
            meaningless without [budget] *)
  }

  val default : t
  (** [max_ms = default_max_ms], [seed = 42], no truncation, no
      watchdog, no retries, no fail-fast, [jobs = 1], no journal,
      [journal_batch = 32], streaming (no kept traces), no stop rule. *)

  val make :
    ?max_ms:int ->
    ?seed:int64 ->
    ?truncate_after_ms:int ->
    ?run_timeout_ms:int ->
    ?retries:int ->
    ?fail_fast:bool ->
    ?jobs:int ->
    ?journal:string ->
    ?resume:bool ->
    ?journal_batch:int ->
    ?keep_traces:bool ->
    ?stop_when:Live.rule ->
    ?budget:int ->
    ?plan:Plan.mode ->
    unit ->
    t
  (** {!default} with the given fields replaced.  Construction never
      fails; {!validate} (called by every entry point taking a config)
      checks the combination. *)

  val validate : t -> (unit, string) result
  (** [jobs >= 1], [retries >= 0], [run_timeout_ms >= 1],
      [journal_batch >= 1], [budget >= 1] when set, and [resume] only
      with a [journal]. *)

  val encode : t -> string
  (** Serialises for a cluster recipe: [,]-separated [k=v] fields, no
      tabs or newlines, safe to embed as one field of a [;]-separated
      recipe.  [journal] and [resume] are host-local (a coordinator
      path means nothing on a worker) and are not encoded.  [budget]
      and [plan] are only emitted for planned campaigns, so unplanned
      recipes keep their previous bytes. *)

  val decode : string -> (t, string) result
  (** Inverse of {!encode} over the encoded fields; [journal]/[resume]
      come back as {!default}'s.  Unknown fields are errors, so recipe
      typos fail loudly.  The decoded config is {!validate}d. *)
end

(** {1 Campaign engine}

    {!run} executes a whole campaign — serially or across worker
    domains — streaming outcomes to an optional {!Journal} and
    reporting progress through typed {!event}s.  Campaigns are
    deterministic for a fixed [seed]: each run's random generator is
    derived from the seed and the experiment index alone, never from
    execution order, so [jobs = n] produces outcome-for-outcome the
    same {!Results.t} as [jobs = 1], and an interrupted campaign
    resumed from its journal matches an uninterrupted one exactly.

    Journals are additionally {e byte}-identical across [jobs] values:
    parallel completions pass through a reorder buffer and are written
    in strict campaign-index order (see {!run}). *)

type event =
  | Started of { total : int; skipped : int; jobs : int }
      (** emitted first; [skipped] counts runs replayed from the
          journal on resume *)
  | Goldens_done of { testcases : int }
      (** golden runs are in place (only the test cases still needed
          by remaining experiments are executed); a cluster
          coordinator emits it with [testcases = 0] — its workers run
          their goldens lazily in their own processes *)
  | Worker_attached of { worker : int; host : string; pid : int }
      (** a remote worker process joined the campaign (cluster runs
          only; {!run}'s in-process domains attach silently).  [worker]
          is the id later seen in [Run_done], [host]/[pid] identify the
          process for telemetry *)
  | Run_done of {
      index : int;
      worker : int;
      completed : int;
      total : int;
      status : Results.status;
      retries : int;
    }
      (** one injection run finished; [index] is its position in
          {!Campaign.experiments}, [worker] the domain that ran it
          (0-based), [completed] includes skipped runs, [status] how
          the run ended and [retries] how many re-executions it took
          (0 = first attempt stood) *)
  | Analysis_tick of Live.digest
      (** the live analysis refreshed after a run (only with [?live]);
          one per [Run_done], plus one for the replayed journal on
          resume *)
  | Finished of { completed : int; total : int }  (** emitted last *)

exception Failed_run of { index : int; outcome : Results.outcome }
(** Raised by {!run} under [fail_fast] when a run is still crashed or
    hung after its retry budget.  The failed outcome has already been
    journalled and reported via [Run_done] when this escapes. *)

val run :
  ?config:Config.t ->
  ?on_event:(event -> unit) ->
  ?on_run_traces:(index:int -> Trace_set.t -> unit) ->
  ?live:Live.t ->
  ?select:(int -> bool) ->
  ?cells:Journal.cell list ->
  ?recipe:string ->
  ?plan:Plan.t ->
  Sut.t ->
  Campaign.t ->
  Results.t
(** Runs every experiment of {!Campaign.experiments} under [config]
    (default {!Config.default}) and returns the outcomes in campaign
    order.  Campaign options live in the {!Config.t}; only the runtime
    attachments — callbacks and the stateful live analysis — remain
    parameters.  Field names below refer to the config record.

    {b Partial campaigns (cell reuse).}  [select] restricts execution
    to the experiment indices it accepts — the scheduling primitive
    behind [campaign --reuse] ({!Reuse}), where only the runs
    injecting into dirty targets are re-executed.  Indices keep their
    full-campaign meaning: each selected run draws the same RNG stream
    and produces the same outcome as in an unrestricted campaign, the
    journal keeps the full campaign [total], and resume composes with
    selection (a journalled index is skipped, a deselected one never
    runs).  Deselected indices are absent from the returned
    {!Results.t}.  [cells] writes cell provenance records
    ({!Journal.append_cells}) right after the header of a freshly
    created journal — resumes never rewrite them.  [recipe] is stored
    in a freshly created journal's header ({!Journal.create}) so
    [propane replay] can rebuild the campaign; resumes keep the
    original line.

    {b Live analysis and adaptive stopping.}  [live] attaches a
    {!Live.t}: every completed outcome (including journal replays, in
    index order) is folded into its streaming estimation and
    incremental analysis, and each refresh is reported as an
    {!event.Analysis_tick}.  [stop_when] (requires [live]) ends the
    campaign as soon as {!Live.satisfied} holds: with [jobs = 1] no
    further run starts — the stop point is deterministic for a fixed
    seed — while with [jobs > 1] workers stop taking new runs and the
    runs already in flight still complete and journal (which runs
    those are depends on scheduling, but each of their outcomes is
    index-deterministic as always).  The runs never executed are
    simply absent from the returned {!Results.t} and from the journal,
    so an early-stopped campaign resumes exactly where it stopped if
    re-run without the rule.

    {b Budgeted campaigns (the plan layer).}  [plan] attaches a
    {!Plan.t} work source: instead of executing every (selected)
    experiment, the budget scheduler decides round by round which
    indices run, feeding completed outcomes back into its own analysis
    at deterministic barriers — see {!Plan}.  Requires
    [config.budget]; the plan must be freshly created for this run (it
    is primed with the journal's replayed outcomes, which is how a
    resumed planned campaign re-derives its round sequence instead of
    re-executing it).  When the plan runs to exhaustion, its
    allocation history is appended to the journal
    ({!Journal.append_rounds}) after any parked records, so planned
    journals are byte-identical across [jobs] values, cluster
    execution and kill-and-resume just like unplanned ones.  Indices
    the plan never allocates are absent from the returned results and
    the journal, exactly like deselected ones.

    [jobs] (default 1) is the number of worker domains.  With
    [jobs = 1] everything happens in the calling domain; otherwise
    [jobs] domains execute injection runs while the calling domain
    coordinates.  Golden runs execute up front in the calling domain
    and are frozen ({!Golden.freeze}) before being shared read-only
    across domains; every injection run gets a fresh SUT instance, so
    the SUT's [instantiate] must not rely on global mutable state.

    By default runs are streamed: no per-run trace is materialized and
    a run stops as soon as every signal has diverged.  [keep_traces]
    (default false) attaches a {!Observer.recorder} to every injection
    run, restoring the legacy record-everything data path (full-length
    runs, per-run trace allocation) — outcomes are identical either
    way, this only changes cost.  [on_run_traces] receives each run's
    recorded traces (implies [keep_traces]); like [on_event] it is
    always called from the calling domain, in completion order.

    [journal] streams every outcome to an append-only {!Journal} at
    that path.  Appends pass through a reorder buffer: a cursor writes
    records in strict campaign-index order, so the journal of a
    [jobs = n] campaign is byte-identical to the serial one — out of
    order completions park in memory (workers never stall on the
    writer) until the gap before them fills.  Records are committed to
    disk every [journal_batch] appends (and at close), so a killed
    campaign loses at most [journal_batch - 1] records plus a
    truncated fragment; what is on disk is always an exact prefix of
    the serial journal, and resume re-runs exactly the missing tail.
    Only an early stop (fail-fast, adaptive rule) can append completed
    runs beyond a never-filled gap out of order, just before close, so
    no finished work is lost.  With [resume] (requires [journal]) a
    pre-existing journal is replayed first: completed experiment
    indices are skipped and the campaign continues where it stopped.
    The journal must match the campaign's SUT, name, seed and size.

    [on_event] observes the life of the campaign (see {!event});
    events are always emitted from the calling domain, in order, so
    the callback needs no synchronisation.  Feed them to
    {!Telemetry.observe} for throughput and ETA.

    {b Failure handling.}  A run whose SUT raises or (with
    [run_timeout_ms]) exceeds its wall-clock budget does {e not} abort
    the campaign: it yields a {!Results.Crashed} / {!Results.Hung}
    outcome (see {!observed_run}), journalled and counted like any
    other.  [retries] (default 0) re-executes such a run up to that
    many times — each attempt on a fresh RNG stream derived from the
    seed, index and attempt number, so retried campaigns stay
    order-independent — and keeps the last attempt's outcome.
    [fail_fast] (default [false]) restores abort semantics: once a
    run's retry budget is exhausted, {!Failed_run} is raised after the
    failed outcome has been journalled; with [jobs > 1] the remaining
    workers stop taking new runs, finish (and journal) the runs
    already in flight, and the campaign raises after they drain.  The
    same prompt-abort path serves any exception escaping a worker.
    Note that [Hung] is inherently wall-clock dependent: which runs
    hang (and therefore what a retry re-executes) can differ between
    invocations on a loaded machine, while [Crashed] outcomes are
    fully deterministic.

    @raise Invalid_argument if {!Config.validate} rejects [config], if
    [stop_when] is set without [live], or if a journal fails to load
    or belongs to a different campaign.
    @raise Failed_run under [fail_fast] as described above.
    @raise Sys_error on journal I/O failure. *)

val executor :
  ?config:Config.t ->
  seed:int64 ->
  Sut.t ->
  Campaign.t ->
  int ->
  Results.outcome * int
(** The single-run entry point a cluster worker process drives (see
    {!Cluster}): [executor ~seed sut campaign] prepares the campaign
    once and returns a function mapping an experiment index of
    {!Campaign.experiments} to its outcome and the number of retries
    taken — exactly the outcome {!run} with the same config produces
    at that index, whatever process or machine executes it, because
    each run's RNG stream is derived from [seed] and the index alone.
    [seed] is a separate argument — a cluster worker learns it from
    the coordinator's [Welcome], not from the shipped recipe.  Partial
    application matters: golden runs execute lazily the first time an
    index needs their test case and stay memoised across calls.

    Of [config] only [max_ms], [truncate_after_ms], [run_timeout_ms]
    and [retries] apply — scheduling and journalling fields belong to
    whoever coordinates the indices.
    @raise Invalid_argument on an invalid config or an index outside
    the campaign. *)

(** {1 Deprecated entry points} *)

type progress = { completed : int; total : int }

val run_campaign :
  ?max_ms:int ->
  ?seed:int64 ->
  ?truncate_after_ms:int ->
  ?on_progress:(progress -> unit) ->
  Sut.t ->
  Campaign.t ->
  Results.t
[@@ocaml.deprecated "use Runner.run instead"]
(** [run] with [~jobs:1]; [on_progress] sees every {!Run_done}. *)

val run_campaign_parallel :
  ?max_ms:int ->
  ?seed:int64 ->
  ?truncate_after_ms:int ->
  ?domains:int ->
  Sut.t ->
  Campaign.t ->
  Results.t
[@@ocaml.deprecated "use Runner.run with ~jobs instead"]
(** [run] with [~jobs:domains] (default: the recommended domain count
    minus one, at least 1).  @raise Invalid_argument if [domains < 1]. *)
