(** Cell-level campaign reuse: plan, classify, select, compose.

    Glue between {!Cell} (identity), {!Cache} (persistence),
    {!Runner.run}'s [?select] (partial execution) and
    {!Estimator.Stream} (composition).  The FastFlip-style contract:
    classify every cell of a campaign against a cache directory, re-run
    only the injection targets feeding at least one {e dirty} cell, and
    stitch cached and fresh counters back into whole-system matrices
    identical — counts, point values and Wilson intervals — to a
    from-scratch campaign (property-tested in [test_propane.ml]).

    Granularity: the unit of {e skipping} is the injection target, not
    the cell, because one run's injection feeds every module consuming
    the target.  A target is {e clean} iff every cell it feeds is
    cached; a single dirty cell re-runs the whole target block, and the
    fresh counters then serve all its cells (overwriting their cache
    entries with identical values for the unchanged modules, by
    determinism of the run streams).

    Soundness caveat (also on {!Cell}): keys cover each module's own
    content digest, not its upstream cone, so an edit that changes the
    {e values} flowing into an unedited module without changing the
    module itself can leave stale cells undetected.  Exact for
    feed-forward systems observed at or below the edit; bump the
    digests of affected consumers (or use a fresh cache directory) when
    in doubt. *)

type t

val plan :
  ?recipe:string ->
  sut:Sut.t ->
  model:Propagation.System_model.t ->
  dir:string ->
  Campaign.t ->
  t
(** Enumerate the campaign's cells ({!Cell.plan}) and classify each
    against the cache in [dir] (which need not exist yet — it is
    created on first {!persist}).  [recipe] (default ["" ]) is folded
    into every key; pass everything estimation depends on beyond the
    campaign itself, e.g. [Runner.Config.encode config] plus the
    attribution window. *)

val total_cells : t -> int
val reused_cells : t -> int

val clean_targets : t -> string list
(** Targets whose every cell was served from the cache (campaign
    order); their runs are skipped.  A target no module of the model
    consumes is vacuously clean — its runs cannot update any cell. *)

val dirty_targets : t -> string list
(** Targets that will be (re-)injected: at least one cell missed —
    unknown key, undigested module, or poisoned entry. *)

val selected_runs : t -> int
(** Runs {!select} admits: [length (dirty_targets t) *
    Campaign.runs_per_target] — the [M] of "stopped early: N of M"
    under a stop rule, which judges freshly injected runs only. *)

val select : t -> int -> bool
(** Experiment-index filter for {!Runner.run}'s [?select] /
    {!Cluster.Coordinator.serve}'s [?select]: admits exactly the runs
    injecting into a dirty target. *)

val journal_cells : t -> Journal.cell list
(** Provenance records for {!Runner.run}'s [?cells]: one per cell,
    plan order, marked [reused] or [fresh]. *)

val compose :
  ?attribution:Estimator.attribution ->
  ?on_failure:[ `Count | `Exclude ] ->
  t ->
  Results.t ->
  Estimator.Stream.t
(** Seed a fresh stream with the cached counters of every clean
    target's cells, then fold in the fresh outcomes.  The returned
    stream's matrices are the composed whole-campaign estimates;
    counting is commutative, so they equal a from-scratch campaign's
    exactly when the cached rows are truthful.  [attribution] and
    [on_failure] must match the values the cached rows were measured
    under (both are normally part of [recipe], making a mismatch a
    cache miss instead). *)

val persist : t -> Estimator.Stream.t -> Results.t -> (unit, string) result
(** Store the freshly measured rows back: every cell of a dirty target
    whose run block executed {e completely} (an early-stopped target's
    partial counters would poison later compositions) and whose module
    carries a digest.  Returns the first store error, if any. *)

val stats : t -> Cache.stats
val write_stats : t -> (unit, string) result
(** {!Cache.write_stats} of {!stats} into the plan's directory. *)
