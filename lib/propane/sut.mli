(** The system-under-test interface.

    PROPANE instruments a target with "high-level software traps" for
    logging and injection (Section 7.3).  In this reproduction a target
    plugs into the tool by implementing this record: the runner creates
    one fresh instance per run, steps it millisecond by millisecond,
    reads every observable signal after each step, and writes corrupted
    values into signals to inject errors.

    Writing into a signal corrupts the stored value exactly like
    PROPANE's trap-based injection: consumers see the corrupted value
    until the producer next overwrites it. *)

type instance = {
  read : string -> int;
      (** raw current value of a signal (tracing; never fires traps);
          must accept every name in the SUT's signal list *)
  write : string -> int -> unit;
      (** overwrite a signal's stored value directly (test setup) *)
  inject : string -> (int -> int) -> unit;
      (** register a one-shot corruption applied at the signal's trap
          point, i.e. the next time the software reads it (see
          {!Signal_store.inject}); this is what campaigns use *)
  step : unit -> unit;  (** advance the system by one millisecond *)
  finished : unit -> bool;
      (** natural end of the run (e.g. aircraft stopped) *)
  snapshot : (int array -> unit) option;
      (** optional bulk peek: [snap buf] fills [buf.(i)] with the raw
          current value of the [i]-th signal in the SUT's signal-list
          order, with {!instance.read}'s never-fires-traps semantics.
          The runner's streaming observer loop uses it when present to
          avoid one name lookup per signal per millisecond; [None]
          falls back to per-name [read]. *)
}

type t = {
  name : string;
  signals : (string * int) list;
      (** observable/injectable signals with their bit widths *)
  digests : (string * string) list;
      (** stable per-module content digests (module name → opaque
          digest string).  Two SUT builds whose module [m] carries the
          same digest promise bit-identical behaviour of [m]'s
          implementation, so per-cell campaign results keyed on the
          digest ({!Cell}, {!Cache}) may be reused across builds.  An
          empty list (or a missing module) simply makes the module
          uncacheable — campaigns still run, nothing is reused. *)
  instantiate : Testcase.t -> instance;
      (** fresh, deterministic instance for a workload *)
}

val signal_names : t -> string list

val digest_of : t -> string -> string option
(** [digest_of t m] is module [m]'s content digest, when declared. *)

val signal_width : t -> string -> int
(** @raise Invalid_argument for an unknown signal. *)

val has_signal : t -> string -> bool
