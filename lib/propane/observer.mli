(** Streaming run observers.

    The runner drives an observer once per simulated millisecond
    instead of materializing a full {!Trace_set} per run and comparing
    it post-hoc (Section 6's Golden Run Comparison).  Each millisecond
    the runner fills one [int array] with the current value of every
    traced signal (trace-set order) and calls {!t.on_sample}; the
    injection instant is announced via {!t.on_injection}; {!t.finish}
    closes the run.  An observer that has learned everything it can
    reports [saturated () = true], and the runner may then stop the run
    early — for the {!divergence} observer that happens once every
    monitored signal has diverged, at which point no later sample can
    change a first-divergence timestamp.

    The sample array passed to [on_sample] is reused by the runner
    between milliseconds: observers must copy values they keep. *)

type t = {
  on_injection : ms:int -> unit;
      (** Called at the fault-injection instant, before the SUT steps
          through that millisecond. *)
  on_sample : ms:int -> int array -> unit;
      (** Called once per simulated millisecond with the value of every
          traced signal, after the SUT stepped through [ms]. *)
  finish : run_ms:int -> unit;
      (** Called once when the run ends (normally, early-exited, or
          SUT-finished) with the number of sampled milliseconds. *)
  saturated : unit -> bool;
      (** [true] once no future sample can change this observer's
          result; the runner may then early-exit the run. *)
}

val make :
  ?on_injection:(ms:int -> unit) ->
  ?on_sample:(ms:int -> int array -> unit) ->
  ?finish:(run_ms:int -> unit) ->
  ?saturated:(unit -> bool) ->
  unit ->
  t
(** Observer from optional callbacks.  Defaults: do nothing, never
    saturated. *)

val combine : t list -> t
(** Fans each callback out to every observer, in list order.  The
    combination is saturated only when {e all} observers are (an empty
    list is never saturated), so adding a {!recorder} — which never
    saturates — disables early exit. *)

val divergence :
  ?from_ms:int ->
  ?until_ms:int ->
  ?scratch:int array ->
  Golden.frozen ->
  t * (unit -> Golden.divergence list)
(** [divergence golden] is a streaming observer detecting, per signal,
    the first millisecond in [[from_ms, until_ms)] where the run
    disagrees with the frozen golden, plus a thunk returning the
    divergences found so far (golden signal order).  Semantics —
    including the length-mismatch tail rule applied at [finish] — match
    {!Golden.compare_runs} over recorded traces exactly
    (property-tested).  Saturates once every signal has diverged.

    [scratch] lends the observer its per-signal state array (length at
    least the golden's signal count; overwritten with [-1] up front) so
    a campaign can reuse one buffer across every run on a domain
    instead of allocating per run.  The divergence thunk reads from
    [scratch], so extract results before the next run reuses it.
    @raise Invalid_argument if [scratch] is shorter than the golden's
    signal count. *)

val tolerant_divergence :
  ?from_ms:int ->
  ?until_ms:int ->
  tolerance_for:(string -> Golden.tolerance) ->
  Golden.frozen ->
  t * (unit -> Golden.divergence list)
(** Tolerance-based variant matching {!Golden.compare_runs_tolerant}:
    a signal diverges at the first millisecond starting [hold_ms + 1]
    consecutive samples out of the [epsilon] band. *)

val recorder : signals:string list -> t * (unit -> Trace_set.t)
(** Records every sample into a {!Trace_set} (for consumers that still
    need raw traces).  Never saturates, so combining it with a
    divergence observer keeps the run complete. *)
