(** Single-injection descriptors.

    The paper's campaigns inject exactly one error, in one signal, at
    one time instant per run ("For each injection run only one error was
    injected at one time, i.e., no multiple errors were injected",
    Section 7.3). *)

type t = {
  target : string;  (** signal to corrupt *)
  at : Simkernel.Sim_time.t;
      (** the error is applied at the start of this millisecond, before
          any module executes in it *)
  error : Error_model.t;
}

val make : target:string -> at:Simkernel.Sim_time.t -> error:Error_model.t -> t
(** @raise Invalid_argument on an empty target name or a nested
    temporal error model. *)

val inject_ms : t -> int
(** [Sim_time.to_ms t.at] — the campaign's scheduled injection time. *)

val fires : t -> ms:int -> bool
(** Does the error model corrupt the target at millisecond [ms]?  See
    {!Error_model.fires}: exactly [t.at] for spatial models, later /
    repeatedly for temporal ones. *)

val first_fire_ms : t -> int
(** First millisecond at which {!fires} holds. *)

val last_fire_ms : t -> int
(** Last millisecond at which {!fires} holds — the injection lifetime's
    end; runs must stay alive through it to realise the full model. *)

val describe : t -> string
val pp : Format.formatter -> t -> unit
