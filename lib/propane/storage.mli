(** Persistent storage for campaign results and permeability matrices.

    Campaigns are expensive (the paper's full plan is 52,000 runs), so
    the tool separates running them from analysing them.  The format is
    a versioned, line-based, tab-separated text format — diff-able,
    greppable, stable across platforms.

    Results file:
    {v
    propane-results 1
    sut <tab> NAME
    campaign <tab> NAME
    outcome <tab> TESTCASE <tab> TARGET <tab> AT_MS <tab> ERROR
    status <tab> STATUS                    (only when the run failed)
    div <tab> SIGNAL <tab> FIRST_MS        (0..n per outcome)
    v}

    [STATUS] is [crashed:AT_MS:REASON] or [hung:BUDGET_MS] (see
    {!Results.status}); a run that completed normally writes no status
    line, so files from failure-free campaigns are byte-identical to
    the original format and v1 files load with every status defaulting
    to {!Results.Completed}.

    Matrices file:
    {v
    propane-matrices 1
    module <tab> NAME <tab> INPUTS <tab> OUTPUTS
    row <tab> V1 <tab> ... <tab> Vn        (INPUTS rows per module)
    v}

    The append-only campaign journal ({!Journal}) follows the same
    versioned-magic convention. *)

val error_to_string : Error_model.t -> string
(** e.g. ["bitflip:3"], ["stuck:17"], ["offset:-2"], ["uniform"]. *)

val error_of_string : string -> (Error_model.t, string) result

val status_to_string : Results.status -> string
(** ["completed"], ["crashed:AT_MS:REASON"] (the reason is the final,
    rest-of-line field and may itself contain [':']), or
    ["hung:BUDGET_MS"]. *)

val status_of_string : string -> (Results.status, string) result

val save_results : string -> Results.t -> (unit, string) result
(** Fails — before anything is written — if a name contains a
    separator character.  @raise Sys_error on I/O failure. *)

val load_results : string -> (Results.t, string) result
(** Fails with a line-numbered message on malformed input. *)

val save_matrices :
  string ->
  Propagation.Perm_matrix.t Propagation.String_map.t ->
  (unit, string) result

val load_matrices :
  string -> (Propagation.Perm_matrix.t Propagation.String_map.t, string) result
