(** Live campaign analysis and adaptive stopping.

    A [Live.t] couples a streaming estimator ({!Estimator.Stream}) to
    an incremental analysis engine
    ({!Propagation.Analysis.Engine}): every campaign outcome fed to
    {!observe} updates the permeability counters of the modules the
    injected signal feeds, pushes the changed matrices into the engine
    and refreshes the module ranking.  Because the stream reproduces
    batch estimation exactly and the engine reproduces batch analysis
    exactly (both property-tested), the analysis visible through
    {!snapshot} at any instant equals what [estimate_all] +
    [Analysis.run] would compute over the outcomes seen so far.

    On top of the rolling analysis sit the adaptive stop {!rule}s of
    [Runner.run ?stop_when]:

    - [`Rankings_stable n] — the relative-permeability module ranking
      has not changed for [n] consecutive observed runs.  Useful as
      "stop when more runs stopped teaching us anything about order".
    - [`Ci_width w] — every 95% interval over the pairs the campaign
      injects into is at most [w] wide.  Useful as "stop at a target
      precision". *)

type rule = [ `Rankings_stable of int | `Ci_width of float ]

val pp_rule : Format.formatter -> rule -> unit
(** Renders in the CLI's [--stop-when] syntax
    ([rankings-stable:3], [ci-width:0.1]). *)

val rule_to_string : rule -> string
(** Same syntax as {!pp_rule} but floats are rendered exactly ([%h]),
    so {!rule_of_string} round-trips bit for bit — the form campaign
    recipes ({!Runner.Config.encode}) embed. *)

val rule_of_string : string -> (rule, string) result
(** Parses both {!pp_rule} and {!rule_to_string} renderings, with the
    CLI's bounds: [rankings-stable:N] needs [N >= 1], [ci-width:W]
    needs [0 < W <= 1]. *)

(** What the runner reports per run through [Analysis_tick] events. *)
type digest = {
  runs_observed : int;
  max_ci_width : float;
      (** widest interval over the campaign's target pairs *)
  stable_for : int;
      (** consecutive runs with an unchanged module ranking *)
  resolved_modules : int;  (** rows with non-overlapping CIs *)
  module_count : int;
}

type t

val create :
  ?attribution:Estimator.attribution ->
  ?on_failure:[ `Count | `Exclude ] ->
  model:Propagation.System_model.t ->
  targets:string list ->
  unit ->
  t
(** [targets] are the campaign's injection targets
    ({!Campaign.t.targets}); they scope the [`Ci_width] rule to the
    pairs the campaign can actually narrow.  [attribution] /
    [on_failure] must match what the final batch estimation uses,
    otherwise live and post-hoc analyses disagree. *)

val observe : t -> Results.outcome -> digest
(** Fold one outcome in and return the refreshed digest.  Call in
    campaign-index order for resumed runs ({!Runner.run} does). *)

val snapshot : t -> (Propagation.Analysis.t, string) result
(** The full analysis of everything observed so far.  Costs nothing
    when no outcome arrived since the last call (engine cache). *)

val satisfied : t -> rule -> bool
(** Whether the rule allows stopping now.  Always [false] before the
    first observed run, so a campaign never stops without evidence. *)

val digest : t -> digest

val targets : t -> string list

val target_width : t -> target:string -> float
(** Widest 95% interval over the pairs one injection target feeds
    ({!Estimator.Stream.target_width}); the planner's per-target
    uncertainty score. *)

val runs_observed : t -> int
