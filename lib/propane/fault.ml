exception Simulated_crash of int

let () =
  Printexc.register_printer (function
    | Simulated_crash ms ->
        Some (Printf.sprintf "simulated crash %d ms after injection" ms)
    | _ -> None)

type spec = {
  crash_after_ms : int option;
  hang_after_ms : int option;
  hang_step_wall_ms : int;
  only_testcase : string option;
}

let spec ?crash_after_ms ?hang_after_ms ?(hang_step_wall_ms = 25)
    ?only_testcase () =
  let non_negative what = function
    | Some n when n < 0 ->
        invalid_arg (Printf.sprintf "Fault.spec: %s must be >= 0" what)
    | _ -> ()
  in
  non_negative "crash_after_ms" crash_after_ms;
  non_negative "hang_after_ms" hang_after_ms;
  if hang_step_wall_ms < 1 then
    invalid_arg "Fault.spec: hang_step_wall_ms must be >= 1";
  { crash_after_ms; hang_after_ms; hang_step_wall_ms; only_testcase }

let apply s (sut : Sut.t) =
  let applies tc =
    match s.only_testcase with
    | None -> true
    | Some id -> String.equal id (Testcase.id tc)
  in
  let instantiate tc =
    let inner = sut.Sut.instantiate tc in
    if not (applies tc) then inner
    else begin
      (* -1 = not armed.  Only [inject] arms the countdown, so golden
         runs (never injected) pass through untouched and the fault
         fires a deterministic number of simulated milliseconds after
         the injection instant. *)
      let since_inject = ref (-1) in
      let step () =
        let n = !since_inject in
        (match s.crash_after_ms with
        | Some c when n >= c && n >= 0 -> raise (Simulated_crash n)
        | _ -> ());
        (match s.hang_after_ms with
        | Some h when n >= h && n >= 0 ->
            (* A livelock is simulated by burning wall-clock per step:
               the runner's watchdog (which checks between steps) sees
               the budget blown, while the run stays bounded by the
               golden duration even with no watchdog armed. *)
            Unix.sleepf (float_of_int s.hang_step_wall_ms /. 1000.)
        | _ -> ());
        inner.Sut.step ();
        if !since_inject >= 0 then incr since_inject
      in
      let inject name f =
        since_inject := 0;
        inner.Sut.inject name f
      in
      { inner with Sut.step; inject }
    end
  in
  { sut with Sut.instantiate }

let wrap ?crash_after_ms ?hang_after_ms ?hang_step_wall_ms ?only_testcase sut
    =
  apply
    (spec ?crash_after_ms ?hang_after_ms ?hang_step_wall_ms ?only_testcase ())
    sut
