(** Live campaign telemetry.

    Feed {!Runner.event}s to {!observe} and read {!snapshot} at any
    point — after every event for a live display, or once at the end
    for a summary.  Throughput is measured over the injection-run
    phase only (the clock restarts at {!Runner.Goldens_done}), so the
    ETA is not skewed by golden-run time, and journalled runs skipped
    on resume never inflate the rate.

    All of it runs in the coordinating domain ({!Runner.run} and the
    cluster coordinator emit events there), so no synchronisation is
    needed. *)

type t

val create : ?now:(unit -> float) -> unit -> t
(** [now] supplies wall-clock seconds and defaults to
    [Unix.gettimeofday]; inject a fake clock for tests.  The clock is
    clamped to be monotonically non-decreasing: a wall clock stepped
    backwards (NTP slew, VM migration) can never produce a negative
    elapsed time, rate, or ETA. *)

val observe : t -> Runner.event -> unit

type snapshot = {
  total : int;  (** campaign size *)
  completed : int;  (** runs done, including skipped ones *)
  skipped : int;  (** runs replayed from a journal on resume *)
  jobs : int;  (** worker domains *)
  elapsed_s : float;
      (** seconds since {!Runner.Goldens_done}, frozen at
          {!Runner.Finished} *)
  runs_per_sec : float;  (** fresh (non-skipped) runs per second *)
  eta_s : float option;
      (** estimated seconds to completion; [Some 0.] once complete,
          [None] while the rate is still unknown *)
  per_worker : int array;  (** fresh runs completed per worker domain *)
  crashed : int;  (** runs that ended {!Results.Crashed} *)
  hung : int;  (** runs cut off by the {!Runner.run} watchdog *)
  retried : int;
      (** total re-executions across all runs (a run retried twice
          adds two) *)
  worker_labels : string array;
      (** one label per {!per_worker} row.  In-process domains are
          labelled [domain-N]; cluster workers announce themselves via
          {!Runner.Worker_attached} and are labelled [HOST/PID], so a
          snapshot of a distributed campaign says which process (and
          machine) did how much of the work *)
  analysis : Live.digest option;
      (** latest {!Runner.Analysis_tick}; [None] unless the campaign
          runs with live analysis attached *)
}

val snapshot : t -> snapshot

val to_json : snapshot -> string
(** One-line machine-readable summary, e.g.
    [{"total":832,"completed":832,"skipped":100,"jobs":4,
      "elapsed_s":1.824,"runs_per_sec":401.3,"eta_s":0.0,
      "per_worker":[183,186,181,182],"crashed":0,"hung":0,
      "retried":0,"workers":["domain-0","domain-1","domain-2",
      "domain-3"]}].  The original fields keep their order; newer
    fields are appended, so prefix-matching scrapers keep working. *)

val pp_live : Format.formatter -> snapshot -> unit
(** Compact single-line progress display (no trailing newline), e.g.
    [512/832 runs  401 runs/s  eta 0.8s]. *)
