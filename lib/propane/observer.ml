type t = {
  on_injection : ms:int -> unit;
  on_sample : ms:int -> int array -> unit;
  finish : run_ms:int -> unit;
  saturated : unit -> bool;
}

let make ?(on_injection = fun ~ms:_ -> ()) ?(on_sample = fun ~ms:_ _ -> ())
    ?(finish = fun ~run_ms:_ -> ()) ?(saturated = fun () -> false) () =
  { on_injection; on_sample; finish; saturated }

let combine = function
  | [] -> make ()
  | [ o ] -> o
  | observers ->
      {
        on_injection =
          (fun ~ms -> List.iter (fun o -> o.on_injection ~ms) observers);
        on_sample =
          (fun ~ms values ->
            List.iter (fun o -> o.on_sample ~ms values) observers);
        finish = (fun ~run_ms -> List.iter (fun o -> o.finish ~run_ms) observers);
        saturated =
          (fun () -> List.for_all (fun o -> o.saturated ()) observers);
      }

(* Streaming equivalent of [Trace.first_difference] per signal: [first.(s)]
   is the divergence millisecond of signal [s], or -1 while it agrees with
   the frozen golden.  The observer saturates once every signal has
   diverged, letting the runner stop the run early — the remaining samples
   cannot change any first-divergence timestamp. *)
let divergence ?(from_ms = 0) ?(until_ms = max_int) ?scratch
    (golden : Golden.frozen) =
  let n = Golden.frozen_signal_count golden in
  let golden_ms = golden.Golden.frozen_duration in
  let samples = golden.Golden.samples in
  let first =
    (* A campaign arena hands the same scratch array to every run on
       its domain, so the per-run observer allocates nothing. *)
    match scratch with
    | None -> Array.make n (-1)
    | Some a when Array.length a >= n ->
        Array.fill a 0 n (-1);
        a
    | Some a ->
        invalid_arg
          (Printf.sprintf
             "Observer.divergence: scratch holds %d signals, golden has %d"
             (Array.length a) n)
  in
  let remaining = ref n in
  let on_sample ~ms values =
    if !remaining > 0 && ms >= from_ms && ms < until_ms && ms < golden_ms then
      for s = 0 to n - 1 do
        if first.(s) < 0 && values.(s) <> samples.((s * golden_ms) + ms) then begin
          first.(s) <- ms;
          decr remaining
        end
      done
  in
  let finish ~run_ms =
    (* Length-mismatch tail rule of [Trace.first_difference]: a run that
       stopped at a different length diverges at the end of the shorter
       trace, when that point lies inside the comparison window. *)
    if run_ms <> golden_ms then begin
      let common = min run_ms golden_ms in
      if common >= from_ms && common < until_ms then
        for s = 0 to n - 1 do
          if first.(s) < 0 then begin
            first.(s) <- common;
            decr remaining
          end
        done
    end
  in
  let saturated () = !remaining = 0 in
  let divergences () =
    let acc = ref [] in
    for s = n - 1 downto 0 do
      if first.(s) >= 0 then
        acc :=
          { Golden.signal = golden.Golden.frozen_signals.(s);
            first_ms = first.(s);
          }
          :: !acc
    done;
    !acc
  in
  (make ~on_sample ~finish ~saturated (), divergences)

(* Streaming equivalent of [Golden.first_tolerant_difference]: a signal
   diverges at the first millisecond starting [hold_ms + 1] consecutive
   out-of-band samples. *)
let tolerant_divergence ?(from_ms = 0) ?(until_ms = max_int) ~tolerance_for
    (golden : Golden.frozen) =
  let n = Golden.frozen_signal_count golden in
  let golden_ms = golden.Golden.frozen_duration in
  let samples = golden.Golden.samples in
  let tolerances =
    Array.map tolerance_for golden.Golden.frozen_signals
  in
  let first = Array.make n (-1) in
  let streak = Array.make n 0 in
  let remaining = ref n in
  let on_sample ~ms values =
    if !remaining > 0 && ms >= from_ms && ms < until_ms && ms < golden_ms then
      for s = 0 to n - 1 do
        if first.(s) < 0 then begin
          let tol = tolerances.(s) in
          if abs (values.(s) - samples.((s * golden_ms) + ms)) > tol.Golden.epsilon
          then begin
            streak.(s) <- streak.(s) + 1;
            if streak.(s) > tol.Golden.hold_ms then begin
              first.(s) <- ms - tol.Golden.hold_ms;
              decr remaining
            end
          end
          else streak.(s) <- 0
        end
      done
  in
  let finish ~run_ms =
    if run_ms <> golden_ms then begin
      let common = min run_ms golden_ms in
      if common >= from_ms && common < until_ms then
        for s = 0 to n - 1 do
          if first.(s) < 0 then begin
            first.(s) <- common;
            decr remaining
          end
        done
    end
  in
  let saturated () = !remaining = 0 in
  let divergences () =
    let acc = ref [] in
    for s = n - 1 downto 0 do
      if first.(s) >= 0 then
        acc :=
          { Golden.signal = golden.Golden.frozen_signals.(s);
            first_ms = first.(s);
          }
          :: !acc
    done;
    !acc
  in
  (make ~on_sample ~finish ~saturated (), divergences)

let recorder ~signals =
  let set = Trace_set.create ~signals () in
  let on_sample ~ms:_ values = Trace_set.sample_array set values in
  (* A recorder is never saturated: combining it with a divergence
     observer disables early exit, so the traces stay complete. *)
  (make ~on_sample (), fun () -> set)
