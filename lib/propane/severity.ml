type verdict = No_effect | Internal_only | Output_deviation | Mission_failure

let verdicts = [ No_effect; Internal_only; Output_deviation; Mission_failure ]

let verdict_name = function
  | No_effect -> "no effect"
  | Internal_only -> "internal only"
  | Output_deviation -> "output deviation"
  | Mission_failure -> "mission failure"

type report = {
  target : string;
  runs : int;
  no_effect : int;
  internal_only : int;
  output_deviation : int;
  mission_failure : int;
}

let count r = function
  | No_effect -> r.no_effect
  | Internal_only -> r.internal_only
  | Output_deviation -> r.output_deviation
  | Mission_failure -> r.mission_failure

let classify ~outputs ~mission_failed ~golden ~run divergences =
  if divergences = [] then No_effect
  else
    let output_diverged =
      List.exists
        (fun (d : Golden.divergence) ->
          List.exists (String.equal d.signal) outputs)
        divergences
    in
    if not output_diverged then Internal_only
    else if mission_failed ~golden ~run then Mission_failure
    else Output_deviation

(* Streaming severity observer: divergences are detected on the fly
   against the frozen golden while a recorder keeps the raw traces the
   mission judge needs.  The recorder never saturates, so severity runs
   stay full-length — classification inspects final state. *)
let observer ~outputs ~mission_failed ~golden ~frozen =
  let div, divergences = Observer.divergence frozen in
  let recorder, traces = Observer.recorder ~signals:(Golden.frozen_signals frozen) in
  let verdict () =
    classify ~outputs ~mission_failed ~golden ~run:(traces ())
      (divergences ())
  in
  (Observer.combine [ div; recorder ], verdict)

let assess ?(max_ms = Runner.default_max_ms) ?(seed = 42L) ?run_timeout_ms
    ?(on_failure = `Mission_failure) ~outputs ~mission_failed (sut : Sut.t)
    campaign =
  let master = Simkernel.Rng.create seed in
  let goldens =
    List.map
      (fun tc ->
        let golden = Runner.golden_run ~max_ms sut tc in
        (Testcase.id tc, (golden, Golden.freeze golden)))
      campaign.Campaign.testcases
  in
  let table : (string, report ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (testcase, injection) ->
      let rng = Simkernel.Rng.split master in
      let golden, frozen = List.assoc (Testcase.id testcase) goldens in
      let obs, verdict = observer ~outputs ~mission_failed ~golden ~frozen in
      let _run_ms, status =
        Runner.observed_run ~rng ?run_timeout_ms sut
          ~duration_ms:(Trace_set.duration_ms golden)
          testcase injection obs
      in
      (* A crashed or hung target never delivered its mission: that is
         the paper's worst failure class, not a judgement call for the
         mission predicate (whose traces are partial anyway). *)
      match (status, on_failure) with
      | (Results.Crashed _ | Results.Hung _), `Exclude -> ()
      | _ ->
      let verdict =
        match status with
        | Results.Completed -> verdict ()
        | Results.Crashed _ | Results.Hung _ -> Mission_failure
      in
      let target = injection.Injection.target in
      let cell =
        match Hashtbl.find_opt table target with
        | Some cell -> cell
        | None ->
            let cell =
              ref
                {
                  target;
                  runs = 0;
                  no_effect = 0;
                  internal_only = 0;
                  output_deviation = 0;
                  mission_failure = 0;
                }
            in
            Hashtbl.add table target cell;
            order := target :: !order;
            cell
      in
      let r = !cell in
      cell :=
        {
          r with
          runs = r.runs + 1;
          no_effect = (r.no_effect + if verdict = No_effect then 1 else 0);
          internal_only =
            (r.internal_only + if verdict = Internal_only then 1 else 0);
          output_deviation =
            (r.output_deviation + if verdict = Output_deviation then 1 else 0);
          mission_failure =
            (r.mission_failure + if verdict = Mission_failure then 1 else 0);
        })
    (Campaign.experiments campaign);
  List.rev_map (fun target -> !(Hashtbl.find table target)) !order

let pp_report ppf r =
  Fmt.pf ppf
    "@[<h>%-12s %4d runs: %4d no effect, %4d internal, %4d deviation, %4d \
     mission failures@]"
    r.target r.runs r.no_effect r.internal_only r.output_deviation
    r.mission_failure
