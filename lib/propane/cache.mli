(** Content-addressed store of per-cell campaign counters.

    One file per {!Cell} key under a cache directory, carrying the
    cell's raw [n_err]/[n_inj] counters per module output.  Counts —
    not point estimates — are what is persisted, so a reused cell
    reconstructs the exact {!Propagation.Estimate.t} a fresh campaign
    would compute, 95% Wilson intervals included.

    The store is self-healing: a missing, truncated or otherwise
    malformed entry is reported as a miss and simply re-measured, never
    an error.  Writes go through a temporary file and an atomic rename,
    so a killed campaign cannot leave a torn entry behind. *)

type entry = {
  module_name : string;
  target : string;
  outputs : string array;  (** module outputs, declaration order *)
  counts : (int * int) array;
      (** per output: (n_err, n_inj), same order as [outputs] *)
}

val store : dir:string -> key:string -> entry -> (unit, string) result
(** Persist [entry] under [key], creating [dir] if needed.  Fails only
    on I/O errors or a field containing a separator character. *)

val load : dir:string -> key:string -> entry option
(** [None] on a missing or malformed entry (a malformed file is a
    cache miss by design, not an error). *)

val mem : dir:string -> key:string -> bool
(** Cheap existence probe ({!load} still validates content). *)

type stats = {
  cells : int;  (** cells in the campaign plan *)
  reused : int;  (** cells served from the cache *)
  fresh : int;  (** cells (re-)measured by injection *)
  runs_total : int;  (** full campaign size *)
  runs_selected : int;  (** runs actually scheduled (dirty targets) *)
}

val write_stats : dir:string -> stats -> (unit, string) result
(** Write [stats] as JSON to [dir]/stats.json (atomic, like
    {!store}) — the artifact CI uploads to track cache-hit rates. *)

val stats_path : dir:string -> string
