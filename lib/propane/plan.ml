module P = Propagation

type mode = Uniform | Adaptive

let mode_to_string = function Uniform -> "uniform" | Adaptive -> "adaptive"

let mode_of_string = function
  | "uniform" -> Ok Uniform
  | "adaptive" -> Ok Adaptive
  | s -> Error (Printf.sprintf "bad plan mode %S: expected uniform|adaptive" s)

type prior = {
  target : string;
  cells : int;
  spread : float;
  reach : float;
  weight : float;
}

let pp_prior ppf p =
  Fmt.pf ppf "%s: cells=%d spread=%.3f reach=%.3f weight=%.3f" p.target
    p.cells p.spread p.reach p.weight

(* Corruption probability of every signal given an error on [target],
   by noisy-or relaxation over the graph's arcs: p(s) grows towards
   the fixpoint of p(s) = 1 - prod over arcs into s of
   (1 - p(src) * weight).  Monotone and bounded, so module-count + 2
   passes settle any DAG and give feedback loops the same
   single-unrolling reading as the tree builders. *)
let corruption_map graph ~target =
  let model = P.Perm_graph.model graph in
  let p = Hashtbl.create 64 in
  let get s = Option.value ~default:0.0 (Hashtbl.find_opt p s) in
  Hashtbl.replace p target 1.0;
  let arcs = P.Perm_graph.arcs graph in
  let passes = List.length (P.System_model.modules model) + 2 in
  for _ = 1 to passes do
    (* miss(s) = prod (1 - p(src) * w) over arcs producing s, from the
       previous relaxation state *)
    let miss = Hashtbl.create 64 in
    List.iter
      (fun (arc : P.Perm_graph.arc) ->
        let m =
          P.System_model.find_module_exn model arc.pair.module_name
        in
        let src = P.Signal.name (P.Sw_module.input_signal m arc.pair.input) in
        let out = P.Signal.name arc.signal in
        let contribution = get src *. arc.weight in
        let acc = Option.value ~default:1.0 (Hashtbl.find_opt miss out) in
        Hashtbl.replace miss out (acc *. (1.0 -. contribution)))
      arcs;
    Hashtbl.iter
      (fun s m ->
        let v = Float.max (get s) (1.0 -. m) in
        let v = if s = target then 1.0 else v in
        Hashtbl.replace p s v)
      miss
  done;
  get

let noisy_or = List.fold_left (fun acc x -> 1.0 -. ((1.0 -. acc) *. (1.0 -. x))) 0.0

let flat_matrices model =
  List.fold_left
    (fun acc m ->
      let rows =
        Array.make_matrix
          (P.Sw_module.input_count m)
          (P.Sw_module.output_count m)
          0.5
      in
      P.String_map.add (P.Sw_module.name m) (P.Perm_matrix.of_rows rows) acc)
    P.String_map.empty
    (P.System_model.modules model)

let priors ?matrices ~model ~targets () =
  let matrices =
    match matrices with Some m -> m | None -> flat_matrices model
  in
  let graph = P.Perm_graph.build_exn model matrices in
  let outputs = P.System_model.system_outputs model in
  let signal_of name =
    List.find_opt
      (fun s -> P.Signal.name s = name)
      (P.System_model.signals model)
  in
  List.map
    (fun target ->
      match signal_of target with
      | None -> { target; cells = 0; spread = 0.0; reach = 0.0; weight = 0.05 }
      | Some signal ->
          let consumers = P.System_model.consumers model signal in
          let cells, spread =
            List.fold_left
              (fun (cells, spread) (m, input) ->
                let matrix = P.Perm_graph.matrix graph (P.Sw_module.name m) in
                let outs = P.Sw_module.output_count m in
                let spread =
                  let acc = ref spread in
                  for output = 1 to outs do
                    let p = P.Perm_matrix.get matrix ~input ~output in
                    acc := !acc +. (p *. (1.0 -. p))
                  done;
                  !acc
                in
                (cells + outs, spread))
              (0, 0.0) consumers
          in
          let reach =
            if P.System_model.is_system_input model signal then
              (* the system-input case has an exact estimator *)
              noisy_or
                (List.map
                   (fun output ->
                     P.Monte_carlo.arrival_probability ~trials:2000 ~seed:1
                       graph ~input:signal ~output)
                   outputs)
            else
              let corruption = corruption_map graph ~target in
              noisy_or
                (List.map (fun o -> corruption (P.Signal.name o)) outputs)
          in
          let weight = Float.max 0.05 (spread *. (0.5 +. reach)) in
          { target; cells; spread; reach; weight })
    targets

type block = {
  target : string;
  indices : int array;  (* selected experiment indices, ascending *)
  mutable next : int;  (* cursor of the next unallocated index *)
}

type planned = {
  mode : mode;
  budget_total : int;
  mutable budget_left : int;
  round_budget : int;
  blocks : block array;
  weights : float array;  (* pilot weights, aligned with blocks *)
  consumers_of : string list array;  (* consuming modules, per block *)
  live : Live.t;
  mutable round_no : int;
  mutable current : int list;  (* indices of the open round, ascending *)
  mutable current_left : int;  (* open-round runs not yet completed *)
  mutable finished : bool;
  mutable rev_rounds : Journal.round list;
}

type kind = Static | Planned of planned

type t = {
  mutex : Mutex.t;
  kind : kind;
  status : Bytes.t;
      (* '\000' unallocated, '\001' queued, '\003' in flight,
         '\002' done *)
  bank : Results.outcome option array;
  mutable queue : int list;
  mutable queue_len : int;
  mutable started : bool;
  mutable fresh : int;  (* cumulative indices enqueued for execution *)
  mutable executed : int;
  mutable allocated_runs : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let static ?(select = fun _ -> true) ~done_ ~total () =
  let status = Bytes.make total '\000' in
  let queue = ref [] in
  let n = ref 0 in
  for index = total - 1 downto 0 do
    if select index && not (done_ index) then begin
      Bytes.set status index '\001';
      queue := index :: !queue;
      incr n
    end
  done;
  {
    mutex = Mutex.create ();
    kind = Static;
    status;
    bank = Array.make (max total 1) None;
    queue = !queue;
    queue_len = !n;
    started = false;
    fresh = !n;
    executed = 0;
    allocated_runs = !n;
  }

let create ?(mode = Adaptive) ?priors:prior_list ?(select = fun _ -> true)
    ?attribution ?on_failure ?round_budget ~budget ~model ~campaign () =
  if budget < 1 then invalid_arg "Plan.create: budget < 1";
  let targets = (campaign : Campaign.t).targets in
  let per_target = Campaign.runs_per_target campaign in
  let total = Campaign.size campaign in
  let blocks =
    Array.of_list
      (List.mapi
         (fun ti target ->
           let lo = ti * per_target in
           let indices =
             Array.of_seq
               (Seq.filter select
                  (Seq.init per_target (fun off -> lo + off)))
           in
           { target; indices; next = 0 })
         targets)
  in
  let selectable =
    Array.fold_left
      (fun n b -> if Array.length b.indices > 0 then n + 1 else n)
      0 blocks
  in
  if budget < selectable then
    invalid_arg
      (Printf.sprintf
         "Plan.create: budget %d below the %d targets with selectable runs"
         budget selectable);
  let prior_list =
    match prior_list with
    | Some ps -> ps
    | None -> priors ~model ~targets ()
  in
  let weight_of target =
    match List.find_opt (fun (p : prior) -> p.target = target) prior_list with
    | Some p -> p.weight
    | None -> 0.05
  in
  let consumers_of =
    Array.map
      (fun b ->
        match
          List.find_opt
            (fun s -> P.Signal.name s = b.target)
            (P.System_model.signals model)
        with
        | None -> []
        | Some signal ->
            List.map
              (fun (m, _) -> P.Sw_module.name m)
              (P.System_model.consumers model signal))
      blocks
  in
  let planned =
    {
      mode;
      budget_total = budget;
      budget_left = budget;
      round_budget =
        (match round_budget with
        | Some r when r >= 1 -> r
        | Some _ -> invalid_arg "Plan.create: round_budget < 1"
        | None -> max (List.length targets) (budget / 8));
      blocks;
      weights = Array.map (fun b -> weight_of b.target) blocks;
      consumers_of;
      live = Live.create ?attribution ?on_failure ~model ~targets ();
      round_no = 0;
      current = [];
      current_left = 0;
      finished = false;
      rev_rounds = [];
    }
  in
  {
    mutex = Mutex.create ();
    kind = Planned planned;
    status = Bytes.make (max total 1) '\000';
    bank = Array.make (max total 1) None;
    queue = [];
    queue_len = 0;
    started = false;
    fresh = 0;
    executed = 0;
    allocated_runs = 0;
  }

let is_planned t = t.kind <> Static
let budget t = match t.kind with Static -> None | Planned p -> Some p.budget_total
let plan_mode t = match t.kind with Static -> None | Planned p -> Some p.mode

(* Proportional allocation with caps: repeatedly grant one run to the
   block maximising weight / (2 * granted + 1) (Sainte-Lague divisors,
   first index winning ties), so the split tracks the weights without
   float-remainder juggling and is deterministic. *)
let distribute ~total ~weights ~caps ~alloc =
  let n = Array.length weights in
  let remaining = ref total in
  let exhausted = ref false in
  while !remaining > 0 && not !exhausted do
    let best = ref (-1) and best_score = ref 0.0 in
    for i = 0 to n - 1 do
      if alloc.(i) < caps.(i) && weights.(i) > 0.0 then begin
        let s = weights.(i) /. float_of_int ((2 * alloc.(i)) + 1) in
        if !best < 0 || s > !best_score then begin
          best := i;
          best_score := s
        end
      end
    done;
    if !best < 0 then exhausted := true
    else begin
      alloc.(!best) <- alloc.(!best) + 1;
      decr remaining
    end
  done

let caps_of p = Array.map (fun b -> Array.length b.indices - b.next) p.blocks

let pilot_allocation p =
  let caps = caps_of p in
  let n = Array.length caps in
  let alloc = Array.make n 0 in
  let total = min p.budget_left (max (Array.length p.blocks) p.round_budget) in
  (* every target first: estimation needs each injected at least once *)
  let given = ref 0 in
  for i = 0 to n - 1 do
    if caps.(i) > 0 && !given < total then begin
      alloc.(i) <- 1;
      incr given
    end
  done;
  distribute ~total:(total - !given) ~weights:p.weights ~caps ~alloc;
  alloc

let uniform_allocation p =
  let caps = caps_of p in
  let alloc = Array.make (Array.length caps) 0 in
  distribute ~total:p.budget_left
    ~weights:(Array.map (fun _ -> 1.0) caps)
    ~caps ~alloc;
  alloc

(* None = every ranking resolved (or nothing left to learn): stop. *)
let refine_allocation p =
  let unresolved =
    match Live.snapshot p.live with
    | Error _ -> None  (* cannot happen: the live engine is pre-primed *)
    | Ok analysis ->
        Some
          (List.filter_map
             (fun (r : P.Ranking.module_row) ->
               if r.resolved then None else Some r.module_name)
             analysis.module_rows)
  in
  match unresolved with
  | None | Some [] -> None
  | Some unresolved ->
      let caps = caps_of p in
      let weights =
        Array.mapi
          (fun i b ->
            if caps.(i) = 0 then 0.0
            else
              let impact =
                List.length
                  (List.filter
                     (fun m -> List.mem m unresolved)
                     p.consumers_of.(i))
              in
              if impact = 0 then 0.0
              else
                Float.max (Live.target_width p.live ~target:b.target) 1e-6
                *. float_of_int impact)
          p.blocks
      in
      if Array.for_all (fun w -> w = 0.0) weights then None
      else begin
        let alloc = Array.make (Array.length caps) 0 in
        distribute
          ~total:(min p.budget_left p.round_budget)
          ~weights ~caps ~alloc;
        Some alloc
      end

let rec allocate p t =
  assert (t.queue_len = 0 && p.current_left = 0);
  if p.budget_left <= 0 then p.finished <- true
  else if Array.for_all (fun c -> c = 0) (caps_of p) then p.finished <- true
  else
    let allocation =
      match (p.mode, p.round_no) with
      | Uniform, 0 -> Some (uniform_allocation p)
      | Uniform, _ -> None  (* uniform spends everything in one round *)
      | Adaptive, 0 -> Some (pilot_allocation p)
      | Adaptive, _ -> refine_allocation p
    in
    match allocation with
    | None -> p.finished <- true
    | Some alloc when Array.for_all (fun n -> n = 0) alloc ->
        p.finished <- true
    | Some alloc ->
        let round_no = p.round_no in
        p.round_no <- round_no + 1;
        let rev_current = ref [] and rev_queue = ref [] in
        let fresh = ref 0 and granted = ref 0 in
        Array.iteri
          (fun bi n ->
            if n > 0 then begin
              let b = p.blocks.(bi) in
              p.rev_rounds <-
                { Journal.round = round_no; target = b.target; runs = n }
                :: p.rev_rounds;
              for _ = 1 to n do
                let index = b.indices.(b.next) in
                b.next <- b.next + 1;
                incr granted;
                rev_current := index :: !rev_current;
                assert (Bytes.get t.status index = '\000');
                if t.bank.(index) <> None then begin
                  (* a replayed outcome satisfies the run instantly *)
                  Bytes.set t.status index '\002';
                  t.executed <- t.executed + 1
                end
                else begin
                  Bytes.set t.status index '\001';
                  rev_queue := index :: !rev_queue;
                  incr fresh
                end
              done
            end)
          alloc;
        p.budget_left <- p.budget_left - !granted;
        p.current <- List.rev !rev_current;
        p.current_left <- !fresh;
        t.allocated_runs <- t.allocated_runs + !granted;
        t.fresh <- t.fresh + !fresh;
        t.queue <- List.rev !rev_queue;
        t.queue_len <- !fresh;
        if !fresh = 0 then advance_barrier p t

and advance_barrier p t =
  (* Feed the finished round in index order: the allocation decisions
     below are then a pure function of the completed outcome set, the
     same on every backend and on resume. *)
  List.iter
    (fun index ->
      match t.bank.(index) with
      | Some outcome -> ignore (Live.observe p.live outcome)
      | None -> assert false)
    p.current;
  p.current <- [];
  allocate p t

let ensure_started t =
  if not t.started then begin
    t.started <- true;
    match t.kind with Static -> () | Planned p -> allocate p t
  end

let prime t ~index outcome =
  locked t @@ fun () ->
  if t.started then invalid_arg "Plan.prime: scheduling already started";
  match t.kind with
  | Planned _ -> t.bank.(index) <- Some outcome
  | Static ->
      (* static sources are built over the replayed set via [done_];
         priming one late just retires it from the queue *)
      if Bytes.get t.status index = '\001' then begin
        Bytes.set t.status index '\002';
        t.queue <- List.filter (fun i -> i <> index) t.queue;
        t.queue_len <- t.queue_len - 1;
        t.fresh <- t.fresh - 1;
        t.allocated_runs <- t.allocated_runs - 1
      end

let take t ~max:limit =
  locked t @@ fun () ->
  ensure_started t;
  if limit <= 0 then []
  else begin
    let rec grab n acc =
      if n = 0 then List.rev acc
      else
        match t.queue with
        | [] -> List.rev acc
        | index :: rest ->
            t.queue <- rest;
            t.queue_len <- t.queue_len - 1;
            Bytes.set t.status index '\003';
            grab (n - 1) (index :: acc)
    in
    grab limit []
  end

let requeue t indices =
  locked t @@ fun () ->
  let lost =
    List.filter (fun i -> Bytes.get t.status i = '\003') indices
  in
  if lost <> [] then begin
    List.iter (fun i -> Bytes.set t.status i '\001') lost;
    t.queue <- List.sort_uniq compare (List.rev_append lost t.queue);
    t.queue_len <- List.length t.queue
  end

let finish_one t ~index outcome =
  t.bank.(index) <- Some outcome;
  Bytes.set t.status index '\002';
  t.executed <- t.executed + 1;
  match t.kind with
  | Static -> ()
  | Planned p ->
      p.current_left <- p.current_left - 1;
      if p.current_left = 0 && t.queue_len = 0 && not p.finished then
        advance_barrier p t

let complete t ~index outcome =
  locked t @@ fun () ->
  match Bytes.get t.status index with
  | '\002' -> ()  (* duplicate result: first one won *)
  | '\003' -> finish_one t ~index outcome
  | '\001' ->
      (* requeued after a worker loss, then the lost worker's result
         arrived anyway: retire it from the queue before counting *)
      t.queue <- List.filter (fun i -> i <> index) t.queue;
      t.queue_len <- t.queue_len - 1;
      finish_one t ~index outcome
  | _ ->
      (* an index this source never scheduled (deselected, or banked
         pre-start); keep the outcome, it costs nothing *)
      if t.bank.(index) = None then t.bank.(index) <- Some outcome

let exhausted t =
  locked t @@ fun () ->
  ensure_started t;
  match t.kind with
  | Static -> t.queue_len = 0 && t.executed >= t.fresh
  | Planned p -> p.finished

let pending t =
  locked t @@ fun () ->
  ensure_started t;
  t.queue_len

let candidates t =
  locked t @@ fun () ->
  match t.kind with
  | Static -> t.queue
  | Planned p ->
      List.concat_map
        (fun b ->
          List.filter
            (fun i -> t.bank.(i) = None)
            (Array.to_list b.indices))
        (Array.to_list p.blocks)

let fresh_scheduled t = locked t @@ fun () -> t.fresh
let executed t = locked t @@ fun () -> t.executed
let allocated t = locked t @@ fun () -> t.allocated_runs

let rounds t =
  locked t @@ fun () ->
  match t.kind with
  | Static -> []
  | Planned p -> List.rev p.rev_rounds
