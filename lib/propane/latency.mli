(** Propagation-latency statistics.

    PROPANE's traces time-stamp every divergence, so beyond the
    permeability {e probability} the campaign also yields the
    {e latency} with which errors cross each input/output pair — the
    quantity that, together with coverage, drives mechanism selection
    in the hardware-EDM study the paper cites as [18].  Latency here is
    the millisecond distance between the injection instant and the
    output's first divergence, over the runs the estimator counts as
    direct errors. *)

type stats = {
  pair : Propagation.Perm_graph.pair;
  samples : int;  (** direct errors contributing a latency *)
  min_ms : int;
  max_ms : int;
  mean_ms : float;
  median_ms : int;
}

val observer :
  ?window_ms:int ->
  Golden.frozen ->
  Observer.t * (unit -> (string * int) list)
(** Streaming per-run latency observer for {!Runner.observed_run}:
    detects divergences against the frozen golden and, once the run
    finished, reports [(signal, latency_ms)] for every signal whose
    first divergence lies at or after the injection instant — and
    within [window_ms] of it, when given (the {!Estimator.Direct}
    attribution window).  Runs without an injection report nothing. *)

val pair_stats :
  ?attribution:Estimator.attribution ->
  model:Propagation.System_model.t ->
  results:Results.t ->
  string ->
  stats option list
(** One entry per pair of the module (row-major order); [None] when no
    counted error exists for that pair.
    @raise Invalid_argument for an unknown module. *)

val all_stats :
  ?attribution:Estimator.attribution ->
  model:Propagation.System_model.t ->
  Results.t ->
  stats list
(** The defined statistics of every module, flattened. *)

val pp_stats : Format.formatter -> stats -> unit
