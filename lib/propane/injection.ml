type t = {
  target : string;
  at : Simkernel.Sim_time.t;
  error : Error_model.t;
}

let make ~target ~at ~error =
  if String.length target = 0 then invalid_arg "Injection.make: empty target";
  if Error_model.is_temporal (Error_model.payload error) then
    invalid_arg "Injection.make: temporal error models cannot nest";
  { target; at; error }

let inject_ms t = Simkernel.Sim_time.to_ms t.at
let fires t ~ms = Error_model.fires t.error ~inject_ms:(inject_ms t) ~ms
let first_fire_ms t = Error_model.first_fire_ms t.error ~inject_ms:(inject_ms t)
let last_fire_ms t = Error_model.last_fire_ms t.error ~inject_ms:(inject_ms t)

let describe t =
  Printf.sprintf "%s into %s at %d ms"
    (Error_model.describe t.error)
    t.target
    (Simkernel.Sim_time.to_ms t.at)

let pp ppf t = Fmt.string ppf (describe t)
