let src = Logs.Src.create "propane.runner" ~doc:"PROPANE campaign runner"

module Log = (val Logs.src_log src : Logs.LOG)

let default_max_ms = 20_000

(* ------------------------------------------------------------------ *)
(* Per-domain execution arena.

   Everything an injection run needs besides the (immutable, shared)
   frozen golden lives here and is reused across every run a domain
   executes: the signal-name table for per-name sampling, the flat
   sample buffer handed to observers, and the divergence observer's
   per-signal scratch.  One arena per worker domain means the
   millisecond loop allocates nothing and domains never contend on
   mutable state — goldens are frozen int arrays shared read-only. *)

type arena = {
  a_names : string array;  (* signal-list order, as trace sets use *)
  a_buf : int array;  (* one slot per traced signal *)
  a_first : int array;  (* divergence scratch, one slot per signal *)
}

let make_arena (sut : Sut.t) =
  let names = Array.of_list (Sut.signal_names sut) in
  let n = Array.length names in
  { a_names = names; a_buf = Array.make n 0; a_first = Array.make n (-1) }

(* One flat read of every traced signal (signal-list order) into a
   reusable buffer.  SUTs exposing a bulk [snapshot] skip the per-name
   lookup of [read]. *)
let sampler_of ~arena (instance : Sut.instance) =
  match instance.Sut.snapshot with
  | Some snap -> snap
  | None ->
      fun buf ->
        Array.iteri (fun i n -> buf.(i) <- instance.Sut.read n) arena.a_names

let golden_run ?(max_ms = default_max_ms) (sut : Sut.t) testcase =
  let arena = make_arena sut in
  let instance = sut.Sut.instantiate testcase in
  let traces = Trace_set.create ~signals:(Sut.signal_names sut) () in
  let sampler = sampler_of ~arena instance in
  let buf = arena.a_buf in
  let rec go ms =
    if ms >= max_ms || instance.Sut.finished () then traces
    else begin
      instance.Sut.step ();
      sampler buf;
      Trace_set.sample_array traces buf;
      go (ms + 1)
    end
  in
  go 0

(* Crash reasons travel through tab-separated journals and result
   files; separators inside an exception message must not break a
   record in two. *)
let sanitize_reason s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let observed_run_in ~arena ?rng ?run_timeout_ms (sut : Sut.t) ~duration_ms
    testcase injection (observer : Observer.t) =
  let target = injection.Injection.target in
  if not (Sut.has_signal sut target) then
    invalid_arg
      (Printf.sprintf "Runner.injection_run: %S has no signal %S" sut.Sut.name
         target);
  let rng =
    match rng with Some r -> r | None -> Simkernel.Rng.create 0x5EEDL
  in
  let deadline =
    match run_timeout_ms with
    | None -> None
    | Some budget_ms ->
        if budget_ms < 1 then
          invalid_arg "Runner.observed_run: run_timeout_ms must be >= 1";
        Some
          (budget_ms, Unix.gettimeofday () +. (float_of_int budget_ms /. 1000.))
  in
  let width = Sut.signal_width sut target in
  let inject_at = Simkernel.Sim_time.to_ms injection.Injection.at in
  let error = injection.Injection.error in
  let first_fire = Injection.first_fire_ms injection in
  let run_ms = ref duration_ms in
  let status = ref Results.Completed in
  let crash ~ms exn =
    run_ms := ms;
    status :=
      Results.Crashed
        { at_ms = ms; reason = sanitize_reason (Printexc.to_string exn) }
  in
  (match sut.Sut.instantiate testcase with
  | exception e -> crash ~ms:0 e
  | instance ->
      let sampler = sampler_of ~arena instance in
      let buf = arena.a_buf in
      (* Each millisecond: watchdog, finish check, injection, step,
         sample.  Any exception out of the SUT is this run's crash, not
         the campaign's. *)
      let rec go ms =
        if ms >= duration_ms then ()
        else
          match deadline with
          | Some (budget_ms, d) when Unix.gettimeofday () > d ->
              run_ms := ms;
              status := Results.Hung { budget_ms }
          | _ -> (
              match
                if instance.Sut.finished () then `Finished
                else begin
                  if Error_model.fires error ~inject_ms:inject_at ~ms then begin
                    instance.Sut.inject target (fun v ->
                        Error_model.apply error ~width ~rng v);
                    observer.Observer.on_injection ~ms
                  end;
                  instance.Sut.step ();
                  sampler buf;
                  `Stepped
                end
              with
              | exception e -> crash ~ms e
              | `Finished ->
                  (* The SUT reached its end state before the golden
                     duration (an injected run may finish early); the
                     observer's length-mismatch rule sees the true
                     length. *)
                  run_ms := ms
              | `Stepped ->
                  observer.Observer.on_sample ~ms buf;
                  (* Saturation is only consulted once the first
                     corruption happened: a deterministic SUT cannot
                     diverge before it, and stopping earlier would skip
                     the injection itself (a [Delayed] model arms at
                     [inject_at] but fires later). *)
                  if ms >= first_fire && observer.Observer.saturated () then
                    run_ms := ms + 1
                  else go (ms + 1))
      in
      go 0);
  observer.Observer.finish ~run_ms:!run_ms;
  (!run_ms, !status)

let observed_run ?rng ?run_timeout_ms (sut : Sut.t) ~duration_ms testcase
    injection observer =
  observed_run_in ~arena:(make_arena sut) ?rng ?run_timeout_ms sut
    ~duration_ms testcase injection observer

(* Truncation counts from the *last* firing of the error model, so a
   delayed or intermittent injection's whole lifetime survives the
   cut; for single-shot models this is the injection time, as before. *)
let truncated_duration ?truncate_after_ms injection duration_ms =
  match truncate_after_ms with
  | None -> duration_ms
  | Some extra ->
      min duration_ms (Injection.last_fire_ms injection + extra + 1)

let injection_run ?rng ?truncate_after_ms (sut : Sut.t) ~duration_ms testcase
    injection =
  let duration_ms = truncated_duration ?truncate_after_ms injection duration_ms in
  let recorder, traces = Observer.recorder ~signals:(Sut.signal_names sut) in
  ignore (observed_run ?rng sut ~duration_ms testcase injection recorder);
  traces ()

let run_experiment_in ~arena ?rng ?truncate_after_ms ?run_timeout_ms
    ?(observers = []) sut ~golden testcase injection =
  let duration_ms =
    truncated_duration ?truncate_after_ms injection
      (Golden.frozen_duration_ms golden)
  in
  let until_ms =
    (* A truncated run only vouches for the window it covers. *)
    match truncate_after_ms with None -> None | Some _ -> Some duration_ms
  in
  let div, divergences =
    Observer.divergence ?until_ms ~scratch:arena.a_first golden
  in
  let _run_ms, status =
    observed_run_in ~arena ?rng ?run_timeout_ms sut ~duration_ms testcase
      injection
      (Observer.combine (div :: observers))
  in
  let divergences =
    (* How far a hung run got before the watchdog fired is wall-clock
       dependent; partial divergences are dropped so outcomes (and
       resumed journals) stay deterministic.  A crash happens at a
       simulated instant, so its divergences are kept. *)
    match status with Results.Hung _ -> [] | _ -> divergences ()
  in
  { Results.testcase = Testcase.id testcase; injection; divergences; status }

let run_experiment ?rng ?truncate_after_ms ?run_timeout_ms ?observers sut
    ~golden testcase injection =
  run_experiment_in ~arena:(make_arena sut) ?rng ?truncate_after_ms
    ?run_timeout_ms ?observers sut ~golden testcase injection

(* ------------------------------------------------------------------ *)

module Config = struct
  type t = {
    max_ms : int;
    seed : int64;
    truncate_after_ms : int option;
    run_timeout_ms : int option;
    retries : int;
    fail_fast : bool;
    jobs : int;
    journal : string option;
    resume : bool;
    journal_batch : int;
    keep_traces : bool;
    stop_when : Live.rule option;
    budget : int option;
    plan : Plan.mode;
  }

  let default =
    {
      max_ms = default_max_ms;
      seed = 42L;
      truncate_after_ms = None;
      run_timeout_ms = None;
      retries = 0;
      fail_fast = false;
      jobs = 1;
      journal = None;
      resume = false;
      journal_batch = 32;
      keep_traces = false;
      stop_when = None;
      budget = None;
      plan = Plan.Adaptive;
    }

  let make ?(max_ms = default.max_ms) ?(seed = default.seed)
      ?truncate_after_ms ?run_timeout_ms ?(retries = default.retries)
      ?(fail_fast = default.fail_fast) ?(jobs = default.jobs) ?journal
      ?(resume = default.resume) ?(journal_batch = default.journal_batch)
      ?(keep_traces = default.keep_traces) ?stop_when ?budget
      ?(plan = default.plan) () =
    {
      max_ms;
      seed;
      truncate_after_ms;
      run_timeout_ms;
      retries;
      fail_fast;
      jobs;
      journal;
      resume;
      journal_batch;
      keep_traces;
      stop_when;
      budget;
      plan;
    }

  let validate t =
    if t.jobs < 1 then Error "jobs must be >= 1"
    else if t.retries < 0 then Error "retries must be >= 0"
    else if
      match t.run_timeout_ms with Some ms -> ms < 1 | None -> false
    then Error "run_timeout_ms must be >= 1"
    else if t.journal_batch < 1 then Error "journal_batch must be >= 1"
    else if t.resume && t.journal = None then Error "resume requires a journal"
    else if match t.budget with Some b -> b < 1 | None -> false then
      Error "budget must be >= 1"
    else Ok ()

  (* The encoded form travels inside cluster recipes (one field of a
     [;]-separated recipe), so fields are [,]-separated [k=v] pairs and
     must never contain either separator.  [journal] and [resume] are
     host-local (a path on the coordinator's disk means nothing to a
     worker) and are deliberately not encoded; [decode] leaves them at
     their defaults. *)
  let encode t =
    let b = Buffer.create 96 in
    let add k v =
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v
    in
    add "max_ms" (string_of_int t.max_ms);
    add "seed" (Int64.to_string t.seed);
    Option.iter
      (fun ms -> add "truncate_after_ms" (string_of_int ms))
      t.truncate_after_ms;
    Option.iter
      (fun ms -> add "run_timeout_ms" (string_of_int ms))
      t.run_timeout_ms;
    add "retries" (string_of_int t.retries);
    add "fail_fast" (string_of_bool t.fail_fast);
    add "jobs" (string_of_int t.jobs);
    add "journal_batch" (string_of_int t.journal_batch);
    add "keep_traces" (string_of_bool t.keep_traces);
    Option.iter (fun r -> add "stop_when" (Live.rule_to_string r)) t.stop_when;
    (* Unplanned campaigns encode no plan fields, keeping their recipes
       (and everything content-addressed on them) byte-stable. *)
    Option.iter
      (fun budget ->
        add "budget" (string_of_int budget);
        add "plan" (Plan.mode_to_string t.plan))
      t.budget;
    Buffer.contents b

  let decode s =
    let ( let* ) = Result.bind in
    let int_field k v =
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "Runner.Config: bad %s %S" k v)
    in
    let bool_field k v =
      match bool_of_string_opt v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "Runner.Config: bad %s %S" k v)
    in
    let* config =
      List.fold_left
        (fun acc field ->
          let* t = acc in
          match String.index_opt field '=' with
          | None ->
              Error (Printf.sprintf "Runner.Config: bad field %S" field)
          | Some i -> (
              let k = String.sub field 0 i in
              let v =
                String.sub field (i + 1) (String.length field - i - 1)
              in
              match k with
              | "max_ms" ->
                  let* n = int_field k v in
                  Ok { t with max_ms = n }
              | "seed" -> (
                  match Int64.of_string_opt v with
                  | Some seed -> Ok { t with seed }
                  | None ->
                      Error (Printf.sprintf "Runner.Config: bad seed %S" v))
              | "truncate_after_ms" ->
                  let* n = int_field k v in
                  Ok { t with truncate_after_ms = Some n }
              | "run_timeout_ms" ->
                  let* n = int_field k v in
                  Ok { t with run_timeout_ms = Some n }
              | "retries" ->
                  let* n = int_field k v in
                  Ok { t with retries = n }
              | "fail_fast" ->
                  let* b = bool_field k v in
                  Ok { t with fail_fast = b }
              | "jobs" ->
                  let* n = int_field k v in
                  Ok { t with jobs = n }
              | "journal_batch" ->
                  let* n = int_field k v in
                  Ok { t with journal_batch = n }
              | "keep_traces" ->
                  let* b = bool_field k v in
                  Ok { t with keep_traces = b }
              | "stop_when" ->
                  let* rule =
                    Result.map_error
                      (Printf.sprintf "Runner.Config: %s")
                      (Live.rule_of_string v)
                  in
                  Ok { t with stop_when = Some rule }
              | "budget" ->
                  let* n = int_field k v in
                  Ok { t with budget = Some n }
              | "plan" ->
                  let* mode =
                    Result.map_error
                      (Printf.sprintf "Runner.Config: %s")
                      (Plan.mode_of_string v)
                  in
                  Ok { t with plan = mode }
              | _ -> Error (Printf.sprintf "Runner.Config: unknown field %S" k)))
        (Ok default)
        (String.split_on_char ',' s)
    in
    let* () = validate config in
    Ok config
end

(* ------------------------------------------------------------------ *)

type progress = { completed : int; total : int }

type event =
  | Started of { total : int; skipped : int; jobs : int }
  | Goldens_done of { testcases : int }
  | Worker_attached of { worker : int; host : string; pid : int }
  | Run_done of {
      index : int;
      worker : int;
      completed : int;
      total : int;
      status : Results.status;
      retries : int;
    }
  | Analysis_tick of Live.digest
  | Finished of { completed : int; total : int }

exception Failed_run of { index : int; outcome : Results.outcome }

(* The per-run generator is derived from the seed and the experiment's
   position alone, so run order (and hence parallel scheduling) cannot
   change any outcome.  [attempt] (default 0, the original derivation)
   shifts to a fresh stream per re-execution of a failed run, so a
   retry is not condemned to replay the exact corruption that crashed
   the previous attempt. *)
let rng_for ?(attempt = 0) seed index =
  Simkernel.Rng.create
    (Int64.add
       (Int64.add seed
          (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L))
       (Int64.mul (Int64.of_int attempt) 0xD1B54A32D192ED03L))

module String_map = Map.Make (String)

(* Frozen golden runs for exactly the test cases the remaining
   experiments need — a resumed campaign does not re-execute goldens
   whose injection runs are all journalled.  The recording trace sets
   are dropped immediately after freezing, so a campaign holds one
   compact immutable array per test case, shared read-only across
   worker domains. *)
let goldens_for ~max_ms sut experiments remaining =
  List.fold_left
    (fun acc idx ->
      let tc, _ = experiments.(idx) in
      let id = Testcase.id tc in
      if String_map.mem id acc then acc
      else begin
        Log.debug (fun m -> m "golden run for %s" id);
        String_map.add id (Golden.freeze (golden_run ~max_ms sut tc)) acc
      end)
    String_map.empty remaining

(* Replay a journal into [outcomes]; returns how many indices it
   filled and whether the journal already carries plan-round records
   (a finished planned campaign must not journal its rounds twice).
   Mismatched metadata means the journal belongs to a different
   campaign — refusing loudly beats silently corrupting a resume. *)
let replay_journal path ~outcomes ~(sut : Sut.t) ~campaign ~seed ~total =
  match Journal.load path with
  | Error msg -> invalid_arg (Printf.sprintf "Runner.run: %s" msg)
  | Ok j -> (
      match
        Journal.validate j ~path ~sut:sut.Sut.name
          ~campaign:campaign.Campaign.name ~seed ~total
      with
      | Error msg -> invalid_arg (Printf.sprintf "Runner.run: %s" msg)
      | Ok () ->
          let table = Journal.completed j in
          Hashtbl.iter
            (fun index outcome -> outcomes.(index) <- Some outcome)
            table;
          (Hashtbl.length table, j.Journal.rounds <> []))

let or_invalid = function Ok v -> v | Error msg -> invalid_arg msg

(* One injection run of the campaign: streaming by default; with
   [keep] an opt-in recorder rides along, which also disables early
   exit (a recorder never saturates), reproducing the legacy
   record-everything data path.  A crashed or hung attempt is re-run up
   to [retries] times on a fresh RNG stream before its failure stands;
   the returned int is the number of re-executions actually taken. *)
let run_one ~arena ~seed ?truncate_after_ms ?run_timeout_ms ?(retries = 0)
    ~keep ~golden_for (sut : Sut.t) experiments idx =
  let testcase, injection = experiments.(idx) in
  let golden = golden_for testcase in
  let attempt_one attempt =
    let rng = rng_for ~attempt seed idx in
    if keep then begin
      let recorder, traces =
        Observer.recorder ~signals:(Sut.signal_names sut)
      in
      let outcome =
        run_experiment_in ~arena ~rng ?truncate_after_ms ?run_timeout_ms
          ~observers:[ recorder ] sut ~golden testcase injection
      in
      (outcome, Some (traces ()))
    end
    else
      ( run_experiment_in ~arena ~rng ?truncate_after_ms ?run_timeout_ms sut
          ~golden testcase injection,
        None )
  in
  let rec go attempt =
    let outcome, traces = attempt_one attempt in
    if Results.is_failed outcome.Results.status && attempt < retries then begin
      Log.debug (fun m ->
          m "run %d attempt %d %a; retrying" idx attempt Results.pp_status
            outcome.Results.status);
      go (attempt + 1)
    end
    else (outcome, traces, attempt)
  in
  go 0

(* The single-run entry point a cluster worker process drives: the
   campaign is expanded once, golden runs execute lazily the first time
   a test case is needed (a worker that is never handed a test case's
   runs never pays for its golden) and stay memoised for every later
   run.  Outcome determinism is index-based exactly as in {!run}, so
   any partition of indices over any number of processes reproduces the
   serial campaign outcome for outcome. *)
let executor ?(config = Config.default) ~seed (sut : Sut.t) campaign =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Runner.executor: %s" msg));
  let {
    Config.max_ms;
    truncate_after_ms;
    run_timeout_ms;
    retries;
    _;
  } =
    config
  in
  let experiments = Array.of_list (Campaign.experiments campaign) in
  let total = Array.length experiments in
  let arena = make_arena sut in
  let goldens : (string, Golden.frozen) Hashtbl.t = Hashtbl.create 8 in
  let golden_for tc =
    let id = Testcase.id tc in
    match Hashtbl.find_opt goldens id with
    | Some frozen -> frozen
    | None ->
        Log.debug (fun m -> m "golden run for %s" id);
        let frozen = Golden.freeze (golden_run ~max_ms sut tc) in
        Hashtbl.add goldens id frozen;
        frozen
  in
  fun index ->
    if index < 0 || index >= total then
      invalid_arg
        (Printf.sprintf "Runner.executor: index %d outside campaign of %d"
           index total);
    let outcome, _traces, retried =
      run_one ~arena ~seed ?truncate_after_ms ?run_timeout_ms ~retries
        ~keep:false ~golden_for sut experiments index
    in
    (outcome, retried)

(* The work source's runnable indices, distributed over [jobs] worker
   domains.  Each worker owns a private arena (sample buffer,
   divergence scratch) so the hot loop is allocation-free and domains
   share only the frozen goldens, which are immutable.  Workers hand
   finished outcomes to the coordinating domain over a queue; journal
   appends, [Plan.complete] and [on_event] / [on_run_traces] callbacks
   happen only there, so callers never need thread-safe callbacks and
   the journal has a single writer.

   A planned source can be momentarily empty while a round barrier
   waits on in-flight runs, so an empty [take] is not the end: workers
   sleep on [work_cond] and the coordinator wakes them after every
   completion — either the barrier advanced and refilled the queue, or
   the source is exhausted and they drain out. *)
let run_parallel ~jobs ~seed ?truncate_after_ms ?run_timeout_ms ?retries
    ~fail_fast ~keep ~stop ~experiments ~source ~golden_for ~outcomes ~record
    sut =
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let queue = Queue.create () in
  let post msg =
    Mutex.lock mutex;
    Queue.push msg queue;
    Condition.signal cond;
    Mutex.unlock mutex
  in
  let poisoned = Atomic.make false in
  let work_mutex = Mutex.create () in
  let work_cond = Condition.create () in
  let wake_workers () =
    Mutex.lock work_mutex;
    Condition.broadcast work_cond;
    Mutex.unlock work_mutex
  in
  (* Blocks until an index is runnable, the source is exhausted, or the
     campaign was poisoned (fail-fast, adaptive stop, worker death). *)
  let rec take_next () =
    if Atomic.get poisoned then None
    else
      match Plan.take source ~max:1 with
      | idx :: _ -> Some idx
      | [] ->
          if Plan.exhausted source then None
          else begin
            Mutex.lock work_mutex;
            (* Re-check under the lock: completions broadcast under it,
               so a wakeup between check and wait cannot be lost. *)
            if
              (not (Atomic.get poisoned))
              && Plan.pending source = 0
              && not (Plan.exhausted source)
            then Condition.wait work_cond work_mutex;
            Mutex.unlock work_mutex;
            take_next ()
          end
  in
  let worker wid () =
    let arena = make_arena sut in
    let rec loop () =
      match take_next () with
      | None -> ()
      | Some idx ->
          let outcome, traces, retried =
            run_one ~arena ~seed ?truncate_after_ms ?run_timeout_ms ?retries
              ~keep ~golden_for sut experiments idx
          in
          post (Ok (idx, wid, outcome, traces, retried));
          if fail_fast && Results.is_failed outcome.Results.status then
            raise (Failed_run { index = idx; outcome })
          else loop ()
    in
    match loop () with () -> post (Error None) | exception e -> post (Error (Some e))
  in
  let domains = List.init jobs (fun wid -> Domain.spawn (worker wid)) in
  let live = ref jobs and failure = ref None in
  while !live > 0 do
    Mutex.lock mutex;
    while Queue.is_empty queue do
      Condition.wait cond mutex
    done;
    let batch = Queue.fold (fun acc m -> m :: acc) [] queue in
    Queue.clear queue;
    Mutex.unlock mutex;
    List.iter
      (function
        | Ok (idx, wid, outcome, traces, retried) ->
            outcomes.(idx) <- Some outcome;
            record ~index:idx ~worker:wid ~retries:retried outcome traces;
            Plan.complete source ~index:idx outcome;
            (* An adaptive stop poisons the source exactly like a
               fail-fast abort: surviving workers take no new indices
               and the runs already in flight still complete and
               journal. *)
            if stop () then Atomic.set poisoned true;
            wake_workers ()
        | Error None -> decr live
        | Error (Some e) ->
            (* Poison the source so the surviving workers stop taking
               new indices; they still finish (and journal) the runs
               already in flight before draining out. *)
            Atomic.set poisoned true;
            if !failure = None then failure := Some e;
            decr live;
            wake_workers ())
      (List.rev batch)
  done;
  List.iter Domain.join domains;
  match !failure with Some e -> raise e | None -> ()

let run ?(config = Config.default) ?on_event ?on_run_traces ?live ?select
    ?cells ?recipe ?plan (sut : Sut.t) campaign =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Runner.run: %s" msg));
  let {
    Config.max_ms;
    seed;
    truncate_after_ms;
    run_timeout_ms;
    retries;
    fail_fast;
    jobs;
    journal;
    resume;
    journal_batch;
    keep_traces;
    stop_when;
    budget = _;
    plan = _;
  } =
    config
  in
  if stop_when <> None && live = None then
    invalid_arg "Runner.run: stop_when requires a live analysis";
  if config.Config.budget <> None && plan = None then
    invalid_arg "Runner.run: a budget requires a plan (see Plan.create)";
  let keep = keep_traces || on_run_traces <> None in
  let experiments = Array.of_list (Campaign.experiments campaign) in
  let total = Array.length experiments in
  let outcomes = Array.make total None in
  let skipped, journalled_rounds =
    match journal with
    | Some path when resume && Sys.file_exists path ->
        replay_journal path ~outcomes ~sut ~campaign ~seed ~total
    | _ -> (0, false)
  in
  let writer =
    match journal with
    | None -> None
    | Some path ->
        Some
          (or_invalid
             (if skipped > 0 then Journal.append_to ~batch:journal_batch path
              else
                let w =
                  Journal.create ~batch:journal_batch ?recipe ~path
                    ~sut:sut.Sut.name ~campaign:campaign.Campaign.name ~seed
                    ~total ()
                in
                (* Cell provenance lands right after the header, before
                   any outcome, so even an immediately killed reuse
                   campaign leaves its plan on record.  Resumes append
                   to the existing journal and never rewrite it. *)
                match (w, cells) with
                | Ok w, Some cells ->
                    Result.map (fun () -> w) (Journal.append_cells w cells)
                | w, _ -> w))
  in
  (* Reorder buffer: parallel completions arrive in scheduling order,
     but the journal is written in strict campaign-index order — a
     cursor chases the first still-missing index, so a journal is
     always byte-identical to the serial journal's prefix, whatever
     the interleaving.  [written.(i)] marks records already on disk
     (journal replays count).  Workers are never stalled: a completion
     beyond the gap parks in [outcomes] and the cursor drains it the
     moment the gap fills. *)
  let written = Array.make total false in
  Array.iteri (fun i o -> if o <> None then written.(i) <- true) outcomes;
  (* Deselected indices will never produce a record; marking them
     written up front keeps the gap-chasing cursor moving, so selected
     runs still stream to disk in strict index order instead of parking
     until close. *)
  (match select with
  | Some selected ->
      Array.iteri
        (fun i w -> if (not w) && not (selected i) then written.(i) <- true)
        written
  | None -> ());
  let next_write = ref 0 in
  let append_in_order () =
    match writer with
    | None -> ()
    | Some w ->
        let rec advance () =
          if !next_write < total then
            if written.(!next_write) then begin
              incr next_write;
              advance ()
            end
            else
              match outcomes.(!next_write) with
              | Some o ->
                  or_invalid (Journal.append w ~index:!next_write o);
                  written.(!next_write) <- true;
                  incr next_write;
                  advance ()
              | None -> ()
        in
        advance ()
  in
  (* An early stop (fail-fast, adaptive rule, or a raising callback)
     can leave completed runs parked beyond the cursor's gap; they are
     appended out of order before close so no finished work is lost —
     resume re-runs only the genuinely missing indices. *)
  let sweep_tail () =
    match writer with
    | None -> ()
    | Some w ->
        for idx = !next_write to total - 1 do
          if not written.(idx) then
            match outcomes.(idx) with
            | Some o ->
                or_invalid (Journal.append w ~index:idx o);
                written.(idx) <- true
            | None -> ()
        done
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun w ->
          sweep_tail ();
          Journal.close w)
        writer)
    (fun () ->
      (* The shared work source: every backend pulls indices from a
         [Plan.t].  Unplanned campaigns get the static single-round
         source (the historical cursor behaviour); planned campaigns
         are primed with the replayed outcomes so the budget scheduler
         re-derives its round sequence instead of re-executing them. *)
      let source =
        match plan with
        | Some p ->
            Array.iteri
              (fun index -> function
                | Some outcome -> Plan.prime p ~index outcome
                | None -> ())
              outcomes;
            p
        | None ->
            Plan.static ?select
              ~done_:(fun idx -> outcomes.(idx) <> None)
              ~total ()
      in
      let remaining = Plan.candidates source in
      Log.info (fun m ->
          m "campaign %s on %s: %d runs (%d journalled) across %d domain%s"
            campaign.Campaign.name sut.Sut.name total skipped jobs
            (if jobs = 1 then "" else "s"));
      let emit ev = match on_event with Some f -> f ev | None -> () in
      emit (Started { total; skipped; jobs });
      (* Replayed outcomes enter the live analysis in index order before
         anything executes, so a resumed adaptive campaign judges its
         stop rule over exactly the evidence an uninterrupted one has
         seen at the same point. *)
      (match live with
      | Some l when skipped > 0 ->
          Array.iter
            (function Some o -> ignore (Live.observe l o) | None -> ())
            outcomes;
          emit (Analysis_tick (Live.digest l))
      | _ -> ());
      let stop () =
        match (live, stop_when) with
        | Some l, Some rule -> Live.satisfied l rule
        | _ -> false
      in
      let goldens = goldens_for ~max_ms sut experiments remaining in
      emit (Goldens_done { testcases = String_map.cardinal goldens });
      let golden_for tc = String_map.find (Testcase.id tc) goldens in
      let completed = ref skipped in
      let record ~index ~worker ~retries outcome traces =
        append_in_order ();
        (match (on_run_traces, traces) with
        | Some f, Some set -> f ~index set
        | _ -> ());
        incr completed;
        emit
          (Run_done
             {
               index;
               worker;
               completed = !completed;
               total;
               status = outcome.Results.status;
               retries;
             });
        match live with
        | Some l -> emit (Analysis_tick (Live.observe l outcome))
        | None -> ()
      in
      let stopped = ref (stop ()) in
      if jobs = 1 then begin
        let arena = make_arena sut in
        let running = ref (not !stopped) in
        while !running do
          match Plan.take source ~max:1 with
          | [] ->
              (* A serial barrier resolves synchronously in [complete],
                 so an empty take means the source is exhausted. *)
              running := false
          | idx :: _ ->
              let outcome, traces, retried =
                run_one ~arena ~seed ?truncate_after_ms ?run_timeout_ms
                  ~retries ~keep ~golden_for sut experiments idx
              in
              outcomes.(idx) <- Some outcome;
              record ~index:idx ~worker:0 ~retries:retried outcome traces;
              Plan.complete source ~index:idx outcome;
              if fail_fast && Results.is_failed outcome.Results.status then
                raise (Failed_run { index = idx; outcome });
              if stop () then running := false
        done
      end
      else if not !stopped then
        run_parallel ~jobs ~seed ?truncate_after_ms ?run_timeout_ms ~retries
          ~fail_fast ~keep ~stop ~experiments ~source ~golden_for ~outcomes
          ~record sut;
      (* A planned campaign that ran its schedule to exhaustion leaves
         its allocation history on record: parked records first (the
         journal stays run-records-then-rounds), then the rounds in one
         batch.  A rule-stopped or killed planned campaign journals no
         rounds — its resume re-derives and records them at the real
         finish — and a resumed already-finished journal never doubles
         them. *)
      (match (writer, plan) with
      | Some w, Some p when (not journalled_rounds) && Plan.exhausted p ->
          sweep_tail ();
          or_invalid (Journal.append_rounds w (Plan.rounds p))
      | _ -> ());
      emit (Finished { completed = !completed; total });
      let results =
        Results.create ~sut:sut.Sut.name ~campaign:campaign.Campaign.name
      in
      Array.iter
        (function
          | Some outcome -> Results.add results outcome
          | None ->
              (* Only an adaptive stop, a cell-reuse selection or a
                 budget plan may leave runs unexecuted. *)
              assert (stop_when <> None || select <> None || plan <> None))
        outcomes;
      results)

(* ------------------------------------------------------------------ *)
(* Deprecated entry points. *)

let run_campaign ?max_ms ?seed ?truncate_after_ms ?on_progress sut campaign =
  let on_event =
    Option.map
      (fun f -> function
        | Run_done { completed; total; _ } -> f { completed; total }
        | Started _ | Goldens_done _ | Worker_attached _ | Analysis_tick _
        | Finished _ -> ())
      on_progress
  in
  run ~config:(Config.make ?max_ms ?seed ?truncate_after_ms ()) ?on_event sut
    campaign

let run_campaign_parallel ?max_ms ?seed ?truncate_after_ms ?domains sut
    campaign =
  let jobs =
    match domains with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Runner.run_campaign_parallel: domains must be >= 1"
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  run ~config:(Config.make ?max_ms ?seed ?truncate_after_ms ~jobs ()) sut
    campaign
