type t = { signal : string; mutable data : int array; mutable len : int }

let create ?(capacity = 1024) ~signal () =
  let capacity = max capacity 16 in
  { signal; data = Array.make capacity 0; len = 0 }

let signal t = t.signal
let length t = t.len

let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t j =
  if j < 0 || j >= t.len then
    invalid_arg (Printf.sprintf "Trace.get: index %d outside [0,%d)" j t.len)
  else t.data.(j)

let first_difference ?(from_ms = 0) ?(until_ms = max_int) a b =
  if not (String.equal a.signal b.signal) then
    invalid_arg
      (Printf.sprintf "Trace.first_difference: comparing %S with %S" a.signal
         b.signal);
  let common = min a.len b.len in
  let stop = min common until_ms in
  let rec go j =
    if j >= stop then
      if a.len <> b.len && common >= from_ms && common < until_ms then
        Some common
      else None
    else if a.data.(j) <> b.data.(j) then Some j
    else go (j + 1)
  in
  go (max from_ms 0)

let to_list t = List.init t.len (fun j -> t.data.(j))

let blit_into t dst ~pos =
  if pos < 0 || pos + t.len > Array.length dst then
    invalid_arg
      (Printf.sprintf "Trace.blit_into: %d samples do not fit at %d in %d"
         t.len pos (Array.length dst));
  Array.blit t.data 0 dst pos t.len

let of_list ~signal samples =
  let t = create ~capacity:(List.length samples) ~signal () in
  List.iter (push t) samples;
  t

let equal a b =
  String.equal a.signal b.signal
  && a.len = b.len
  && first_difference a b = None

let pp ppf t =
  (* Print straight from [data]; no intermediate list allocation. *)
  let shown = min t.len 16 in
  Fmt.pf ppf "@[<h>%s[%d]: " t.signal t.len;
  for j = 0 to shown - 1 do
    if j > 0 then Fmt.sp ppf ();
    Fmt.int ppf t.data.(j)
  done;
  Fmt.pf ppf "%s@]" (if t.len > 16 then " ..." else "")
