type t =
  | Bit_flip of int
  | Multi_bit of int list
  | Burst of { first : int; len : int }
  | Stuck_at of int
  | Offset of int
  | Noise of int
  | Replace_uniform
  | Intermittent of { model : t; period_ms : int; window_ms : int }
  | Delayed of { model : t; delay_ms : int }

let is_temporal = function
  | Intermittent _ | Delayed _ -> true
  | Bit_flip _ | Multi_bit _ | Burst _ | Stuck_at _ | Offset _ | Noise _
  | Replace_uniform ->
      false

let payload = function Intermittent { model; _ } | Delayed { model; _ } -> model | t -> t

let check_width width =
  if width < 1 || width > 30 then
    Error (Printf.sprintf "width must be in [1, 30], got %d" width)
  else Ok ()

let rec check ~width t =
  let mask = (1 lsl width) - 1 in
  match t with
  | Bit_flip b ->
      if b < 0 || b >= width then
        Error (Printf.sprintf "bit %d outside [0,%d)" b width)
      else Ok ()
  | Multi_bit [] -> Error "multi-bit needs at least one position"
  | Multi_bit bs ->
      if List.exists (fun b -> b < 0 || b >= width) bs then
        Error
          (Printf.sprintf "multi-bit position outside [0,%d) in {%s}" width
             (String.concat "," (List.map string_of_int bs)))
      else if List.length (List.sort_uniq Int.compare bs) <> List.length bs
      then Error "multi-bit positions must be distinct"
      else Ok ()
  | Burst { first; len } ->
      if len < 1 then Error "burst length must be >= 1"
      else if first < 0 || first + len > width then
        Error
          (Printf.sprintf "burst [%d,%d) outside [0,%d)" first (first + len)
             width)
      else Ok ()
  | Stuck_at _ | Offset _ | Replace_uniform -> Ok ()
  | Noise amp ->
      if amp < 1 || amp > mask then
        Error
          (Printf.sprintf "noise amplitude %d outside [1,%d]" amp mask)
      else Ok ()
  | Intermittent { model; period_ms; window_ms } ->
      if is_temporal model then Error "temporal error models cannot nest"
      else if period_ms < 1 then Error "intermittent period must be >= 1ms"
      else if window_ms < 1 then Error "intermittent window must be >= 1ms"
      else check ~width model
  | Delayed { model; delay_ms } ->
      if is_temporal model then Error "temporal error models cannot nest"
      else if delay_ms < 0 then Error "delay must be >= 0ms"
      else check ~width model

let validate ~width t = Result.bind (check_width width) (fun () -> check ~width t)

let validate_exn ~width t =
  match validate ~width t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Error_model.apply: " ^ msg)

(* The spatial corruption, assuming [t] is already validated and [v]
   already masked.  Every model corrupts: the result differs from [v]
   for all models except a [Stuck_at]/[Offset] that happens to coincide
   (which the user asked for explicitly). *)
let rec corrupt t ~width ~rng v =
  let mask = (1 lsl width) - 1 in
  match t with
  | Bit_flip b -> v lxor (1 lsl b)
  | Multi_bit bs -> List.fold_left (fun acc b -> acc lxor (1 lsl b)) v bs
  | Burst { first; len } -> v lxor (((1 lsl len) - 1) lsl first)
  | Stuck_at c -> c land mask
  | Offset d -> (v + d) land mask
  | Noise amp ->
      (* One draw over 2*amp outcomes, mapped onto [-amp,-1] u [1,amp]:
         the delta is never zero, and |delta| <= mask keeps it nonzero
         modulo 2^width, so the corrupted value always differs. *)
      let k = Simkernel.Rng.int rng (2 * amp) in
      let delta = if k < amp then k - amp else k - amp + 1 in
      (v + delta) land mask
  | Replace_uniform ->
      (* Draw from the mask *other* values and skip over [v], so the
         injection is never a no-op (a uniform draw over all 2^width
         values silently deflates error counts with probability
         2^-width).  Exactly one RNG draw, as before — but the stream
         differs from the pre-fix encoding, so journals recorded with
         the old draw do not replay byte-identically under uniform
         models. *)
      let r = Simkernel.Rng.int rng mask in
      if r >= v then r + 1 else r
  | Intermittent { model; _ } | Delayed { model; _ } ->
      corrupt model ~width ~rng v

let apply t ~width ~rng v =
  validate_exn ~width t;
  let mask = (1 lsl width) - 1 in
  corrupt t ~width ~rng (v land mask)

(* Injection lifetime: at which observer milliseconds (relative to the
   campaign's injection time) does the model corrupt the signal?
   Spatial models fire exactly once, at the injection time; [Delayed]
   shifts that single shot; [Intermittent] re-fires every period for a
   window. *)
let first_fire_ms t ~inject_ms =
  match t with
  | Delayed { delay_ms; _ } -> inject_ms + delay_ms
  | Bit_flip _ | Multi_bit _ | Burst _ | Stuck_at _ | Offset _ | Noise _
  | Replace_uniform | Intermittent _ ->
      inject_ms

let last_fire_ms t ~inject_ms =
  match t with
  | Delayed { delay_ms; _ } -> inject_ms + delay_ms
  | Intermittent { period_ms; window_ms; _ } ->
      inject_ms + ((window_ms - 1) / period_ms * period_ms)
  | Bit_flip _ | Multi_bit _ | Burst _ | Stuck_at _ | Offset _ | Noise _
  | Replace_uniform ->
      inject_ms

let fires t ~inject_ms ~ms =
  match t with
  | Delayed { delay_ms; _ } -> ms = inject_ms + delay_ms
  | Intermittent { period_ms; window_ms; _ } ->
      ms >= inject_ms
      && ms < inject_ms + window_ms
      && (ms - inject_ms) mod period_ms = 0
  | Bit_flip _ | Multi_bit _ | Burst _ | Stuck_at _ | Offset _ | Noise _
  | Replace_uniform ->
      ms = inject_ms

(* Width-aware normal form: behaviourally identical models map to the
   same value, so cache keys and journal descriptions never split on a
   spelling difference.  [apply (canonicalize ~width e)] equals
   [apply e] for every state and RNG stream (no canonical step adds or
   removes a random draw). *)
let rec canonicalize ~width t =
  let mask = (1 lsl width) - 1 in
  match t with
  | Bit_flip _ | Noise _ | Replace_uniform -> t
  | Multi_bit bs -> (
      match List.sort_uniq Int.compare bs with
      | [ b ] -> Bit_flip b
      | bs -> Multi_bit bs)
  | Burst { first; len } -> if len = 1 then Bit_flip first else t
  | Stuck_at c -> Stuck_at (c land mask)
  | Offset d -> Offset (d land mask)
  | Intermittent { model; period_ms; window_ms } ->
      let model = canonicalize ~width model in
      (* A window that never reaches the second period is a single
         shot at the injection time — the plain model. *)
      if window_ms <= period_ms then model
      else Intermittent { model; period_ms; window_ms }
  | Delayed { model; delay_ms } ->
      let model = canonicalize ~width model in
      if delay_ms = 0 then model else Delayed { model; delay_ms }

let bit_flips ~width =
  if width < 1 || width > 30 then
    invalid_arg "Error_model.bit_flips: width must be in [1, 30]";
  List.init width (fun b -> Bit_flip b)

let rec equal a b =
  match (a, b) with
  | Bit_flip x, Bit_flip y -> Int.equal x y
  | Multi_bit x, Multi_bit y -> List.equal Int.equal x y
  | Burst a, Burst b -> Int.equal a.first b.first && Int.equal a.len b.len
  | Stuck_at x, Stuck_at y -> Int.equal x y
  | Offset x, Offset y -> Int.equal x y
  | Noise x, Noise y -> Int.equal x y
  | Replace_uniform, Replace_uniform -> true
  | Intermittent a, Intermittent b ->
      equal a.model b.model
      && Int.equal a.period_ms b.period_ms
      && Int.equal a.window_ms b.window_ms
  | Delayed a, Delayed b ->
      equal a.model b.model && Int.equal a.delay_ms b.delay_ms
  | ( ( Bit_flip _ | Multi_bit _ | Burst _ | Stuck_at _ | Offset _ | Noise _
      | Replace_uniform | Intermittent _ | Delayed _ ),
      _ ) ->
      false

let rec describe = function
  | Bit_flip b -> Printf.sprintf "bit-flip@%d" b
  | Multi_bit bs ->
      Printf.sprintf "multi-bit@%s"
        (String.concat "+" (List.map string_of_int bs))
  | Burst { first; len } ->
      Printf.sprintf "burst@%d..%d" first (first + len - 1)
  | Stuck_at c -> Printf.sprintf "stuck-at %d" c
  | Offset d -> Printf.sprintf "offset %+d" d
  | Noise amp -> Printf.sprintf "noise %+d..%+d" (-amp) amp
  | Replace_uniform -> "replace-uniform"
  | Intermittent { model; period_ms; window_ms } ->
      Printf.sprintf "%s every %dms for %dms" (describe model) period_ms
        window_ms
  | Delayed { model; delay_ms } ->
      Printf.sprintf "%s after %dms" (describe model) delay_ms

let pp ppf t = Fmt.string ppf (describe t)

(* Roster grammar for the CLI's [--model] flag and the ablation bench:
   a spec names a family of models spanning the signal width, so every
   roster exercises the whole value like the paper's per-bit flips. *)
let roster_of_string ~width spec =
  let ( let* ) = Result.bind in
  let* () = check_width width in
  let mask = (1 lsl width) - 1 in
  let int_arg name s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)
  in
  let checked models =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        Result.map_error
          (fun msg -> Printf.sprintf "%s: %s" spec msg)
          (check ~width m))
      (Ok ()) models
    |> Result.map (fun () -> models)
  in
  let rec parse = function
    | [ "single-bit" ] -> Ok (bit_flips ~width)
    | [ "multi-bit"; k ] ->
        let* k = int_arg "multi-bit" k in
        if k < 1 || k > width then
          Error (Printf.sprintf "multi-bit: %d bits outside [1,%d]" k width)
        else
          (* One model per rotation of k positions spread evenly across
             the word; floor(i*width/k) is strictly increasing for
             k <= width, so positions stay distinct. *)
          checked
            (List.init width (fun b ->
                 Multi_bit
                   (List.sort_uniq Int.compare
                      (List.init k (fun i -> (b + (i * width / k)) mod width)))))
    | [ "burst"; len ] ->
        let* len = int_arg "burst" len in
        if len < 1 || len > width then
          Error (Printf.sprintf "burst: length %d outside [1,%d]" len width)
        else
          checked
            (List.init (width - len + 1) (fun first -> Burst { first; len }))
    | [ "stuck-at" ] -> Ok [ Stuck_at 0; Stuck_at mask ]
    | [ "stuck-at"; c ] ->
        let* c = int_arg "stuck-at" c in
        Ok [ Stuck_at (c land mask) ]
    | [ "offset"; d ] ->
        let* d = int_arg "offset" d in
        if d land mask = 0 then
          Error (Printf.sprintf "offset: %d is a no-op at width %d" d width)
        else checked [ Offset d; Offset (-d) ]
    | [ "noise"; amp ] ->
        let* amp = int_arg "noise" amp in
        checked [ Noise amp ]
    | [ "uniform" ] -> Ok [ Replace_uniform ]
    | "delayed" :: delay :: inner ->
        let* delay_ms = int_arg "delayed" delay in
        let* models =
          parse (if inner = [] then [ "single-bit" ] else inner)
        in
        checked (List.map (fun model -> Delayed { model; delay_ms }) models)
    | "intermittent" :: period :: window :: inner ->
        let* period_ms = int_arg "intermittent period" period in
        let* window_ms = int_arg "intermittent window" window in
        let* models =
          parse (if inner = [] then [ "single-bit" ] else inner)
        in
        checked
          (List.map
             (fun model -> Intermittent { model; period_ms; window_ms })
             models)
    | _ ->
        Error
          (Printf.sprintf
             "unknown error-model roster %S (expected single-bit, \
              multi-bit:K, burst:L, stuck-at[:C], offset:D, noise:A, \
              uniform, delayed:MS[:SPEC], intermittent:PERIOD:WINDOW[:SPEC])"
             spec)
  in
  parse (String.split_on_char ':' spec)
