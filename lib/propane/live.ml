type rule = [ `Rankings_stable of int | `Ci_width of float ]

let pp_rule ppf = function
  | `Rankings_stable n -> Fmt.pf ppf "rankings-stable:%d" n
  | `Ci_width w -> Fmt.pf ppf "ci-width:%g" w

(* [%h] prints the exact binary float, so encode/parse round-trips
   bit for bit — [pp_rule]'s [%g] is for humans and rounds. *)
let rule_to_string = function
  | `Rankings_stable n -> Printf.sprintf "rankings-stable:%d" n
  | `Ci_width w -> Printf.sprintf "ci-width:%h" w

let rule_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "bad stop rule %S: expected rankings-stable:N (N >= 1) or ci-width:W \
          (0 < W <= 1)"
         s)
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "rankings-stable" -> (
          match int_of_string_opt v with
          | Some n when n >= 1 -> Ok (`Rankings_stable n)
          | Some _ | None -> fail ())
      | "ci-width" -> (
          match float_of_string_opt v with
          | Some w when w > 0.0 && w <= 1.0 -> Ok (`Ci_width w)
          | Some _ | None -> fail ())
      | _ -> fail ())

type digest = {
  runs_observed : int;
  max_ci_width : float;
  stable_for : int;
  resolved_modules : int;
  module_count : int;
}

type t = {
  stream : Estimator.Stream.t;
  engine : Propagation.Analysis.Engine.engine;
  targets : string list;
  module_count : int;
  mutable last_order : string list option;
  mutable stable_for : int;
}

let create ?attribution ?on_failure ~model ~targets () =
  let stream = Estimator.Stream.create ?attribution ?on_failure ~model () in
  let engine = Propagation.Analysis.Engine.create model in
  (* Prime the engine with the zero-trial matrices so snapshots work
     from the first run on; updates then only touch dirty modules. *)
  Propagation.String_map.iter
    (Propagation.Analysis.Engine.update engine)
    (Estimator.Stream.matrices stream);
  {
    stream;
    engine;
    targets;
    module_count = List.length (Propagation.System_model.modules model);
    last_order = None;
    stable_for = 0;
  }

let snapshot t = Propagation.Analysis.Engine.snapshot t.engine

let order_of (analysis : Propagation.Analysis.t) =
  List.map
    (fun (r : Propagation.Ranking.module_row) -> r.module_name)
    (Propagation.Ranking.sort_module_rows
       Propagation.Ranking.By_relative_permeability analysis.module_rows)

let resolved_of (analysis : Propagation.Analysis.t) =
  List.length
    (List.filter
       (fun (r : Propagation.Ranking.module_row) -> r.resolved)
       analysis.module_rows)

let digest ?analysis t =
  let analysis =
    match analysis with
    | Some a -> Some a
    | None -> Result.to_option (snapshot t)
  in
  {
    runs_observed = Estimator.Stream.runs_observed t.stream;
    max_ci_width = Estimator.Stream.max_width ~targets:t.targets t.stream;
    stable_for = t.stable_for;
    resolved_modules =
      (match analysis with Some a -> resolved_of a | None -> 0);
    module_count = t.module_count;
  }

let observe t outcome =
  Estimator.Stream.observe t.stream outcome;
  List.iter
    (fun (name, matrix) ->
      Propagation.Analysis.Engine.update t.engine name matrix)
    (Estimator.Stream.drain_dirty t.stream);
  let analysis = Result.to_option (snapshot t) in
  (match analysis with
  | None -> ()
  | Some a ->
      let order = order_of a in
      (match t.last_order with
      | Some prev when prev = order -> t.stable_for <- t.stable_for + 1
      | _ -> t.stable_for <- 0);
      t.last_order <- Some order);
  digest ?analysis t

let satisfied t rule =
  Estimator.Stream.runs_observed t.stream > 0
  &&
  match rule with
  | `Rankings_stable n -> t.stable_for >= n
  | `Ci_width w ->
      Estimator.Stream.max_width ~targets:t.targets t.stream <= w

let digest t = digest ?analysis:None t
let targets t = t.targets
let target_width t ~target = Estimator.Stream.target_width t.stream ~target
let runs_observed t = Estimator.Stream.runs_observed t.stream
