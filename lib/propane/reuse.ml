type target_state = {
  target : string;
  cells : Cell.t list;
  entries : (Cell.t * Cache.entry) list;  (* loaded rows when clean *)
  clean : bool;
}

type t = {
  dir : string;
  campaign : Campaign.t;
  model : Propagation.System_model.t;
  states : target_state list;  (* campaign target order *)
  selected : bool array;  (* per target, campaign order *)
}

let plan ?(recipe = "") ~sut ~model ~dir campaign =
  let cell_plan = Cell.plan ~sut ~model ~recipe campaign in
  let states =
    List.map
      (fun (target, cells) ->
        (* One miss dirties the whole target: its runs re-execute and
           refresh every cell they feed, hit or not. *)
        let entries =
          List.filter_map
            (fun (cell : Cell.t) ->
              match cell.Cell.digest with
              | None -> None
              | Some _ -> (
                  match Cache.load ~dir ~key:cell.Cell.key with
                  | Some entry
                    when String.equal entry.Cache.module_name
                           cell.Cell.module_name
                         && String.equal entry.Cache.target cell.Cell.target
                         && Array.length entry.Cache.outputs
                            = Array.length cell.Cell.outputs
                         && Array.for_all2 String.equal entry.Cache.outputs
                              cell.Cell.outputs ->
                      Some (cell, entry)
                  | _ -> None))
            cells
        in
        let clean = List.length entries = List.length cells in
        { target; cells; entries = (if clean then entries else []); clean })
      cell_plan.Cell.by_target
  in
  {
    dir;
    campaign;
    model;
    states;
    selected = Array.of_list (List.map (fun st -> not st.clean) states);
  }

let total_cells t =
  List.fold_left (fun acc st -> acc + List.length st.cells) 0 t.states

let reused_cells t =
  List.fold_left
    (fun acc st -> if st.clean then acc + List.length st.cells else acc)
    0 t.states

let clean_targets t =
  List.filter_map
    (fun st -> if st.clean then Some st.target else None)
    t.states

let dirty_targets t =
  List.filter_map
    (fun st -> if st.clean then None else Some st.target)
    t.states

let selected_runs t =
  List.length (dirty_targets t) * Campaign.runs_per_target t.campaign

(* Experiments are targets-major ({!Campaign.experiments}): index
   [idx] injects into target number [idx / runs_per_target]. *)
let select t =
  let rpt = Campaign.runs_per_target t.campaign in
  fun idx -> idx >= 0 && idx / rpt < Array.length t.selected
             && t.selected.(idx / rpt)

let journal_cells t =
  List.concat_map
    (fun st ->
      List.map
        (fun (cell : Cell.t) ->
          {
            Journal.target = cell.Cell.target;
            module_name = cell.Cell.module_name;
            key = cell.Cell.key;
            reused = st.clean;
          })
        st.cells)
    t.states

let compose ?attribution ?on_failure t results =
  let stream =
    Estimator.Stream.create ?attribution ?on_failure ~model:t.model ()
  in
  List.iter
    (fun st ->
      List.iter
        (fun ((cell : Cell.t), entry) ->
          Estimator.Stream.seed_row stream ~module_name:cell.Cell.module_name
            ~target:cell.Cell.target entry.Cache.counts)
        st.entries)
    t.states;
  List.iter (Estimator.Stream.observe stream) (Results.outcomes results);
  stream

let persist t stream results =
  let rpt = Campaign.runs_per_target t.campaign in
  List.fold_left
    (fun acc st ->
      if st.clean || Results.injections_into results st.target <> rpt then acc
      else
        List.fold_left
          (fun acc (cell : Cell.t) ->
            match (acc, cell.Cell.digest) with
            | (Error _ as e), _ -> e
            | Ok (), None -> Ok ()
            | Ok (), Some _ -> (
                match
                  Estimator.Stream.counts_row stream
                    ~module_name:cell.Cell.module_name
                    ~target:cell.Cell.target
                with
                | None -> Ok ()
                | Some counts ->
                    Cache.store ~dir:t.dir ~key:cell.Cell.key
                      {
                        Cache.module_name = cell.Cell.module_name;
                        target = cell.Cell.target;
                        outputs = cell.Cell.outputs;
                        counts;
                      }))
          acc st.cells)
    (Ok ()) t.states

let stats t =
  let total = total_cells t in
  let reused = reused_cells t in
  {
    Cache.cells = total;
    reused;
    fresh = total - reused;
    runs_total = Campaign.size t.campaign;
    runs_selected = selected_runs t;
  }

let write_stats t = Cache.write_stats ~dir:t.dir (stats t)
