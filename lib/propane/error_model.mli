(** SWIFI error models.

    The paper's campaign injects single bit-flips (Section 7.3); the
    other models are the standard SWIFI repertoire, implemented because
    Section 6 flags error-model sensitivity ("the type of injected
    errors can also effect the estimates") and the benchmark suite runs
    an error-model ablation.

    Models are either {e spatial} (how the value is corrupted) or
    {e temporal} ({!Intermittent}/{!Delayed}: when the corruption
    fires, wrapping a spatial payload).  Temporal models never nest. *)

type t =
  | Bit_flip of int  (** toggle bit [b] (0 = LSB) of the current value *)
  | Multi_bit of int list  (** toggle each listed bit (distinct positions) *)
  | Burst of { first : int; len : int }
      (** toggle [len] adjacent bits starting at [first] *)
  | Stuck_at of int  (** replace the value with a constant *)
  | Offset of int  (** add a (possibly negative) delta, wrapping *)
  | Noise of int
      (** add a uniform nonzero delta in [[-amp, amp]], wrapping *)
  | Replace_uniform  (** replace with a uniform random {e different} value *)
  | Intermittent of { model : t; period_ms : int; window_ms : int }
      (** re-apply [model] every [period_ms] while [ms - inject_ms <
          window_ms], starting at the injection time *)
  | Delayed of { model : t; delay_ms : int }
      (** arm at injection time, apply [model] once [delay_ms] later *)

val apply : t -> width:int -> rng:Simkernel.Rng.t -> int -> int
(** [apply e ~width ~rng v] is the corrupted value; the result is always
    truncated to [width] bits.  Only [Replace_uniform] and [Noise]
    consume randomness (exactly one draw each).  [Replace_uniform]
    never returns [v] itself: it draws from the [2^width - 1] other
    values.  Temporal models corrupt with their payload; {e when} they
    fire is the runner's business, via {!fires}.
    @raise Invalid_argument if [validate] rejects the model or [width]
    is outside [1, 30]. *)

val validate : width:int -> t -> (unit, string) result
(** Structural validity at a signal width: bit positions inside
    [[0, width)], distinct multi-bit positions, burst inside the word,
    noise amplitude in [[1, 2^width - 1]], positive periods/windows,
    non-negative delays, and no temporal nesting. *)

val is_temporal : t -> bool
(** [Intermittent]/[Delayed] at the top level. *)

val payload : t -> t
(** The spatial model that actually corrupts: the wrapped model for
    temporal values, [t] itself otherwise. *)

val fires : t -> inject_ms:int -> ms:int -> bool
(** Does the model corrupt the signal at observer millisecond [ms],
    given the campaign injection time [inject_ms]?  Spatial models fire
    exactly at [inject_ms]; [Delayed] fires once at
    [inject_ms + delay_ms]; [Intermittent] fires at
    [inject_ms + k * period_ms] for every offset inside the window. *)

val first_fire_ms : t -> inject_ms:int -> int
(** The first millisecond at which {!fires} holds. *)

val last_fire_ms : t -> inject_ms:int -> int
(** The last millisecond at which {!fires} holds — the end of the
    injection lifetime; the runner must keep the run alive through it. *)

val canonicalize : width:int -> t -> t
(** Width-aware normal form: [Stuck_at]/[Offset] constants reduced
    modulo [2^width], [Multi_bit] positions sorted (singleton becomes
    [Bit_flip], as does a length-1 [Burst]), degenerate temporal
    wrappers ([delay_ms = 0], or a window that never reaches a second
    period) unwrapped.  Behaviourally identical models canonicalize to
    equal values, and [apply (canonicalize ~width e)] agrees with
    [apply e] on every input and RNG stream — so cache keys and journal
    descriptions built from the canonical form never split spuriously. *)

val bit_flips : width:int -> t list
(** One [Bit_flip] per bit position, LSB first — the paper's "bit-flips
    in each bit position" of a 16-bit signal. *)

val roster_of_string : width:int -> string -> (t list, string) result
(** Parse a CLI roster spec into a campaign error list:
    ["single-bit"] (one flip per bit — the default, the paper's model),
    ["multi-bit:K"] (one K-bit flip per rotation, positions spread
    evenly), ["burst:L"] (every L-bit adjacent burst),
    ["stuck-at"] (stuck-at-0 and stuck-at-ones), ["stuck-at:C"],
    ["offset:D"] ([+D] and [-D]), ["noise:A"], ["uniform"],
    ["delayed:MS[:SPEC]"] and ["intermittent:PERIOD:WINDOW[:SPEC]"]
    (wrapping every model of the inner spec, default single-bit). *)

val equal : t -> t -> bool
val describe : t -> string
val pp : Format.formatter -> t -> unit
