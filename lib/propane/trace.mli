(** Per-signal execution traces.

    PROPANE "is capable of creating traces of individual variables ...
    during the execution.  Each trace of a variable from an injection
    experiment is compared to the corresponding trace in the Golden Run"
    (Section 6).  A trace holds one sample per simulated millisecond,
    sample [j] being the signal value at the end of millisecond [j]. *)

type t

val create : ?capacity:int -> signal:string -> unit -> t
val signal : t -> string
val length : t -> int
(** Number of samples, i.e. the traced duration in ms. *)

val push : t -> int -> unit
(** Appends the sample for the next millisecond. *)

val get : t -> int -> int
(** [get t j] is the sample of millisecond [j].
    @raise Invalid_argument when out of range. *)

val first_difference : ?from_ms:int -> ?until_ms:int -> t -> t -> int option
(** [first_difference ~from_ms ~until_ms a b] is the earliest
    millisecond in [[from_ms, until_ms)] where the traces disagree,
    [None] if they agree there.  [until_ms] defaults to unbounded.  A
    length mismatch inside the window counts as a difference at the end
    of the shorter trace (a run that stopped early {e is} a
    divergence); samples at or beyond [until_ms] are never inspected,
    so a deliberately truncated run compares clean against a longer
    golden run.  @raise Invalid_argument if the signals differ —
    comparing traces of different variables is a bug. *)

val to_list : t -> int list
val of_list : signal:string -> int list -> t

val blit_into : t -> int array -> pos:int -> unit
(** [blit_into t dst ~pos] copies all [length t] samples into [dst]
    starting at [pos].  @raise Invalid_argument if they do not fit. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
