(** Error-model ablation: how far does the module ranking move when the
    fault model changes?

    The paper's Section 6 flags exactly this threat ("the type of
    injected errors can also effect the estimates") but measures only
    single bit-flips.  {!study} turns the assumption into a measured
    axis: one campaign per error-model roster over the same workload
    grid, each reduced to its Table-2 module ranking (relative
    permeability, PR 5 confidence intervals and resolvedness), plus the
    Kendall rank correlation against the first roster — conventionally
    the paper's single-bit baseline. *)

type row = {
  spec : string;  (** roster label, e.g. ["single-bit"] or ["burst:4"] *)
  runs : int;  (** campaign size for this roster *)
  order : string list;  (** module names, highest relative permeability first *)
  estimates : (string * Propagation.Estimate.t * bool) list;
      (** per module, ranking order: relative permeability with its 95%
          interval and whether the rank vs. the next module is resolved *)
  tau_vs_baseline : float;
      (** Kendall tau of [order] against the first roster's order; 1.0
          when identical (and for the baseline row itself) *)
}

val study :
  ?config:Runner.Config.t ->
  ?attribution:Estimator.attribution ->
  sut:Sut.t ->
  model:Propagation.System_model.t ->
  campaign_of:(Error_model.t list -> Campaign.t) ->
  (string * Error_model.t list) list ->
  (row list, string) result
(** Run one campaign per [(spec, errors)] roster under [config]
    (default {!Runner.Config.default}) and rank the modules.  The
    rosters share workload and injection grid — only the campaign's
    error list varies — so ranking shifts are attributable to the
    error model alone.  Fails with the estimator's or analysis's
    message on inconsistent matrices. *)
