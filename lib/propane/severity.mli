(** Failure-mode classification of injection runs.

    Permeability says how likely an error {e moves}; severity says what
    it ultimately {e does}.  Classic SWIFI studies bin every injection
    run into outcome classes; crossing those bins with the per-signal
    exposure rankings substantiates the placement argument (an EDM site
    is valuable when the errors passing it tend to end in the severe
    bins).

    Classification rules, applied in order:
    - no signal diverged from the golden run: {!No_effect} (the error
      was overwritten or masked);
    - no {e system output} diverged: {!Internal_only} (a latent error:
      internal state differs but the environment never saw it);
    - an output diverged but the target-specific mission judge accepts
      the run: {!Output_deviation} (degraded but successful service);
    - the mission judge rejects it: {!Mission_failure}.

    A run whose target {e crashed} or {e hung} (see {!Results.status})
    never delivered its service at all; by default it is classed
    {!Mission_failure} without consulting the mission judge, whose
    traces would be partial. *)

type verdict = No_effect | Internal_only | Output_deviation | Mission_failure

val verdicts : verdict list
(** In severity order, least severe first. *)

val verdict_name : verdict -> string

type report = {
  target : string;  (** injected signal *)
  runs : int;
  no_effect : int;
  internal_only : int;
  output_deviation : int;
  mission_failure : int;
}

val count : report -> verdict -> int

val observer :
  outputs:string list ->
  mission_failed:(golden:Trace_set.t -> run:Trace_set.t -> bool) ->
  golden:Trace_set.t ->
  frozen:Golden.frozen ->
  Observer.t * (unit -> verdict)
(** Streaming severity observer for one injection run: detects
    divergences on the fly against [frozen] while recording the raw
    traces the mission judge needs, and returns a thunk producing the
    verdict once the run finished.  Pass the same golden both raw and
    frozen so per-run refreezing is avoided.  The embedded recorder
    never saturates, so driving this observer keeps the run full-length
    — severity classification must see the run's end. *)

val assess :
  ?max_ms:int ->
  ?seed:int64 ->
  ?run_timeout_ms:int ->
  ?on_failure:[ `Mission_failure | `Exclude ] ->
  outputs:string list ->
  mission_failed:(golden:Trace_set.t -> run:Trace_set.t -> bool) ->
  Sut.t ->
  Campaign.t ->
  report list
(** Runs the campaign with full-length injection runs and classifies
    every run; one report per target signal, in campaign order.
    [mission_failed] judges the end-to-end service from the traces
    (e.g. "the aircraft was not arrested within the runway").

    Crashing SUTs do not abort the assessment: a crashed — or, with
    [run_timeout_ms], hung — run is classed per [on_failure]:
    [`Mission_failure] (default) bins it as {!Mission_failure};
    [`Exclude] drops it from the report entirely. *)

val pp_report : Format.formatter -> report -> unit
