type status =
  | Completed
  | Crashed of { at_ms : int; reason : string }
  | Hung of { budget_ms : int }

let is_failed = function Completed -> false | Crashed _ | Hung _ -> true

let pp_status ppf = function
  | Completed -> Fmt.string ppf "completed"
  | Crashed { at_ms; reason } -> Fmt.pf ppf "crashed@%dms (%s)" at_ms reason
  | Hung { budget_ms } -> Fmt.pf ppf "hung (>%dms wall)" budget_ms

type outcome = {
  testcase : string;
  injection : Injection.t;
  divergences : Golden.divergence list;
  status : status;
}

module String_map = Map.Make (String)

type t = {
  sut : string;
  campaign : string;
  mutable rev_outcomes : outcome list;
  mutable count : int;
  mutable crashed : int;
  mutable hung : int;
  mutable per_target : int String_map.t;
}

let create ~sut ~campaign =
  {
    sut;
    campaign;
    rev_outcomes = [];
    count = 0;
    crashed = 0;
    hung = 0;
    per_target = String_map.empty;
  }

let sut t = t.sut
let campaign t = t.campaign

let add t outcome =
  t.rev_outcomes <- outcome :: t.rev_outcomes;
  t.count <- t.count + 1;
  (match outcome.status with
  | Completed -> ()
  | Crashed _ -> t.crashed <- t.crashed + 1
  | Hung _ -> t.hung <- t.hung + 1);
  let target = outcome.injection.Injection.target in
  let prev = Option.value ~default:0 (String_map.find_opt target t.per_target) in
  t.per_target <- String_map.add target (prev + 1) t.per_target

let count t = t.count
let crashed_count t = t.crashed
let hung_count t = t.hung
let failed_count t = t.crashed + t.hung
let outcomes t = List.rev t.rev_outcomes

let by_target t target =
  List.filter
    (fun o -> String.equal o.injection.Injection.target target)
    (outcomes t)

let injections_into t target =
  Option.value ~default:0 (String_map.find_opt target t.per_target)

let divergence_of outcome signal =
  List.find_map
    (fun (d : Golden.divergence) ->
      if String.equal d.signal signal then Some d.first_ms else None)
    outcome.divergences

let merge a b =
  if not (String.equal a.sut b.sut && String.equal a.campaign b.campaign) then
    invalid_arg "Results.merge: different SUT or campaign";
  let merged = create ~sut:a.sut ~campaign:a.campaign in
  List.iter (add merged) (outcomes a);
  List.iter (add merged) (outcomes b);
  merged

let pp_summary ppf t =
  let with_div =
    List.length (List.filter (fun o -> o.divergences <> []) (outcomes t))
  in
  Fmt.pf ppf "%s/%s: %d runs, %d with divergences" t.sut t.campaign t.count
    with_div;
  if t.crashed + t.hung > 0 then
    Fmt.pf ppf " (%d crashed, %d hung)" t.crashed t.hung
