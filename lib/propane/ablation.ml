type row = {
  spec : string;
  runs : int;
  order : string list;
  estimates : (string * Propagation.Estimate.t * bool) list;
  tau_vs_baseline : float;
}

let rank ~model ~attribution results =
  let ( let* ) = Result.bind in
  let* matrices = Estimator.estimate_all ~attribution ~model results in
  let* analysis = Propagation.Analysis.run model matrices in
  let sorted =
    Propagation.Ranking.sort_module_rows
      Propagation.Ranking.By_relative_permeability
      (Propagation.Ranking.module_rows analysis.Propagation.Analysis.graph)
  in
  Ok
    ( List.map (fun r -> r.Propagation.Ranking.module_name) sorted,
      List.map
        (fun (r : Propagation.Ranking.module_row) ->
          (r.module_name, r.relative_permeability_est, r.resolved))
        sorted )

let study ?(config = Runner.Config.default)
    ?(attribution = Estimator.default_attribution) ~sut ~model ~campaign_of
    rosters =
  let ( let* ) = Result.bind in
  let* rows =
    List.fold_left
      (fun acc (spec, errors) ->
        let* acc = acc in
        let campaign = campaign_of errors in
        let results = Runner.run ~config sut campaign in
        let* order, estimates = rank ~model ~attribution results in
        Ok
          ({
             spec;
             runs = Campaign.size campaign;
             order;
             estimates;
             tau_vs_baseline = 1.0;
           }
          :: acc))
      (Ok []) rosters
  in
  match List.rev rows with
  | [] -> Ok []
  | baseline :: _ as rows ->
      Ok
        (List.map
           (fun r ->
             {
               r with
               tau_vs_baseline =
                 (if List.length r.order < 2 then 1.0
                  else
                    Propagation.Sensitivity.kendall_tau baseline.order r.order);
             })
           rows)
