(* Tests for the core propagation-analysis library (paper Sections 4-5). *)

open Propagation

let signal = Alcotest.testable Signal.pp Signal.equal

let check_raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")

let s = Signal.make
let close = Alcotest.(check (float 1e-9))

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.equal (String.sub haystack i nn) needle then true
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)

let signal_tests =
  [
    Alcotest.test_case "name and default kind" `Quick (fun () ->
        let x = s "x" in
        Alcotest.(check string) "name" "x" (Signal.name x);
        Alcotest.(check bool) "kind" true (Signal.kind x = Signal.Data));
    Alcotest.test_case "identity ignores kind" `Quick (fun () ->
        Alcotest.(check bool)
          "equal" true
          (Signal.equal (s "x") (Signal.make ~kind:Signal.Clock "x")));
    check_raises_invalid "empty name rejected" (fun () -> s "");
    Alcotest.test_case "compare orders by name" `Quick (fun () ->
        Alcotest.(check bool) "lt" true (Signal.compare (s "a") (s "b") < 0));
    Alcotest.test_case "sets deduplicate by name" `Quick (fun () ->
        let set = Signal.Set.of_list [ s "x"; s "y"; s "x" ] in
        Alcotest.(check int) "cardinal" 2 (Signal.Set.cardinal set));
    Alcotest.test_case "hash consistent with equality" `Quick (fun () ->
        Alcotest.(check int) "hash" (Signal.hash (s "x")) (Signal.hash (s "x")));
  ]

(* ------------------------------------------------------------------ *)

let mk_mod ?(name = "M") inputs outputs =
  Sw_module.make ~name ~inputs:(List.map s inputs)
    ~outputs:(List.map s outputs)

let sw_module_tests =
  [
    Alcotest.test_case "counts and pair count" `Quick (fun () ->
        let m = mk_mod [ "a"; "b" ] [ "c"; "d"; "e" ] in
        Alcotest.(check int) "m" 2 (Sw_module.input_count m);
        Alcotest.(check int) "n" 3 (Sw_module.output_count m);
        Alcotest.(check int) "m*n" 6 (Sw_module.pair_count m));
    Alcotest.test_case "ports are 1-based" `Quick (fun () ->
        let m = mk_mod [ "a"; "b" ] [ "c" ] in
        Alcotest.check signal "in 1" (s "a") (Sw_module.input_signal m 1);
        Alcotest.check signal "in 2" (s "b") (Sw_module.input_signal m 2);
        Alcotest.check signal "out 1" (s "c") (Sw_module.output_signal m 1));
    check_raises_invalid "port 0 rejected" (fun () ->
        Sw_module.input_signal (mk_mod [ "a" ] [ "b" ]) 0);
    check_raises_invalid "port beyond m rejected" (fun () ->
        Sw_module.input_signal (mk_mod [ "a" ] [ "b" ]) 2);
    Alcotest.test_case "input_index finds ports" `Quick (fun () ->
        let m = mk_mod [ "a"; "b" ] [ "c" ] in
        Alcotest.(check (option int))
          "b" (Some 2)
          (Sw_module.input_index m (s "b"));
        Alcotest.(check (option int))
          "missing" None
          (Sw_module.input_index m (s "z")));
    Alcotest.test_case "feedback detection" `Quick (fun () ->
        let m = mk_mod [ "a"; "fb" ] [ "fb"; "out" ] in
        Alcotest.(check bool) "has" true (Sw_module.has_feedback m);
        Alcotest.(check (list string))
          "signals" [ "fb" ]
          (List.map Signal.name (Sw_module.feedback_signals m)));
    Alcotest.test_case "no spurious feedback" `Quick (fun () ->
        Alcotest.(check bool)
          "none" false
          (Sw_module.has_feedback (mk_mod [ "a" ] [ "b" ])));
    check_raises_invalid "duplicate input rejected" (fun () ->
        mk_mod [ "a"; "a" ] [ "b" ]);
    check_raises_invalid "duplicate output rejected" (fun () ->
        mk_mod [ "a" ] [ "b"; "b" ]);
    check_raises_invalid "no inputs rejected" (fun () -> mk_mod [] [ "b" ]);
    check_raises_invalid "no outputs rejected" (fun () -> mk_mod [ "a" ] []);
    check_raises_invalid "empty name rejected" (fun () ->
        mk_mod ~name:"" [ "a" ] [ "b" ]);
  ]

(* ------------------------------------------------------------------ *)

let counts_gen =
  QCheck2.Gen.(
    bind (int_range 1 10_000) (fun trials ->
        map (fun errors -> (errors, trials)) (int_range 0 trials)))

let estimate_tests =
  [
    Alcotest.test_case "no trials is maximally uninformative" `Quick (fun () ->
        let lo, hi = Estimate.wilson_interval ~errors:0 ~trials:0 in
        close "lo" 0.0 lo;
        close "hi" 1.0 hi;
        Alcotest.(check bool)
          "not measured" false
          (Estimate.is_measured (Estimate.of_counts ~errors:0 ~trials:0)));
    Alcotest.test_case "hand-checked 50/100" `Quick (fun () ->
        (* Wilson score interval for p=0.5, n=100, z=1.96. *)
        let lo, hi = Estimate.wilson_interval ~errors:50 ~trials:100 in
        Alcotest.(check (float 1e-3)) "lo" 0.404 lo;
        Alcotest.(check (float 1e-3)) "hi" 0.596 hi);
    check_raises_invalid "errors > trials rejected" (fun () ->
        Estimate.wilson_interval ~errors:3 ~trials:2);
    check_raises_invalid "negative errors rejected" (fun () ->
        Estimate.wilson_interval ~errors:(-1) ~trials:2);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"interval contains n_err/n_inj" ~count:500
         counts_gen (fun (errors, trials) ->
           let lo, hi = Estimate.wilson_interval ~errors ~trials in
           let p = float_of_int errors /. float_of_int trials in
           0.0 <= lo && lo <= p && p <= hi && hi <= 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"interval narrows as trials grow at fixed ratio" ~count:500
         QCheck2.Gen.(
           triple (int_range 0 50) (int_range 1 50) (int_range 2 100))
         (fun (errors0, extra, factor) ->
           (* Same error ratio, [factor] times the evidence: the
              interval must not widen. *)
           let trials = errors0 + extra in
           let width ~errors ~trials =
             let lo, hi = Estimate.wilson_interval ~errors ~trials in
             hi -. lo
           in
           width ~errors:(errors0 * factor) ~trials:(trials * factor)
           <= width ~errors:errors0 ~trials +. 1e-12));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"estimates round-trip through Perm_matrix without drift"
         ~count:200
         QCheck2.Gen.(
           bind (pair (int_range 1 5) (int_range 1 5)) (fun (m, n) ->
               map
                 (fun cells ->
                   Array.init m (fun i ->
                       Array.init n (fun k ->
                           let errors, trials = List.nth cells ((i * n) + k) in
                           Estimate.of_counts ~errors ~trials)))
                 (list_repeat (m * n)
                    (bind (int_range 0 1_000) (fun trials ->
                         map
                           (fun errors -> (errors, trials))
                           (int_range 0 (max trials 0)))))))
         (fun cells ->
           let matrix = Perm_matrix.of_estimates cells in
           Array.for_all Fun.id
             (Array.mapi
                (fun i0 row ->
                  Array.for_all Fun.id
                    (Array.mapi
                       (fun k0 original ->
                         let got =
                           Perm_matrix.estimate matrix ~input:(i0 + 1)
                             ~output:(k0 + 1)
                         in
                         Estimate.equal ~eps:0.0 original got
                         && got.Estimate.n_err = original.Estimate.n_err
                         && got.Estimate.n_inj = original.Estimate.n_inj)
                       row))
                cells)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"derived arithmetic brackets the value"
         ~count:500
         QCheck2.Gen.(pair counts_gen counts_gen)
         (fun ((e1, t1), (e2, t2)) ->
           let a = Estimate.of_counts ~errors:e1 ~trials:t1 in
           let b = Estimate.of_counts ~errors:e2 ~trials:t2 in
           let ok e =
             let lo, hi = Estimate.interval e in
             lo <= Estimate.value e && Estimate.value e <= hi
           in
           ok (Estimate.mul a b) && ok (Estimate.add a b)
           && ok (Estimate.scale 0.5 a)));
  ]

(* ------------------------------------------------------------------ *)

let matrix_gen =
  QCheck2.Gen.(
    bind (pair (int_range 1 6) (int_range 1 6)) (fun (m, n) ->
        map
          (fun values ->
            Perm_matrix.of_rows
              (Array.init m (fun i ->
                   Array.init n (fun k -> List.nth values ((i * n) + k)))))
          (list_repeat (m * n) (float_bound_inclusive 1.0))))

let perm_matrix_tests =
  [
    Alcotest.test_case "create is all zeros" `Quick (fun () ->
        let m = Perm_matrix.create ~inputs:2 ~outputs:3 in
        close "sum" 0.0 (Perm_matrix.non_weighted m));
    Alcotest.test_case "get/set are 1-based and functional" `Quick (fun () ->
        let m0 = Perm_matrix.create ~inputs:2 ~outputs:2 in
        let m1 = Perm_matrix.set m0 ~input:2 ~output:1 0.5 in
        close "old untouched" 0.0 (Perm_matrix.get m0 ~input:2 ~output:1);
        close "new value" 0.5 (Perm_matrix.get m1 ~input:2 ~output:1));
    Alcotest.test_case "relative matches Eq. 2 by hand" `Quick (fun () ->
        let m = Perm_matrix.of_rows [| [| 0.2; 0.4 |]; [| 0.6; 0.8 |] |] in
        close "relative" 0.5 (Perm_matrix.relative m);
        close "non-weighted" 2.0 (Perm_matrix.non_weighted m));
    Alcotest.test_case "row and column sums" `Quick (fun () ->
        let m = Perm_matrix.of_rows [| [| 0.1; 0.2 |]; [| 0.3; 0.4 |] |] in
        close "row 2" 0.7 (Perm_matrix.row_sum m ~input:2);
        close "col 1" 0.4 (Perm_matrix.column_sum m ~output:1));
    Alcotest.test_case "row/column copies are detached" `Quick (fun () ->
        let m = Perm_matrix.of_rows [| [| 0.1; 0.2 |] |] in
        let row = Perm_matrix.row m ~input:1 in
        row.(0) <- 0.9;
        close "unchanged" 0.1 (Perm_matrix.get m ~input:1 ~output:1));
    check_raises_invalid "of_rows rejects ragged input" (fun () ->
        Perm_matrix.of_rows [| [| 0.1 |]; [| 0.1; 0.2 |] |]);
    check_raises_invalid "of_rows rejects out-of-range values" (fun () ->
        Perm_matrix.of_rows [| [| 1.5 |] |]);
    check_raises_invalid "of_rows rejects NaN" (fun () ->
        Perm_matrix.of_rows [| [| Float.nan |] |]);
    check_raises_invalid "set rejects bad probability" (fun () ->
        Perm_matrix.set
          (Perm_matrix.create ~inputs:1 ~outputs:1)
          ~input:1 ~output:1 (-0.1));
    Alcotest.test_case "equality with tolerance" `Quick (fun () ->
        let a = Perm_matrix.of_rows [| [| 0.5 |] |] in
        let b = Perm_matrix.of_rows [| [| 0.5 +. 1e-13 |] |] in
        Alcotest.(check bool) "equal" true (Perm_matrix.equal a b);
        Alcotest.(check bool)
          "not equal" false
          (Perm_matrix.equal ~eps:1e-15 a b));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"relative is within [0,1]" ~count:200 matrix_gen
         (fun m ->
           let r = Perm_matrix.relative m in
           0.0 <= r && r <= 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"non_weighted = m*n*relative" ~count:200
         matrix_gen (fun m ->
           Float.abs
             (Perm_matrix.non_weighted m
             -. float_of_int
                  (Perm_matrix.input_count m * Perm_matrix.output_count m)
                *. Perm_matrix.relative m)
           < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"fold visits every pair once" ~count:200
         matrix_gen (fun m ->
           Perm_matrix.fold (fun ~input:_ ~output:_ _ acc -> acc + 1) m 0
           = Perm_matrix.input_count m * Perm_matrix.output_count m));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"sum of row sums = non_weighted" ~count:200
         matrix_gen (fun m ->
           let total = ref 0.0 in
           for i = 1 to Perm_matrix.input_count m do
             total := !total +. Perm_matrix.row_sum m ~input:i
           done;
           Float.abs (!total -. Perm_matrix.non_weighted m) < 1e-9));
  ]

(* ------------------------------------------------------------------ *)

let chain_model () =
  (* src -> A -> mid -> B -> out, with B also feeding back to itself. *)
  let a = mk_mod ~name:"A" [ "src" ] [ "mid" ] in
  let b = mk_mod ~name:"B" [ "mid"; "bfb" ] [ "out"; "bfb" ] in
  System_model.make_exn ~modules:[ a; b ] ~system_inputs:[ s "src" ]
    ~system_outputs:[ s "out" ]

let system_model_tests =
  [
    Alcotest.test_case "producer and consumers" `Quick (fun () ->
        let model = chain_model () in
        (match System_model.producer model (s "mid") with
        | Some (m, k) ->
            Alcotest.(check string) "module" "A" (Sw_module.name m);
            Alcotest.(check int) "port" 1 k
        | None -> Alcotest.fail "no producer");
        Alcotest.(check int)
          "consumers of mid" 1
          (List.length (System_model.consumers model (s "mid")));
        Alcotest.(check bool)
          "system input has no producer" true
          (System_model.producer model (s "src") = None));
    Alcotest.test_case "signals and internal signals" `Quick (fun () ->
        let model = chain_model () in
        Alcotest.(check (list string))
          "all" [ "bfb"; "mid"; "out"; "src" ]
          (List.map Signal.name (System_model.signals model));
        Alcotest.(check (list string))
          "internal" [ "bfb"; "mid"; "out" ]
          (List.map Signal.name (System_model.internal_signals model)));
    Alcotest.test_case "pair_count sums modules" `Quick (fun () ->
        Alcotest.(check int) "pairs" 5
          (System_model.pair_count (chain_model ())));
    Alcotest.test_case "reachability crosses modules" `Quick (fun () ->
        let reachable = System_model.reachable_from_inputs (chain_model ()) in
        Alcotest.(check bool) "out" true (Signal.Set.mem (s "out") reachable);
        Alcotest.(check bool) "bfb" true (Signal.Set.mem (s "bfb") reachable));
    Alcotest.test_case "unreachable island detected" `Quick (fun () ->
        let clock = mk_mod ~name:"CLK" [ "tick" ] [ "tick"; "time" ] in
        let user = mk_mod ~name:"U" [ "ext"; "time" ] [ "out" ] in
        let model =
          System_model.make_exn ~modules:[ clock; user ]
            ~system_inputs:[ s "ext" ] ~system_outputs:[ s "out" ]
        in
        let reachable = System_model.reachable_from_inputs model in
        Alcotest.(check bool) "tick" false (Signal.Set.mem (s "tick") reachable);
        Alcotest.(check bool) "out" true (Signal.Set.mem (s "out") reachable));
    Alcotest.test_case "error: no modules" `Quick (fun () ->
        match
          System_model.make ~modules:[] ~system_inputs:[] ~system_outputs:[]
        with
        | Error System_model.No_modules -> ()
        | Error e -> Alcotest.failf "wrong error %a" System_model.pp_error e
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "error: duplicate module names" `Quick (fun () ->
        match
          System_model.make
            ~modules:
              [
                mk_mod ~name:"A" [ "x" ] [ "y" ];
                mk_mod ~name:"A" [ "y" ] [ "z" ];
              ]
            ~system_inputs:[ s "x" ] ~system_outputs:[ s "z" ]
        with
        | Error (System_model.Duplicate_module "A") -> ()
        | Error e -> Alcotest.failf "wrong error %a" System_model.pp_error e
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "error: two producers for one signal" `Quick (fun () ->
        match
          System_model.make
            ~modules:
              [
                mk_mod ~name:"A" [ "x" ] [ "y" ];
                mk_mod ~name:"B" [ "x" ] [ "y" ];
              ]
            ~system_inputs:[ s "x" ] ~system_outputs:[ s "y" ]
        with
        | Error (System_model.Multiple_producers sg) ->
            Alcotest.check signal "signal" (s "y") sg
        | Error e -> Alcotest.failf "wrong error %a" System_model.pp_error e
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "error: system input produced internally" `Quick
      (fun () ->
        match
          System_model.make
            ~modules:[ mk_mod ~name:"A" [ "x" ] [ "y" ] ]
            ~system_inputs:[ s "y" ] ~system_outputs:[ s "y" ]
        with
        | Error (System_model.System_input_produced _) -> ()
        | Error e -> Alcotest.failf "wrong error %a" System_model.pp_error e
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "error: dangling module input" `Quick (fun () ->
        match
          System_model.make
            ~modules:[ mk_mod ~name:"A" [ "ghost" ] [ "y" ] ]
            ~system_inputs:[] ~system_outputs:[ s "y" ]
        with
        | Error (System_model.Unproduced_input ("A", _)) -> ()
        | Error e -> Alcotest.failf "wrong error %a" System_model.pp_error e
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "error: unknown system output" `Quick (fun () ->
        match
          System_model.make
            ~modules:[ mk_mod ~name:"A" [ "x" ] [ "y" ] ]
            ~system_inputs:[ s "x" ] ~system_outputs:[ s "nope" ]
        with
        | Error (System_model.Unknown_system_output _) -> ()
        | Error e -> Alcotest.failf "wrong error %a" System_model.pp_error e
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "error: system output is a system input" `Quick
      (fun () ->
        match
          System_model.make
            ~modules:[ mk_mod ~name:"A" [ "x" ] [ "y" ] ]
            ~system_inputs:[ s "x" ] ~system_outputs:[ s "x" ]
        with
        | Error (System_model.Unproduced_system_output _) -> ()
        | Error e -> Alcotest.failf "wrong error %a" System_model.pp_error e
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "error messages render" `Quick (fun () ->
        Alcotest.(check bool)
          "non-empty" true
          (String.length (System_model.error_to_string System_model.No_modules)
          > 0));
    check_raises_invalid "make_exn raises" (fun () ->
        System_model.make_exn ~modules:[] ~system_inputs:[] ~system_outputs:[]);
    Alcotest.test_case "find_module" `Quick (fun () ->
        let model = chain_model () in
        Alcotest.(check bool)
          "found" true
          (System_model.find_module model "B" <> None);
        Alcotest.(check bool)
          "missing" true
          (System_model.find_module model "Z" = None));
  ]

(* ------------------------------------------------------------------ *)

let chain_matrices () =
  String_map.of_list
    [
      ("A", Perm_matrix.of_rows [| [| 0.5 |] |]);
      ("B", Perm_matrix.of_rows [| [| 0.4; 0.3 |]; [| 0.2; 0.1 |] |]);
    ]

let chain_graph () = Perm_graph.build_exn (chain_model ()) (chain_matrices ())

let perm_graph_tests =
  [
    Alcotest.test_case "arc count: one per pair and consumer" `Quick (fun () ->
        (* A: 1 pair -> B (1 arc).  B: pairs to `out` reach the
           environment (2 arcs), pairs to `bfb` loop back to B (2 arcs). *)
        Alcotest.(check int) "arcs" 5 (Perm_graph.arc_count (chain_graph ())));
    Alcotest.test_case "incoming arcs include feedback" `Quick (fun () ->
        let incoming = Perm_graph.incoming_arcs (chain_graph ()) "B" in
        Alcotest.(check int) "count" 3 (List.length incoming));
    Alcotest.test_case "outgoing arcs of A" `Quick (fun () ->
        let outgoing = Perm_graph.outgoing_arcs (chain_graph ()) "A" in
        Alcotest.(check int) "count" 1 (List.length outgoing));
    Alcotest.test_case "permeability lookup" `Quick (fun () ->
        close "P^B_{2,1}" 0.2
          (Perm_graph.permeability (chain_graph ())
             { Perm_graph.module_name = "B"; input = 2; output = 1 }));
    Alcotest.test_case "missing matrix is an error" `Quick (fun () ->
        match Perm_graph.build (chain_model ()) String_map.empty with
        | Error msg ->
            Alcotest.(check bool)
              "mentions a module" true
              (contains_substring msg "A" || contains_substring msg "B")
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "dimension mismatch is an error" `Quick (fun () ->
        let bad =
          String_map.add "A"
            (Perm_matrix.create ~inputs:2 ~outputs:2)
            (chain_matrices ())
        in
        match Perm_graph.build (chain_model ()) bad with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "pp_pair uses paper notation" `Quick (fun () ->
        Alcotest.(check string)
          "notation" "P^CALC_{2,1}"
          (Fmt.str "%a" Perm_graph.pp_pair
             { Perm_graph.module_name = "CALC"; input = 2; output = 1 }));
    Alcotest.test_case "zero arcs are kept" `Quick (fun () ->
        let matrices =
          String_map.add "A"
            (Perm_matrix.of_rows [| [| 0.0 |] |])
            (chain_matrices ())
        in
        let graph = Perm_graph.build_exn (chain_model ()) matrices in
        Alcotest.(check int) "arcs" 5 (Perm_graph.arc_count graph));
  ]

(* ------------------------------------------------------------------ *)

let backtrack_tests =
  [
    Alcotest.test_case "chain: root structure" `Quick (fun () ->
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        Alcotest.check signal "root" (s "out") tree.Backtrack_tree.root.signal;
        Alcotest.(check int)
          "children" 2
          (List.length tree.Backtrack_tree.root.children));
    Alcotest.test_case "chain: feedback becomes special leaf" `Quick (fun () ->
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        let feedback_leaves =
          Backtrack_tree.fold
            (fun acc node ->
              match node.Backtrack_tree.kind with
              | Backtrack_tree.Leaf Backtrack_tree.Feedback -> acc + 1
              | Backtrack_tree.Leaf Backtrack_tree.System_input
              | Backtrack_tree.Expanded _ ->
                  acc)
            0 tree
        in
        Alcotest.(check int) "feedback leaves" 1 feedback_leaves);
    Alcotest.test_case "chain: feedback unrolled exactly once" `Quick
      (fun () ->
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        Alcotest.(check int) "leaves" 3 (Backtrack_tree.leaf_count tree);
        Alcotest.(check int) "depth" 4 (Backtrack_tree.depth tree));
    Alcotest.test_case "feedback leaf sits under its own signal" `Quick
      (fun () ->
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        List.iter
          (fun (node : Backtrack_tree.node) ->
            List.iter
              (fun (c : Backtrack_tree.child) ->
                match c.node.kind with
                | Backtrack_tree.Leaf Backtrack_tree.Feedback ->
                    Alcotest.check signal "parent signal" node.signal
                      c.node.signal
                | Backtrack_tree.Leaf Backtrack_tree.System_input
                | Backtrack_tree.Expanded _ ->
                    ())
              node.children)
          (Backtrack_tree.fold (fun acc n -> n :: acc) [] tree));
    Alcotest.test_case "build_all yields one tree per output" `Quick (fun () ->
        Alcotest.(check int)
          "trees" 1
          (List.length (Backtrack_tree.build_all (chain_graph ()))));
    check_raises_invalid "system input cannot be a root" (fun () ->
        Backtrack_tree.build (chain_graph ()) (s "src"));
    Alcotest.test_case "nodes_of_signal finds repeats" `Quick (fun () ->
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        Alcotest.(check int)
          "mid occurs twice" 2
          (List.length (Backtrack_tree.nodes_of_signal tree (s "mid"))));
    Alcotest.test_case "fig example: 10 leaves" `Quick (fun () ->
        let tree = Backtrack_tree.build Fig_example.graph Fig_example.output in
        Alcotest.(check int) "leaves" 10 (Backtrack_tree.leaf_count tree));
    Alcotest.test_case "node_count >= leaf_count" `Quick (fun () ->
        let tree = Backtrack_tree.build Fig_example.graph Fig_example.output in
        Alcotest.(check bool)
          "ge" true
          (Backtrack_tree.node_count tree >= Backtrack_tree.leaf_count tree));
    Alcotest.test_case "cross-module cycles terminate" `Quick (fun () ->
        let a = mk_mod ~name:"A" [ "ext"; "ba" ] [ "ab"; "out" ] in
        let b = mk_mod ~name:"B" [ "ab" ] [ "ba" ] in
        let model =
          System_model.make_exn ~modules:[ a; b ] ~system_inputs:[ s "ext" ]
            ~system_outputs:[ s "out" ]
        in
        let matrices =
          String_map.of_list
            [
              ("A", Perm_matrix.of_rows [| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |]);
              ("B", Perm_matrix.of_rows [| [| 0.5 |] |]);
            ]
        in
        let graph = Perm_graph.build_exn model matrices in
        let tree = Backtrack_tree.build graph (s "out") in
        Alcotest.(check bool)
          "finite" true
          (Backtrack_tree.node_count tree < 50));
  ]

(* ------------------------------------------------------------------ *)

let trace_tree_tests =
  [
    Alcotest.test_case "chain: trace from src" `Quick (fun () ->
        let tree = Trace_tree.build (chain_graph ()) (s "src") in
        Alcotest.check signal "root" (s "src") tree.Trace_tree.root.signal;
        Alcotest.(check int) "leaves" 2 (Trace_tree.leaf_count tree));
    Alcotest.test_case "feedback child is omitted, not repeated" `Quick
      (fun () ->
        let tree = Trace_tree.build (chain_graph ()) (s "src") in
        let bfb_nodes =
          Trace_tree.fold
            (fun acc (n : Trace_tree.node) ->
              if Signal.equal n.signal (s "bfb") then n :: acc else acc)
            [] tree
        in
        Alcotest.(check int) "bfb expanded once" 1 (List.length bfb_nodes);
        List.iter
          (fun (n : Trace_tree.node) ->
            List.iter
              (fun (c : Trace_tree.child) ->
                Alcotest.(check bool)
                  "no bfb under bfb" false
                  (Signal.equal c.node.signal (s "bfb")))
              n.children)
          bfb_nodes);
    Alcotest.test_case "system output is a leaf" `Quick (fun () ->
        let tree = Trace_tree.build (chain_graph ()) (s "src") in
        Trace_tree.fold
          (fun () (n : Trace_tree.node) ->
            match n.kind with
            | Trace_tree.Leaf_of (Trace_tree.System_output, _, _) ->
                Alcotest.check signal "leaf is out" (s "out") n.signal
            | Trace_tree.Leaf_of (Trace_tree.Dead_end, _, _)
            | Trace_tree.Root | Trace_tree.Produced _ ->
                ())
          () tree);
    Alcotest.test_case "dead-end signals become leaves" `Quick (fun () ->
        let a = mk_mod ~name:"A" [ "ext" ] [ "used"; "unused" ] in
        let b = mk_mod ~name:"B" [ "used" ] [ "out" ] in
        let model =
          System_model.make_exn ~modules:[ a; b ] ~system_inputs:[ s "ext" ]
            ~system_outputs:[ s "out" ]
        in
        let matrices =
          String_map.of_list
            [
              ("A", Perm_matrix.of_rows [| [| 0.5; 0.5 |] |]);
              ("B", Perm_matrix.of_rows [| [| 0.5 |] |]);
            ]
        in
        let tree =
          Trace_tree.build (Perm_graph.build_exn model matrices) (s "ext")
        in
        let dead_ends =
          Trace_tree.fold
            (fun acc (n : Trace_tree.node) ->
              match n.kind with
              | Trace_tree.Leaf_of (Trace_tree.Dead_end, _, _) -> acc + 1
              | Trace_tree.Leaf_of (Trace_tree.System_output, _, _)
              | Trace_tree.Root | Trace_tree.Produced _ ->
                  acc)
            0 tree
        in
        Alcotest.(check int) "dead ends" 1 dead_ends);
    check_raises_invalid "unconsumed root rejected" (fun () ->
        Trace_tree.build (chain_graph ()) (s "out"));
    Alcotest.test_case "build_all yields one tree per input" `Quick (fun () ->
        Alcotest.(check int)
          "trees" 3
          (List.length (Trace_tree.build_all Fig_example.graph)));
    Alcotest.test_case "fig example: ext_e reaches out directly" `Quick
      (fun () ->
        let tree = Trace_tree.build Fig_example.graph (s "ext_e") in
        Alcotest.(check int) "leaves" 1 (Trace_tree.leaf_count tree);
        Alcotest.(check int) "depth" 2 (Trace_tree.depth tree));
  ]

(* ------------------------------------------------------------------ *)

let path_tests =
  [
    Alcotest.test_case "weight is the product of steps" `Quick (fun () ->
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        List.iter
          (fun p ->
            let expected =
              List.fold_left
                (fun acc (st : Path.step) -> acc *. st.weight)
                1.0 p.Path.steps
            in
            close "weight" expected (Path.weight p))
          (Path.of_backtrack_tree tree));
    Alcotest.test_case "direct chain path weight by hand" `Quick (fun () ->
        (* out <-(P^B_{1,1}=0.4) mid <-(P^A_{1,1}=0.5) src = 0.2 *)
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        let direct =
          List.find (fun p -> Path.length p = 2) (Path.of_backtrack_tree tree)
        in
        close "weight" 0.2 (Path.weight direct);
        Alcotest.check signal "leaf" (s "src") (Path.leaf_signal direct));
    Alcotest.test_case "terminals are classified" `Quick (fun () ->
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        let terminals =
          List.map (fun p -> p.Path.terminal) (Path.of_backtrack_tree tree)
        in
        Alcotest.(check int)
          "system inputs" 2
          (List.length
             (List.filter (fun t -> t = Path.At_system_input) terminals));
        Alcotest.(check int)
          "feedback" 1
          (List.length (List.filter (fun t -> t = Path.At_feedback) terminals)));
    Alcotest.test_case "adjusted weight multiplies by Pr" `Quick (fun () ->
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        let p = List.hd (Path.of_backtrack_tree tree) in
        close "adjusted"
          (0.25 *. Path.weight p)
          (Path.adjusted_weight ~input_error_probability:0.25 p));
    check_raises_invalid "adjusted weight rejects bad probability" (fun () ->
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        Path.adjusted_weight ~input_error_probability:1.5
          (List.hd (Path.of_backtrack_tree tree)));
    Alcotest.test_case "sort is heaviest first" `Quick (fun () ->
        let tree = Backtrack_tree.build Fig_example.graph Fig_example.output in
        let sorted = Path.sort_by_weight (Path.of_backtrack_tree tree) in
        ignore
          (List.fold_left
             (fun prev p ->
               Alcotest.(check bool) "descending" true (prev >= Path.weight p);
               Path.weight p)
             Float.infinity sorted));
    Alcotest.test_case "sort is a permutation" `Quick (fun () ->
        let tree = Backtrack_tree.build Fig_example.graph Fig_example.output in
        let paths = Path.of_backtrack_tree tree in
        Alcotest.(check int)
          "length" (List.length paths)
          (List.length (Path.sort_by_weight paths)));
    Alcotest.test_case "non_zero drops zero-weight paths" `Quick (fun () ->
        let matrices =
          String_map.add "A"
            (Perm_matrix.of_rows [| [| 0.0 |] |])
            (chain_matrices ())
        in
        let graph = Perm_graph.build_exn (chain_model ()) matrices in
        let tree = Backtrack_tree.build graph (s "out") in
        (* Both src paths go through the zeroed A; only the feedback
           path survives. *)
        Alcotest.(check int)
          "non-zero" 1
          (List.length (Path.non_zero (Path.of_backtrack_tree tree))));
    Alcotest.test_case "trace paths end at system outputs" `Quick (fun () ->
        let tree = Trace_tree.build Fig_example.graph (s "ext_a") in
        List.iter
          (fun p ->
            Alcotest.(check bool)
              "terminal" true
              (p.Path.terminal = Path.At_system_output))
          (Path.of_trace_tree tree));
    Alcotest.test_case "empty-steps path weight is 1" `Quick (fun () ->
        let p =
          { Path.source = s "x"; steps = []; terminal = Path.At_dead_end }
        in
        close "weight" 1.0 (Path.weight p);
        Alcotest.check signal "leaf" (s "x") (Path.leaf_signal p));
  ]

(* ------------------------------------------------------------------ *)

let arrestment_graph () =
  Perm_graph.build_exn Arrestment.Model.system
    (Arrestment.Model.paper_matrices ())

let exposure_tests =
  [
    Alcotest.test_case "module exposure by hand (chain)" `Quick (fun () ->
        let graph = chain_graph () in
        (* Incoming arcs of B: A's pair (0.5) + B's own bfb column
           (0.3, 0.1); Eq. 4 divides by B's pair count 4. *)
        close "Xnw" 0.9 (Exposure.module_exposure_nw graph "B");
        close "X" (0.9 /. 4.0) (Exposure.module_exposure graph "B");
        Alcotest.(check int) "arcs" 3 (Exposure.incoming_arc_count graph "B"));
    Alcotest.test_case "source module has zero exposure (OB1)" `Quick
      (fun () ->
        close "X" 0.0 (Exposure.module_exposure (chain_graph ()) "A"));
    Alcotest.test_case "signal exposure is the producer column sum" `Quick
      (fun () ->
        let graph = chain_graph () in
        close "X^out" 0.6 (Exposure.signal_exposure graph (s "out"));
        close "X^bfb" 0.4 (Exposure.signal_exposure graph (s "bfb"));
        close "X^mid" 0.5 (Exposure.signal_exposure graph (s "mid")));
    Alcotest.test_case "system inputs have zero signal exposure" `Quick
      (fun () ->
        close "X^src" 0.0 (Exposure.signal_exposure (chain_graph ()) (s "src")));
    Alcotest.test_case "Eq. 6 closed form = literal tree definition" `Quick
      (fun () ->
        let graph = Fig_example.graph in
        let trees = Backtrack_tree.build_all graph in
        List.iter
          (fun sg ->
            close
              (Fmt.str "X^%a" Signal.pp sg)
              (Exposure.signal_exposure graph sg)
              (Exposure.signal_exposure_via_trees trees sg))
          (System_model.internal_signals (Perm_graph.model graph)));
    Alcotest.test_case "Eq. 6 equivalence on the arrestment system" `Quick
      (fun () ->
        let graph = arrestment_graph () in
        let trees = Backtrack_tree.build_all graph in
        List.iter
          (fun sg ->
            close
              (Fmt.str "X^%a" Signal.pp sg)
              (Exposure.signal_exposure graph sg)
              (Exposure.signal_exposure_via_trees trees sg))
          (System_model.internal_signals (Perm_graph.model graph)));
  ]

(* ------------------------------------------------------------------ *)

let ranking_tests =
  [
    Alcotest.test_case "module rows in declaration order" `Quick (fun () ->
        let rows = Ranking.module_rows (chain_graph ()) in
        Alcotest.(check (list string))
          "order" [ "A"; "B" ]
          (List.map (fun (r : Ranking.module_row) -> r.module_name) rows));
    Alcotest.test_case "sorting by each key is descending" `Quick (fun () ->
        let rows = Ranking.module_rows Fig_example.graph in
        List.iter
          (fun key ->
            let sorted = Ranking.sort_module_rows key rows in
            let value (r : Ranking.module_row) =
              match key with
              | Ranking.By_relative_permeability -> r.relative_permeability
              | Ranking.By_non_weighted_permeability ->
                  r.non_weighted_permeability
              | Ranking.By_exposure -> r.exposure
              | Ranking.By_non_weighted_exposure -> r.non_weighted_exposure
            in
            ignore
              (List.fold_left
                 (fun prev r ->
                   Alcotest.(check bool) "descending" true (prev >= value r);
                   value r)
                 Float.infinity sorted))
          [
            Ranking.By_relative_permeability;
            Ranking.By_non_weighted_permeability;
            Ranking.By_exposure;
            Ranking.By_non_weighted_exposure;
          ]);
    Alcotest.test_case "signal rows omit system inputs" `Quick (fun () ->
        let rows = Ranking.signal_rows (chain_graph ()) in
        Alcotest.(check bool)
          "no src" true
          (List.for_all
             (fun (r : Ranking.signal_row) ->
               not (Signal.equal r.signal (s "src")))
             rows));
    Alcotest.test_case "path rows are ranked 1.." `Quick (fun () ->
        let tree = Backtrack_tree.build Fig_example.graph Fig_example.output in
        List.iteri
          (fun idx (r : Ranking.path_row) ->
            Alcotest.(check int) "rank" (idx + 1) r.rank)
          (Ranking.path_rows tree));
    Alcotest.test_case "include_zero keeps everything" `Quick (fun () ->
        let tree = Backtrack_tree.build Fig_example.graph Fig_example.output in
        Alcotest.(check int)
          "all" 10
          (List.length (Ranking.path_rows ~include_zero:true tree)));
    Alcotest.test_case "trace path rows rank trace trees" `Quick (fun () ->
        let tree = Trace_tree.build Fig_example.graph (s "ext_a") in
        Alcotest.(check bool)
          "non-empty" true
          (Ranking.trace_path_rows tree <> []));
  ]

(* ------------------------------------------------------------------ *)

let placement_tests =
  [
    Alcotest.test_case "hardware registers are excluded (OB4)" `Quick
      (fun () ->
        let placement = Placement.recommend (arrestment_graph ()) in
        Alcotest.(check bool)
          "TOC2 excluded" true
          (List.exists
             (fun (sg, reason) ->
               String.equal (Signal.name sg) "TOC2"
               && reason = Placement.Hardware_register)
             placement.Placement.excluded));
    Alcotest.test_case "clock island is excluded as unreachable (OB4)" `Quick
      (fun () ->
        let placement = Placement.recommend (arrestment_graph ()) in
        List.iter
          (fun name ->
            Alcotest.(check bool)
              (name ^ " excluded") true
              (List.exists
                 (fun (sg, reason) ->
                   String.equal (Signal.name sg) name
                   && reason = Placement.Unreachable_from_inputs)
                 placement.Placement.excluded))
          [ "mscnt"; "ms_slot_nbr" ]);
    Alcotest.test_case "cut signals shield the output (OB5)" `Quick (fun () ->
        let placement = Placement.recommend (arrestment_graph ()) in
        Alcotest.(check (list string))
          "cut" [ "OutValue"; "SetValue" ]
          (List.map Signal.name placement.Placement.cut_signals));
    Alcotest.test_case "barrier modules read system inputs (OB6)" `Quick
      (fun () ->
        let placement = Placement.recommend (arrestment_graph ()) in
        Alcotest.(check (list string))
          "barriers" [ "DIST_S"; "PRES_S" ]
          placement.Placement.barrier_modules);
    Alcotest.test_case "top truncates candidate lists" `Quick (fun () ->
        let placement = Placement.recommend ~top:2 Fig_example.graph in
        Alcotest.(check bool)
          "edm" true
          (List.length placement.Placement.edm_signals <= 2);
        Alcotest.(check bool)
          "erm" true
          (List.length placement.Placement.erm_modules <= 2));
    Alcotest.test_case "EDM candidates sorted by exposure" `Quick (fun () ->
        let placement = Placement.recommend Fig_example.graph in
        ignore
          (List.fold_left
             (fun prev (r : Ranking.signal_row) ->
               Alcotest.(check bool) "descending" true (prev >= r.exposure);
               r.exposure)
             Float.infinity placement.Placement.edm_signals));
    Alcotest.test_case "zero-exposure signals are excluded" `Quick (fun () ->
        let placement = Placement.recommend (arrestment_graph ()) in
        Alcotest.(check bool)
          "stopped excluded" true
          (List.exists
             (fun (sg, reason) ->
               String.equal (Signal.name sg) "stopped"
               && reason = Placement.Zero_exposure)
             placement.Placement.excluded));
  ]

(* ------------------------------------------------------------------ *)

let analysis_tests =
  [
    Alcotest.test_case "run produces every artifact" `Quick (fun () ->
        let analysis = Fig_example.analysis () in
        Alcotest.(check int)
          "backtrack trees" 1
          (List.length analysis.Analysis.backtrack_trees);
        Alcotest.(check int)
          "trace trees" 3
          (List.length analysis.Analysis.trace_trees);
        Alcotest.(check int)
          "module rows" 5
          (List.length analysis.Analysis.module_rows);
        Alcotest.(check int)
          "output path groups" 1
          (List.length analysis.Analysis.output_paths));
    Alcotest.test_case "run reports graph errors" `Quick (fun () ->
        match Analysis.run (chain_model ()) String_map.empty with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "summary renders" `Quick (fun () ->
        let analysis = Fig_example.analysis () in
        Alcotest.(check bool)
          "non-empty" true
          (String.length (Fmt.str "%a" Analysis.pp_summary analysis) > 0));
  ]

(* ------------------------------------------------------------------ *)

let prob_model_tests =
  [
    Alcotest.test_case "uniform assigns every system input" `Quick (fun () ->
        let pm = Prob_model.uniform (chain_model ()) ~probability:0.2 in
        close "src" 0.2 (Prob_model.probability pm (s "src"));
        close "internal signals get 0" 0.0 (Prob_model.probability pm (s "mid")));
    check_raises_invalid "uniform rejects bad probability" (fun () ->
        Prob_model.uniform (chain_model ()) ~probability:1.5);
    Alcotest.test_case "of_list validates inputs" `Quick (fun () ->
        (match Prob_model.of_list (chain_model ()) [ (s "mid", 0.1) ] with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "internal signal accepted");
        (match
           Prob_model.of_list (chain_model ()) [ (s "src", 0.1); (s "src", 0.2) ]
         with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "duplicate accepted");
        match Prob_model.of_list (chain_model ()) [ (s "src", 0.3) ] with
        | Ok pm -> close "src" 0.3 (Prob_model.probability pm (s "src"))
        | Error msg -> Alcotest.fail msg);
    Alcotest.test_case "adjusted path weight is Pr * weight" `Quick (fun () ->
        let pm = Prob_model.uniform (chain_model ()) ~probability:0.5 in
        let tree = Backtrack_tree.build (chain_graph ()) (s "out") in
        List.iter
          (fun (wp : Prob_model.weighted_path) ->
            match wp.path.Path.terminal with
            | Path.At_system_input ->
                close "adjusted" (0.5 *. Path.weight wp.path) wp.adjusted
            | Path.At_feedback -> close "feedback gets 0" 0.0 wp.adjusted
            | Path.At_system_output | Path.At_dead_end ->
                Alcotest.fail "unexpected terminal")
          (Prob_model.adjust_paths pm (Path.of_backtrack_tree tree)));
    Alcotest.test_case "output arrival sums adjusted weights" `Quick
      (fun () ->
        let pm = Prob_model.uniform (chain_model ()) ~probability:1.0 in
        let analysis =
          Analysis.run_exn (chain_model ()) (chain_matrices ())
        in
        match Prob_model.output_arrival pm analysis with
        | [ (out, total) ] ->
            Alcotest.check signal "output" (s "out") out;
            (* direct 0.4*0.5 = 0.2, via feedback 0.2*0.3*0.5 = 0.03 *)
            close "total" 0.23 total
        | _ -> Alcotest.fail "expected one output");
    Alcotest.test_case "input criticality orders the example's sources"
      `Quick (fun () ->
        let pm =
          Prob_model.uniform Fig_example.system ~probability:0.1
        in
        let ranked =
          Prob_model.input_criticality pm (Fig_example.analysis ())
        in
        Alcotest.(check int) "three inputs" 3 (List.length ranked);
        ignore
          (List.fold_left
             (fun prev (_, v) ->
               Alcotest.(check bool) "descending" true (prev >= v);
               v)
             Float.infinity ranked));
  ]

(* ------------------------------------------------------------------ *)

let sensitivity_tests =
  [
    Alcotest.test_case "kendall tau of identical orders is 1" `Quick
      (fun () ->
        close "tau" 1.0
          (Sensitivity.kendall_tau [ "a"; "b"; "c" ] [ "a"; "b"; "c" ]));
    Alcotest.test_case "kendall tau of reversed orders is -1" `Quick
      (fun () ->
        close "tau" (-1.0)
          (Sensitivity.kendall_tau [ "a"; "b"; "c" ] [ "c"; "b"; "a" ]));
    Alcotest.test_case "kendall tau of one swap" `Quick (fun () ->
        close "tau" (1.0 /. 3.0)
          (Sensitivity.kendall_tau [ "a"; "b"; "c" ] [ "b"; "a"; "c" ]));
    check_raises_invalid "kendall tau rejects different item sets" (fun () ->
        Sensitivity.kendall_tau [ "a"; "b" ] [ "a"; "c" ]);
    check_raises_invalid "kendall tau rejects singletons" (fun () ->
        Sensitivity.kendall_tau [ "a" ] [ "a" ]);
    Alcotest.test_case "perturbation keeps values in [0,1]" `Quick (fun () ->
        List.iter
          (fun perturbation ->
            let perturbed =
              Sensitivity.perturb_matrices ~seed:3 perturbation
                Fig_example.matrices
            in
            String_map.iter
              (fun _ m ->
                Perm_matrix.fold
                  (fun ~input:_ ~output:_ v () ->
                    Alcotest.(check bool) "range" true (0.0 <= v && v <= 1.0))
                  m ())
              perturbed)
          [
            Sensitivity.Relative_noise 0.9;
            Sensitivity.Absolute_noise 0.9;
            Sensitivity.Quantise 3;
          ]);
    Alcotest.test_case "perturbation is deterministic in the seed" `Quick
      (fun () ->
        let p = Sensitivity.Relative_noise 0.3 in
        let a = Sensitivity.perturb_matrices ~seed:9 p Fig_example.matrices in
        let b = Sensitivity.perturb_matrices ~seed:9 p Fig_example.matrices in
        String_map.iter
          (fun name m ->
            Alcotest.(check bool)
              name true
              (Perm_matrix.equal m (String_map.find name b)))
          a);
    Alcotest.test_case "zero noise preserves the matrices" `Quick (fun () ->
        let perturbed =
          Sensitivity.perturb_matrices ~seed:1
            (Sensitivity.Relative_noise 0.0) Fig_example.matrices
        in
        String_map.iter
          (fun name m ->
            Alcotest.(check bool)
              name true
              (Perm_matrix.equal m (String_map.find name Fig_example.matrices)))
          perturbed);
    Alcotest.test_case "study reports perfect stability at zero noise"
      `Quick (fun () ->
        let report =
          Sensitivity.study ~trials:4 ~seed:1
            (Sensitivity.Relative_noise 0.0) Fig_example.system
            Fig_example.matrices
        in
        close "module tau" 1.0 report.Sensitivity.module_tau_by_permeability;
        close "signal tau" 1.0 report.Sensitivity.signal_tau;
        close "top stable" 1.0 report.Sensitivity.top_edm_stable);
    Alcotest.test_case "heavy noise degrades stability" `Quick (fun () ->
        let report =
          Sensitivity.study ~trials:16 ~seed:1
            (Sensitivity.Absolute_noise 1.0) Fig_example.system
            Fig_example.matrices
        in
        Alcotest.(check bool)
          "below 1" true
          (report.Sensitivity.module_tau_by_permeability < 1.0));
  ]

(* ------------------------------------------------------------------ *)

let compose_tests =
  [
    Alcotest.test_case "single chain composes to the path product" `Quick
      (fun () ->
        (* src -> A(0.5) -> mid -> B -> out with the feedback loop:
           paths to src: direct 0.2 and via-feedback 0.03. *)
        let analysis = Analysis.run_exn (chain_model ()) (chain_matrices ()) in
        let noisy = Compose.equivalent_matrix analysis in
        close "noisy-or"
          (1.0 -. ((1.0 -. 0.2) *. (1.0 -. 0.03)))
          (Perm_matrix.get noisy ~input:1 ~output:1);
        let max_path =
          Compose.equivalent_matrix ~combinator:Compose.Max_path analysis
        in
        close "max path" 0.2 (Perm_matrix.get max_path ~input:1 ~output:1));
    Alcotest.test_case "max path is a lower bound of noisy-or" `Quick
      (fun () ->
        let analysis = Fig_example.analysis () in
        let noisy = Compose.equivalent_matrix analysis in
        let max_path =
          Compose.equivalent_matrix ~combinator:Compose.Max_path analysis
        in
        Perm_matrix.fold
          (fun ~input ~output v () ->
            Alcotest.(check bool)
              "ordered" true
              (v <= Perm_matrix.get noisy ~input ~output +. 1e-12))
          max_path ());
    Alcotest.test_case "collapsed module matches the outer interface" `Quick
      (fun () ->
        let descriptor, matrix =
          Compose.as_module ~name:"FIG2" (Fig_example.analysis ())
        in
        Alcotest.(check int) "inputs" 3 (Sw_module.input_count descriptor);
        Alcotest.(check int) "outputs" 1 (Sw_module.output_count descriptor);
        Alcotest.(check int) "matrix rows" 3 (Perm_matrix.input_count matrix));
    Alcotest.test_case "a collapsed system nests into a larger model" `Quick
      (fun () ->
        let inner, matrix =
          Compose.as_module ~name:"INNER" (Fig_example.analysis ())
        in
        let post =
          mk_mod ~name:"POST" [ "e_out" ] [ "final" ]
        in
        let model =
          System_model.make_exn
            ~modules:[ inner; post ]
            ~system_inputs:
              (List.map s [ "ext_a"; "ext_c"; "ext_e" ])
            ~system_outputs:[ s "final" ]
        in
        let matrices =
          String_map.of_list
            [ ("INNER", matrix); ("POST", Perm_matrix.of_rows [| [| 0.9 |] |]) ]
        in
        let analysis = Analysis.run_exn model matrices in
        Alcotest.(check int)
          "nested paths" 3
          (Backtrack_tree.leaf_count
             (List.assoc (s "final") analysis.Analysis.backtrack_trees)));
  ]

(* ------------------------------------------------------------------ *)

let monte_carlo_tests =
  [
    Alcotest.test_case "single-path system matches the product" `Quick
      (fun () ->
        let a = mk_mod ~name:"A" [ "in" ] [ "m" ] in
        let b = mk_mod ~name:"B" [ "m" ] [ "out" ] in
        let model =
          System_model.make_exn ~modules:[ a; b ] ~system_inputs:[ s "in" ]
            ~system_outputs:[ s "out" ]
        in
        let graph =
          Perm_graph.build_exn model
            (String_map.of_list
               [
                 ("A", Perm_matrix.of_rows [| [| 0.5 |] |]);
                 ("B", Perm_matrix.of_rows [| [| 0.4 |] |]);
               ])
        in
        let p =
          Monte_carlo.arrival_probability ~trials:20_000 ~seed:7 graph
            ~input:(s "in") ~output:(s "out")
        in
        Alcotest.(check (float 0.02)) "0.2" 0.2 p);
    Alcotest.test_case "bracketed by max-path and noisy-or" `Quick (fun () ->
        let analysis = Fig_example.analysis () in
        let graph = analysis.Analysis.graph in
        let mc = Monte_carlo.arrival_matrix ~trials:5_000 ~seed:3 graph in
        let lo = Compose.equivalent_matrix ~combinator:Compose.Max_path analysis in
        let hi = Compose.equivalent_matrix analysis in
        Perm_matrix.fold
          (fun ~input ~output v () ->
            Alcotest.(check bool)
              "above max path" true
              (v >= Perm_matrix.get lo ~input ~output -. 0.03);
            Alcotest.(check bool)
              "below noisy-or" true
              (v <= Perm_matrix.get hi ~input ~output +. 0.03))
          mc ());
    Alcotest.test_case "deterministic in the seed" `Quick (fun () ->
        let graph = Fig_example.graph in
        let p () =
          Monte_carlo.arrival_probability ~trials:2_000 ~seed:11 graph
            ~input:(s "ext_a") ~output:(s "e_out")
        in
        close "same" (p ()) (p ()));
    Alcotest.test_case "zero permeability never arrives" `Quick (fun () ->
        let a = mk_mod ~name:"A" [ "in" ] [ "out" ] in
        let model =
          System_model.make_exn ~modules:[ a ] ~system_inputs:[ s "in" ]
            ~system_outputs:[ s "out" ]
        in
        let graph =
          Perm_graph.build_exn model
            (String_map.of_list [ ("A", Perm_matrix.of_rows [| [| 0.0 |] |]) ])
        in
        close "zero" 0.0
          (Monte_carlo.arrival_probability ~trials:1_000 ~seed:1 graph
             ~input:(s "in") ~output:(s "out")));
    check_raises_invalid "rejects a non-input source" (fun () ->
        Monte_carlo.arrival_probability ~trials:10 ~seed:1 Fig_example.graph
          ~input:(s "b2") ~output:(s "e_out"));
  ]

let () =
  Alcotest.run "propagation"
    [
      ("signal", signal_tests);
      ("sw_module", sw_module_tests);
      ("estimate", estimate_tests);
      ("perm_matrix", perm_matrix_tests);
      ("system_model", system_model_tests);
      ("perm_graph", perm_graph_tests);
      ("backtrack_tree", backtrack_tests);
      ("trace_tree", trace_tree_tests);
      ("path", path_tests);
      ("exposure", exposure_tests);
      ("ranking", ranking_tests);
      ("placement", placement_tests);
      ("analysis", analysis_tests);
      ("prob_model", prob_model_tests);
      ("sensitivity", sensitivity_tests);
      ("compose", compose_tests);
      ("monte_carlo", monte_carlo_tests);
    ]
